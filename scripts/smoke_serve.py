#!/usr/bin/env python
"""End-to-end smoke for the serving daemon (``scripts/check.sh --serve``).

Trains a throwaway mini model, saves it as a bundle, then walks the
serving surface the way an operator would — twice: once against the
classic in-process daemon (``--workers 1``) and once against the
pre-fork router with two worker processes (``--workers 2``), both
launched as real ``python -m repro serve`` subprocesses:

1. ``GET /healthz`` — version, model generation, queue snapshot (and,
   multi-worker, per-worker liveness);
2. a packed ``windows`` job — predictions must match the offline
   engine on the same windows;
3. ``POST /v1/reload`` — generation bumps without dropping traffic
   (multi-worker: the generation fence rolls every worker);
4. SIGTERM — the daemon drains and exits 0.

Exit status is the smoke's verdict, so CI can run it directly.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.codegen.compilers import GccCompiler  # noqa: E402
from repro.codegen.strip import strip  # noqa: E402
from repro.core.config import CatiConfig  # noqa: E402
from repro.core.pipeline import Cati  # noqa: E402
from repro.datasets.corpus import build_small_corpus  # noqa: E402
from repro.embedding.word2vec import Word2VecConfig  # noqa: E402
from repro.experiments.speed import extents_from_debug  # noqa: E402
from repro.serve.client import ServeClient  # noqa: E402
from repro.vuc.dataset import extract_unlabeled_vucs  # noqa: E402


def fail(message: str) -> None:
    print(f"smoke_serve: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def walk(bundle_dir: str, workers: int, windows, variable_ids,
         expected) -> None:
    """One full operator walk against ``--workers N``."""
    tag = f"--workers {workers}"
    print(f"smoke_serve: starting daemon ({tag}) ...", flush=True)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--model-dir", bundle_dir, "--port", "0",
         "--workers", str(workers)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env={**os.environ,
             "PYTHONPATH": os.path.join(os.path.dirname(__file__),
                                        "..", "src")})
    try:
        port = None
        deadline = time.monotonic() + 300
        while time.monotonic() < deadline:
            line = process.stdout.readline()
            if not line:
                fail(f"daemon ({tag}) exited before binding "
                     f"(rc={process.poll()})")
            print(f"  [daemon] {line.rstrip()}", flush=True)
            if line.startswith("serving on http://"):
                port = int(line.rsplit(":", 1)[1])
                break
        if port is None:
            fail(f"daemon ({tag}) never printed its address")

        client = ServeClient("127.0.0.1", port, timeout=120)

        health = client.health()
        if health["status"] != "ok":
            fail(f"healthz status {health['status']!r} ({tag})")
        generation = health["model"]["generation"]
        print(f"smoke_serve: healthz ok (repro {health['version']}, "
              f"model generation {generation})", flush=True)
        if workers > 1:
            live = health.get("workers_live")
            if live != workers:
                fail(f"expected {workers} live workers, healthz says {live}")
            if not all(w.get("mmap") for w in health["workers"]):
                fail(f"workers are not serving the mmap'd mirror: "
                     f"{health['workers']}")
            print(f"smoke_serve: {live} workers live, all mmap-backed",
                  flush=True)

        response = client.infer_windows(windows, variable_ids)
        served = [(p["variable_id"], p["type"], p["n_vucs"])
                  for p in response["predictions"]]
        if served != expected:
            fail(f"served predictions diverge from the offline engine ({tag})")
        print(f"smoke_serve: {len(served)} served predictions match "
              "offline", flush=True)

        reloaded = client.reload()
        new_generation = (reloaded.get("model") or reloaded)["generation"]
        if new_generation != generation + 1:
            fail(f"reload did not bump the generation ({tag}): {reloaded}")
        response = client.infer_windows(windows, variable_ids)
        served = [(p["variable_id"], p["type"], p["n_vucs"])
                  for p in response["predictions"]]
        if served != expected:
            fail(f"post-reload predictions diverge ({tag})")
        print(f"smoke_serve: hot reload ok (generation {new_generation})",
              flush=True)

        process.send_signal(signal.SIGTERM)
        try:
            rc = process.wait(timeout=120)
        except subprocess.TimeoutExpired:
            fail(f"daemon ({tag}) did not drain within 120s of SIGTERM")
        for line in process.stdout:
            print(f"  [daemon] {line.rstrip()}", flush=True)
        if rc != 0:
            fail(f"daemon ({tag}) exited {rc} after SIGTERM")
        print(f"smoke_serve: SIGTERM drain ok ({tag})", flush=True)
    finally:
        if process.poll() is None:
            process.kill()


def main() -> None:
    print("smoke_serve: training mini model ...", flush=True)
    corpus = build_small_corpus()
    config = CatiConfig(
        epochs=5, fc_width=64,
        word2vec=Word2VecConfig(dim=32, window=5, epochs=1,
                                subsample_pairs=0.4))
    cati = Cati(config).train(corpus.train)

    compiler = GccCompiler()
    binary = compiler.compile_fresh(seed=77, name="smoke-serve", opt_level=1)
    stripped, extents = strip(binary), extents_from_debug(binary)
    pairs = extract_unlabeled_vucs(stripped, extents, config.window)
    windows = [tokens for _variable_id, tokens in pairs]
    variable_ids = [variable_id for variable_id, _tokens in pairs]
    offline = cati.engine.predict_variables(windows, variable_ids)
    expected = [(p.variable_id, str(p.predicted), p.n_vucs) for p in offline]

    with tempfile.TemporaryDirectory(prefix="smoke-serve-") as scratch:
        bundle_dir = os.path.join(scratch, "bundle")
        cati.save(bundle_dir)
        for workers in (1, 2):
            walk(bundle_dir, workers, windows, variable_ids, expected)

    print("smoke_serve: PASS", flush=True)


if __name__ == "__main__":
    main()
