#!/usr/bin/env bash
# Local quality gate: lint + the tier-1 test suite.
#
# Usage: scripts/check.sh [--faults | --docs | --serve | --smoke | --batch | --structs | --repl] [extra pytest args...]
#
#   --faults   run the fault-injection suite (tests/test_fault_tolerance.py)
#              instead of the full tier-1 suite.
#   --docs     run the docs-drift gate only (scripts/check_docs.py):
#              EXPERIMENTS.md matches its generator section-for-section,
#              every public CatiConfig field is documented in
#              docs/OPERATIONS.md, and docs/DEPLOYMENT.md exists with
#              the serving knobs covered and cross-linked.
#   --serve    run the serving smoke only (scripts/smoke_serve.py):
#              train a mini model, launch `python -m repro serve` as a
#              subprocess, check healthz / packed infer / hot reload /
#              SIGTERM drain end to end — once single-process
#              (--workers 1) and once through the pre-fork router
#              (--workers 2).
#   --smoke    run the engine speed bench's correctness gates only
#              (benchmarks/bench_speed.py --smoke): train a mini model,
#              assert engine/naive equivalence, the previous-generation
#              reproduction, the int8 drift bound and the dedup-cache
#              invariants.  No wall-clock assertions.
#   --batch    run the batch-job smoke only (scripts/smoke_batch.py):
#              tiny corpus -> run -> SIGKILL mid-job -> resume ->
#              verify bit-identical results + enumerated interruption.
#   --structs  run the struct-recovery smoke only
#              (scripts/smoke_structs.py): member-labeled mini model ->
#              infer_binary(structs=True) attaches layouts that join
#              DWARF truth, the disabled path stays byte-identical, and
#              the /2 wire schema + `repro infer --structs --json` carry
#              the vote-detail and layouts blocks.
#   --repl     run the interactive-session smoke only
#              (scripts/smoke_repl.py): mini model -> 2-worker router
#              with --session-ttl-s 2 -> the real `repro repl --exec`
#              walks every session tool and each output is checked
#              byte-for-byte against the offline pipeline; TTL expiry
#              surfaces a retriable 410 the REPL recovers from; the
#              interactive p50/p99 lands in BENCH_speed.json.
#
# Lint is a hard gate: when ruff is installed, any finding fails the
# script (set -e).  When ruff is absent we warn and continue, because
# this repo's container policy forbids installing new packages.
set -euo pipefail

cd "$(dirname "$0")/.."

FAULTS=0
DOCS=0
SERVE=0
SMOKE=0
BATCH=0
STRUCTS=0
REPL=0
if [[ "${1:-}" == "--faults" ]]; then
    FAULTS=1
    shift
elif [[ "${1:-}" == "--docs" ]]; then
    DOCS=1
    shift
elif [[ "${1:-}" == "--serve" ]]; then
    SERVE=1
    shift
elif [[ "${1:-}" == "--smoke" ]]; then
    SMOKE=1
    shift
elif [[ "${1:-}" == "--batch" ]]; then
    BATCH=1
    shift
elif [[ "${1:-}" == "--structs" ]]; then
    STRUCTS=1
    shift
elif [[ "${1:-}" == "--repl" ]]; then
    REPL=1
    shift
fi

if [[ "$DOCS" == "1" ]]; then
    echo "== docs drift gate =="
    exec python scripts/check_docs.py
fi

if [[ "$SERVE" == "1" ]]; then
    echo "== serve smoke =="
    exec python scripts/smoke_serve.py
fi

if [[ "$SMOKE" == "1" ]]; then
    echo "== engine speed smoke (correctness gates) =="
    exec env PYTHONPATH=src python benchmarks/bench_speed.py --smoke
fi

if [[ "$BATCH" == "1" ]]; then
    echo "== batch kill/resume smoke =="
    exec python scripts/smoke_batch.py
fi

if [[ "$STRUCTS" == "1" ]]; then
    echo "== struct-recovery smoke =="
    exec python scripts/smoke_structs.py
fi

if [[ "$REPL" == "1" ]]; then
    echo "== interactive-session smoke =="
    exec python scripts/smoke_repl.py
fi

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff (hard gate) =="
    ruff check src tests benchmarks
else
    echo "== ruff not installed; skipping lint (pip install ruff to enable the hard gate) =="
fi

if [[ "$FAULTS" == "1" ]]; then
    echo "== fault-injection suite =="
    PYTHONPATH=src python -m pytest -q tests/test_fault_tolerance.py "$@"
else
    echo "== tier-1 tests =="
    PYTHONPATH=src python -m pytest -x -q "$@"
fi
