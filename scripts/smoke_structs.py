#!/usr/bin/env python
"""End-to-end smoke for struct-layout recovery (``scripts/check.sh --structs``).

Fast mechanics gates (quality is ``benchmarks/bench_structs.py``'s job):

1. train a throwaway member-labeled mini model on a struct-heavy corpus;
2. ``infer_binary(structs=True)`` attaches recovered layouts that join
   ground truth (``DW_AT_data_member_location``) on at least one object;
3. the **disabled path is unchanged**: ``structs=False`` and
   ``structs=True`` produce byte-identical per-variable predictions
   (ids, types, vote scores) — the posterior stage only adds layouts;
4. the wire schema carries the new blocks: per-prediction vote detail
   (``margin`` / ``runner_up``) and the ``layouts`` block with per-field
   offset/type/width/confidence;
5. ``python -m repro infer --structs --json`` emits all of the above
   through the real CLI against a saved bundle.

Exit status is the smoke's verdict, so CI can run it directly.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.codegen.compilers import GccCompiler  # noqa: E402
from repro.codegen.progen import DEFAULT_TYPE_WEIGHTS, GeneratorConfig  # noqa: E402
from repro.codegen.strip import strip  # noqa: E402
from repro.core.config import CatiConfig  # noqa: E402
from repro.core.pipeline import Cati  # noqa: E402
from repro.core.types import TypeName  # noqa: E402
from repro.embedding.word2vec import Word2VecConfig  # noqa: E402
from repro.experiments.speed import extents_from_debug  # noqa: E402
from repro.posterior import layouts_to_fields, truth_layouts  # noqa: E402
from repro.vuc.dataset import VucDataset, extract_labeled_vucs  # noqa: E402


def fail(message: str) -> None:
    print(f"smoke_structs: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def struct_heavy() -> GeneratorConfig:
    weights = dict(DEFAULT_TYPE_WEIGHTS)
    weights[TypeName.STRUCT] = 30.0
    weights[TypeName.STRUCT_POINTER] = 30.0
    return GeneratorConfig(type_weights=weights, orphan_fraction=0.15,
                           normal_accesses=(4, 10), array_fraction=0.0,
                           struct_param_fraction=0.5)


def main() -> None:
    print("smoke_structs: training mini model ...", flush=True)
    gen = struct_heavy()
    compiler = GccCompiler()
    config = CatiConfig(
        epochs=5, fc_width=64,
        word2vec=Word2VecConfig(dim=32, window=5, epochs=1,
                                subsample_pairs=0.4))
    dataset = VucDataset(window=config.window)
    for seed in range(9000, 9004):
        binary = compiler.compile_fresh(seed=seed, name=f"train-{seed}",
                                        opt_level=0, config=gen)
        dataset.extend(extract_labeled_vucs(binary, app="structs",
                                            window=config.window,
                                            member_labels=True))
    cati = Cati(config).train(dataset)

    binary = compiler.compile_fresh(seed=9700, name="smoke-structs",
                                    opt_level=0, config=gen)
    stripped = strip(binary)
    extents = extents_from_debug(binary)

    print("smoke_structs: checking engine path ...", flush=True)
    plain = cati.infer_binary(stripped, extents, structs=False)
    recovered = cati.infer_binary(stripped, extents, structs=True)
    if plain.layouts is not None:
        fail("structs=False must not attach layouts")
    if recovered.layouts is None or not recovered.layouts:
        fail("structs=True recovered no layouts")

    if len(plain) != len(recovered):
        fail("posterior stage changed the prediction count")
    for a, b in zip(plain, recovered):
        if (a.variable_id != b.variable_id or a.predicted is not b.predicted
                or a.n_vucs != b.n_vucs or list(a.scores) != list(b.scores)):
            fail(f"posterior stage changed prediction {a.variable_id}: "
                 f"{a.predicted}/{a.scores} vs {b.predicted}/{b.scores}")
    print(f"smoke_structs: {len(plain)} predictions identical with the "
          f"stage on; {len(recovered.layouts)} layout(s) recovered")

    truth = truth_layouts(binary, scope_name=stripped.name)
    joined = set(layouts_to_fields(recovered.layouts)) & set(truth)
    if truth and not joined:
        fail("no recovered object id joins the DWARF truth layouts")
    print(f"smoke_structs: {len(joined)}/{len(truth)} true objects joined")

    print("smoke_structs: checking wire schema ...", flush=True)
    from repro.serve.protocol import RESPONSE_SCHEMA, build_infer_response

    body = build_infer_response(list(recovered), recovered.failures,
                                layouts=recovered.layouts)
    for prediction in body["predictions"]:
        for key in ("margin", "runner_up", "runner_up_confidence"):
            if key not in prediction:
                fail(f"prediction wire object lacks {key!r}")
    if not body.get("layouts"):
        fail("wire response lacks the layouts block")
    for layout in body["layouts"]:
        if not layout["fields"]:
            fail("wire layout has no fields")
        for field in layout["fields"]:
            for key in ("offset", "type", "width", "confidence", "margin",
                        "n_accesses"):
                if key not in field:
                    fail(f"wire field object lacks {key!r}")

    print("smoke_structs: checking the CLI ...", flush=True)
    with tempfile.TemporaryDirectory(prefix="smoke-structs-") as scratch:
        model_dir = os.path.join(scratch, "model")
        cati.save(model_dir)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "infer", "--model-dir", model_dir,
             "--seed", "9700", "--structs", "--json", "--on-error", "skip"],
            env=env, capture_output=True, text=True, timeout=600)
        if proc.returncode != 0:
            fail(f"CLI infer --structs --json failed:\n{proc.stderr}")
        cli_body = json.loads(proc.stdout)
        if cli_body["schema"] != RESPONSE_SCHEMA:
            fail(f"CLI schema {cli_body['schema']} != {RESPONSE_SCHEMA}")
        if "layouts" not in cli_body:
            fail("CLI --structs --json emitted no layouts block")

    print("smoke_structs: OK")


if __name__ == "__main__":
    main()
