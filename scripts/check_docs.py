#!/usr/bin/env python
"""Docs-drift gate (run via ``scripts/check.sh --docs``).

Three checks:

1. Every section title the EXPERIMENTS.md generator
   (``scripts/generate_experiments_md.py``) emits exists as a ``##``
   heading in the committed EXPERIMENTS.md — catches a stale file after
   an experiment is added, renamed or removed.
2. Every public field of ``CatiConfig`` is named in
   docs/OPERATIONS.md — catches an undocumented knob.
3. docs/DEPLOYMENT.md exists, covers the serving knobs
   (``serve_workers`` and friends) and is cross-linked from README.md,
   docs/OPERATIONS.md and docs/ARCHITECTURE.md — catches the deployment
   guide drifting out of the doc graph.
4. The posterior struct-recovery stage stays documented:
   docs/ARCHITECTURE.md has a ``repro.posterior`` section, and its
   knobs (``posterior_enabled``, ``posterior_min_accesses``) plus the
   ``--structs`` surfaces are named in docs/OPERATIONS.md.
5. Interactive sessions stay documented: docs/OPERATIONS.md has an
   "Interactive sessions" section naming every session tool and the
   ``repro repl`` / ``--repl`` surfaces, docs/ARCHITECTURE.md
   describes ``repro.analysis``, and README.md shows the repl
   quickstart.

Exits non-zero listing every discrepancy; prints nothing but a one-line
OK otherwise.
"""

from __future__ import annotations

import ast
import dataclasses
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def generator_section_titles() -> list[str]:
    """First-argument string literals of every ``add(...)`` call."""
    source = (REPO_ROOT / "scripts" / "generate_experiments_md.py").read_text()
    titles: list[str] = []
    for node in ast.walk(ast.parse(source)):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name) and node.func.id == "add"
                and node.args and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            titles.append(node.args[0].value)
    return titles


def check_experiments_md(problems: list[str]) -> None:
    path = REPO_ROOT / "EXPERIMENTS.md"
    if not path.exists():
        problems.append("EXPERIMENTS.md is missing; run scripts/generate_experiments_md.py")
        return
    headings = set(re.findall(r"^## (.+)$", path.read_text(), flags=re.MULTILINE))
    titles = generator_section_titles()
    if not titles:
        problems.append("could not find any add(...) sections in the generator")
    for title in titles:
        if title not in headings:
            problems.append(
                f"EXPERIMENTS.md lacks generator section {title!r}; "
                "regenerate with scripts/generate_experiments_md.py")


def check_operations_md(problems: list[str]) -> None:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.core.config import CatiConfig

    path = REPO_ROOT / "docs" / "OPERATIONS.md"
    if not path.exists():
        problems.append("docs/OPERATIONS.md is missing")
        return
    text = path.read_text()
    for field in dataclasses.fields(CatiConfig):
        if f"`{field.name}`" not in text:
            problems.append(f"docs/OPERATIONS.md does not document CatiConfig.{field.name}")


DEPLOYMENT_KNOBS = ("serve_workers", "serve_max_batch", "serve_max_delay_ms")
DEPLOYMENT_SECTIONS = ("process model", "capacity planning", "hot-reload",
                       "failure modes", "/healthz")
DEPLOYMENT_LINKERS = ("README.md", "docs/OPERATIONS.md", "docs/ARCHITECTURE.md")


def check_deployment_md(problems: list[str]) -> None:
    path = REPO_ROOT / "docs" / "DEPLOYMENT.md"
    if not path.exists():
        problems.append("docs/DEPLOYMENT.md is missing")
        return
    text = path.read_text()
    lowered = text.lower()
    for knob in DEPLOYMENT_KNOBS:
        if f"`{knob}`" not in text and f"--{knob.removeprefix('serve_').replace('_', '-')}" not in text:
            problems.append(f"docs/DEPLOYMENT.md does not cover serving knob {knob}")
    for topic in DEPLOYMENT_SECTIONS:
        if topic.lower() not in lowered:
            problems.append(f"docs/DEPLOYMENT.md lacks a section on {topic!r}")
    for rel in DEPLOYMENT_LINKERS:
        if "DEPLOYMENT.md" not in (REPO_ROOT / rel).read_text():
            problems.append(f"{rel} does not link to docs/DEPLOYMENT.md")


POSTERIOR_KNOBS = ("posterior_enabled", "posterior_min_accesses")


def check_posterior_docs(problems: list[str]) -> None:
    """The struct-recovery stage must stay in the doc graph."""
    arch = REPO_ROOT / "docs" / "ARCHITECTURE.md"
    if arch.exists() and "repro.posterior" not in arch.read_text():
        problems.append(
            "docs/ARCHITECTURE.md does not describe the repro.posterior "
            "struct-recovery stage")
    ops = REPO_ROOT / "docs" / "OPERATIONS.md"
    if ops.exists():
        text = ops.read_text()
        # CatiConfig coverage already enforces the knobs are *named*;
        # here we require the --structs CLI surface next to them.
        if "--structs" not in text:
            problems.append(
                "docs/OPERATIONS.md does not mention the --structs "
                "CLI/batch surface")


def check_session_docs(problems: list[str]) -> None:
    """The interactive-session subsystem must stay in the doc graph."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.analysis import TOOL_NAMES

    ops = REPO_ROOT / "docs" / "OPERATIONS.md"
    if ops.exists():
        text = ops.read_text()
        if "Interactive sessions" not in text:
            problems.append(
                "docs/OPERATIONS.md lacks an 'Interactive sessions' section")
        for tool in TOOL_NAMES:
            if f"`{tool}`" not in text:
                problems.append(
                    f"docs/OPERATIONS.md does not document session tool {tool}")
        if "repro repl" not in text:
            problems.append(
                "docs/OPERATIONS.md does not mention the `repro repl` client")
        if "--repl" not in text:
            problems.append(
                "docs/OPERATIONS.md does not mention scripts/check.sh --repl")
    arch = REPO_ROOT / "docs" / "ARCHITECTURE.md"
    if arch.exists() and "repro.analysis" not in arch.read_text():
        problems.append(
            "docs/ARCHITECTURE.md does not describe the repro.analysis "
            "session subsystem")
    readme = REPO_ROOT / "README.md"
    if readme.exists() and "repro repl" not in readme.read_text():
        problems.append("README.md lacks the repl quickstart")


def main() -> int:
    problems: list[str] = []
    check_experiments_md(problems)
    check_operations_md(problems)
    check_deployment_md(problems)
    check_posterior_docs(problems)
    check_session_docs(problems)
    if problems:
        for problem in problems:
            print(f"DOCS DRIFT: {problem}", file=sys.stderr)
        return 1
    print("docs checks OK (EXPERIMENTS.md sections + CatiConfig coverage"
          " + DEPLOYMENT.md graph)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
