#!/usr/bin/env python
"""End-to-end smoke for interactive sessions (``scripts/check.sh --repl``).

Trains a throwaway mini model, launches ``python -m repro serve
--workers 2`` (the pre-fork router, so session stickiness is on the
path), then drives the *real* ``python -m repro repl`` CLI in ``--exec``
mode the way a user would:

1. ``open demo`` + the full tool walk — functions, ``type_variable``,
   ``explain``, ``annotate_disassembly``, ``struct_layouts`` — checking
   every rendered line against the offline in-process pipeline on the
   same binary (shared renderers make this byte equality);
2. TTL expiry — the daemon runs ``--session-ttl-s 2``; a scripted
   ``sleep 3`` between calls must surface the ``session gone`` notice
   and the REPL's automatic re-open must finish the script with rc 0;
3. an interactive-latency sample over ``ServeClient`` session bindings,
   recorded into ``BENCH_speed.json`` under ``serve.interactive``;
4. SIGTERM — the router drains to rc 0.

Exit status is the smoke's verdict, so CI can run it directly.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.render import (annotation_variable_ids,  # noqa: E402
                                   render_epsilons, render_listing)
from repro.codegen.compilers import GccCompiler  # noqa: E402
from repro.codegen.strip import strip  # noqa: E402
from repro.core.config import CatiConfig  # noqa: E402
from repro.core.pipeline import Cati  # noqa: E402
from repro.datasets.corpus import build_small_corpus  # noqa: E402
from repro.embedding.word2vec import Word2VecConfig  # noqa: E402
from repro.experiments.speed import extents_from_debug  # noqa: E402
from repro.serve import protocol  # noqa: E402
from repro.serve.client import ServeClient  # noqa: E402
from repro.vuc.dataset import extract_unlabeled_vucs  # noqa: E402

ARTIFACT = os.path.join(os.path.dirname(__file__), "..", "BENCH_speed.json")
DEMO_SEED, DEMO_OPT = 77, 1


def fail(message: str) -> None:
    print(f"smoke_repl: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def run_repl(port: int, commands: str) -> str:
    """One scripted ``python -m repro repl --exec`` run; must exit 0."""
    print(f"smoke_repl: repl --exec {commands!r}", flush=True)
    result = subprocess.run(
        [sys.executable, "-m", "repro", "repl", "--port", str(port),
         "--exec", commands],
        capture_output=True, text=True, timeout=600,
        env={**os.environ,
             "PYTHONPATH": os.path.join(os.path.dirname(__file__),
                                        "..", "src")})
    if result.returncode != 0:
        print(result.stdout, file=sys.stderr)
        print(result.stderr, file=sys.stderr)
        fail(f"repl exited {result.returncode} for {commands!r}")
    return result.stdout


def offline_expectations(cati: Cati):
    """What the served tools must print, computed fully in process."""
    binary = GccCompiler().compile_fresh(seed=DEMO_SEED, name="serve-demo",
                                         opt_level=DEMO_OPT)
    stripped, extents = strip(binary), extents_from_debug(binary)
    result = cati.infer_binary(stripped, extents, structs=True)
    types = {p.variable_id: str(p.predicted) for p in result}

    ids = annotation_variable_ids(stripped.functions[0], extents[0],
                                  f"{stripped.name}/0")
    annotation = {i: types[vid] for i, vid in ids.items() if vid in types}
    annotate_lines = render_listing(stripped.functions[0], annotation)

    pairs = extract_unlabeled_vucs(stripped, extents, cati.config.window)
    probe = sorted({vid for vid, _tokens in pairs})[0]
    window = next(tokens for vid, tokens in pairs if vid == probe)
    batched = cati.engine.occlusion_epsilons_many([window])
    explain_lines = render_epsilons(window, batched.epsilons[0])

    layouts = {
        "binary": stripped.name,
        "n_layouts": len(result.layouts),
        "layouts": [protocol.layout_to_dict(layout)
                    for layout in result.layouts],
    }
    return stripped, extents, types, probe, annotate_lines, explain_lines, layouts


def measure_interactive(port: int, stripped, extents) -> None:
    """p50/p99 of single-variable questions → BENCH_speed.json."""
    client = ServeClient("127.0.0.1", port, timeout=120)
    handle = client.session(binary=stripped, extents=extents)
    variables = handle.variables
    handle.type_variable(variables[0])  # warm
    latencies = []
    for index in range(30):
        t0 = time.perf_counter()
        handle.type_variable(variables[index % len(variables)])
        latencies.append(time.perf_counter() - t0)
    handle.close()
    latencies.sort()
    block = {
        "n_calls": len(latencies),
        "n_variables": len(variables),
        "p50_s": latencies[len(latencies) // 2],
        "p99_s": latencies[-1],
        "mean_s": sum(latencies) / len(latencies),
    }
    report = {}
    if os.path.exists(ARTIFACT):
        with open(ARTIFACT) as handle_file:
            report = json.load(handle_file)
    report.setdefault("serve", {})["interactive"] = block
    with open(ARTIFACT, "w") as handle_file:
        json.dump(report, handle_file, indent=2)
        handle_file.write("\n")
    print(f"smoke_repl: interactive p50 {block['p50_s'] * 1e3:.1f} ms, "
          f"p99 {block['p99_s'] * 1e3:.1f} ms over {block['n_calls']} calls "
          f"-> BENCH_speed.json serve.interactive", flush=True)


def main() -> None:
    print("smoke_repl: training mini model ...", flush=True)
    corpus = build_small_corpus()
    config = CatiConfig(
        epochs=5, fc_width=64,
        word2vec=Word2VecConfig(dim=32, window=5, epochs=1,
                                subsample_pairs=0.4))
    cati = Cati(config).train(corpus.train)

    print("smoke_repl: computing offline expectations ...", flush=True)
    (stripped, extents, types, probe, annotate_lines, explain_lines,
     layouts) = offline_expectations(cati)

    with tempfile.TemporaryDirectory(prefix="smoke-repl-") as scratch:
        bundle_dir = os.path.join(scratch, "bundle")
        cati.save(bundle_dir)

        print("smoke_repl: starting router (--workers 2, "
              "--session-ttl-s 2) ...", flush=True)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--model-dir", bundle_dir, "--port", "0", "--workers", "2",
             "--session-ttl-s", "2"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env={**os.environ,
                 "PYTHONPATH": os.path.join(os.path.dirname(__file__),
                                            "..", "src")})
        try:
            port = None
            deadline = time.monotonic() + 300
            while time.monotonic() < deadline:
                line = process.stdout.readline()
                if not line:
                    fail(f"daemon exited before binding (rc={process.poll()})")
                print(f"  [daemon] {line.rstrip()}", flush=True)
                if line.startswith("serving on http://"):
                    port = int(line.rsplit(":", 1)[1])
                    break
            if port is None:
                fail("daemon never printed its address")

            open_cmd = f"open demo {DEMO_SEED} {DEMO_OPT}"

            # 1. The full tool walk, checked line-for-line vs offline.
            walk = run_repl(port, f"{open_cmd}; functions; vars; "
                                  f"type {probe}; explain {probe} 0; "
                                  f"annotate 0; layouts; close")
            if f"%0  {probe}" not in walk:
                fail(f"vars did not list {probe!r} first")
            type_line = f"{probe}: {types[probe]}"
            if type_line not in walk:
                fail(f"type output missing {type_line!r}")
            for line in explain_lines:
                if line not in walk:
                    fail(f"explain output missing line {line!r}")
            for line in annotate_lines:
                if line not in walk:
                    fail(f"annotate output missing line {line!r}")
            expected_layouts = json.dumps(layouts, indent=2, sort_keys=True)
            if expected_layouts not in walk:
                fail("layouts output diverges from the offline posterior")
            print(f"smoke_repl: tool walk matches offline "
                  f"({len(annotate_lines)} annotate lines, "
                  f"{len(explain_lines)} explain lines, "
                  f"{layouts['n_layouts']} layouts)", flush=True)

            # 2. TTL expiry mid-script: the REPL must notice the 410,
            # re-open, and still finish with rc 0.
            expiry = run_repl(port, f"{open_cmd}; sleep 3; functions; close")
            if "session gone" not in expiry:
                fail("TTL expiry never surfaced a 'session gone' notice")
            if "sub_" not in expiry:
                fail("post-expiry functions listing is missing")
            print("smoke_repl: TTL expiry -> 410 -> automatic re-open ok",
                  flush=True)

            # 3. Interactive latency sample through the client bindings.
            measure_interactive(port, stripped, extents)

            # 4. Drain.
            process.send_signal(signal.SIGTERM)
            try:
                rc = process.wait(timeout=120)
            except subprocess.TimeoutExpired:
                fail("router did not drain within 120s of SIGTERM")
            for line in process.stdout:
                print(f"  [daemon] {line.rstrip()}", flush=True)
            if rc != 0:
                fail(f"router exited {rc} after SIGTERM")
            print("smoke_repl: SIGTERM drain ok", flush=True)
        finally:
            if process.poll() is None:
                process.kill()

    print("smoke_repl: PASS", flush=True)


if __name__ == "__main__":
    main()
