#!/usr/bin/env python
"""End-to-end smoke for batch jobs (``scripts/check.sh --batch``).

Walks the crash-recovery story the way an unlucky operator would:

1. train a throwaway mini model and save it as a bundle;
2. ``python -m repro batch run`` over a tiny demo corpus with a
   scripted SIGKILL mid-job (``REPRO_BATCH_FAULT``) — the process dies;
3. ``batch status`` — the job is incomplete, checkpoints partial;
4. ``batch resume`` — the job completes;
5. verify the merged results are bit-identical to an uninterrupted
   reference run of the same corpus, and that the injected kill is
   enumerated in the merged failure report.

Exit status is the smoke's verdict, so CI can run it directly.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.config import CatiConfig  # noqa: E402
from repro.core.pipeline import Cati  # noqa: E402
from repro.datasets.corpus import build_small_corpus  # noqa: E402
from repro.embedding.word2vec import Word2VecConfig  # noqa: E402


def fail(message: str) -> None:
    print(f"smoke_batch: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def batch(args, *, fault=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
    env.pop("REPRO_BATCH_FAULT", None)
    if fault:
        env["REPRO_BATCH_FAULT"] = fault
    return subprocess.run([sys.executable, "-m", "repro", "batch", *args],
                          env=env, capture_output=True, text=True,
                          timeout=600)


def main() -> None:
    print("smoke_batch: training mini model ...", flush=True)
    corpus = build_small_corpus()
    config = CatiConfig(
        epochs=5, fc_width=64,
        word2vec=Word2VecConfig(dim=32, window=5, epochs=1,
                                subsample_pairs=0.4))
    cati = Cati(config).train(corpus.train)

    with tempfile.TemporaryDirectory(prefix="smoke-batch-") as scratch:
        model_dir = os.path.join(scratch, "model")
        cati.save(model_dir)
        job_dir = os.path.join(scratch, "job")
        ref_dir = os.path.join(scratch, "ref")
        cache_dir = os.path.join(scratch, "cache")
        base = ["--model-dir", model_dir, "--demo-corpus", "4",
                "--shard-size", "2", "--max-retries", "2",
                "--cache-dir", cache_dir]

        print("smoke_batch: uninterrupted reference run ...", flush=True)
        ref = batch(["run", "--job-dir", ref_dir, *base])
        if ref.returncode != 0:
            fail(f"reference run exited {ref.returncode}: {ref.stderr}")

        print("smoke_batch: run with SIGKILL at shard 1 ...", flush=True)
        killed = batch(["run", "--job-dir", job_dir, *base],
                       fault="kill:shard=1:point=pre-commit")
        if killed.returncode != -signal.SIGKILL:
            fail(f"expected the injected SIGKILL, got exit "
                 f"{killed.returncode}: {killed.stderr}")

        status = batch(["status", "--job-dir", job_dir, "--json"])
        if status.returncode != 0:
            fail(f"status exited {status.returncode}: {status.stderr}")
        snapshot = json.loads(status.stdout)
        if snapshot["complete"]:
            fail("job reports complete right after being SIGKILL'd")
        if snapshot["shards"]["committed"] != 1:
            fail(f"expected 1 committed shard after the kill, got "
                 f"{snapshot['shards']}")

        print("smoke_batch: resume ...", flush=True)
        resumed = batch(["resume", "--job-dir", job_dir])
        if resumed.returncode != 0:
            fail(f"resume exited {resumed.returncode}: {resumed.stderr}")

        results = json.loads(
            open(os.path.join(job_dir, "results.json")).read())
        reference = json.loads(
            open(os.path.join(ref_dir, "results.json")).read())
        if results["predictions"] != reference["predictions"]:
            fail("resumed predictions differ from the uninterrupted run")
        if not results["predictions"]:
            fail("no predictions produced")
        interrupted = [r for r in results["failures"]["records"]
                       if "died without committing" in r["message"]]
        if len(interrupted) != 1:
            fail(f"expected the kill to be enumerated once in the merged "
                 f"failure report, found {len(interrupted)}")
        if results["shards"]["quarantined"]:
            fail(f"unexpected quarantine: {results['shards']}")

        final = batch(["status", "--job-dir", job_dir, "--json"])
        if not json.loads(final.stdout)["complete"]:
            fail("job not complete after resume")

    print("smoke_batch: OK (kill -> resume -> bit-identical results, "
          "interruption enumerated)")


if __name__ == "__main__":
    main()
