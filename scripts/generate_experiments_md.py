#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md from live experiment results.

Runs every table/figure reproduction against the cached trained contexts
and writes the paper-vs-measured record.  Usage:

    python scripts/generate_experiments_md.py [--skip-clang] [--skip-ablations]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--skip-clang", action="store_true")
    parser.add_argument("--skip-ablations", action="store_true")
    parser.add_argument("--output", default=str(REPO_ROOT / "EXPERIMENTS.md"))
    args = parser.parse_args()

    from repro.experiments import (
        compiler_id,
        debin_compare,
        fig6,
        speed,
        table1,
        table3,
        table4,
        table5,
        table6,
        table7,
    )
    from repro.experiments.ablations import run_opt_level_breakdown, run_threshold_ablation
    from repro.experiments.common import get_context, predictions_for

    sections: list[str] = []

    def add(title: str, paper_ref: str, body: str) -> None:
        sections.append(f"## {title}\n\n**Paper reference.** {paper_ref}\n\n```\n{body}\n```\n")
        print(f"[done] {title}")

    print("loading gcc context (trains on first run)...")
    gcc = get_context("gcc")

    result1 = table1.run(gcc.corpus)
    add(
        "Table I — orphan variables and uncertain samples",
        "3.95M/167k variables train/test; orphans (1-2 VUCs) ≈ 35% of variables; "
        "uncertain samples > 97% of orphans.",
        result1.render(),
    )

    result3 = table3.run(gcc)
    add(
        "Table III — VUC-level P/R/F1 per application and stage",
        "Stage 1 F1 0.86-0.93; Stage 2-1 weakest (0.68-0.89); Stage 3-2 degenerate "
        "where apps lack float-family variables (gzip/nano/sed rows are '-').",
        result3.render(),
    )

    result4 = table4.run(gcc)
    add(
        "Table IV — variable-level P/R/F1 after voting",
        "Voting improves Stage 1/2-2/3-1/3-3 over Table III; Stage 2-1 may drop "
        "(diverse pointer behaviour confuses the vote).",
        result4.render(),
    )

    result5 = table5.run(gcc)
    add(
        "Table V — per-type stage recalls, accuracy, clustering",
        "Overall same-type clustering > 53%; int ACC 0.93, double 0.91, struct* 0.88; "
        "rare types (short int 0.13, long long 0.00) fail; c-rates 15-70%.",
        result5.render(),
    )

    result6 = table6.run(gcc)
    add(
        "Table VI — headline accuracy (VUC vs variable granularity)",
        "Weighted totals 0.68 (VUC) and 0.71 (variable); voting gain ≈ +0.03; "
        "best app sed 0.78, worst wget 0.66.",
        result6.render() + f"\nvoting gain: {result6.voting_gain:+.3f}",
    )

    result_debin = debin_compare.run(gcc)
    add(
        "§VII-B — comparison with DEBIN",
        "CATI 0.84 vs DEBIN 0.73 on the 17-type task (11-point gap from context + "
        "voting). DEVIATION: this gap does not reproduce here. Our stand-in is "
        "deliberately strong — a discriminative n-gram bag over the variable's "
        "complete trace, strictly richer than real DEBIN's CRF unary feature "
        "templates — and at 30k-training-VUC scale (vs the paper's 22.4M) the "
        "full-batch linear model slightly outperforms the CNN. The like-for-like "
        "mechanism test (same CNN, window 10 vs window 0) in the ablation section "
        "shows the paper's actual claim — context adds real information — holds.",
        result_debin.render(),
    )

    result_fig6 = fig6.run(gcc, n_distribution_vucs=120)
    add(
        "Fig. 6 — occlusion importance (eq. 5)",
        "Central/target instruction has the smallest ε (35.46% of central rows in the "
        "(0.9,1) bucket vs ~7-9% for neighbours); importance decays with distance.",
        result_fig6.render(),
    )

    result_speed = speed.run(gcc)
    add(
        "§VII — training and inference speed",
        "~6 s per typical binary (extraction + prediction) on i7-6700K + GTX 1070; "
        "2 h CNN training + 3 h Word2Vec at 22M-VUC scale.",
        result_speed.render(),
    )

    if not args.skip_clang:
        clang = get_context("clang")
        result7 = table7.run(clang)
        add(
            "Table VII / §VIII — Clang transferability",
            "Per-stage F1 0.86-0.99 after retraining on Clang-built binaries; total "
            "variable accuracy 82.14%.",
            result7.render(),
        )
        result_cid = compiler_id.run(gcc, clang)
        add(
            "§VIII — compiler identification",
            "100% accuracy GCC-vs-Clang from register-usage differences.",
            result_cid.render(),
        )

    if not args.skip_ablations:
        from repro.datasets.corpus import build_corpus
        from repro.datasets.projects import TEST_PROJECTS, TRAINING_PROJECTS
        from repro.experiments.ablations import run_window_ablation

        def mid_corpus(window: int):
            corpus = build_corpus(
                opt_levels=(0, 2),
                train_profiles=TRAINING_PROJECTS[:4],
                test_profiles=TEST_PROJECTS[:4],
                window=window,
            )
            corpus.train = corpus.train.subsample(9_000, seed=3)
            return corpus

        # Two endpoints keep the generator fast; the bench sweeps 4 sizes.
        result_window = run_window_ablation(mid_corpus, windows=(0, 10), epochs=8)
        add(
            "Ablation — context window size",
            "The paper's central design: w=10 instructions of context on each side; "
            "w=0 reduces CATI to the bare target instruction. FINDING: the paper "
            "never runs a target-instruction-only classifier (its baselines are "
            "trace-based graphical models), and at our corpus scale that baseline "
            "is competitive with the windowed CNN — the generalized target "
            "instruction already encodes width/FP-class/addressing shape. The "
            "occlusion analysis (Fig. 6) confirms the windowed model does exploit "
            "context; its *marginal* value at 30k training VUCs is small. "
            "Establishing the paper's implied margin likely needs its 22.4M-VUC "
            "scale, where a 21x96 CNN can be trained to capacity.",
            result_window.render(),
        )

        cache = predictions_for(gcc)
        result_thresh = run_threshold_ablation(cache)
        add(
            "Ablation — voting threshold (eq. 3)",
            "The paper chose 0.9 'after several empirical experiments'; the sweep shows "
            "the mechanism is a refinement, not the main driver.",
            result_thresh.render(),
        )
        result_opt = run_opt_level_breakdown(gcc)
        add(
            "Extension — accuracy by optimization level (§VIII future work)",
            "The paper defers compiler-option sensitivity to future work; we report it: "
            "optimized code carries more type-blind word copies and is harder.",
            result_opt.render(),
        )

        from repro.experiments import structs

        result_structs = structs.run()
        add(
            "Extension — struct-layout recovery (posterior stage)",
            "Not in the paper: a cross-function posterior stage over the "
            "per-variable predictions recovers struct field layouts by pooling "
            "per-access leaf posteriors by field offset (repro.posterior). "
            "Scored against DW_AT_data_member_location ground truth; the "
            "pooled posterior must beat a flat per-slot baseline on field F1 "
            "(gated by benchmarks/bench_structs.py).",
            result_structs.render(),
        )

    header = f"""# EXPERIMENTS — paper vs measured

Every table and figure of the paper's evaluation, regenerated by this
repository's benchmark harness (`pytest benchmarks/ --benchmark-only`),
recorded here with the paper's reference values.

**Scale note.** The paper trains on 22.4M VUCs from 2141 real binaries
with a GPU; this reproduction trains on {len(gcc.corpus.train):,} VUCs from
{len(gcc.corpus.train_binaries)} synthetic binaries on one CPU core
(substitutions documented in DESIGN.md §2). Absolute numbers therefore
differ; what reproduces is the *shape*: which stages are easy/hard, what
voting buys, who beats whom, where the failure cases are.

Regenerate this file with `python scripts/generate_experiments_md.py`.

"""
    Path(args.output).write_text(header + "\n".join(sections))
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
