"""Table I — orphan variables and uncertain samples.

Paper reference (22.4M-VUC corpus): orphan variables (1-2 VUCs) are
~35% of all variables; uncertain samples are >97% of orphans.
"""

from repro.experiments import table1


def test_table1_orphans_and_uncertain_samples(benchmark, gcc_context):
    result = benchmark.pedantic(
        table1.run, args=(gcc_context.corpus,), rounds=1, iterations=1,
    )
    print()
    print(result.render())

    # Shape assertions vs the paper.
    for stats in (result.train, result.test):
        assert 0.15 < stats.orphan_fraction < 0.55          # paper: ~35%
        assert stats.uncertain_fraction_of_orphans > 0.75   # paper: >97%
        assert stats.n_vucs > stats.n_variables             # multiple VUCs/var
    # Fig. 1: genuinely colliding same-instruction/different-type pairs exist.
    assert len(result.examples) >= 1
