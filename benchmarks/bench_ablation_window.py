"""Ablation — context window size (the paper's central design choice).

w=0 strips CATI down to the bare target instruction; w=10 is the paper's
setting.  Runs on a reduced corpus (training 4 models is the expensive
part).

**Reproduction finding (see EXPERIMENTS.md).** The paper never compares
against a target-instruction-only classifier — its baselines are
trace-based graphical models.  On our corpus at laptop scale, the w=0
model is *competitive with* w=10: the generalized target instruction
(width suffix, SSE/x87 class, addressing shape) already carries most of
the learnable signal, and the 21x96 CNN needs far more than ~30k VUCs to
extract the context's marginal value.  That the w=10 model genuinely
*uses* context when it has it is shown by the occlusion analysis
(bench_fig6: blanking context instructions lowers confidence) and by the
integration test that blanks the context at inference time.  This bench
therefore asserts stability across window sizes, not a context win.
"""

from repro.datasets.corpus import build_corpus
from repro.datasets.projects import TEST_PROJECTS, TRAINING_PROJECTS
from repro.experiments.ablations import run_window_ablation


def _mid_corpus(window: int):
    corpus = build_corpus(
        opt_levels=(0, 2),
        train_profiles=TRAINING_PROJECTS[:4],
        test_profiles=TEST_PROJECTS[:4],
        window=window,
    )
    corpus.train = corpus.train.subsample(9_000, seed=3)
    return corpus


def test_window_size_ablation(benchmark):
    result = benchmark.pedantic(
        run_window_ablation,
        args=(_mid_corpus,),
        kwargs={"windows": (0, 2, 5, 10), "epochs": 8},
        rounds=1, iterations=1,
    )
    print()
    print(result.render())

    accuracy_by_window = {w: var_acc for w, _vuc, var_acc in result.rows}
    # Every window size learns far above chance (1/19).
    for window, accuracy in accuracy_by_window.items():
        assert accuracy > 0.4, f"w={window}: {accuracy:.3f}"
    # The window choice is not catastrophic in either direction at this
    # corpus scale: all sizes land in one band.
    spread = max(accuracy_by_window.values()) - min(accuracy_by_window.values())
    assert spread < 0.12, f"window sizes diverge by {spread:.3f}"
