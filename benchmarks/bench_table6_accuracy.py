"""Table VI — the headline result: per-application accuracy at VUC and
variable granularity.

Paper reference: weighted totals 0.68 (VUC) / 0.71 (variable); voting
adds ~3 points; per-app variable accuracy spans 0.66 (wget) to 0.78
(sed).
"""

from repro.experiments import table6


def test_table6_headline_accuracy(benchmark, gcc_context, gcc_predictions):
    result = benchmark.pedantic(table6.run, args=(gcc_context,), rounds=1, iterations=1)
    print()
    print(result.render())
    print(f"\nvoting gain: {result.voting_gain:+.3f} (paper: +0.03)")
    print("paper totals: VUC 0.68, variable 0.71")

    assert len(result.rows) == 12
    # Headline shape: both totals in the paper's neighbourhood.
    assert 0.55 < result.total_vuc_accuracy < 0.85
    assert 0.55 < result.total_variable_accuracy < 0.90
    # Voting helps (or at worst is neutral at this corpus scale).
    assert result.voting_gain > -0.02
    # Every application clears the paper's worst case minus slack.
    for row in result.rows:
        assert row.variable_accuracy > 0.5, f"{row.app}: {row.variable_accuracy:.2f}"
