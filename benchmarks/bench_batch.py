"""Batch throughput + durable window-cache trajectory -> BENCH_batch.json.

Measures the batch subsystem end to end on a mini model:

1. **cold** — a fresh job over corpus A with an empty durable window
   cache: every unique window is computed by the cascade and appended;
2. **warm** — a second job over corpus B, which *overlaps* corpus A in
   content (a simulated recompile: most binaries unchanged, some new).
   The overlap must come back as durable-cache hits — the acceptance
   criterion is a nonzero cross-run hit rate;
3. **corrupt** — one cache segment gets a flipped byte, then corpus B
   runs again: the damaged record must be detected (CRC), counted, and
   recomputed transparently — the job must still exit complete.

Each phase records binaries/s and the cache counters; the whole
trajectory lands in ``BENCH_batch.json`` at the repo root.

Run directly: ``PYTHONPATH=src python benchmarks/bench_batch.py``
(``--smoke`` shrinks the corpora; the correctness gates still apply).
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path

from repro.batch import JobSpec, demo_corpus, run_job
from repro.core.config import CatiConfig
from repro.core.pipeline import Cati
from repro.datasets.corpus import build_small_corpus
from repro.embedding.word2vec import Word2VecConfig

_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_batch.json"


def _gate(condition: bool, message: str) -> None:
    if not condition:
        print(f"bench_batch: FAIL: {message}", file=sys.stderr)
        sys.exit(1)


def _phase(name: str, job_dir: Path, spec: JobSpec, *, model_dir: str,
           cache_dir: Path) -> dict:
    began = time.perf_counter()
    results = run_job(job_dir, spec, model_dir=model_dir,
                      cache_dir=cache_dir)
    elapsed = time.perf_counter() - began
    cache = results.get("window_cache", {})
    served = cache.get("hits", 0) + cache.get("misses", 0)
    record = {
        "binaries": results["items"],
        "predictions": results["n_predictions"],
        "elapsed_s": round(elapsed, 3),
        "binaries_per_s": round(results["items"] / max(elapsed, 1e-9), 3),
        "cache": {
            "hits": cache.get("hits", 0),
            "misses": cache.get("misses", 0),
            "hit_rate": round(cache.get("hits", 0) / served, 4) if served else 0.0,
            "appends": cache.get("appends", 0),
            "corrupt_records": cache.get("corrupt_records", 0),
        },
        "quarantined": results["shards"]["quarantined"],
    }
    print(f"bench_batch: {name}: {record['binaries_per_s']} binaries/s, "
          f"cache hit rate {record['cache']['hit_rate']:.0%} "
          f"({cache.get('hits', 0)} hits / {cache.get('misses', 0)} misses, "
          f"{cache.get('corrupt_records', 0)} corrupt)", flush=True)
    return record


def main() -> None:
    smoke = "--smoke" in sys.argv
    n_a, n_b, overlap = (3, 3, 2) if smoke else (6, 6, 4)

    print("bench_batch: training mini model ...", flush=True)
    corpus = build_small_corpus()
    config = CatiConfig(
        epochs=5, fc_width=64,
        word2vec=Word2VecConfig(dim=32, window=5, epochs=1,
                                subsample_pairs=0.4))
    cati = Cati(config).train(corpus.train)

    with tempfile.TemporaryDirectory(prefix="bench-batch-") as scratch:
        scratch_path = Path(scratch)
        model_dir = str(scratch_path / "model")
        cati.save(model_dir)
        cache_dir = scratch_path / "cache"

        # Corpus B re-uses `overlap` of corpus A's seeds and adds fresh
        # ones — the shape of a recompile where most content is stable.
        corpus_a = demo_corpus(n_a, base_seed=500)
        corpus_b = demo_corpus(n_b, base_seed=500 + (n_a - overlap))
        spec_a = JobSpec(items=corpus_a, shard_size=2)
        spec_b = JobSpec(items=corpus_b, shard_size=2)

        cold = _phase("cold", scratch_path / "job-cold", spec_a,
                      model_dir=model_dir, cache_dir=cache_dir)
        warm = _phase("warm (recompile overlap)", scratch_path / "job-warm",
                      spec_b, model_dir=model_dir, cache_dir=cache_dir)

        # Flip one payload byte in a cache segment, then run corpus B
        # again: the damage must be a counted recompute, never a failure.
        model_key_dirs = [p for p in cache_dir.iterdir() if p.is_dir()]
        _gate(len(model_key_dirs) == 1, "expected one model-key namespace")
        segment = next(model_key_dirs[0].glob("seg-*.bin"))
        blob = bytearray(segment.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        segment.write_bytes(blob)
        corrupt = _phase("corrupt segment", scratch_path / "job-corrupt",
                         spec_b, model_dir=model_dir, cache_dir=cache_dir)

    _gate(cold["cache"]["hits"] == 0, "cold run should start from an empty cache")
    _gate(cold["cache"]["appends"] > 0, "cold run appended nothing")
    _gate(warm["cache"]["hit_rate"] > 0,
          "warm run over an overlapping corpus must hit the durable cache")
    _gate(corrupt["cache"]["corrupt_records"] >= 1,
          "the flipped byte was never detected")
    _gate(not corrupt["quarantined"],
          "cache corruption must be recomputed, not fail the job")
    _gate(corrupt["predictions"] == warm["predictions"],
          "corruption recompute changed the prediction count")

    body = {
        "bench": "batch",
        "smoke": smoke,
        "corpora": {"a": n_a, "b": n_b, "overlap": overlap},
        "trajectory": {"cold": cold, "warm": warm, "corrupt": corrupt},
    }
    _ARTIFACT.write_text(json.dumps(body, indent=2, sort_keys=True) + "\n")
    print(f"bench_batch: OK -> {_ARTIFACT}")


if __name__ == "__main__":
    main()
