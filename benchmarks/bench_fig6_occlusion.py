"""Fig. 6 — occlusion importance (eq. 5).

Paper reference: the central (target) instruction has the smallest ε on
average (Fig. 6b's bottom-heavy middle row: 35.46% of central
instructions have ε in (0.9, 1) vs ~7-9% for neighbours); importance
decays with distance from the target.
"""

import numpy as np

from repro.experiments import fig6


def test_fig6_occlusion_importance(benchmark, gcc_context, gcc_predictions):
    result = benchmark.pedantic(
        fig6.run, args=(gcc_context,), kwargs={"n_distribution_vucs": 120},
        rounds=1, iterations=1,
    )
    print()
    print(result.render())

    heatmap = result.heatmap
    center = heatmap.shape[0] // 2
    # The central row must carry the most occlusion-sensitivity mass:
    # P(eps in (0, 1)) is highest at the target position.
    col0 = heatmap[:, 0]
    assert col0[center] == col0.max(), (
        f"center row {col0[center]:.2%} vs max {col0.max():.2%}"
    )
    # Decay: the outermost positions matter less than the inner ring.
    inner = (col0[center - 1] + col0[center + 1]) / 2
    outer = (col0[0] + col0[-1]) / 2
    assert inner >= outer
    # Per-row monotonicity in the threshold axis (probability algebra).
    for row in heatmap:
        assert all(a >= b - 1e-12 for a, b in zip(row, row[1:]))
