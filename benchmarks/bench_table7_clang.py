"""Table VII / §VIII — Clang transferability.

Paper reference: retraining on Clang-built binaries gives strong
per-stage results (Stage 1 F1 0.95, Stage 2-1 0.86, Stage 2-2 0.94,
Stage 3-1 0.88, Stage 3-2 0.99, Stage 3-3 0.86) and 82.14% total
variable accuracy — the prototype's design transfers across compilers.
"""

from repro.experiments import table7


def test_table7_clang_transfer(benchmark, clang_context):
    result = benchmark.pedantic(table7.run, args=(clang_context,), rounds=1, iterations=1)
    print()
    print(result.render())

    # The design transfers: Clang accuracy in the same band as GCC's.
    assert result.total_accuracy > 0.55
    # Same per-stage ordering as the main experiment.
    f1 = {stage: values[2] for stage, values in result.stage_metrics.items()}
    assert f1["Stage1"] > 0.75
    assert f1["Stage1"] > f1["Stage2-1"]
