"""§VII — training/inference speed: extraction + prediction per binary.

Paper reference: ~6 s per typical binary (including IDA Pro extraction)
on an i7-6700K + GTX 1070.  Our numbers measure the same two stages
(VUC extraction and classify+vote) of the reimplementation on one CPU
core; the assertion is that the pipeline stays in interactive territory,
not that the absolute number matches foreign hardware.
"""

from repro.experiments import speed


def test_per_binary_speed(benchmark, gcc_context):
    result = benchmark.pedantic(
        speed.run, args=(gcc_context,), kwargs={"n_binaries": 8},
        rounds=1, iterations=1,
    )
    print()
    print(result.render())

    assert result.n_variables > 0
    # Interactive budget: well under a minute per (synthetic) binary;
    # the paper's 6 s/binary is the same order of magnitude.
    assert result.per_binary_total_s < 30.0
    assert result.per_binary_extract_s > 0.0
    assert result.per_binary_predict_s > 0.0
