"""§VII — training/inference speed: extraction + prediction per binary.

Paper reference: ~6 s per typical binary (including IDA Pro extraction)
on an i7-6700K + GTX 1070.  Our numbers measure the same two stages
(VUC extraction and classify+vote) of the reimplementation on one CPU
core; the assertion is that the pipeline stays in interactive territory,
not that the absolute number matches foreign hardware.

``test_engine_speedup`` additionally races the batched dedup engine
against the pre-PR implementation (per-window encoding into the float64
classifier — the acceptance baseline) and the current naive reference
on the classify+vote and occlusion hot paths, records throughput
(VUCs/s) for encode/classify/occlusion, and writes the measurements to
``BENCH_speed.json`` at the repo root — including the run's
observability counters and the measured overhead of instrumentation
(metrics enabled vs disabled on the engine hot path), which the
acceptance criteria cap at 5%.

``test_bundle_io`` adds the artifact-I/O trajectory: ModelBundle
save / checksum verify / load (cold and warm-started) on the full
trained model, merged into the same ``BENCH_speed.json`` under
``"artifacts"``.

``test_serve_throughput`` races the serving daemon (8 concurrent HTTP
clients through the micro-batching scheduler) against the raw engine
run over the same request-sized chunks, and records served VUC/s,
client-side p50/p99 latency and scheduler queue/batch statistics under
``"serve"``.
"""

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from repro.experiments import speed

_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_speed.json"


def _best_of(fn, repeats: int = 3) -> float:
    """Minimum wall-clock of ``fn()`` over ``repeats`` runs, in seconds."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_per_binary_speed(benchmark, gcc_context):
    result = benchmark.pedantic(
        speed.run, args=(gcc_context,), kwargs={"n_binaries": 8},
        rounds=1, iterations=1,
    )
    print()
    print(result.render())

    assert result.n_variables > 0
    # Interactive budget: well under a minute per (synthetic) binary;
    # the paper's 6 s/binary is the same order of magnitude.
    assert result.per_binary_total_s < 30.0
    assert result.per_binary_extract_s > 0.0
    assert result.per_binary_predict_s > 0.0


def _pre_pr_predict(cati, windows, variable_ids):
    """The seed implementation of classify+vote, reproduced faithfully:
    per-window Python encoding (the old ``encode_batch`` was a
    ``np.stack`` over ``encode_window`` calls) into the float64 stage
    CNNs, then the shared voting helper."""
    from repro.core.pipeline import predictions_from_probs

    x = np.stack([cati.encoder.encode_window(w) for w in windows])
    probs = cati.classifier.leaf_proba(x)
    return predictions_from_probs(probs, variable_ids, cati.config.confidence_threshold)


def test_engine_speedup(gcc_context):
    """Engine vs naive on the hot paths; writes BENCH_speed.json."""
    from repro.core.occlusion import occlusion_epsilons, occlusion_epsilons_many

    cati = gcc_context.cati
    samples = list(gcc_context.corpus.test)[:2000]
    windows = [sample.tokens for sample in samples]
    variable_ids = [f"var{i // 4}" for i in range(len(windows))]
    engine = cati.engine
    length = cati.config.vuc_length

    # -- encode throughput ------------------------------------------------------
    cati.encode(windows)  # warm up (allocators, BLAS threads)
    encode_s = _best_of(lambda: cati.encode(windows))

    # -- classify + vote: pre-PR implementation vs reference vs engine ---------
    _pre_pr_predict(cati, windows[:50], variable_ids[:50])  # warm up
    pre_pr_s = _best_of(lambda: _pre_pr_predict(cati, windows, variable_ids), repeats=2)
    cati.predict_variables(windows, variable_ids)  # warm up
    naive_s = _best_of(lambda: cati.predict_variables(windows, variable_ids))

    def engine_cold():
        engine.clear_cache()
        engine.predict_variables(windows, variable_ids)

    engine_cold()  # warm up kernels (f32 mirrors compile on first use)
    engine_s = _best_of(engine_cold)
    engine_warm_s = _best_of(lambda: engine.predict_variables(windows, variable_ids))
    classify_speedup = pre_pr_s / engine_s
    classify_vs_reference = naive_s / engine_s

    # -- occlusion: per-window reference vs batched id-level variants ----------
    occ_windows = windows[:24]
    naive_occ_s = _best_of(
        lambda: [occlusion_epsilons(cati, w) for w in occ_windows], repeats=2,
    )

    def engine_occ():
        engine.clear_cache()
        occlusion_epsilons_many(cati, occ_windows)

    engine_occ()  # warm up
    engine_occ_s = _best_of(engine_occ, repeats=2)
    occlusion_speedup = naive_occ_s / engine_occ_s

    engine.clear_cache()
    engine.stats.reset()
    engine.leaf_proba(windows)
    stats = engine.stats

    # -- instrumentation overhead: metrics enabled vs disabled ------------------
    from repro.core import observability

    def timed_with_metrics(enabled: bool) -> float:
        saved_config, saved_global = cati.config.metrics_enabled, observability.is_enabled()
        cati.config.metrics_enabled = enabled
        observability.set_enabled(enabled)
        try:
            return _best_of(engine_cold, repeats=1)
        finally:
            cati.config.metrics_enabled = saved_config
            observability.set_enabled(saved_global)

    # Interleave the two configurations so clock drift / turbo effects
    # hit both sides equally; best-of per side.
    timed_with_metrics(True)  # warm up
    off_times, on_times = [], []
    for _ in range(4):
        off_times.append(timed_with_metrics(False))
        on_times.append(timed_with_metrics(True))
    metrics_off_s = min(off_times)
    metrics_on_s = min(on_times)
    metrics_overhead = metrics_on_s / metrics_off_s - 1.0

    observability.reset()
    engine_cold()
    run_counters = observability.snapshot()["counters"]

    report = {
        "n_vucs": len(windows),
        "vuc_length": length,
        "encode": {
            "seconds": encode_s,
            "vucs_per_s": len(windows) / encode_s,
        },
        "classify_vote": {
            "pre_pr_seconds": pre_pr_s,
            "naive_seconds": naive_s,
            "engine_seconds": engine_s,
            "engine_warm_cache_seconds": engine_warm_s,
            "speedup_vs_pre_pr": classify_speedup,
            "speedup_vs_current_reference": classify_vs_reference,
            "pre_pr_vucs_per_s": len(windows) / pre_pr_s,
            "naive_vucs_per_s": len(windows) / naive_s,
            "engine_vucs_per_s": len(windows) / engine_s,
        },
        "occlusion": {
            "n_vucs": len(occ_windows),
            "n_forward_rows": len(occ_windows) * (length + 1),
            "naive_seconds": naive_occ_s,
            "engine_seconds": engine_occ_s,
            "speedup": occlusion_speedup,
            "engine_vucs_per_s": len(occ_windows) / engine_occ_s,
        },
        "dedup": {
            "windows": stats.windows,
            "unique_windows": stats.unique_windows,
            "conv1_positions": stats.ctx_positions,
            "conv1_unique_contexts": stats.ctx_unique,
            "conv1_dedup_ratio": stats.ctx_positions / max(stats.ctx_unique, 1),
        },
        "metrics": {
            "counters": run_counters,
            "overhead": {
                "engine_metrics_off_seconds": metrics_off_s,
                "engine_metrics_on_seconds": metrics_on_s,
                "relative_overhead": metrics_overhead,
            },
        },
    }
    _ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(f"classify+vote over {len(windows)} VUCs: "
          f"pre-PR {pre_pr_s * 1e3:.0f} ms, reference {naive_s * 1e3:.0f} ms, "
          f"engine {engine_s * 1e3:.0f} ms "
          f"(warm cache {engine_warm_s * 1e3:.0f} ms) -> {classify_speedup:.1f}x "
          f"vs pre-PR, {classify_vs_reference:.1f}x vs reference")
    print(f"occlusion over {len(occ_windows)} VUCs ({length + 1} variants each): "
          f"naive {naive_occ_s * 1e3:.0f} ms, engine {engine_occ_s * 1e3:.0f} ms "
          f"-> {occlusion_speedup:.1f}x")
    print(f"encode: {len(windows) / encode_s:.0f} VUC/s; conv1 context dedup "
          f"{report['dedup']['conv1_dedup_ratio']:.1f}x")
    print(f"instrumentation overhead: metrics off {metrics_off_s * 1e3:.0f} ms, "
          f"on {metrics_on_s * 1e3:.0f} ms -> {metrics_overhead:+.1%}")
    print(f"wrote {_ARTIFACT}")

    # The engine must still agree with the reference it races.
    naive_probs = cati.predict_vuc_proba(occ_windows)
    engine_probs = engine.leaf_proba(occ_windows)
    assert np.abs(engine_probs - naive_probs).max() <= 1e-6

    assert classify_speedup >= 3.0
    assert occlusion_speedup >= 5.0
    # Observability must be effectively free on the hot path.
    assert metrics_overhead < 0.05


def test_serve_throughput(gcc_context, tmp_path):
    """Served vs raw-engine throughput on one request stream.

    Both sides run the same 16 chunks cold-cache: offline as serial
    ``engine.predict_variables`` calls (the raw per-request engine
    path), served as 8 concurrent clients whose requests the scheduler
    coalesces into larger engine batches — which is what must pay for
    the HTTP + JSON overhead.  Acceptance: served throughput within 10%
    of the raw path (given a core to overlap on — see the assertion),
    and byte-identical prediction identities.
    """
    from repro.serve import protocol
    from repro.serve.client import ServeClient
    from repro.serve.server import ServeDaemon

    cati = gcc_context.cati
    engine = cati.engine
    samples = list(gcc_context.corpus.test)[:4000]
    windows = [sample.tokens for sample in samples]
    variable_ids = [f"var{i // 4}" for i in range(len(windows))]
    n_clients, n_requests = 8, 16
    per_request = (len(windows) + n_requests - 1) // n_requests
    chunks = [(windows[i:i + per_request], variable_ids[i:i + per_request])
              for i in range(0, len(windows), per_request)]

    def offline():
        engine.clear_cache()
        return [engine.predict_variables(w, v) for w, v in chunks]

    offline_results = offline()  # also warms the f32 kernels
    offline_s = _best_of(offline, repeats=3)

    bundle_dir = tmp_path / "serve-bundle"
    cati.save(str(bundle_dir))
    daemon = ServeDaemon(str(bundle_dir), port=0, queue_limit=64)
    serve_thread = threading.Thread(target=daemon.run, daemon=True)
    serve_thread.start()
    client = ServeClient(daemon.host, daemon.port, timeout=300)
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        try:
            client.health()
            break
        except OSError:
            time.sleep(0.05)

    # The packed wire form — what ServeClient.infer_windows sends; the
    # nested-list form costs ~10x more JSON parsing server-side.
    bodies = [{"windows_packed": protocol.pack_windows(chunk_windows),
               "variable_ids": chunk_ids}
              for chunk_windows, chunk_ids in chunks]

    responses: list = [None] * len(bodies)
    latencies: list = [None] * len(bodies)

    def run_clients() -> float:
        def worker(client_index: int) -> None:
            for request_index in range(client_index, len(bodies), n_clients):
                t0 = time.perf_counter()
                responses[request_index] = client.infer(bodies[request_index])
                latencies[request_index] = time.perf_counter() - t0

        threads = [threading.Thread(target=worker, args=(index,))
                   for index in range(n_clients)]
        t0 = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return time.perf_counter() - t0

    # Warm the HTTP/scheduler path with windows that don't seed the
    # daemon engine's dedup cache for the measured stream.
    client.infer({"windows": [[["warm", "reg", "mem"]]], "variable_ids": ["w"]})
    # Cold barrages are the served twin of the offline cold-cache
    # measurement: clear the daemon engine's dedup cache before each
    # repeat (same best-of discipline as offline()).
    daemon_engine = daemon.model_host.acquire()[1]

    def served_cold() -> float:
        daemon_engine.clear_cache()
        return run_clients()

    served_cold_s = _best_of(served_cold, repeats=3)
    cold_latencies = list(latencies)
    served_warm_s = run_clients()  # dedup-cache-warm, for the record

    served = sorted(cold_latencies)
    report_serve = {
        "cpu_count": os.cpu_count(),
        "n_windows": len(windows),
        "n_requests": len(bodies),
        "n_clients": n_clients,
        "windows_per_request": per_request,
        "offline_engine_seconds": offline_s,
        "served_seconds": served_cold_s,
        "served_warm_cache_seconds": served_warm_s,
        "offline_vucs_per_s": len(windows) / offline_s,
        "served_vucs_per_s": len(windows) / served_cold_s,
        "served_over_offline": offline_s / served_cold_s,
        "latency": {
            "p50_s": served[len(served) // 2],
            "p99_s": served[-1],
            "mean_s": sum(served) / len(served),
        },
    }
    snapshot = client.metrics()
    for key, out in (("serve.batch.windows", "batch_windows"),
                     ("serve.batch.requests", "batch_requests"),
                     ("serve.queue.depth", "queue_depth")):
        hist = snapshot["histograms"].get(key)
        if hist:
            report_serve[out] = {"count": hist["count"], "mean": hist["mean"],
                                 "max": hist["max"]}
    health = client.health()
    report_serve["healthz_latency"] = health["latency"]

    daemon.request_shutdown()
    serve_thread.join(timeout=30)
    assert not serve_thread.is_alive()

    # Served results must carry the same prediction identities.
    for response, reference in zip(responses, offline_results):
        assert ([(p["variable_id"], p["type"], p["n_vucs"])
                 for p in response["predictions"]]
                == [(p.variable_id, str(p.predicted), p.n_vucs)
                    for p in reference])

    report = json.loads(_ARTIFACT.read_text()) if _ARTIFACT.exists() else {}
    report["serve"] = report_serve
    _ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(f"serve: {len(windows)} VUCs over {len(bodies)} requests x "
          f"{n_clients} clients: offline {offline_s * 1e3:.0f} ms "
          f"({report_serve['offline_vucs_per_s']:.0f} VUC/s), served "
          f"{served_cold_s * 1e3:.0f} ms "
          f"({report_serve['served_vucs_per_s']:.0f} VUC/s, warm "
          f"{served_warm_s * 1e3:.0f} ms)")
    print(f"serve latency: p50 {report_serve['latency']['p50_s'] * 1e3:.0f} ms, "
          f"p99 {report_serve['latency']['p99_s'] * 1e3:.0f} ms; "
          f"batches {report_serve.get('batch_windows', {})}")
    print(f"wrote {_ARTIFACT}")

    # The daemon must sustain the raw engine path's throughput (the
    # coalesced batches have to pay for HTTP + JSON + scheduling).
    # Overlapping that overhead with the engine's GEMMs needs a second
    # core; on a one-core box wall time is necessarily engine CPU plus
    # serving CPU, so the floor grows by the measured serving-only cost
    # (the cache-warm barrage, where engine time is nil).
    cores = os.cpu_count() or 1
    pipeline_floor_s = offline_s + (served_warm_s if cores == 1 else 0.0)
    assert served_cold_s <= 1.1 * pipeline_floor_s


def test_bundle_io(gcc_context, tmp_path):
    """ModelBundle save / verify / load microbenchmark; merges into
    BENCH_speed.json so artifact I/O joins the perf trajectory."""
    from repro.core.artifacts import ModelBundle
    from repro.core.pipeline import Cati

    cati = gcc_context.cati
    directory = tmp_path / "bundle"

    cati.save(str(directory))  # warm up (allocators, page cache)
    save_s = _best_of(lambda: cati.save(str(directory)))

    bundle = ModelBundle.open(str(directory))
    verify_s = _best_of(bundle.verify)
    load_s = _best_of(lambda: Cati.load(str(directory)))
    warm_load_s = _best_of(lambda: Cati.load(str(directory), warm_start=True))

    total_bytes = sum(entry["bytes"] for entry in bundle.manifest["files"].values())
    total_bytes += (directory / "manifest.json").stat().st_size

    # Round trip must preserve the model bit-for-bit at engine precision.
    windows = [sample.tokens for sample in list(gcc_context.corpus.test)[:200]]
    loaded = Cati.load(str(directory), warm_start=True)
    assert np.abs(
        loaded.engine.leaf_proba(windows) - cati.predict_vuc_proba(windows)
    ).max() <= 1e-6

    report = json.loads(_ARTIFACT.read_text()) if _ARTIFACT.exists() else {}
    report["artifacts"] = {
        "bundle_bytes": total_bytes,
        "save_seconds": save_s,
        "verify_seconds": verify_s,
        "load_seconds": load_s,
        "load_warm_start_seconds": warm_load_s,
        "save_mb_per_s": total_bytes / save_s / 1e6,
        "verify_mb_per_s": total_bytes / verify_s / 1e6,
    }
    _ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(f"bundle: {total_bytes / 1e6:.1f} MB; save {save_s * 1e3:.0f} ms, "
          f"verify {verify_s * 1e3:.0f} ms, load {load_s * 1e3:.0f} ms "
          f"(warm-start {warm_load_s * 1e3:.0f} ms)")
    print(f"wrote {_ARTIFACT}")

    # Artifact I/O must stay interactive: well under the per-binary
    # inference budget.
    assert save_s < 30.0
    assert load_s < 10.0
    assert verify_s < 10.0
