"""§VII — training/inference speed: extraction + prediction per binary.

Paper reference: ~6 s per typical binary (including IDA Pro extraction)
on an i7-6700K + GTX 1070.  Our numbers measure the same two stages
(VUC extraction and classify+vote) of the reimplementation on one CPU
core; the assertion is that the pipeline stays in interactive territory,
not that the absolute number matches foreign hardware.

``test_engine_speedup`` additionally races the batched dedup engine
against the pre-PR implementation (per-window encoding into the float64
classifier — the acceptance baseline), the current naive reference, and
a faithful in-process reproduction of the PR 5 cascade (per-stage
Python loop, fresh allocations — the baseline the PR 6 kernel
restructure is judged against) on the classify+vote and occlusion hot
paths.  It records throughput (VUCs/s) for encode/classify/occlusion,
a per-cascade-stage wall/cpu breakdown plus per-chunk latency
quantiles under ``classify_vote.stages``/``chunk_latency``, a
duplicated-window scenario (the dedup layer must collapse a 2x stream
for ~free), and the opt-in int8 embedding path's speed and measured
accuracy delta under ``classify_vote.quantized`` — all written to
``BENCH_speed.json`` at the repo root, together with the run's
observability counters and the measured overhead of instrumentation
(metrics enabled vs disabled on the engine hot path), which the
acceptance criteria cap at 5%.

Run directly with ``--smoke`` (see ``scripts/check.sh --smoke``) to
execute only the correctness gates on a freshly trained mini model —
no cached full models, no wall-clock assertions.

``test_bundle_io`` adds the artifact-I/O trajectory: ModelBundle
save / checksum verify / load (cold and warm-started) on the full
trained model, merged into the same ``BENCH_speed.json`` under
``"artifacts"``.

``test_serve_throughput`` races the serving daemon (8 concurrent HTTP
clients through the micro-batching scheduler) against the raw engine
run over the same request-sized chunks, and records served VUC/s,
client-side p50/p99 latency and scheduler queue/batch statistics under
``"serve"``.

``test_serve_scaling`` runs the same barrage through the pre-fork
router at 1, 2 and ``min(cores, 4)`` worker processes, recording
throughput and per-worker RSS under ``"serve.scaling"`` — the mmap'd
shared bundle mirror is what keeps N workers from costing N model
copies, and on ≥4-core machines 2 workers must reach ≥1.6x the
single-worker throughput.

``test_interactive_latency`` opens an analysis session and measures
sequential single-variable ``type_variable`` calls — the interactive
REPL workload — recording p50/p99 under ``"serve.interactive"`` and
asserting the small-batch path stays within the scheduler's coalescing
budget plus bounded per-call overhead.
"""

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from repro.experiments import speed

_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_speed.json"


def _best_of(fn, repeats: int = 3) -> float:
    """Minimum wall-clock of ``fn()`` over ``repeats`` runs, in seconds."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_per_binary_speed(benchmark, gcc_context):
    result = benchmark.pedantic(
        speed.run, args=(gcc_context,), kwargs={"n_binaries": 8},
        rounds=1, iterations=1,
    )
    print()
    print(result.render())

    assert result.n_variables > 0
    # Interactive budget: well under a minute per (synthetic) binary;
    # the paper's 6 s/binary is the same order of magnitude.
    assert result.per_binary_total_s < 30.0
    assert result.per_binary_extract_s > 0.0
    assert result.per_binary_predict_s > 0.0


def _pre_pr_predict(cati, windows, variable_ids):
    """The seed implementation of classify+vote, reproduced faithfully:
    per-window Python encoding (the old ``encode_batch`` was a
    ``np.stack`` over ``encode_window`` calls) into the float64 stage
    CNNs, then the shared voting helper."""
    from repro.core.pipeline import predictions_from_probs

    x = np.stack([cati.encoder.encode_window(w) for w in windows])
    probs = cati.classifier.leaf_proba(x)
    return predictions_from_probs(probs, variable_ids, cati.config.confidence_threshold)


def _pr5_compile(engine):
    """PR-5-shaped kernels from the engine's float32 op mirrors.

    The stacked conv1 operand is built exactly as PR 5 built it
    (stage-column concatenation), so the PR 5 reproduction below runs
    the same arithmetic it shipped with."""
    from repro.core.engine import _CONV2_INDEX, _DENSE1_INDEX, _DENSE2_INDEX

    engine.warm_start()
    ops = engine._ops
    weight1 = np.ascontiguousarray(np.concatenate([o[0][1] for o in ops], axis=1))
    bias1 = np.concatenate([o[0][2] for o in ops])
    per_stage = [
        (o[_CONV2_INDEX][1], o[_CONV2_INDEX][2],
         o[_DENSE1_INDEX][1], o[_DENSE1_INDEX][2],
         o[_DENSE2_INDEX][1], o[_DENSE2_INDEX][2])
        for o in ops
    ]
    return weight1, bias1, per_stage


def _pr5_unique_rows(rows):
    """PR 5's row dedup, verbatim: ``np.unique`` over packed int64 keys
    (stable mergesort).  PR 6 replaced this with an unstable-quicksort
    unique, so the reproduction must NOT borrow the current helper."""
    rows = np.ascontiguousarray(rows)
    n, k = rows.shape
    if n:
        lo = int(rows.min())
        span = int(rows.max()) - lo + 1
        if k * np.log2(max(span, 2)) < 62:
            keys = rows[:, 0].astype(np.int64) - lo
            for j in range(1, k):
                keys = keys * span + (rows[:, j] - lo)
            _, first, inverse = np.unique(keys, return_index=True, return_inverse=True)
            return rows[first], inverse
    view = rows.view(np.dtype((np.void, rows.dtype.itemsize * rows.shape[1]))).ravel()
    _, first, inverse = np.unique(view, return_index=True, return_inverse=True)
    return rows[first], inverse


def _pr5_cascade_logits(kernels, emb_table, ids):
    """PR 5's cascade, reproduced faithfully for a same-run baseline:
    ``np.unique``-based dedup, stacked conv1 GEMM into fresh
    allocations, pool-pair dedup at BOTH pooling levels, then a
    per-stage Python loop for conv2 and the dense head (PR 6 swaps the
    dedup sort for an unstable quicksort, postpones conv bias+ReLU past
    the pools, stacks the heads into batched GEMMs, and reuses arena
    buffers for the GEMM outputs)."""
    from repro.core.engine import _gather_contexts, _neighbor_rows

    _unique_rows = _pr5_unique_rows

    weight1, bias1, per_stage = kernels
    batch, length, _ = ids.shape
    n_stages = len(per_stage)
    c1 = weight1.shape[1] // n_stages

    instr_u, pos = _unique_rows(ids.reshape(batch * length, 3))
    emb_u = emb_table[instr_u.reshape(-1)].astype(np.float32, copy=False)
    emb_u = emb_u.reshape(len(instr_u), -1)
    pos = pos.reshape(batch, length)

    ctx1_u, pos_c1 = _unique_rows(_neighbor_rows(pos).reshape(batch * length, 3))
    pos_c1 = pos_c1.reshape(batch, length)
    hidden1 = _gather_contexts(emb_u, ctx1_u) @ weight1 + bias1
    np.maximum(hidden1, 0.0, out=hidden1)

    out1 = length // 2
    pairs1 = np.stack([pos_c1[:, 0:out1 * 2:2], pos_c1[:, 1:out1 * 2:2]], axis=2)
    pairs1_u, pos_p1 = _unique_rows(pairs1.reshape(batch * out1, 2))
    pos_p1 = pos_p1.reshape(batch, out1)
    pooled1 = np.maximum(hidden1[pairs1_u[:, 0]], hidden1[pairs1_u[:, 1]])
    pooled1_t = np.ascontiguousarray(
        pooled1.reshape(len(pooled1), n_stages, c1).transpose(1, 0, 2))

    ctx2_u, pos_c2 = _unique_rows(_neighbor_rows(pos_p1).reshape(batch * out1, 3))
    pos_c2 = pos_c2.reshape(batch, out1)
    out2 = out1 // 2
    pairs2 = np.stack([pos_c2[:, 0:out2 * 2:2], pos_c2[:, 1:out2 * 2:2]], axis=2)
    pairs2_u, pos_p2 = _unique_rows(pairs2.reshape(batch * out2, 2))
    flat_p2 = pos_p2.reshape(batch, out2)

    logits = []
    for index, (w2, b2, wfc, bfc, wout, bout) in enumerate(per_stage):
        x2 = _gather_contexts(pooled1_t[index], ctx2_u)
        hidden2 = x2 @ w2 + b2
        np.maximum(hidden2, 0.0, out=hidden2)
        pooled2 = np.maximum(hidden2[pairs2_u[:, 0]], hidden2[pairs2_u[:, 1]])
        flat = pooled2[flat_p2].reshape(batch, out2 * hidden2.shape[1])
        z = flat @ wfc + bfc
        np.maximum(z, 0.0, out=z)
        logits.append(z @ wout + bout)
    return logits


def _pr5_leaf_proba(engine, kernels, ids, max_batch):
    """PR 5's window-dedup + chunk loop around the cascade above.

    Shares the current (interned, packed-id) encoder with every other
    contestant, so encode-side gains are deliberately NOT credited to
    either side here — this isolates the kernel-execution delta."""
    from repro.core.classifier import compose_leaves
    from repro.nn.losses import softmax

    n = len(ids)
    flat = ids.reshape(n, -1)
    index_of: dict[bytes, int] = {}
    owner: list[int] = []
    assign = np.empty(n, dtype=np.int64)
    for i in range(n):
        key = flat[i].tobytes()
        j = index_of.get(key)
        if j is None:
            j = len(owner)
            index_of[key] = j
            owner.append(i)
        assign[i] = j
    unique_ids = ids[np.asarray(owner)]
    emb_table = engine.encoder.embedding.vectors
    stage_order = list(engine.classifier.stages)
    chunks = []
    for start in range(0, len(unique_ids), max_batch):
        logits = _pr5_cascade_logits(
            kernels, emb_table, unique_ids[start:start + max_batch])
        stage_probs = {stage: softmax(out.astype(np.float64))
                       for stage, out in zip(stage_order, logits)}
        chunks.append(compose_leaves(stage_probs))
    return np.concatenate(chunks)[assign]


def _pr5_predict(engine, kernels, windows, variable_ids, config):
    """PR 5's classify+vote end to end, including its per-variable
    Python vote loop (PR 6 vectorized the vote with one grouped
    reduceat)."""
    from repro.core.pipeline import VariablePrediction
    from repro.core.types import ALL_TYPES
    from repro.core.voting import clip_confidences

    ids = engine.encoder.encode_ids(windows, length=config.vuc_length)
    probs = _pr5_leaf_proba(engine, kernels, ids, config.max_batch)
    groups: dict[str, list[int]] = {}
    for index, variable_id in enumerate(variable_ids):
        groups.setdefault(variable_id, []).append(index)
    clipped = clip_confidences(probs, config.confidence_threshold)
    out = []
    for variable_id, indices in groups.items():
        scores = clipped[indices].sum(axis=0)
        out.append(VariablePrediction(
            variable_id=variable_id, predicted=ALL_TYPES[int(scores.argmax())],
            n_vucs=len(indices), scores=scores))
    return out


#: PR 5's recorded classify_vote.engine_seconds at N=2000 (the number
#: this PR's acceptance compares against; measured on the PR 5 runner,
#: so the same-run ``pr5_seconds`` below is the honest baseline).
_PR5_RECORDED_ENGINE_SECONDS = 0.117


def test_engine_speedup(gcc_context):
    """Engine vs naive on the hot paths; writes BENCH_speed.json."""
    from repro.core.occlusion import occlusion_epsilons, occlusion_epsilons_many

    cati = gcc_context.cati
    samples = list(gcc_context.corpus.test)[:2000]
    windows = [sample.tokens for sample in samples]
    variable_ids = [f"var{i // 4}" for i in range(len(windows))]
    engine = cati.engine
    length = cati.config.vuc_length

    # -- encode throughput ------------------------------------------------------
    cati.encode(windows)  # warm up (allocators, BLAS threads)
    encode_s = _best_of(lambda: cati.encode(windows))

    # -- classify + vote: pre-PR implementation vs reference vs engine ---------
    _pre_pr_predict(cati, windows[:50], variable_ids[:50])  # warm up
    pre_pr_s = _best_of(lambda: _pre_pr_predict(cati, windows, variable_ids), repeats=2)
    cati.predict_variables(windows, variable_ids)  # warm up
    naive_s = _best_of(lambda: cati.predict_variables(windows, variable_ids))

    def engine_cold():
        engine.clear_cache()
        engine.predict_variables(windows, variable_ids)

    engine_cold()  # warm up kernels (f32 mirrors compile on first use)
    engine_warm_s = _best_of(lambda: engine.predict_variables(windows, variable_ids))

    # -- PR 5 cascade, reproduced in-process for a same-run baseline ------------
    # Interleave the two contestants so clock drift on a noisy runner
    # hits both equally; best-of per side.
    pr5_kernels = _pr5_compile(engine)
    _pr5_predict(engine, pr5_kernels, windows[:200], variable_ids[:200],
                 cati.config)  # warm up
    engine_s = pr5_s = float("inf")
    for _ in range(5):
        engine_s = min(engine_s, _best_of(engine_cold, repeats=1))
        pr5_s = min(pr5_s, _best_of(
            lambda: _pr5_predict(engine, pr5_kernels, windows, variable_ids,
                                 cati.config), repeats=1))
    classify_speedup = pre_pr_s / engine_s
    classify_vs_reference = naive_s / engine_s
    classify_vs_pr5 = pr5_s / engine_s

    # -- duplicated windows: the dedup layer must keep paying -------------------
    # Every window appears twice; cold (cache cleared) the engine must
    # collapse the stream to its 2000 unique windows before any kernel
    # runs, and a warm repeat must be pure cache hits.
    dup_windows = windows + windows
    dup_ids = variable_ids + [f"dup-{v}" for v in variable_ids]

    def engine_dup_cold():
        engine.clear_cache()
        engine.predict_variables(dup_windows, dup_ids)

    engine_dup_cold()  # warm up
    engine_dup_s = _best_of(engine_dup_cold)
    engine_dup_warm_s = _best_of(
        lambda: engine.predict_variables(dup_windows, dup_ids))
    engine.clear_cache()
    engine.stats.reset()
    engine.leaf_proba(dup_windows)
    engine.leaf_proba(dup_windows)  # warm repeat: all cache hits
    dup_stats = engine.stats
    # Each pass sees 2N windows but only N unique; the warm repeat is
    # then pure cache hits — no kernel runs at all.
    assert dup_stats.windows == 2 * len(dup_windows)
    assert dup_stats.unique_windows == 2 * len(windows)
    assert dup_stats.cache_hits == len(windows)
    # Duplication must be nearly free: 2x the windows, ~1x the cold time.
    assert engine_dup_s <= 1.35 * engine_s

    # -- per-stage timing + per-chunk latency quantiles -------------------------
    from repro.core import observability

    observability.reset()
    for _ in range(5):
        engine_cold()
    span_snapshot = observability.snapshot()["spans"]
    stage_spans = {
        path.rsplit("cascade.", 1)[1]: data
        for path, data in span_snapshot.items() if "cascade." in path
    }
    chunk_hist = observability.get_registry().histogram("engine.chunk_seconds")
    chunk_p50 = chunk_hist.quantile(0.5)
    chunk_p99 = chunk_hist.quantile(0.99)

    # -- opt-in int8 embedding table: speed vs measured accuracy delta ----------
    import dataclasses as _dataclasses

    from repro.core.engine import InferenceEngine

    q_config = _dataclasses.replace(cati.config, quantize_embeddings=True)
    q_engine = InferenceEngine(cati.classifier, cati.encoder, q_config)

    def q_engine_cold():
        q_engine.clear_cache()
        q_engine.predict_variables(windows, variable_ids)

    q_engine_cold()  # warm up (compiles kernels, builds the int8 table)
    q_engine_s = _best_of(q_engine_cold)
    naive_probs_full = cati.predict_vuc_proba(windows)
    q_probs = q_engine.leaf_proba(windows)
    q_max_delta = float(np.abs(q_probs - naive_probs_full).max())
    q_agreement = float(
        (q_probs.argmax(axis=1) == naive_probs_full.argmax(axis=1)).mean())
    # The quantized path trades the 1e-6 gate for a bounded leaf-level
    # drift; the argmax decision must stay effectively unchanged.
    assert q_max_delta <= 0.05
    assert q_agreement >= 0.98

    # -- occlusion: per-window reference vs batched id-level variants ----------
    occ_windows = windows[:24]
    naive_occ_s = _best_of(
        lambda: [occlusion_epsilons(cati, w) for w in occ_windows], repeats=2,
    )

    def engine_occ():
        engine.clear_cache()
        occlusion_epsilons_many(cati, occ_windows)

    engine_occ()  # warm up
    engine_occ_s = _best_of(engine_occ, repeats=2)
    occlusion_speedup = naive_occ_s / engine_occ_s

    engine.clear_cache()
    engine.stats.reset()
    engine.leaf_proba(windows)
    stats = engine.stats

    # -- instrumentation overhead: metrics enabled vs disabled ------------------
    from repro.core import observability

    def timed_with_metrics(enabled: bool) -> float:
        saved_config, saved_global = cati.config.metrics_enabled, observability.is_enabled()
        cati.config.metrics_enabled = enabled
        observability.set_enabled(enabled)
        try:
            return _best_of(engine_cold, repeats=1)
        finally:
            cati.config.metrics_enabled = saved_config
            observability.set_enabled(saved_global)

    # Interleave the two configurations so clock drift / turbo effects
    # hit both sides equally; best-of per side.
    timed_with_metrics(True)  # warm up
    off_times, on_times = [], []
    for _ in range(4):
        off_times.append(timed_with_metrics(False))
        on_times.append(timed_with_metrics(True))
    metrics_off_s = min(off_times)
    metrics_on_s = min(on_times)
    metrics_overhead = metrics_on_s / metrics_off_s - 1.0

    observability.reset()
    engine_cold()
    run_counters = observability.snapshot()["counters"]

    report = {
        "n_vucs": len(windows),
        "vuc_length": length,
        "encode": {
            "seconds": encode_s,
            "vucs_per_s": len(windows) / encode_s,
        },
        "classify_vote": {
            "pre_pr_seconds": pre_pr_s,
            "naive_seconds": naive_s,
            "pr5_seconds": pr5_s,
            "engine_seconds": engine_s,
            "engine_warm_cache_seconds": engine_warm_s,
            "speedup_vs_pre_pr": classify_speedup,
            "speedup_vs_current_reference": classify_vs_reference,
            "speedup_vs_pr5": classify_vs_pr5,
            "pr5_recorded_engine_seconds": _PR5_RECORDED_ENGINE_SECONDS,
            "ratio_vs_pr5_recorded": _PR5_RECORDED_ENGINE_SECONDS / engine_s,
            "pre_pr_vucs_per_s": len(windows) / pre_pr_s,
            "naive_vucs_per_s": len(windows) / naive_s,
            "engine_vucs_per_s": len(windows) / engine_s,
            "stages": {
                name: {"count": data["count"], "wall_s": data["wall_s"],
                       "cpu_s": data["cpu_s"]}
                for name, data in sorted(stage_spans.items())
            },
            "chunk_latency": {
                "count": chunk_hist.count,
                "p50_s": chunk_p50,
                "p99_s": chunk_p99,
            },
            "duplicated": {
                "n_vucs": len(dup_windows),
                "unique_windows": len(windows),
                "engine_seconds": engine_dup_s,
                "engine_warm_cache_seconds": engine_dup_warm_s,
                "cold_overhead_vs_unique": engine_dup_s / engine_s,
            },
            "quantized": {
                "engine_seconds": q_engine_s,
                "speedup_vs_float_engine": engine_s / q_engine_s,
                "max_leaf_prob_delta": q_max_delta,
                "argmax_agreement": q_agreement,
            },
        },
        "occlusion": {
            "n_vucs": len(occ_windows),
            "n_forward_rows": len(occ_windows) * (length + 1),
            "naive_seconds": naive_occ_s,
            "engine_seconds": engine_occ_s,
            "speedup": occlusion_speedup,
            "engine_vucs_per_s": len(occ_windows) / engine_occ_s,
        },
        "dedup": {
            "windows": stats.windows,
            "unique_windows": stats.unique_windows,
            "conv1_positions": stats.ctx_positions,
            "conv1_unique_contexts": stats.ctx_unique,
            "conv1_dedup_ratio": stats.ctx_positions / max(stats.ctx_unique, 1),
        },
        "metrics": {
            "counters": run_counters,
            "overhead": {
                "engine_metrics_off_seconds": metrics_off_s,
                "engine_metrics_on_seconds": metrics_on_s,
                "relative_overhead": metrics_overhead,
            },
        },
    }
    _ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(f"classify+vote over {len(windows)} VUCs: "
          f"pre-PR {pre_pr_s * 1e3:.0f} ms, reference {naive_s * 1e3:.0f} ms, "
          f"PR5 {pr5_s * 1e3:.0f} ms, engine {engine_s * 1e3:.0f} ms "
          f"(warm cache {engine_warm_s * 1e3:.0f} ms) -> {classify_speedup:.1f}x "
          f"vs pre-PR, {classify_vs_reference:.1f}x vs reference, "
          f"{classify_vs_pr5:.2f}x vs PR5 same-run")
    stage_ms = ", ".join(
        f"{name} {data['wall_s'] / max(data['count'], 1) * 1e3:.1f}"
        for name, data in sorted(stage_spans.items()))
    print(f"per-chunk stages (ms/chunk): {stage_ms}; chunk latency "
          f"p50 {chunk_p50 * 1e3:.1f} ms, p99 {chunk_p99 * 1e3:.1f} ms "
          f"over {chunk_hist.count} chunks")
    print(f"duplicated stream (2x {len(windows)} windows): cold "
          f"{engine_dup_s * 1e3:.0f} ms "
          f"({engine_dup_s / engine_s:.2f}x the unique stream), warm "
          f"{engine_dup_warm_s * 1e3:.0f} ms")
    print(f"int8 embeddings: {q_engine_s * 1e3:.0f} ms "
          f"({engine_s / q_engine_s:.2f}x vs float engine), max leaf delta "
          f"{q_max_delta:.2e}, argmax agreement {q_agreement:.4f}")
    print(f"occlusion over {len(occ_windows)} VUCs ({length + 1} variants each): "
          f"naive {naive_occ_s * 1e3:.0f} ms, engine {engine_occ_s * 1e3:.0f} ms "
          f"-> {occlusion_speedup:.1f}x")
    print(f"encode: {len(windows) / encode_s:.0f} VUC/s; conv1 context dedup "
          f"{report['dedup']['conv1_dedup_ratio']:.1f}x")
    print(f"instrumentation overhead: metrics off {metrics_off_s * 1e3:.0f} ms, "
          f"on {metrics_on_s * 1e3:.0f} ms -> {metrics_overhead:+.1%}")
    print(f"wrote {_ARTIFACT}")

    # The engine must still agree with the reference it races (the
    # float path keeps the exact-equivalence gate; the quantized path
    # was bounded above).
    naive_probs = cati.predict_vuc_proba(occ_windows)
    engine_probs = engine.leaf_proba(occ_windows)
    assert np.abs(engine_probs - naive_probs).max() <= 1e-6
    # The PR 5 reproduction must itself agree with the reference, or
    # the baseline it provides is meaningless.
    pr5_probs = _pr5_leaf_proba(
        engine, pr5_kernels,
        engine.encoder.encode_ids(occ_windows, length=length),
        cati.config.max_batch)
    assert np.abs(pr5_probs - naive_probs).max() <= 1e-6

    assert classify_speedup >= 3.0
    # The restructured kernels must not regress against the PR 5
    # cascade measured in this same process (2% noise allowance).
    assert engine_s <= 1.02 * pr5_s
    assert occlusion_speedup >= 5.0
    # Observability must be effectively free on the hot path.
    assert metrics_overhead < 0.05


def test_serve_throughput(gcc_context, tmp_path):
    """Served vs raw-engine throughput on one request stream.

    Both sides run the same 16 chunks cold-cache: offline as serial
    ``engine.predict_variables`` calls (the raw per-request engine
    path), served as 8 concurrent clients whose requests the scheduler
    coalesces into larger engine batches — which is what must pay for
    the HTTP + JSON overhead.  Acceptance: served throughput within 10%
    of the raw path (given a core to overlap on — see the assertion),
    and byte-identical prediction identities.
    """
    from repro.serve import protocol
    from repro.serve.client import ServeClient
    from repro.serve.server import ServeDaemon

    cati = gcc_context.cati
    engine = cati.engine
    samples = list(gcc_context.corpus.test)[:4000]
    windows = [sample.tokens for sample in samples]
    variable_ids = [f"var{i // 4}" for i in range(len(windows))]
    n_clients, n_requests = 8, 16
    per_request = (len(windows) + n_requests - 1) // n_requests
    chunks = [(windows[i:i + per_request], variable_ids[i:i + per_request])
              for i in range(0, len(windows), per_request)]

    def offline():
        engine.clear_cache()
        return [engine.predict_variables(w, v) for w, v in chunks]

    offline_results = offline()  # also warms the f32 kernels
    offline_s = _best_of(offline, repeats=3)

    bundle_dir = tmp_path / "serve-bundle"
    cati.save(str(bundle_dir))
    daemon = ServeDaemon(str(bundle_dir), port=0, queue_limit=64)
    serve_thread = threading.Thread(target=daemon.run, daemon=True)
    serve_thread.start()
    client = ServeClient(daemon.host, daemon.port, timeout=300)
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        try:
            client.health()
            break
        except OSError:
            time.sleep(0.05)

    # The packed wire form — what ServeClient.infer_windows sends; the
    # nested-list form costs ~10x more JSON parsing server-side.
    bodies = [{"windows_packed": protocol.pack_windows(chunk_windows),
               "variable_ids": chunk_ids}
              for chunk_windows, chunk_ids in chunks]

    responses: list = [None] * len(bodies)
    latencies: list = [None] * len(bodies)

    def run_clients() -> float:
        def worker(client_index: int) -> None:
            for request_index in range(client_index, len(bodies), n_clients):
                t0 = time.perf_counter()
                responses[request_index] = client.infer(bodies[request_index])
                latencies[request_index] = time.perf_counter() - t0

        threads = [threading.Thread(target=worker, args=(index,))
                   for index in range(n_clients)]
        t0 = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return time.perf_counter() - t0

    # Warm the HTTP/scheduler path with windows that don't seed the
    # daemon engine's dedup cache for the measured stream.
    client.infer({"windows": [[["warm", "reg", "mem"]]], "variable_ids": ["w"]})
    # Cold barrages are the served twin of the offline cold-cache
    # measurement: clear the daemon engine's dedup cache before each
    # repeat (same best-of discipline as offline()).
    daemon_engine = daemon.model_host.acquire()[1]

    def served_cold() -> float:
        daemon_engine.clear_cache()
        return run_clients()

    served_cold_s = _best_of(served_cold, repeats=3)
    cold_latencies = list(latencies)
    served_warm_s = run_clients()  # dedup-cache-warm, for the record

    served = sorted(cold_latencies)
    report_serve = {
        "cpu_count": os.cpu_count(),
        "n_windows": len(windows),
        "n_requests": len(bodies),
        "n_clients": n_clients,
        "windows_per_request": per_request,
        "offline_engine_seconds": offline_s,
        "served_seconds": served_cold_s,
        "served_warm_cache_seconds": served_warm_s,
        "offline_vucs_per_s": len(windows) / offline_s,
        "served_vucs_per_s": len(windows) / served_cold_s,
        "served_over_offline": offline_s / served_cold_s,
        "latency": {
            "p50_s": served[len(served) // 2],
            "p99_s": served[-1],
            "mean_s": sum(served) / len(served),
        },
    }
    snapshot = client.metrics()
    for key, out in (("serve.batch.windows", "batch_windows"),
                     ("serve.batch.requests", "batch_requests"),
                     ("serve.queue.depth", "queue_depth")):
        hist = snapshot["histograms"].get(key)
        if hist:
            report_serve[out] = {"count": hist["count"], "mean": hist["mean"],
                                 "max": hist["max"]}
    health = client.health()
    report_serve["healthz_latency"] = health["latency"]

    daemon.request_shutdown()
    serve_thread.join(timeout=30)
    assert not serve_thread.is_alive()

    # Served results must carry the same prediction identities.
    for response, reference in zip(responses, offline_results):
        assert ([(p["variable_id"], p["type"], p["n_vucs"])
                 for p in response["predictions"]]
                == [(p.variable_id, str(p.predicted), p.n_vucs)
                    for p in reference])

    report = json.loads(_ARTIFACT.read_text()) if _ARTIFACT.exists() else {}
    # update, don't assign: "serve" also carries the "interactive"
    # block written by test_interactive_latency / scripts/smoke_repl.py.
    report.setdefault("serve", {}).update(report_serve)
    _ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(f"serve: {len(windows)} VUCs over {len(bodies)} requests x "
          f"{n_clients} clients: offline {offline_s * 1e3:.0f} ms "
          f"({report_serve['offline_vucs_per_s']:.0f} VUC/s), served "
          f"{served_cold_s * 1e3:.0f} ms "
          f"({report_serve['served_vucs_per_s']:.0f} VUC/s, warm "
          f"{served_warm_s * 1e3:.0f} ms)")
    print(f"serve latency: p50 {report_serve['latency']['p50_s'] * 1e3:.0f} ms, "
          f"p99 {report_serve['latency']['p99_s'] * 1e3:.0f} ms; "
          f"batches {report_serve.get('batch_windows', {})}")
    print(f"wrote {_ARTIFACT}")

    # The daemon must sustain the raw engine path's throughput (the
    # coalesced batches have to pay for HTTP + JSON + scheduling).
    # Overlapping that overhead with the engine's GEMMs needs a second
    # core; on a one-core box wall time is necessarily engine CPU plus
    # serving CPU, so the floor grows by the measured serving-only cost
    # (the cache-warm barrage, where engine time is nil).
    cores = os.cpu_count() or 1
    pipeline_floor_s = offline_s + (served_warm_s if cores == 1 else 0.0)
    assert served_cold_s <= 1.1 * pipeline_floor_s


def test_interactive_latency(gcc_context, tmp_path):
    """Single-question latency on the session API's small-batch path.

    The interactive workload is one variable per request — the
    pathological shape for a batching server.  ``type_variable`` routes
    it through the micro-batch scheduler, so each call pays at most the
    coalescing delay (``serve_max_delay_ms``) plus one small engine
    batch.  Acceptance: p50 within that budget plus a generous multiple
    of the offline per-variable engine cost (tiny batches amortize
    nothing), i.e. the session path adds bounded overhead and never
    falls onto a full-binary rescore.
    """
    from repro.codegen.compilers import GccCompiler
    from repro.codegen.strip import strip
    from repro.serve.client import ServeClient
    from repro.serve.server import ServeDaemon

    cati = gcc_context.cati
    binary = GccCompiler().compile_fresh(seed=909, name="interactive",
                                         opt_level=0)
    stripped, extents = strip(binary), speed.extents_from_debug(binary)

    bundle_dir = tmp_path / "interactive-bundle"
    cati.save(str(bundle_dir))
    daemon = ServeDaemon(str(bundle_dir), port=0, queue_limit=64)
    serve_thread = threading.Thread(target=daemon.run, daemon=True)
    serve_thread.start()
    client = ServeClient(daemon.host, daemon.port, timeout=300)
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        try:
            client.health()
            break
        except OSError:
            time.sleep(0.05)

    handle = client.session(binary=stripped, extents=extents)
    variables = handle.variables
    assert variables

    # The offline cost of one single-variable question: the engine on
    # one variable's windows (cache cleared — interactive questions
    # about fresh binaries don't arrive dedup-warm).
    from repro.vuc.dataset import extract_unlabeled_vucs

    pairs = extract_unlabeled_vucs(stripped, extents, cati.config.window)
    rows_by_id: dict = {}
    for variable_id, tokens in pairs:
        rows_by_id.setdefault(variable_id, []).append(tokens)
    probe = variables[0]

    def offline_single():
        cati.engine.clear_cache()
        cati.engine.predict_variables(rows_by_id[probe],
                                      [probe] * len(rows_by_id[probe]))

    offline_single()  # warm kernels
    offline_single_s = _best_of(offline_single, repeats=3)

    handle.type_variable(probe)  # warm the served path
    n_calls = 60
    latencies = []
    for index in range(n_calls):
        variable_id = variables[index % len(variables)]
        t0 = time.perf_counter()
        served = handle.type_variable(variable_id)
        latencies.append(time.perf_counter() - t0)
        assert served["prediction"]["variable_id"] == variable_id

    handle.close()
    daemon.request_shutdown()
    serve_thread.join(timeout=30)
    assert not serve_thread.is_alive()

    latencies.sort()
    p50_s = latencies[len(latencies) // 2]
    p99_s = latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))]
    report = json.loads(_ARTIFACT.read_text()) if _ARTIFACT.exists() else {}
    report.setdefault("serve", {})["interactive"] = {
        "n_calls": n_calls,
        "n_variables": len(variables),
        "offline_single_variable_seconds": offline_single_s,
        "p50_s": p50_s,
        "p99_s": p99_s,
        "mean_s": sum(latencies) / len(latencies),
    }
    _ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(f"interactive: {n_calls} type_variable calls over "
          f"{len(variables)} variables: p50 {p50_s * 1e3:.1f} ms, "
          f"p99 {p99_s * 1e3:.1f} ms (offline single-variable "
          f"{offline_single_s * 1e3:.1f} ms)")
    print(f"wrote {_ARTIFACT}")

    # Budget: the scheduler may hold a lone request the full coalescing
    # delay; past that, a single-variable batch should cost a bounded
    # multiple of the offline engine call (HTTP + JSON + tiny-batch
    # overhead), with an absolute floor for fast machines/noise.
    budget_s = (cati.config.serve_max_delay_ms / 1000.0
                + max(25 * offline_single_s, 0.15))
    assert p50_s <= budget_s, (
        f"interactive p50 {p50_s:.3f}s exceeds budget {budget_s:.3f}s")


def _rss_kb(pid: int) -> int | None:
    """Resident set size of one process, in KiB (Linux /proc)."""
    try:
        with open(f"/proc/{pid}/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return None


def test_serve_scaling(gcc_context, tmp_path):
    """Multi-worker throughput + RSS at 1, 2 and min(cores, 4) workers.

    Every worker count runs behind :class:`RouterDaemon` (workers=1
    included, so the router's forwarding overhead is priced into every
    point, not just the scaled ones) on freshly spawned workers — the
    dedup caches start cold, the same discipline as the offline side of
    ``test_serve_throughput``.  Per-worker RSS comes from
    ``/proc/<pid>/status``: with the bundle's mmap mirror the embedding
    table lives in shared page cache, so doubling workers must NOT
    double resident model memory.  The ≥1.6x scaling gate only applies
    where the hardware can express it (≥4 cores — below that the GIL-free
    processes still contend for the same ALUs).
    """
    import shutil as _shutil
    from repro.serve import protocol
    from repro.serve.client import ServeClient
    from repro.serve.router import RouterDaemon

    cati = gcc_context.cati
    samples = list(gcc_context.corpus.test)[:4000]
    windows = [sample.tokens for sample in samples]
    variable_ids = [f"var{i // 4}" for i in range(len(windows))]
    n_clients, n_requests = 8, 16
    per_request = (len(windows) + n_requests - 1) // n_requests
    chunks = [(windows[i:i + per_request], variable_ids[i:i + per_request])
              for i in range(0, len(windows), per_request)]
    bodies = [{"windows_packed": protocol.pack_windows(chunk_windows),
               "variable_ids": chunk_ids}
              for chunk_windows, chunk_ids in chunks]

    bundle_dir = tmp_path / "scaling-bundle"
    cati.save(str(bundle_dir))
    cores = os.cpu_count() or 1
    worker_counts = sorted({1, 2, max(1, min(cores, 4))})
    scaling: dict = {}

    def barrage(client) -> float:
        def worker(client_index: int) -> None:
            for request_index in range(client_index, len(bodies), n_clients):
                client.infer(bodies[request_index])

        threads = [threading.Thread(target=worker, args=(index,))
                   for index in range(n_clients)]
        t0 = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return time.perf_counter() - t0

    for n_workers in worker_counts:
        daemon = RouterDaemon(str(bundle_dir), port=0, workers=n_workers,
                              queue_limit=64)
        serve_thread = threading.Thread(target=daemon.run, daemon=True)
        serve_thread.start()
        client = ServeClient(daemon.host, daemon.port, timeout=300)
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            try:
                client.health()
                break
            except OSError:
                time.sleep(0.05)
        # Touch every worker's HTTP path without seeding the measured
        # stream into any dedup cache.
        for _ in range(n_workers * 2):
            client.infer({"windows": [[["warm", "reg", "mem"]]],
                          "variable_ids": ["w"]})

        cold_s = barrage(client)
        warm_s = barrage(client)  # dedup-cache-warm: serving overhead only
        health = client.health()
        assert health["workers_live"] == n_workers
        assert all(worker["mmap"] is True for worker in health["workers"]), \
            "workers must serve from the memory-mapped shared mirror"
        rss = [_rss_kb(worker["pid"]) for worker in health["workers"]]
        rss = [kb for kb in rss if kb is not None]

        daemon.request_shutdown()
        serve_thread.join(timeout=60)
        assert not serve_thread.is_alive()

        scaling[str(n_workers)] = {
            "served_seconds": cold_s,
            "served_warm_cache_seconds": warm_s,
            "vucs_per_s": len(windows) / cold_s,
            "speedup_vs_1_worker": (
                scaling["1"]["served_seconds"] / cold_s if "1" in scaling
                else 1.0),
            "worker_rss_kb": rss,
            "total_worker_rss_kb": sum(rss),
        }

    shared_dir = bundle_dir / ".shared"
    shared_bytes = sum(p.stat().st_size for p in shared_dir.rglob("*")
                       if p.is_file()) if shared_dir.is_dir() else 0

    report = json.loads(_ARTIFACT.read_text()) if _ARTIFACT.exists() else {}
    report.setdefault("serve", {})["scaling"] = {
        "cpu_count": cores,
        "n_windows": len(windows),
        "n_requests": len(bodies),
        "n_clients": n_clients,
        "shared_mirror_bytes": shared_bytes,
        "workers": scaling,
    }
    _ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")

    print()
    for n_workers in worker_counts:
        entry = scaling[str(n_workers)]
        print(f"serve scaling x{n_workers}: cold {entry['served_seconds'] * 1e3:.0f} ms "
              f"({entry['vucs_per_s']:.0f} VUC/s, "
              f"{entry['speedup_vs_1_worker']:.2f}x vs 1 worker), "
              f"worker RSS {entry['worker_rss_kb']} KiB")
    print(f"shared mirror: {shared_bytes / 1e6:.1f} MB on disk "
          f"({cores} cores)")
    print(f"wrote {_ARTIFACT}")
    _shutil.rmtree(bundle_dir, ignore_errors=True)

    # Scale-out must pay off where the hardware can express it.  On
    # <4-core machines the spawned engines share ALUs with the router
    # and each other, so only the mmap + liveness invariants are gated.
    if cores >= 4:
        assert (scaling["2"]["served_seconds"]
                <= scaling["1"]["served_seconds"] / 1.6), \
            f"2 workers did not reach 1.6x: {scaling}"
        # Shared model memory: the second worker must cost well under a
        # full extra model copy.
        rss_1 = scaling["1"]["total_worker_rss_kb"]
        rss_2 = scaling["2"]["total_worker_rss_kb"]
        assert rss_2 <= 2.0 * rss_1


def test_bundle_io(gcc_context, tmp_path):
    """ModelBundle save / verify / load microbenchmark; merges into
    BENCH_speed.json so artifact I/O joins the perf trajectory."""
    from repro.core.artifacts import ModelBundle
    from repro.core.pipeline import Cati

    cati = gcc_context.cati
    directory = tmp_path / "bundle"

    cati.save(str(directory))  # warm up (allocators, page cache)
    save_s = _best_of(lambda: cati.save(str(directory)))

    bundle = ModelBundle.open(str(directory))
    verify_s = _best_of(bundle.verify)
    load_s = _best_of(lambda: Cati.load(str(directory)))
    warm_load_s = _best_of(lambda: Cati.load(str(directory), warm_start=True))

    total_bytes = sum(entry["bytes"] for entry in bundle.manifest["files"].values())
    total_bytes += (directory / "manifest.json").stat().st_size

    # Round trip must preserve the model bit-for-bit at engine precision.
    windows = [sample.tokens for sample in list(gcc_context.corpus.test)[:200]]
    loaded = Cati.load(str(directory), warm_start=True)
    assert np.abs(
        loaded.engine.leaf_proba(windows) - cati.predict_vuc_proba(windows)
    ).max() <= 1e-6

    report = json.loads(_ARTIFACT.read_text()) if _ARTIFACT.exists() else {}
    report["artifacts"] = {
        "bundle_bytes": total_bytes,
        "save_seconds": save_s,
        "verify_seconds": verify_s,
        "load_seconds": load_s,
        "load_warm_start_seconds": warm_load_s,
        "save_mb_per_s": total_bytes / save_s / 1e6,
        "verify_mb_per_s": total_bytes / verify_s / 1e6,
    }
    _ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(f"bundle: {total_bytes / 1e6:.1f} MB; save {save_s * 1e3:.0f} ms, "
          f"verify {verify_s * 1e3:.0f} ms, load {load_s * 1e3:.0f} ms "
          f"(warm-start {warm_load_s * 1e3:.0f} ms)")
    print(f"wrote {_ARTIFACT}")

    # Artifact I/O must stay interactive: well under the per-binary
    # inference budget.
    assert save_s < 30.0
    assert load_s < 10.0
    assert verify_s < 10.0


def _smoke() -> int:
    """CI-sized correctness smoke over a freshly trained mini model.

    Runs the same equivalence gates as ``test_engine_speedup`` — float
    engine vs naive reference, the PR 5 reproduction, the int8 path's
    bounded drift, and the duplicated-stream dedup invariants — but on
    the tiny corpus and with NO wall-clock assertions, so it is safe on
    arbitrarily noisy CI runners.  Wired into ``scripts/check.sh
    --smoke``."""
    import dataclasses

    from repro.core.config import CatiConfig
    from repro.core.engine import InferenceEngine
    from repro.core.pipeline import Cati
    from repro.datasets.corpus import build_small_corpus
    from repro.embedding.word2vec import Word2VecConfig

    config = CatiConfig(
        epochs=5,
        fc_width=64,
        word2vec=Word2VecConfig(dim=32, window=5, epochs=1, subsample_pairs=0.4),
    )
    corpus = build_small_corpus()
    cati = Cati(config).train(corpus.train)
    samples = list(corpus.test)
    windows = [sample.tokens for sample in samples][:400] or \
        [sample.tokens for sample in corpus.train][:400]
    variable_ids = [f"var{i // 4}" for i in range(len(windows))]

    naive_probs = cati.predict_vuc_proba(windows)
    engine = cati.engine
    engine_probs = engine.leaf_proba(windows)
    drift = float(np.abs(engine_probs - naive_probs).max())
    assert drift <= 1e-6, f"engine drifted {drift:g} from the reference"

    pr5_kernels = _pr5_compile(engine)
    pr5_probs = _pr5_leaf_proba(
        engine, pr5_kernels,
        engine.encoder.encode_ids(windows, length=config.vuc_length),
        config.max_batch)
    pr5_drift = float(np.abs(pr5_probs - naive_probs).max())
    assert pr5_drift <= 1e-6, f"PR5 reproduction drifted {pr5_drift:g}"

    q_config = dataclasses.replace(config, quantize_embeddings=True)
    q_engine = InferenceEngine(cati.classifier, cati.encoder, q_config)
    q_probs = q_engine.leaf_proba(windows)
    q_delta = float(np.abs(q_probs - naive_probs).max())
    q_agreement = float(
        (q_probs.argmax(axis=1) == naive_probs.argmax(axis=1)).mean())
    assert q_delta <= 0.05, f"int8 leaf drift {q_delta:g} out of bound"
    assert q_agreement >= 0.98, f"int8 argmax agreement {q_agreement:.3f}"

    engine.clear_cache()
    engine.stats.reset()
    dup = windows + windows
    engine.leaf_proba(dup)
    engine.leaf_proba(dup)
    stats = engine.stats
    assert stats.unique_windows <= 2 * len(windows)
    assert stats.cache_hits >= stats.unique_windows // 2

    predictions = engine.predict_variables(windows, variable_ids)
    assert len(predictions) == len(set(variable_ids))

    print(f"smoke OK: {len(windows)} windows; engine drift {drift:.2e}, "
          f"PR5 drift {pr5_drift:.2e}, int8 delta {q_delta:.2e} "
          f"(agreement {q_agreement:.3f})")
    return 0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="train a mini model and run the correctness gates only "
             "(no trained-model cache, no wall-clock assertions)")
    cli_args = parser.parse_args()
    if cli_args.smoke:
        raise SystemExit(_smoke())
    parser.error("run under pytest for the full benchmark, or pass --smoke")
