"""Table IV — per-application, per-stage P/R/F1 after voting.

Paper reference: voting improves Stage 1 / 2-2 / 3-1 / 3-3 over Table
III; Stage 2-1 may degrade (diverse pointer behaviour confuses voting).
"""

import numpy as np

from repro.experiments import table3, table4


def _mean_f1(cells, stage):
    values = [f1 for _p, _r, f1 in cells[stage].values()]
    return float(np.mean(values)) if values else 0.0


def test_table4_variable_prediction_after_voting(benchmark, gcc_context, gcc_predictions):
    result = benchmark.pedantic(table4.run, args=(gcc_context,), rounds=1, iterations=1)
    print()
    print(result.render())

    vuc_result = table3.run(gcc_context)
    improved = 0
    compared = 0
    for stage in ("Stage1", "Stage2-2", "Stage3-1", "Stage3-3"):
        before = _mean_f1(vuc_result.cells, stage)
        after = _mean_f1(result.cells, stage)
        compared += 1
        improved += after >= before - 0.01
        print(f"{stage}: VUC F1 {before:.3f} -> voted F1 {after:.3f}")
    # Paper: these four stages improve after voting; allow one exception
    # at our corpus scale.
    assert improved >= compared - 1
