"""Table II — operand generalization.

Verifies the four example rows of Table II and benchmarks generalization
throughput over a whole binary (this is the inner loop of the paper's
"~24 minutes to extract the test corpus" claim).
"""

from repro.asm.parser import parse_instruction
from repro.codegen import GccCompiler
from repro.vuc.generalize import generalize_instruction


TABLE_II_ROWS = [
    ("add $-0xd0,%rax", ("add", "$IMM", "%rax")),
    ("lea -0x300(%rbp,%r9,4),%rax", ("lea", "-IMM(%rbp,%r9,4)", "%rax")),
    ("jmp 3bc59", ("jmp", "ADDR", "BLANK")),
    ("callq 3bc59 <bfd_zalloc>", ("callq", "ADDR", "FUNC")),
]


def test_table2_generalization(benchmark):
    binary = GccCompiler().compile_fresh(seed=77, name="bench", opt_level=1)
    instructions = binary.all_instructions()

    def generalize_all():
        return [generalize_instruction(ins) for ins in instructions]

    tokens = benchmark(generalize_all)
    print(f"\ngeneralized {len(tokens)} instructions")

    for text, expected in TABLE_II_ROWS:
        assert generalize_instruction(parse_instruction(text)) == expected
    # §IV-B: coverage of newly come samples is ~100% on our IR.
    assert all(len(t) == 3 and all(t) for t in tokens)
