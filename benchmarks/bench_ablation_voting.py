"""Ablations — voting threshold (eq. 3) and flat-vs-tree classifier,
plus the §VIII future-work extension: accuracy by optimization level.

The threshold sweep reuses cached confidences, so it is nearly free; the
flat ablation trains one extra 19-way CNN.
"""

from repro.experiments.ablations import (
    run_flat_ablation,
    run_opt_level_breakdown,
    run_threshold_ablation,
)


def test_voting_threshold_ablation(benchmark, gcc_context, gcc_predictions):
    result = benchmark.pedantic(
        run_threshold_ablation, args=(gcc_predictions,), rounds=1, iterations=1,
    )
    print()
    print(result.render())
    best_threshold, best_accuracy = result.best()
    print(f"best threshold: {best_threshold:.2f} at {best_accuracy:.3f} (paper picked 0.9)")

    by_threshold = dict(result.rows)
    # The paper's threshold must not be materially worse than the best.
    assert by_threshold[0.9] > best_accuracy - 0.02
    # All thresholds land in a sane band (the mechanism is a refinement,
    # not the main driver).
    assert max(by_threshold.values()) - min(by_threshold.values()) < 0.15


def test_flat_vs_multistage_ablation(benchmark, gcc_context, gcc_predictions):
    result = benchmark.pedantic(
        run_flat_ablation, args=(gcc_context,), kwargs={"epochs": 10},
        rounds=1, iterations=1,
    )
    print()
    print(result.render())
    # §V-A: both designs are viable; the tree must be competitive with
    # (or better than) the flat 19-way model it replaced.
    assert result.tree_vuc_accuracy > result.flat_vuc_accuracy - 0.05


def test_opt_level_breakdown(benchmark, gcc_context, gcc_predictions):
    result = benchmark.pedantic(
        run_opt_level_breakdown, args=(gcc_context,), rounds=1, iterations=1,
    )
    print()
    print(result.render())
    assert len(result.rows) == 4
    accuracies = {level: acc for level, acc, _n in result.rows}
    # Optimized code is harder (more type-blind word copies, fewer
    # redundant typed reloads): -O0 should be at least as easy as -O3.
    assert accuracies["-O0"] >= accuracies["-O3"] - 0.05
