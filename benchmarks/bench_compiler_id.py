"""§VIII — compiler identification (GCC vs Clang VUC classifier).

Paper reference: 100% accuracy, attributed to register-usage differences
between the two compilers' codegen.
"""

from repro.experiments import compiler_id


def test_compiler_identification(benchmark, gcc_context, clang_context):
    result = benchmark.pedantic(
        compiler_id.run, args=(gcc_context, clang_context),
        kwargs={"per_class": 3000}, rounds=1, iterations=1,
    )
    print()
    print(result.render())
    # Paper: 100%; our conventions differ in scratch rotation, frame base
    # and zero idiom, so near-perfect separation is expected.
    assert result.accuracy > 0.95
