"""§VII-B — comparison with DEBIN (plus TypeMiner and rule baselines).

Paper reference: CATI 0.84 vs DEBIN 0.73 on the 17-type task.

**Reproduction note (see EXPERIMENTS.md).** Our DEBIN/TypeMiner
stand-ins are deliberately *strong*: discriminative n-gram bags over the
variable's complete instruction trace, strictly richer than real
DEBIN's hand-crafted CRF unary features.  At this corpus scale
(30k training VUCs vs the paper's 22.4M) the linear full-trace models
are within a few points of — and can slightly exceed — the CNN.  The
paper's mechanism claim ("instruction context adds information that the
variable's own instructions lack") is validated like-for-like by the
window-size ablation (bench_ablation_window: w=10 clearly beats w=0
with the identical architecture); this bench asserts the defensible
invariants: every learned system lands in the same band, both beat the
expert-rule ladder, and CATI stays within noise of the strongest
trace-bag model despite predicting 19 classes through a 6-stage tree.
"""

from repro.experiments import debin_compare


def test_debin_comparison(benchmark, gcc_context, gcc_predictions):
    result = benchmark.pedantic(debin_compare.run, args=(gcc_context,), rounds=1, iterations=1)
    print()
    print(result.render())

    # Learned systems beat expert rules by a clear margin (the paper's
    # motivation for moving past hand-crafted heuristics).
    assert result.cati_accuracy > result.rules_accuracy + 0.05
    assert result.debin_accuracy > result.rules_accuracy + 0.05
    # CATI is competitive with the strongest full-trace baseline.
    assert result.cati_accuracy > result.debin_accuracy - 0.05, (
        f"CATI {result.cati_accuracy:.2f} vs DEBIN stand-in "
        f"{result.debin_accuracy:.2f}: gap exceeds tolerance"
    )
    # Everyone is genuinely learning (chance is ~1/17).
    for accuracy in (result.cati_accuracy, result.debin_accuracy,
                     result.typeminer_accuracy):
        assert accuracy > 0.5
    # Orphans are harder than rich-trace variables for every system —
    # the paper's §II-B premise.
    assert result.cati.orphan < result.cati.rich
    assert result.debin.orphan <= result.debin.rich + 0.02
