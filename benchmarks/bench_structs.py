"""Struct-layout recovery quality -> BENCH_structs.json.

Trains a mini model on a struct-heavy synthetic corpus, then measures
the posterior stage (:mod:`repro.posterior`) on held-out binaries:

1. **extract** — per-binary VUC windows with row-aligned access sites;
2. **posterior** — :func:`recover_layouts` with cross-function pooling
   and the ``min_accesses`` evidence floor (the PR's tentpole);
3. **baseline** — :func:`flat_baseline_layouts`: the same leaf
   posteriors voted per object with no pooling and no evidence floor,
   i.e. what a flat per-slot argmax gives;
4. **truth** — ``DW_AT_data_member_location`` layouts from the unstripped
   twins, keyed exactly like the pipeline keys objects.

Both recovered layout sets are scored field-by-field
(:func:`repro.eval.metrics.evaluate_layouts`); the acceptance gate is
the posterior's field-level F1 **strictly above** the flat baseline's.
A second gate asserts the engine path (``infer_binary(structs=True)``)
attaches layouts end to end.

Run directly: ``PYTHONPATH=src python benchmarks/bench_structs.py``
(``--smoke`` shrinks both corpora; the gates still apply).
"""

from __future__ import annotations

import dataclasses
import json
import sys
from pathlib import Path

from repro.codegen.compilers import GccCompiler
from repro.codegen.progen import DEFAULT_TYPE_WEIGHTS, GeneratorConfig
from repro.codegen.strip import strip
from repro.core.config import CatiConfig
from repro.core.pipeline import Cati, predictions_from_probs
from repro.core.types import TypeName
from repro.embedding.word2vec import Word2VecConfig
from repro.eval.metrics import FieldReport, evaluate_layouts
from repro.eval.reports import render_field_report
from repro.experiments.speed import extents_from_debug
from repro.posterior import (
    flat_baseline_layouts,
    layouts_to_fields,
    recover_layouts,
    truth_layouts,
)
from repro.vuc.dataset import VucDataset, extract_labeled_vucs, extract_unlabeled_vucs

_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_structs.json"


def _gate(condition: bool, message: str) -> None:
    if not condition:
        print(f"bench_structs: FAIL: {message}", file=sys.stderr)
        sys.exit(1)


def _struct_heavy_config() -> GeneratorConfig:
    """A generator profile where struct objects dominate the frame.

    Struct and struct-pointer locals are heavily over-weighted, every
    second struct pointer becomes a spilled parameter, and access counts
    are raised so field offsets accumulate pooled evidence.
    """
    weights = dict(DEFAULT_TYPE_WEIGHTS)
    weights[TypeName.STRUCT] = 30.0
    weights[TypeName.STRUCT_POINTER] = 30.0
    return GeneratorConfig(
        type_weights=weights,
        orphan_fraction=0.15,
        normal_accesses=(4, 10),
        array_fraction=0.0,
        struct_param_fraction=0.5,
    )


def _train(seeds: range, gen: GeneratorConfig, config: CatiConfig) -> Cati:
    compiler = GccCompiler()
    dataset = VucDataset(window=config.window)
    for seed in seeds:
        binary = compiler.compile_fresh(
            seed=seed, name=f"train-{seed}", opt_level=0, config=gen)
        dataset.extend(extract_labeled_vucs(binary, app="structs",
                                            window=config.window,
                                            member_labels=True))
    print(f"bench_structs: training on {len(dataset)} VUCs "
          f"({dataset.n_variables()} variables)", flush=True)
    return Cati(config).train(dataset)


def _report_dict(report: FieldReport) -> dict:
    return {k: (round(v, 4) if isinstance(v, float) else v)
            for k, v in dataclasses.asdict(report).items()}


def main() -> None:
    smoke = "--smoke" in sys.argv
    train_seeds = range(9000, 9008 if smoke else 9012)
    eval_seeds = range(9500, 9503 if smoke else 9508)

    gen = _struct_heavy_config()
    config = CatiConfig(
        epochs=15, fc_width=128, posterior_enabled=True,
        word2vec=Word2VecConfig(dim=32, window=5, epochs=3,
                                subsample_pairs=0.4))
    cati = _train(train_seeds, gen, config)
    engine = cati.engine
    compiler = GccCompiler()

    pooled_fields: dict = {}
    baseline_fields: dict = {}
    truth_fields: dict = {}
    n_layouts = n_engine_layouts = 0
    for seed in eval_seeds:
        binary = compiler.compile_fresh(
            seed=seed, name=f"eval-{seed}", opt_level=0, config=gen)
        stripped = strip(binary)
        extents = extents_from_debug(binary)

        sites: list = []
        pairs = extract_unlabeled_vucs(stripped, extents, config.window,
                                       sites=sites)
        windows = [tokens for _vid, tokens in pairs]
        variable_ids = [vid for vid, _tokens in pairs]
        probs = engine.leaf_proba(windows)
        predictions = predictions_from_probs(
            probs, variable_ids, config.confidence_threshold)

        posterior = recover_layouts(
            predictions, probs, variable_ids, sites,
            threshold=config.confidence_threshold,
            min_accesses=config.posterior_min_accesses)
        baseline = flat_baseline_layouts(
            predictions, probs, variable_ids, sites,
            threshold=config.confidence_threshold)
        n_layouts += len(posterior)
        pooled_fields.update(layouts_to_fields(posterior))
        baseline_fields.update(layouts_to_fields(baseline))
        truth_fields.update(truth_layouts(binary, scope_name=stripped.name))

        # End-to-end path: the engine must attach the same stage's output.
        result = cati.infer_binary(stripped, extents, structs=True)
        _gate(result.layouts is not None,
              "infer_binary(structs=True) attached no layouts")
        n_engine_layouts += len(result.layouts)

    _gate(bool(truth_fields), "eval corpus produced no true struct layouts")
    _gate(n_layouts > 0, "posterior stage recovered no layouts")
    _gate(n_engine_layouts == n_layouts,
          "engine path and library path disagree on layout count")

    posterior_report = evaluate_layouts(pooled_fields, truth_fields)
    baseline_report = evaluate_layouts(baseline_fields, truth_fields)
    print(render_field_report(posterior_report, title="posterior (pooled)"))
    print()
    print(render_field_report(baseline_report, title="flat per-slot baseline"))

    _gate(posterior_report.field_f1 > baseline_report.field_f1,
          f"posterior field F1 ({posterior_report.field_f1:.4f}) must beat "
          f"the flat baseline ({baseline_report.field_f1:.4f})")

    body = {
        "bench": "structs",
        "smoke": smoke,
        "corpus": {"train_binaries": len(train_seeds),
                   "eval_binaries": len(eval_seeds),
                   "true_objects": posterior_report.n_objects,
                   "true_fields": posterior_report.n_true_fields},
        "posterior": _report_dict(posterior_report),
        "baseline": _report_dict(baseline_report),
        "field_f1_lift": round(
            posterior_report.field_f1 - baseline_report.field_f1, 4),
    }
    _ARTIFACT.write_text(json.dumps(body, indent=2, sort_keys=True) + "\n")
    print(f"bench_structs: OK -> {_ARTIFACT}")


if __name__ == "__main__":
    main()
