"""Table V + Fig. 2 — per-type stage recalls, accuracy, support and the
same-type clustering statistics.

Paper reference: overall same-type clustering >53%; double/int perform
well (ACC 0.91/0.93) with high c-rates; struct* dominant support; rare
types (short, long long) score near zero.
"""

from repro.core.types import TypeName
from repro.experiments import table5


def test_table5_per_type_and_clustering(benchmark, gcc_context, gcc_predictions):
    result = benchmark.pedantic(table5.run, args=(gcc_context,), rounds=1, iterations=1)
    print()
    print(result.render())

    rows = {row.type_name: row for row in result.rows}

    # Fig. 2 / §II-B: the clustering phenomenon holds corpus-wide.
    assert result.overall_c_rate > 0.40, (
        f"overall clustering {result.overall_c_rate:.2%} (paper: >53%)"
    )

    # Dominant supports: int and struct* are the two largest (Table V).
    supports = sorted(rows.values(), key=lambda r: -r.support)
    top_two = {supports[0].type_name, supports[1].type_name}
    assert TypeName.INT in top_two or TypeName.STRUCT_POINTER in top_two

    # Strong types: int and double do well end to end.
    assert rows[TypeName.INT].acc > 0.6
    if TypeName.DOUBLE in rows:
        assert rows[TypeName.DOUBLE].acc > 0.5

    # Rare exotic int types perform poorly (paper: 0.00-0.13).
    for rare in (TypeName.LONG_LONG_INT, TypeName.LONG_LONG_UNSIGNED_INT):
        if rare in rows:
            assert rows[rare].acc < 0.5

    # Stage-1 recall is high for nearly every type (paper column S1-R).
    strong_s1 = [r for r in rows.values() if r.support >= 30]
    assert sum(r.s1_recall > 0.6 for r in strong_s1) >= len(strong_s1) * 0.7
