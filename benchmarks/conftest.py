"""Benchmark fixtures: the full trained contexts, cached on disk.

The first run trains CATI on the full GCC (and, for Table VII, Clang)
corpus (~5 minutes each on one CPU core); subsequent runs reload the
cached models from ``.cache/`` in seconds.  Each bench then measures the
table/figure *generation* step and prints the reproduced table next to
the paper's reference values.
"""

import pytest


@pytest.fixture(scope="session")
def gcc_context():
    from repro.experiments.common import get_context

    return get_context("gcc")


@pytest.fixture(scope="session")
def clang_context():
    from repro.experiments.common import get_context

    return get_context("clang")


@pytest.fixture(scope="session")
def gcc_predictions(gcc_context):
    """Prediction cache over the GCC test corpus (built once)."""
    from repro.experiments.common import predictions_for

    return predictions_for(gcc_context)
