"""Table III — per-application, per-stage P/R/F1 at VUC granularity.

Paper reference: Stage 1 F1 ~0.86-0.93 per app; Stage 2-1 (pointer
subkinds) is the weakest (~0.63-0.89); Stage 2-2 ~0.74-0.92.
"""

import numpy as np

from repro.experiments import table3


def _mean_f1(cells, stage):
    values = [f1 for _p, _r, f1 in cells[stage].values()]
    return float(np.mean(values)) if values else 0.0


def test_table3_vuc_prediction(benchmark, gcc_context, gcc_predictions):
    result = benchmark.pedantic(table3.run, args=(gcc_context,), rounds=1, iterations=1)
    print()
    print(result.render())

    assert len(result.apps) == 12
    stage1 = _mean_f1(result.cells, "Stage1")
    stage21 = _mean_f1(result.cells, "Stage2-1")
    stage22 = _mean_f1(result.cells, "Stage2-2")
    # Paper's robust ordering: Stage 1 strongest, Stage 2-1 weakest of the
    # top stages.
    assert stage1 > 0.75, f"Stage1 mean F1 {stage1:.2f}"
    assert stage1 > stage21, "pointer-vs-non-pointer must beat pointer subkinds"
    assert stage22 > stage21
    # gzip/nano/sed have no float-family variables: Stage 3-2 cell absent
    for app in ("gzip", "nano", "sed"):
        assert app not in result.cells["Stage3-2"]
