"""Labeled-dataset assembly tests: labels match generator truth, grouping
is consistent, helpers behave.
"""

import pytest

from repro.codegen import GccCompiler, debug_variables
from repro.core.types import TypeName
from repro.vuc.dataset import VucDataset, extract_labeled_vucs, target_signature


@pytest.fixture(scope="module")
def binary():
    return GccCompiler().compile_fresh(seed=21, name="ds", opt_level=0)


@pytest.fixture(scope="module")
def dataset(binary):
    return extract_labeled_vucs(binary, app="ds")


class TestExtraction:
    def test_nonempty(self, dataset):
        assert len(dataset) > 50
        assert dataset.n_variables() > 10

    def test_window_shape(self, dataset):
        for sample in dataset.samples[:20]:
            assert len(sample.tokens) == 21
            assert all(len(triple) == 3 for triple in sample.tokens)

    def test_requires_debug_info(self, binary):
        from repro.codegen import strip

        with pytest.raises(ValueError):
            extract_labeled_vucs(strip(binary))

    def test_labels_match_generator_truth(self, binary, dataset):
        """Every VUC's label must equal the type the generator assigned
        to the variable whose slot the target instruction touches."""
        # Build generator truth: function index -> slot offset range -> label
        truth = {}
        for func_index, lowered in enumerate(binary.lowered):
            for slot in lowered.slots.values():
                truth[(func_index, slot.offset)] = (slot.var.label, slot.size)
        checked = 0
        for sample in dataset.samples:
            scope, slot_part = sample.variable_id.rsplit("::", 1)
            func_index = int(scope.rsplit("/", 1)[1])
            offset = int(slot_part.replace("rbp", "").replace("rsp", ""))
            # find the covering slot
            for (fi, off), (label, size) in truth.items():
                if fi == func_index and off <= offset < off + size:
                    assert sample.label is label
                    checked += 1
                    break
        assert checked == len(dataset.samples)

    def test_vucs_grouped_by_variable_share_label(self, dataset):
        for vucs in dataset.by_variable().values():
            labels = {v.label for v in vucs}
            assert len(labels) == 1

    def test_app_and_compiler_recorded(self, dataset):
        assert all(s.app == "ds" for s in dataset.samples)
        assert all(s.compiler == "gcc" for s in dataset.samples)


class TestDatasetHelpers:
    def test_label_counts_consistent(self, dataset):
        assert sum(dataset.label_counts().values()) == len(dataset)
        assert sum(dataset.variable_label_counts().values()) == dataset.n_variables()

    def test_filter_app(self, dataset):
        assert len(dataset.filter_app("ds")) == len(dataset)
        assert len(dataset.filter_app("other")) == 0

    def test_extend_merges(self, dataset):
        merged = VucDataset(window=dataset.window)
        merged.extend(dataset)
        merged.extend(dataset)
        assert len(merged) == 2 * len(dataset)

    def test_extend_rejects_window_mismatch(self, dataset):
        other = VucDataset(window=5)
        with pytest.raises(ValueError):
            other.extend(dataset)

    def test_subsample_keeps_whole_variables(self, dataset):
        sub = dataset.subsample(len(dataset) // 2, seed=1)
        assert len(sub) <= len(dataset) // 2 + 30
        full_groups = dataset.by_variable()
        for vid, vucs in sub.by_variable().items():
            assert len(vucs) == len(full_groups[vid])

    def test_subsample_noop_when_under_limit(self, dataset):
        assert dataset.subsample(10**9) is dataset

    def test_target_signature_is_target_row(self, dataset):
        sample = dataset.samples[0]
        assert target_signature(sample) == " ".join(sample.tokens[10])

    def test_apps_order_stable(self, dataset):
        assert dataset.apps() == ["ds"]
