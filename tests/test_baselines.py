"""Baseline tests: features, linear model, DEBIN/TypeMiner stand-ins,
rule ladder.
"""

import numpy as np
import pytest

from repro.baselines.debin import DebinConfig, DebinModel
from repro.baselines.features import variable_feature_vector, variable_features
from repro.baselines.linear import SoftmaxRegression
from repro.baselines.rules import classify_variable
from repro.baselines.typeminer import TypeMinerConfig, TypeMinerModel
from repro.core.types import TypeName
from repro.vuc.dataset import LabeledVuc, VucDataset


def _vuc(target, label, vid):
    pad = ("nop", "BLANK", "BLANK")
    return LabeledVuc(tokens=(pad, target, pad), label=label, variable_id=vid,
                      binary="b", app="a", compiler="gcc")


class TestFeatures:
    def test_vector_normalized(self):
        vec = variable_feature_vector([_vuc(("movl", "$IMM", "-IMM(%rbp)"), TypeName.INT, "v")])
        assert vec.shape == (512,)
        assert np.isclose(np.linalg.norm(vec), 1.0)

    def test_deterministic(self):
        vucs = [_vuc(("movl", "$IMM", "-IMM(%rbp)"), TypeName.INT, "v")]
        assert np.array_equal(variable_feature_vector(vucs), variable_feature_vector(vucs))

    def test_different_instructions_differ(self):
        a = variable_feature_vector([_vuc(("movl", "$IMM", "-IMM(%rbp)"), TypeName.INT, "v")])
        b = variable_feature_vector([_vuc(("fldt", "BLANK", "-IMM(%rbp)"), TypeName.LONG_DOUBLE, "v")])
        assert not np.array_equal(a, b)

    def test_matrix_shape(self):
        groups = {
            "v1": [_vuc(("movl", "$IMM", "-IMM(%rbp)"), TypeName.INT, "v1")],
            "v2": [_vuc(("movsd", "%xmm0", "-IMM(%rbp)"), TypeName.DOUBLE, "v2")],
        }
        ids, matrix = variable_features(groups, dim=128)
        assert ids == ["v1", "v2"]
        assert matrix.shape == (2, 128)


class TestSoftmaxRegression:
    def test_learns_separable_data(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(300, 10)).astype(np.float32)
        y = (x[:, 0] > 0).astype(np.int64)
        model = SoftmaxRegression(10, 2)
        model.fit(x, y, epochs=60)
        assert (model.predict(x) == y).mean() > 0.9

    def test_proba_normalized(self):
        model = SoftmaxRegression(4, 3)
        probs = model.predict_proba(np.zeros((5, 4), dtype=np.float32))
        assert np.allclose(probs.sum(axis=1), 1.0)


def _toy_corpus():
    """Two separable types + per-function grouping for pairwise factors."""
    int_row = ("movl", "$IMM", "-IMM(%rbp)")
    dbl_row = ("movsd", "%xmm0", "-IMM(%rbp)")
    samples = []
    for f in range(12):
        for v in range(2):
            vid = f"b/f{f}::rbp-{v * 8 + 4}"
            row, label = (int_row, "int") if v == 0 else (dbl_row, "double")
            for _ in range(2):
                samples.append(_vuc(row, TypeName.INT if v == 0 else TypeName.DOUBLE, vid))
    ds = VucDataset(window=1, samples=samples)
    groups = ds.by_variable()
    labels = {vid: ("int" if "rbp-4" in vid else "double") for vid in groups}
    return groups, labels


class TestDebin:
    def test_learns_toy_task(self):
        groups, labels = _toy_corpus()
        model = DebinModel(["int", "double"], DebinConfig(epochs=80))
        model.train(groups, labels)
        predictions = model.predict(groups)
        acc = sum(predictions[vid] == labels[vid] for vid in groups) / len(groups)
        assert acc > 0.9

    def test_predict_before_train_raises(self):
        model = DebinModel(["int"])
        with pytest.raises(RuntimeError):
            model.predict({})

    def test_pairwise_matrix_is_stochastic(self):
        groups, labels = _toy_corpus()
        model = DebinModel(["int", "double"], DebinConfig(epochs=10))
        model.train(groups, labels)
        rows = np.exp(model.log_pairwise).sum(axis=1)
        assert np.allclose(rows, 1.0)

    def test_empty_predict(self):
        groups, labels = _toy_corpus()
        model = DebinModel(["int", "double"], DebinConfig(epochs=5)).train(groups, labels)
        assert model.predict({}) == {}


class TestTypeMiner:
    def test_learns_toy_task(self):
        groups, labels = _toy_corpus()
        model = TypeMinerModel(["int", "double"], TypeMinerConfig(epochs=80))
        model.train(groups, labels)
        predictions = model.predict(groups)
        acc = sum(predictions[vid] == labels[vid] for vid in groups) / len(groups)
        assert acc > 0.9

    def test_min_trace_drops_short_traces(self):
        groups, labels = _toy_corpus()
        model = TypeMinerModel(["int", "double"], TypeMinerConfig(epochs=5, min_trace=3))
        model.train(groups, labels)
        predictions = model.predict(groups)
        assert predictions == {}  # every toy variable has only 2 VUCs


class TestRules:
    def _classify(self, *targets, label=TypeName.INT):
        vucs = [_vuc(t, label, "v") for t in targets]
        return classify_variable(vucs)

    def test_long_double(self):
        assert self._classify(("fldt", "-IMM(%rbp)", "BLANK")) is TypeName.LONG_DOUBLE

    def test_double(self):
        assert self._classify(("movsd", "%xmm0", "-IMM(%rbp)")) is TypeName.DOUBLE

    def test_float(self):
        assert self._classify(("movss", "%xmm0", "-IMM(%rbp)")) is TypeName.FLOAT

    def test_char_via_sign_extension(self):
        assert self._classify(("movsbl", "-IMM(%rbp)", "%eax")) is TypeName.CHAR

    def test_uchar_via_zero_extension(self):
        assert self._classify(("movzbl", "-IMM(%rbp)", "%eax")) is TypeName.UNSIGNED_CHAR

    def test_bool_via_setcc(self):
        result = self._classify(
            ("movb", "%al", "-IMM(%rbp)"),
            ("sete", "%al", "BLANK"),
        )
        assert result is TypeName.BOOL

    def test_int_default(self):
        assert self._classify(("movl", "$IMM", "-IMM(%rbp)")) is TypeName.INT

    def test_pointer_via_deref(self):
        result = self._classify(
            ("mov", "-IMM(%rbp)", "%rax"),
            ("mov", "(%rax)", "%rdx"),
        )
        assert result in (TypeName.ARITH_POINTER, TypeName.STRUCT_POINTER)

    def test_struct_pointer_via_member_offset(self):
        result = self._classify(
            ("mov", "-IMM(%rbp)", "%rax"),
            ("mov", "IMM(%rax)", "%rdx"),
        )
        assert result is TypeName.STRUCT_POINTER

    def test_rules_beat_chance_on_corpus(self, small_corpus):
        from repro.baselines.rules import predict
        from repro.eval.metrics import accuracy

        groups = small_corpus.test.by_variable()
        predictions = predict(groups)
        truth = {vid: vucs[0].label for vid, vucs in groups.items()}
        acc = accuracy([truth[v] for v in predictions], [predictions[v] for v in predictions])
        assert acc > 0.15  # well above 1/19 chance
