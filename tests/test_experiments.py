"""Experiment-harness smoke tests on a mini context (no full training)."""

import numpy as np
import pytest

from repro.experiments import table1, table3, table4, table5, table6, fig6, speed
from repro.experiments.common import ExperimentContext


@pytest.fixture(scope="module")
def mini_context(small_corpus, mini_cati, mini_config):
    return ExperimentContext(
        corpus=small_corpus, cati=mini_cati, config=mini_config, compiler_name="gcc",
    )


class TestTable1:
    def test_runs_and_renders(self, small_corpus):
        result = table1.run(small_corpus)
        text = result.render()
        assert "Table I" in text
        assert result.train.n_vucs == len(small_corpus.train)
        assert result.test.n_vucs == len(small_corpus.test)

    def test_orphan_invariants(self, small_corpus):
        result = table1.run(small_corpus)
        assert result.train.uncertain_1 <= result.train.variables_with_1_vuc
        assert result.train.uncertain_2 <= result.train.variables_with_2_vucs

    def test_uncertain_examples_mined(self, small_corpus):
        result = table1.run(small_corpus)
        assert len(result.examples) >= 1
        for _sig, a, b in result.examples:
            assert a is not b


class TestTable3And4:
    def test_table3_cells(self, mini_context):
        result = table3.run(mini_context)
        assert set(result.cells) == {
            "Stage1", "Stage2-1", "Stage2-2", "Stage3-1", "Stage3-2", "Stage3-3",
        }
        for per_app in result.cells.values():
            for p, r, f1 in per_app.values():
                assert 0.0 <= p <= 1.0 and 0.0 <= r <= 1.0 and 0.0 <= f1 <= 1.0
        assert "Table III" in result.render()

    def test_table4_same_apps(self, mini_context):
        result = table4.run(mini_context)
        assert result.apps == mini_context.corpus.test.apps()
        assert "voting" in result.render()

    def test_stage1_outperforms_stage2_1(self, mini_context):
        """The paper's robust ordering: pointer-vs-non-pointer is easier
        than pointer-subkind classification."""
        r3 = table3.run(mini_context)
        stage1 = np.mean([f1 for _p, _r, f1 in r3.cells["Stage1"].values()])
        stage21 = np.mean([f1 for _p, _r, f1 in r3.cells["Stage2-1"].values()])
        assert stage1 > stage21


class TestTable5:
    def test_rows_and_clustering(self, mini_context):
        result = table5.run(mini_context)
        assert len(result.rows) >= 8
        for row in result.rows:
            assert 0.0 <= row.s1_recall <= 1.0
            assert 0.0 <= row.acc <= 1.0
            assert row.support > 0
            assert row.cnt_same <= row.cnt_all + 1e-9
        assert result.overall_c_rate > 0.3
        assert "c-rate" in result.render()

    def test_supports_sum_to_variables(self, mini_context):
        result = table5.run(mini_context)
        assert sum(r.support for r in result.rows) == mini_context.corpus.test.n_variables()


class TestTable6:
    def test_totals_weighted(self, mini_context):
        result = table6.run(mini_context)
        assert len(result.rows) == len(mini_context.corpus.test.apps())
        assert result.total_vuc_support == len(mini_context.corpus.test)
        assert result.total_variable_support == mini_context.corpus.test.n_variables()
        assert 0.0 <= result.total_vuc_accuracy <= 1.0
        assert "Total" in result.render()

    def test_accuracy_above_chance(self, mini_context):
        result = table6.run(mini_context)
        assert result.total_variable_accuracy > 0.25


class TestFig6:
    def test_example_and_heatmap(self, mini_context):
        result = fig6.run(mini_context, n_distribution_vucs=12)
        assert len(result.example_lines) == 21
        assert result.heatmap.shape == (21, 10)
        text = result.render()
        assert "Fig. 6a" in text and "Fig. 6b" in text


class TestSpeed:
    def test_speed_measured(self, mini_context):
        result = speed.run(mini_context, n_binaries=2)
        assert result.n_binaries == 2
        assert result.per_binary_total_s > 0
        assert result.n_variables > 0
        assert "per binary" in result.render()


class TestReports:
    def test_render_table_alignment(self):
        from repro.eval.reports import render_table

        text = render_table(["a", "bb"], [(1, 2.5), ("x", "y")], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.50" in text

    def test_stage_app_table_missing_cell_dash(self):
        from repro.eval.reports import render_stage_app_table

        text = render_stage_app_table(
            {"Stage1": {"bash": (0.9, 0.8, 0.85)}}, ["bash", "gzip"], "X",
        )
        assert "-" in text
        assert "0.90" in text

    def test_render_confusion(self):
        import numpy as np

        from repro.eval.reports import render_confusion

        matrix = np.array([[5, 1], [0, 7]])
        text = render_confusion(matrix, ["int", "long unsigned int"], title="C")
        assert "true\\pred" in text
        assert "long unsi" in text  # truncated label
        assert "7" in text
