"""Cross-module integration tests: the paper's qualitative claims must
hold end-to-end on the small corpus.
"""

import pytest

from repro.core.types import STAGE_SPECS, Stage, TypeName, stage_label
from repro.eval.metrics import accuracy


class TestEndToEnd:
    def test_stage1_is_strong(self, mini_cache):
        """Pointer vs non-pointer is the easy stage (paper: ~0.9 F1)."""
        from repro.experiments.common import stage_vuc_metrics

        report = stage_vuc_metrics(mini_cache, Stage.STAGE1)
        assert report.weighted_f1 > 0.7

    def test_voting_does_not_hurt_much(self, mini_cache):
        """Variable-level (voted) accuracy ≈ VUC accuracy + ~3pts in the
        paper; at mini scale we assert it is not materially worse."""
        from repro.experiments.common import (
            variable_leaf_predictions,
            vuc_leaf_predictions,
        )

        y_true_v, y_pred_v = vuc_leaf_predictions(mini_cache)
        vuc_acc = accuracy(y_true_v, y_pred_v)
        y_true_var, y_pred_var = variable_leaf_predictions(mini_cache)
        var_acc = accuracy(y_true_var, y_pred_var)
        assert var_acc > vuc_acc - 0.05

    def test_context_beats_no_context(self, mini_cati, small_corpus):
        """CATI's thesis: instruction context helps.  The same classifier
        evaluated on windows with everything except the target BLANKed
        must do worse."""
        from repro.vuc.generalize import BLANK_TOKENS

        samples = small_corpus.test.samples[:400]
        full_windows = [s.tokens for s in samples]
        target_only = [
            tuple(t if i == 10 else BLANK_TOKENS for i, t in enumerate(s.tokens))
            for s in samples
        ]
        labels = [s.label for s in samples]
        full_acc = accuracy(labels, mini_cati.predict_vucs(full_windows))
        bare_acc = accuracy(labels, mini_cati.predict_vucs(target_only))
        assert full_acc > bare_acc

    def test_unseen_binary_round_trip(self, mini_cati):
        """Compile → strip → infer → compare to DWARF ground truth."""
        from repro.codegen import GccCompiler, debug_variables, strip
        from repro.experiments.speed import extents_from_debug

        binary = GccCompiler().compile_fresh(seed=31337, name="rt", opt_level=1)
        extents = extents_from_debug(binary)
        predictions = mini_cati.infer_binary(strip(binary), extents)
        truth = {}
        for func_index, func in enumerate(binary.functions):
            for record in debug_variables(binary):
                if record.function != func.name:
                    continue
                base = "rbp" if record.frame_offset < 0 else "rsp"
                truth[f"rt/{func_index}::{base}{record.frame_offset:+d}"] = record.type_label
        assert predictions
        resolved = [p for p in predictions if p.variable_id in truth]
        assert len(resolved) == len(predictions)
        acc = sum(p.predicted is truth[p.variable_id] for p in resolved) / len(resolved)
        assert acc > 0.25

    def test_stage_metrics_consistent_with_routing(self, mini_cache, small_corpus):
        """Per-stage sample counts must equal the number of test VUCs
        whose true type routes through that stage."""
        from repro.experiments.common import stage_vuc_metrics

        for stage in STAGE_SPECS:
            expected = sum(
                1 for s in small_corpus.test
                if stage_label(s.label, stage) is not None
            )
            report = stage_vuc_metrics(mini_cache, stage)
            assert report.n_samples == expected


class TestCompilerTransfer:
    def test_clang_corpus_differs_but_extracts(self):
        from repro.codegen import ClangCompiler
        from repro.vuc.dataset import extract_labeled_vucs

        binary = ClangCompiler().compile_fresh(seed=5, name="cl", opt_level=0)
        dataset = extract_labeled_vucs(binary)
        assert len(dataset) > 50
        # Clang slots are rsp-based
        assert all("rsp" in s.variable_id for s in dataset.samples)

    def test_compiler_id_features_separable(self):
        """GCC and Clang VUCs must be linearly separable to high accuracy
        (paper: 100%)."""
        import numpy as np

        from repro.baselines.linear import SoftmaxRegression
        from repro.codegen import ClangCompiler, GccCompiler
        from repro.experiments.compiler_id import _vuc_features
        from repro.vuc.dataset import extract_labeled_vucs

        gcc_ds = extract_labeled_vucs(GccCompiler().compile_fresh(seed=8, name="g", opt_level=0))
        clang_ds = extract_labeled_vucs(ClangCompiler().compile_fresh(seed=8, name="c", opt_level=0))
        x = np.stack([_vuc_features(s) for s in list(gcc_ds) + list(clang_ds)])
        y = np.concatenate([np.zeros(len(gcc_ds), dtype=np.int64),
                            np.ones(len(clang_ds), dtype=np.int64)])
        model = SoftmaxRegression(x.shape[1], 2)
        model.fit(x, y, epochs=30)
        assert (model.predict(x) == y).mean() > 0.95
