"""Embedding tests: vocabulary, Word2Vec training, VUC encoding."""

import numpy as np
import pytest

from repro.embedding.encoder import VucEncoder
from repro.embedding.vocab import UNK, Vocab
from repro.embedding.word2vec import Word2Vec, Word2VecConfig


class TestVocab:
    def test_unk_is_id_zero(self):
        vocab = Vocab.build([["a", "b"]])
        assert vocab.id_of(UNK) == 0
        assert vocab.id_of("never-seen") == 0

    def test_frequency_order(self):
        vocab = Vocab.build([["a", "a", "a", "b", "b", "c"]])
        assert vocab.id_of("a") < vocab.id_of("b") < vocab.id_of("c")

    def test_min_count_drops_rare(self):
        vocab = Vocab.build([["a", "a", "b"]], min_count=2)
        assert "a" in vocab
        assert "b" not in vocab
        assert vocab.id_of("b") == 0

    def test_dropped_mass_goes_to_unk(self):
        vocab = Vocab.build([["a", "a", "b", "c"]], min_count=2)
        assert vocab.counts[0] == 2  # b + c

    def test_encode(self):
        vocab = Vocab.build([["a", "b"]])
        ids = vocab.encode(["a", "b", "zzz"])
        assert ids.dtype == np.int32
        assert ids[2] == 0

    def test_unigram_table_normalized(self):
        vocab = Vocab.build([["a"] * 10 + ["b"]])
        table = vocab.unigram_table()
        assert table.shape == (len(vocab),)
        assert np.isclose(table.sum(), 1.0)
        assert table[vocab.id_of("a")] > table[vocab.id_of("b")]

    def test_coverage(self):
        vocab = Vocab.build([["a", "b"]])
        assert vocab.coverage([["a", "b"]]) == 1.0
        assert vocab.coverage([["a", "x"]]) == 0.5
        assert vocab.coverage([]) == 1.0


class TestWord2Vec:
    @pytest.fixture(scope="class")
    def trained(self):
        # Two disjoint co-occurrence clusters.
        seqs = ([["a", "b", "c", "a", "b", "c"]] * 60
                + [["x", "y", "z", "x", "y", "z"]] * 60)
        vocab = Vocab.build(seqs)
        config = Word2VecConfig(dim=16, epochs=4, seed=1, subsample_threshold=1.0)
        return Word2Vec(vocab, config).train(seqs)

    def test_no_nan(self, trained):
        assert not np.isnan(trained.vectors).any()

    def test_cluster_neighbors(self, trained):
        """Co-occurring tokens must be more similar than cross-cluster ones."""

        def cosine(u, v):
            return float(u @ v / (np.linalg.norm(u) * np.linalg.norm(v) + 1e-9))

        same = cosine(trained["a"], trained["b"])
        cross = cosine(trained["a"], trained["x"])
        assert same > cross

    def test_vector_shape(self, trained):
        assert trained["a"].shape == (16,)

    def test_unknown_token_gets_unk_vector(self, trained):
        assert np.array_equal(trained["qqq"], trained.vectors[0])

    def test_save_load_round_trip(self, trained, tmp_path):
        path = str(tmp_path / "w2v.npz")
        trained.save(path)
        loaded = Word2Vec.load(path)
        assert np.array_equal(loaded.vectors, trained.vectors)
        assert loaded.vocab.token_to_id == trained.vocab.token_to_id

    def test_empty_training_is_noop(self):
        vocab = Vocab.build([["a"]])
        model = Word2Vec(vocab, Word2VecConfig(dim=8, epochs=1))
        model.train([])  # must not raise
        assert model.vectors.shape == (len(vocab), 8)

    def test_deterministic(self):
        seqs = [["a", "b", "c"] * 5] * 20
        vocab = Vocab.build(seqs)
        config = Word2VecConfig(dim=8, epochs=2, seed=3)
        a = Word2Vec(vocab, config).train(seqs)
        b = Word2Vec(vocab, config).train(seqs)
        assert np.array_equal(a.vectors, b.vectors)


class TestEncoder:
    @pytest.fixture(scope="class")
    def encoder(self):
        seqs = [["mov", "%rax", "%rbx", "add", "$IMM", "%rax"]] * 30
        vocab = Vocab.build(seqs)
        model = Word2Vec(vocab, Word2VecConfig(dim=32, epochs=1)).train(seqs)
        return VucEncoder(model)

    def test_dimensions(self, encoder):
        assert encoder.token_dim == 32
        assert encoder.instruction_dim == 96

    def test_window_shape(self, encoder):
        window = [("mov", "%rax", "%rbx")] * 21
        matrix = encoder.encode_window(window)
        assert matrix.shape == (21, 96)
        assert matrix.dtype == np.float32

    def test_instruction_concatenation_order(self, encoder):
        window = [("mov", "%rax", "%rbx")]
        matrix = encoder.encode_window(window)
        assert np.array_equal(matrix[0, :32], encoder.embedding["mov"])
        assert np.array_equal(matrix[0, 32:64], encoder.embedding["%rax"])
        assert np.array_equal(matrix[0, 64:], encoder.embedding["%rbx"])

    def test_batch_shape(self, encoder):
        windows = [[("mov", "%rax", "%rbx")] * 21] * 5
        batch = encoder.encode_batch(windows)
        assert batch.shape == (5, 21, 96)

    def test_empty_batch(self, encoder):
        assert encoder.encode_batch([]).shape[0] == 0

    def test_empty_batch_keeps_window_length(self, encoder):
        """Regression: with a declared length, an empty batch must come
        back [0, L, C] (not [0, 0, C]) so downstream reshapes/concats
        over chunked corpora keep working."""
        batch = encoder.encode_batch([], length=21)
        assert batch.shape == (0, 21, 96)
        assert batch.dtype == np.float32
        ids = encoder.encode_ids([], length=21)
        assert ids.shape == (0, 21, 3)

    def test_encode_ids_matches_batch(self, encoder):
        windows = [[("mov", "%rax", "%rbx"), ("add", "$IMM", "%rax")]] * 3
        ids = encoder.encode_ids(windows)
        assert ids.shape == (3, 2, 3)
        vectors = encoder.embedding.vectors[ids.reshape(-1)].reshape(3, 2, 96)
        assert np.allclose(encoder.encode_batch(windows), vectors)

    def test_ragged_windows_raise(self, encoder):
        windows = [
            [("mov", "%rax", "%rbx")] * 2,
            [("mov", "%rax", "%rbx")] * 3,
        ]
        with pytest.raises(ValueError):
            encoder.encode_batch(windows)
