"""Taxonomy invariants: 19 leaves, consistent stage routing, DEBIN map."""

import pytest

from repro.core.types import (
    ALL_STAGES,
    ALL_TYPES,
    CHAR_FAMILY,
    DEBIN_TYPES,
    FLOAT_FAMILY,
    INT_FAMILY,
    POINTER_TYPES,
    STAGE_SPECS,
    Stage,
    TypeName,
    stage_label,
    stage_path,
    to_debin_label,
)


class TestTaxonomyShape:
    def test_exactly_19_types(self):
        assert len(ALL_TYPES) == 19
        assert len(set(ALL_TYPES)) == 19

    def test_three_pointer_types(self):
        assert len(POINTER_TYPES) == 3

    def test_families_partition_stage3(self):
        assert len(CHAR_FAMILY) == 2
        assert len(FLOAT_FAMILY) == 3
        assert len(INT_FAMILY) == 9  # 8 int types + enum

    def test_six_stages(self):
        assert len(ALL_STAGES) == 6
        assert set(STAGE_SPECS) == set(ALL_STAGES)

    def test_stage_class_counts_match_paper(self):
        assert len(STAGE_SPECS[Stage.STAGE1].labels) == 2
        assert len(STAGE_SPECS[Stage.STAGE2_1].labels) == 3
        assert len(STAGE_SPECS[Stage.STAGE2_2].labels) == 5
        assert len(STAGE_SPECS[Stage.STAGE3_1].labels) == 2
        assert len(STAGE_SPECS[Stage.STAGE3_2].labels) == 3
        assert len(STAGE_SPECS[Stage.STAGE3_3].labels) == 9


class TestRouting:
    def test_every_type_starts_at_stage1(self):
        for t in ALL_TYPES:
            path = stage_path(t)
            assert path[0][0] is Stage.STAGE1

    def test_pointers_route_to_2_1(self):
        for t in POINTER_TYPES:
            path = stage_path(t)
            assert path == ((Stage.STAGE1, "pointer"), (Stage.STAGE2_1, t.value))

    def test_struct_and_bool_terminate_at_2_2(self):
        for t in (TypeName.STRUCT, TypeName.BOOL):
            path = stage_path(t)
            assert len(path) == 2
            assert path[1] == (Stage.STAGE2_2, t.value)

    def test_families_reach_stage3(self):
        assert stage_path(TypeName.CHAR)[-1][0] is Stage.STAGE3_1
        assert stage_path(TypeName.DOUBLE)[-1][0] is Stage.STAGE3_2
        assert stage_path(TypeName.ENUM)[-1][0] is Stage.STAGE3_3
        assert stage_path(TypeName.LONG_LONG_UNSIGNED_INT)[-1][0] is Stage.STAGE3_3

    def test_path_labels_are_valid_stage_labels(self):
        for t in ALL_TYPES:
            for stage, label in stage_path(t):
                assert label in STAGE_SPECS[stage].labels

    def test_stage_label_consistent_with_path(self):
        for t in ALL_TYPES:
            path = dict(stage_path(t))
            for stage in ALL_STAGES:
                expected = path.get(stage)
                assert stage_label(t, stage) == expected

    def test_leaf_labels_unique_within_stage(self):
        """Each leaf type must terminate at exactly one stage label."""
        terminals = {}
        for t in ALL_TYPES:
            stage, label = stage_path(t)[-1]
            assert (stage, label) not in terminals, (t, terminals[(stage, label)])
            terminals[(stage, label)] = t

    def test_routes_cover_all_labels(self):
        for spec in STAGE_SPECS.values():
            assert set(spec.routes) == set(spec.labels)

    def test_route_targets_form_the_figure5_tree(self):
        assert STAGE_SPECS[Stage.STAGE1].routes["pointer"] is Stage.STAGE2_1
        assert STAGE_SPECS[Stage.STAGE1].routes["non-pointer"] is Stage.STAGE2_2
        assert STAGE_SPECS[Stage.STAGE2_2].routes["char"] is Stage.STAGE3_1
        assert STAGE_SPECS[Stage.STAGE2_2].routes["float"] is Stage.STAGE3_2
        assert STAGE_SPECS[Stage.STAGE2_2].routes["int"] is Stage.STAGE3_3
        assert STAGE_SPECS[Stage.STAGE2_2].routes["struct"] is None


class TestDebinProjection:
    def test_all_19_types_map(self):
        for t in ALL_TYPES:
            assert to_debin_label(t) in DEBIN_TYPES

    def test_17_debin_types(self):
        assert len(DEBIN_TYPES) == 17

    def test_pointers_fold_to_pointer(self):
        for t in POINTER_TYPES:
            assert to_debin_label(t) == "pointer"

    def test_int_maps_identity(self):
        assert to_debin_label(TypeName.INT) == "int"
        assert to_debin_label(TypeName.LONG_UNSIGNED_INT) == "unsigned long"
