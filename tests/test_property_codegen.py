"""Property-based whole-pipeline invariants over random seeds.

Each property compiles a random program and checks an invariant that
must hold for *every* binary the substrate can produce.
"""

from hypothesis import given, settings, strategies as st

from repro.codegen import ClangCompiler, GccCompiler, debug_variables, strip
from repro.vuc.dataset import extract_labeled_vucs
from repro.vuc.generalize import generalize_instruction
from repro.vuc.locate import locate_targets

_seeds = st.integers(0, 10_000)
_opt = st.integers(0, 3)


@settings(max_examples=12, deadline=None)
@given(_seeds, _opt)
def test_debug_variables_cover_all_slots(seed, opt_level):
    binary = GccCompiler().compile_fresh(seed=seed, name="p", opt_level=opt_level)
    records = debug_variables(binary)
    recorded = {(r.function, r.frame_offset) for r in records}
    for lowered in binary.lowered:
        for slot in lowered.slots.values():
            assert (lowered.listing.name, slot.offset) in recorded


@settings(max_examples=12, deadline=None)
@given(_seeds, _opt)
def test_locator_is_complete_wrt_truth(seed, opt_level):
    binary = GccCompiler().compile_fresh(seed=seed, name="p", opt_level=opt_level)
    for lowered in binary.lowered:
        located = {t.index for t in locate_targets(lowered.listing)}
        truth = {i for i, _v in lowered.truth}
        assert truth <= located


@settings(max_examples=10, deadline=None)
@given(_seeds)
def test_strip_is_idempotent(seed):
    binary = GccCompiler().compile_fresh(seed=seed, name="p", opt_level=1)
    once = strip(binary)
    twice = strip(once)
    assert once.render() == twice.render()


@settings(max_examples=10, deadline=None)
@given(_seeds, st.sampled_from(["gcc", "clang"]))
def test_every_instruction_generalizes(seed, compiler_name):
    compiler = GccCompiler() if compiler_name == "gcc" else ClangCompiler()
    binary = compiler.compile_fresh(seed=seed, name="p", opt_level=2)
    for ins in binary.all_instructions():
        tokens = generalize_instruction(ins)
        assert len(tokens) == 3
        assert all(isinstance(t, str) and t for t in tokens)


@settings(max_examples=8, deadline=None)
@given(_seeds)
def test_dataset_extraction_invariants(seed):
    binary = GccCompiler().compile_fresh(seed=seed, name="p", opt_level=0)
    dataset = extract_labeled_vucs(binary)
    for sample in dataset.samples:
        # fixed window length, target present, grouped label consistency
        assert len(sample.tokens) == 21
        assert sample.tokens[10] != ("BLANK", "BLANK", "BLANK")
    for vucs in dataset.by_variable().values():
        assert len({v.label for v in vucs}) == 1


@settings(max_examples=8, deadline=None)
@given(_seeds)
def test_vuc_count_at_least_variable_count(seed):
    binary = GccCompiler().compile_fresh(seed=seed, name="p", opt_level=0)
    dataset = extract_labeled_vucs(binary)
    assert len(dataset) >= dataset.n_variables()
