"""Generalization tests — the Table II rules."""

from repro.asm.instruction import make
from repro.asm.operands import Imm, Label, Mem, Reg
from repro.asm.parser import parse_instruction
from repro.vuc.generalize import (
    ADDR,
    BLANK,
    BLANK_TOKENS,
    FUNC,
    IMM,
    generalize_instruction,
    generalize_operand,
    generalize_window,
    tokens_to_text,
)


class TestTableII:
    """The four example rows of Table II."""

    def test_row1_immediate(self):
        ins = parse_instruction("add $-0xd0,%rax")
        assert generalize_instruction(ins) == ("add", IMM, "%rax")

    def test_row2_effective_address_keeps_scale(self):
        ins = parse_instruction("lea -0x300(%rbp,%r9,4),%rax")
        assert generalize_instruction(ins) == ("lea", "-IMM(%rbp,%r9,4)", "%rax")

    def test_row3_jump(self):
        ins = parse_instruction("jmp 3bc59")
        assert generalize_instruction(ins) == ("jmp", ADDR, BLANK)

    def test_row4_named_call(self):
        ins = parse_instruction("callq 3bc59 <bfd_zalloc>")
        assert generalize_instruction(ins) == ("callq", ADDR, FUNC)

    def test_unnamed_call_gets_blank(self):
        ins = parse_instruction("callq 3bc59")
        assert generalize_instruction(ins) == ("callq", ADDR, BLANK)


class TestOperands:
    def test_immediate(self):
        assert generalize_operand(Imm(0x100)) == IMM

    def test_register_kept(self):
        assert generalize_operand(Reg("rax")) == "%rax"

    def test_memory_sign_preserved(self):
        assert generalize_operand(Mem(disp=-8, base="rbp")) == "-IMM(%rbp)"
        assert generalize_operand(Mem(disp=0xA8, base="rsp")) == "IMM(%rsp)"

    def test_memory_zero_disp(self):
        assert generalize_operand(Mem(disp=0, base="rax")) == "(%rax)"

    def test_rip_relative(self):
        assert generalize_operand(Mem(disp=0x2000, base="rip")) == "IMM(%rip)"

    def test_bare_address(self):
        assert generalize_operand(Mem(disp=0x601040)) == "IMM"

    def test_label(self):
        assert generalize_operand(Label(0x1234)) == ADDR


class TestInstructions:
    def test_no_operands_padded(self):
        assert generalize_instruction(make("nop")) == ("nop", BLANK, BLANK)

    def test_single_operand_padded(self):
        assert generalize_instruction(make("push", Reg("rbp"))) == ("push", "%rbp", BLANK)

    def test_none_is_blank(self):
        assert generalize_instruction(None) == BLANK_TOKENS

    def test_three_operand_truncated_to_two(self):
        ins = make("imul", Imm(3), Reg("rax"), Reg("rbx"))
        tokens = generalize_instruction(ins)
        assert len(tokens) == 3

    def test_same_shape_different_values_collide(self):
        """The generalization deliberately maps different offsets/values
        to the same token — the source of uncertain samples."""
        a = parse_instruction("movl $0x100,-0x8(%rbp)")
        b = parse_instruction("movl $0x7,-0x40(%rbp)")
        assert generalize_instruction(a) == generalize_instruction(b)


class TestWindow:
    def test_window_generalization_preserves_length(self):
        window = (make("nop"), None, make("mov", Reg("rax"), Reg("rbx")))
        tokens = generalize_window(window)
        assert len(tokens) == 3
        assert tokens[1] == BLANK_TOKENS

    def test_tokens_to_text(self):
        assert tokens_to_text(("mov", "%rax", "%rbx")) == "mov %rax %rbx"


class TestCoverage:
    def test_generalization_covers_generated_corpus(self):
        """§IV-B claims >99% coverage; on our corpus every emitted
        instruction must generalize without error."""
        from repro.codegen import GccCompiler, ClangCompiler

        for compiler in (GccCompiler(), ClangCompiler()):
            binary = compiler.compile_fresh(seed=5, name="c", opt_level=1)
            for ins in binary.all_instructions():
                tokens = generalize_instruction(ins)
                assert len(tokens) == 3
                assert all(isinstance(t, str) and t for t in tokens)
