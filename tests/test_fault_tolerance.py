"""Fault-tolerance suite: the error taxonomy, the skip-and-record policy,
the hardened tool runner, and worker-pool fault isolation.

Every failure exercised here is manufactured deterministically by
``tests/faultinject.py`` — no real flaky machine required.  The
integrated test at the bottom is the acceptance scenario: a corpus with
~20% corrupted functions plus a crashed worker, a corrupted ELF, a
truncated DWARF stream and a tool timeout still yields predictions for
every healthy function identical to a clean run, with a
:class:`FailureReport` enumerating every injection.
"""

from __future__ import annotations

import json
import logging

import numpy as np
import pytest

from repro.codegen.compilers import GccCompiler
from repro.codegen.strip import strip
from repro.core import engine as engine_mod
from repro.core.errors import (
    CatiError,
    DecodeError,
    DwarfError,
    FailureReport,
    InferenceError,
    ToolchainError,
    handle_failure,
)
from repro.core.toolchain import run_tool
from repro.core.types import STAGE_SPECS, TypeName
from repro.dwarf.native import NativeDwarfError, parse_compile_units
from repro.elf.parser import ElfFile, ElfParseError
from repro.experiments.speed import extents_from_debug
from repro.frontend.native import extract_labeled_vucs_native, load_binary
from tests import faultinject as fi


# -- the hardened tool runner ----------------------------------------------------


class TestRunTool:
    def test_transient_timeout_is_retried(self):
        runner = fi.FlakyRunner(["timeout", "ok"], stdout="done")
        sleeps = fi.SleepRecorder()
        result = run_tool(["gcc", "--version"], timeout=0.5, retries=2,
                          backoff=0.1, runner=runner, sleep=sleeps)
        assert result.attempts == 2
        assert result.stdout == "done"
        assert sleeps.delays == [0.1]

    def test_backoff_doubles_per_attempt(self):
        runner = fi.FlakyRunner(["timeout", "oserror", "ok"])
        sleeps = fi.SleepRecorder()
        result = run_tool(["objdump", "-d", "x"], timeout=0.5, retries=2,
                          backoff=0.05, runner=runner, sleep=sleeps)
        assert result.attempts == 3
        assert sleeps.delays == [0.05, 0.1]

    def test_persistent_timeout_raises_typed_error(self):
        runner = fi.FlakyRunner(["timeout", "timeout", "timeout"])
        with pytest.raises(ToolchainError) as excinfo:
            run_tool(["readelf", "-a", "x"], timeout=0.5, retries=2,
                     backoff=0.0, binary="victim", runner=runner,
                     sleep=fi.no_sleep)
        error = excinfo.value
        assert isinstance(error, CatiError)
        assert error.tool == "readelf"
        assert error.binary == "victim"
        assert error.stage == "toolchain"
        assert "timed out" in str(error)
        assert len(runner.calls) == 3

    def test_nonzero_exit_is_not_retried_and_captures_stderr(self):
        runner = fi.FlakyRunner(["fail"], stderr="undefined reference to `x'")
        with pytest.raises(ToolchainError) as excinfo:
            run_tool(["gcc", "bad.c"], retries=5, runner=runner,
                     sleep=fi.no_sleep)
        assert excinfo.value.returncode == 1
        assert "undefined reference" in excinfo.value.stderr
        assert len(runner.calls) == 1

    def test_missing_tool_fails_immediately(self):
        runner = fi.FlakyRunner(["missing"])
        with pytest.raises(ToolchainError) as excinfo:
            run_tool(["gcc-99", "x.c"], retries=5, runner=runner,
                     sleep=fi.no_sleep)
        assert excinfo.value.missing
        assert excinfo.value.missing_tools == ("gcc-99",)
        assert len(runner.calls) == 1

    def test_real_missing_tool(self):
        with pytest.raises(ToolchainError) as excinfo:
            run_tool(["definitely-not-a-real-tool-cati"], timeout=1.0)
        assert excinfo.value.missing


class TestMissingToolchainReporting:
    def test_require_toolchain_names_the_missing_tool(self, monkeypatch):
        import repro.core.toolchain as toolchain_mod
        from repro.frontend.compile import require_toolchain, toolchain_available

        real_which = toolchain_mod.shutil.which
        monkeypatch.setattr(
            toolchain_mod.shutil, "which",
            lambda tool: None if tool == "objdump" else real_which(tool))
        assert not toolchain_available()
        with pytest.raises(ToolchainError) as excinfo:
            require_toolchain()
        error = excinfo.value
        assert error.missing                        # the skip-friendly flag
        assert error.missing_tools == ("objdump",)  # names WHICH tool
        assert "objdump" in str(error)
        assert "gcc" not in error.missing_tools


# -- ELF degradation -------------------------------------------------------------


class TestElfDegradation:
    def test_out_of_bounds_header_raises_typed_error(self):
        data = fi.minimal_elf(text=fi.GOOD_CODE, corrupt="shnum")
        with pytest.raises(ElfParseError) as excinfo:
            ElfFile(data)
        assert isinstance(excinfo.value, DecodeError)
        assert isinstance(excinfo.value, ValueError)  # back-compat
        assert excinfo.value.stage == "elf"

    @pytest.mark.parametrize("corrupt", ["shnum", "shstrndx", "entsize"])
    def test_corrupt_section_table_skips_and_records(self, corrupt):
        failures = FailureReport()
        elf = ElfFile(fi.minimal_elf(text=fi.GOOD_CODE, corrupt=corrupt),
                      on_error="skip", failures=failures)
        assert failures.by_stage() == {"elf": 1}
        assert isinstance(elf.sections, list)  # partial parse survived

    def test_unreadable_ident_always_raises(self):
        with pytest.raises(ElfParseError):
            ElfFile(b"\x7fELF", on_error="skip")

    def test_load_binary_skips_undecodable_function(self, tmp_path):
        path = tmp_path / "mixed"
        path.write_bytes(fi.minimal_elf(
            text=fi.GOOD_CODE + fi.BAD_CODE,
            symbols=[("good", 0, len(fi.GOOD_CODE)),
                     ("evil", len(fi.GOOD_CODE), len(fi.BAD_CODE))]))
        loaded = load_binary(path, on_error="skip")
        assert [f.name for f in loaded.functions] == ["good"]
        stages = loaded.failures.by_stage()
        assert stages.get("decode") == 1     # evil's bytes
        assert stages.get("dwarf") == 1      # no debug info in this image
        decode_record = next(r for r in loaded.failures if r.stage == "decode")
        assert decode_record.function == "evil"

    def test_load_binary_raise_carries_function_context(self, tmp_path):
        path = tmp_path / "mixed"
        path.write_bytes(fi.minimal_elf(
            text=fi.GOOD_CODE + fi.BAD_CODE,
            symbols=[("good", 0, len(fi.GOOD_CODE)),
                     ("evil", len(fi.GOOD_CODE), len(fi.BAD_CODE))]))
        with pytest.raises(DecodeError) as excinfo:
            load_binary(path, on_error="raise")
        assert excinfo.value.function == "evil"
        assert excinfo.value.binary == str(path)

    def test_zero_function_symbols_is_defined(self, tmp_path):
        path = tmp_path / "nosyms"
        path.write_bytes(fi.minimal_elf(text=fi.GOOD_CODE))
        loaded = load_binary(path, on_error="skip")
        assert loaded.functions == []
        assert loaded.variables == []
        dataset = extract_labeled_vucs_native(loaded)
        assert len(dataset) == 0


# -- DWARF degradation -----------------------------------------------------------


class TestDwarfDegradation:
    def test_truncated_cu_raises_typed_error(self):
        info = fi.truncate_second_cu(fi.build_debug_info(2))
        with pytest.raises(NativeDwarfError, match="truncated compile unit"):
            parse_compile_units(info, fi.build_abbrev(), b"", b"")

    def test_truncated_cu_skips_and_keeps_healthy_units(self):
        info = fi.truncate_second_cu(fi.build_debug_info(2))
        failures = FailureReport()
        units = parse_compile_units(info, fi.build_abbrev(), b"", b"",
                                    on_error="skip", failures=failures)
        assert [u.attrs[fi.DW_AT_NAME] for u in units] == ["cu0"]
        assert failures.by_stage() == {"dwarf": 1}
        assert isinstance(excinfo_kind(failures), str)

    def test_bad_body_cu_skipped_healthy_neighbors_survive(self):
        info = (fi.build_cu("cu0") +
                fi.build_cu("cu1", bad_abbrev_code=9) +
                fi.build_cu("cu2"))
        failures = FailureReport()
        units = parse_compile_units(info, fi.build_abbrev(), b"", b"",
                                    on_error="skip", failures=failures)
        assert [u.attrs[fi.DW_AT_NAME] for u in units] == ["cu0", "cu2"]
        assert failures.by_kind() == {"NativeDwarfError": 1}

    def test_corrupt_unit_length_ends_parse_with_record(self):
        failures = FailureReport()
        units = parse_compile_units(fi.corrupt_unit_length(), fi.build_abbrev(),
                                    b"", b"", on_error="skip", failures=failures)
        assert units == []
        assert len(failures) == 1
        assert isinstance(failures.records[0].traceback, str)

    def test_truncated_real_debug_info(self, tmp_path):
        from repro.frontend.compile import compile_sample, toolchain_available

        if not toolchain_available():
            pytest.skip("gcc/objdump/readelf not on PATH")
        artifact = compile_sample(workdir=str(tmp_path))
        elf = ElfFile.load(artifact.binary_path)
        info = elf.section_data(".debug_info")
        failures = FailureReport()
        units = parse_compile_units(
            info[:len(info) // 2], elf.section_data(".debug_abbrev"),
            elf.section_data(".debug_str"), elf.section_data(".debug_line_str"),
            on_error="skip", failures=failures)
        assert isinstance(units, list)   # degraded, but no exception
        assert failures                  # the damage was recorded
        assert all(r.stage == "dwarf" for r in failures)


def excinfo_kind(failures: FailureReport) -> str:
    return failures.records[0].kind


# -- degenerate inputs -----------------------------------------------------------


class TestDegenerateInputs:
    def test_vote_on_empty_confidences_is_typed(self):
        from repro.core.voting import vote

        with pytest.raises(InferenceError):
            vote([])
        with pytest.raises(ValueError):  # back-compat contract
            vote(np.empty((0, 5)))

    def test_vote_variable_with_zero_vucs_returns_a_type(self, mini_cati):
        stage_probs = {
            stage: np.zeros((3, len(spec.labels)))
            for stage, spec in STAGE_SPECS.items()
        }
        result = mini_cati.classifier.vote_variable(stage_probs, [])
        assert isinstance(result, TypeName)

    def test_infer_binary_with_no_matching_extents(self, mini_cati, demo_binary):
        from repro.vuc.dataflow import VariableExtent

        stripped = strip(demo_binary)
        # Extents that exist nowhere in the frame: every window is dropped.
        bogus = [[VariableExtent("ghost", "rbp", -0x7000, 8)]
                 for _ in stripped.functions]
        result = mini_cati.engine.infer_binary(stripped, bogus)
        assert list(result) == []
        assert not result.failures

    def test_infer_binary_with_empty_extent_lists(self, mini_cati, demo_binary):
        stripped = strip(demo_binary)
        result = mini_cati.engine.infer_binary(
            stripped, [[] for _ in stripped.functions])
        assert list(result) == []

    def test_invalid_on_error_value_rejected(self, mini_cati, demo_binary):
        stripped = strip(demo_binary)
        with pytest.raises(ValueError, match="on_error"):
            mini_cati.engine.infer_binary(
                stripped, [[] for _ in stripped.functions], on_error="explode")


# -- per-function skip policy through the engine ---------------------------------


def prediction_map(result):
    return {p.variable_id: (p.predicted, p.n_vucs) for p in result}


def healthy_subset(predictions, stripped, poisoned_indices):
    poisoned_scopes = {f"{stripped.name}/{i}" for i in poisoned_indices}
    return {vid: value for vid, value in predictions.items()
            if vid.split("::")[0] not in poisoned_scopes}


class TestEngineSkipPolicy:
    def test_poisoned_functions_skip_matches_clean_run(self, mini_cati, demo_binary):
        engine = mini_cati.engine
        stripped = strip(demo_binary)
        extents = extents_from_debug(demo_binary)
        clean = prediction_map(engine.infer_binary(stripped, extents))

        poisoned, indices = fi.poison_binary(stripped, fraction=0.2)
        result = engine.infer_binary(poisoned, extents, on_error="skip")

        assert prediction_map(result) == healthy_subset(clean, stripped, indices)
        assert len(result.failures) == len(indices)
        poisoned_names = {stripped.functions[i].name for i in indices}
        for record in result.failures:
            assert record.stage == "extract"
            assert record.binary == stripped.name
            assert record.function in poisoned_names
            assert record.kind == "DecodeError"
            assert "injected corrupt function bytes" in record.message

    def test_poisoned_function_raise_carries_context(self, mini_cati, demo_binary):
        engine = mini_cati.engine
        stripped = strip(demo_binary)
        extents = extents_from_debug(demo_binary)
        poisoned, indices = fi.poison_binary(stripped, fraction=0.2)
        with pytest.raises(DecodeError) as excinfo:
            engine.infer_binary(poisoned, extents, on_error="raise")
        assert excinfo.value.binary == stripped.name
        assert excinfo.value.function == stripped.functions[indices[0]].name

    def test_failure_report_aggregates_into_caller(self, mini_cati, demo_binary):
        engine = mini_cati.engine
        stripped = strip(demo_binary)
        extents = extents_from_debug(demo_binary)
        poisoned, indices = fi.poison_binary(stripped, fraction=0.2)
        outer = FailureReport()
        engine.infer_binary(poisoned, extents, on_error="skip", failures=outer)
        assert len(outer) == len(indices)
        payload = json.dumps(outer.to_dict())   # machine-readable
        assert "injected corrupt function bytes" in payload


# -- worker-pool fault isolation -------------------------------------------------


def build_jobs(seeds):
    compiler = GccCompiler()
    jobs = []
    for seed in seeds:
        binary = compiler.compile_fresh(seed=seed, name=f"fault{seed}", opt_level=0)
        jobs.append((strip(binary), extents_from_debug(binary)))
    return jobs


class TestWorkerPool:
    def test_serial_fallback_is_emitted(self, mini_cati, demo_binary,
                                        monkeypatch, caplog):
        engine = mini_cati.engine
        jobs = [(strip(demo_binary), extents_from_debug(demo_binary))] * 2
        expected = [prediction_map(r)
                    for r in engine.infer_binary_many(jobs, n_workers=0)]
        assert engine.last_parallel_fallback is None  # serial was requested

        def no_fork(method):
            raise ValueError(f"cannot find context for {method!r}")

        monkeypatch.setattr(engine_mod.multiprocessing, "get_context", no_fork)
        with caplog.at_level(logging.WARNING, logger="repro.core.engine"):
            results = engine.infer_binary_many(jobs, n_workers=2)
        assert [prediction_map(r) for r in results] == expected
        assert engine.last_parallel_fallback is not None
        assert "fork unavailable" in engine.last_parallel_fallback
        assert "falling back to serial" in caplog.text

    def test_crashed_worker_is_retried_in_process(self, mini_cati, monkeypatch):
        engine = mini_cati.engine
        jobs = build_jobs([21, 22])
        clean = [prediction_map(r) for r in engine.infer_binary_many(jobs, n_workers=0)]

        fi.install_worker_fault(monkeypatch, crash={0})
        report = FailureReport()
        results = engine.infer_binary_many(
            jobs, n_workers=2, job_timeout=10.0, on_error="skip", failures=report)

        assert [prediction_map(r) for r in results] == clean
        pool_records = [r for r in report if r.stage == "pool"]
        assert len(pool_records) == 1
        assert pool_records[0].binary == jobs[0][0].name
        assert "crashed or hung" in pool_records[0].message

    def test_hung_worker_times_out_and_recovers(self, mini_cati, monkeypatch):
        engine = mini_cati.engine
        jobs = build_jobs([23, 24])
        clean = [prediction_map(r) for r in engine.infer_binary_many(jobs, n_workers=0)]

        fi.install_worker_fault(monkeypatch, hang={1})
        results = engine.infer_binary_many(
            jobs, n_workers=2, job_timeout=2.0, on_error="skip")

        assert [prediction_map(r) for r in results] == clean
        assert any(r.stage == "pool" for r in results[1].failures)
        assert not any(r.stage == "pool" for r in results[0].failures)


# -- the acceptance scenario -----------------------------------------------------


class TestIntegratedDegradedCorpus:
    """~20% corrupted functions + crashed worker + corrupt ELF + truncated
    DWARF + tool timeout, on one corpus, in one report."""

    def test_degraded_corpus_matches_clean_run(self, mini_cati, monkeypatch):
        engine = mini_cati.engine
        jobs = build_jobs([31, 32, 33, 34])
        clean = [prediction_map(r) for r in engine.infer_binary_many(jobs, n_workers=0)]

        report = FailureReport()

        # Injection 1+2: poison ~20% of every binary's functions, crash
        # the worker handling job 1.
        poisoned_jobs, poisoned_by_job = [], []
        for stripped, extents in jobs:
            poisoned, indices = fi.poison_binary(stripped, fraction=0.2)
            poisoned_jobs.append((poisoned, extents))
            poisoned_by_job.append(indices)
        fi.install_worker_fault(monkeypatch, crash={1})

        results = engine.infer_binary_many(
            poisoned_jobs, n_workers=2, job_timeout=10.0,
            on_error="skip", failures=report)

        # Injection 3: corrupted ELF section table.
        ElfFile(fi.minimal_elf(text=fi.GOOD_CODE, corrupt="shnum"),
                on_error="skip", failures=report)

        # Injection 4: truncated DWARF.
        parse_compile_units(
            fi.truncate_second_cu(fi.build_debug_info(2)), fi.build_abbrev(),
            b"", b"", on_error="skip", failures=report)

        # Injection 5: persistent tool timeout.
        try:
            run_tool(["gcc", "--version"], timeout=0.01, retries=1,
                     runner=fi.FlakyRunner(["timeout", "timeout"]),
                     sleep=fi.no_sleep, binary="corpus")
        except ToolchainError as exc:
            handle_failure(exc, on_error="skip", failures=report,
                           stage="toolchain", binary="corpus")

        # Healthy functions: identical predictions to the clean run.
        n_poisoned = 0
        for job_index, ((stripped, _extents), result) in enumerate(
                zip(jobs, results)):
            indices = poisoned_by_job[job_index]
            n_poisoned += len(indices)
            assert prediction_map(result) == healthy_subset(
                clean[job_index], stripped, indices), f"job {job_index}"

        # The report enumerates every injected failure.
        stages = report.by_stage()
        assert stages["extract"] == n_poisoned       # every poisoned function
        assert stages["pool"] == 1                   # the crashed worker
        assert stages["elf"] == 1                    # the corrupt section table
        assert stages["dwarf"] == 1                  # the truncated CU
        assert stages["toolchain"] == 1              # the tool timeout
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["total"] == len(report)
        assert set(payload["by_stage"]) == set(stages)
        assert payload["exemplars"]                  # tracebacks preserved

    def test_same_injections_raise_typed_errors(self, mini_cati):
        engine = mini_cati.engine
        jobs = build_jobs([41])
        stripped, extents = jobs[0]
        poisoned, indices = fi.poison_binary(stripped, fraction=0.2)

        with pytest.raises(DecodeError) as excinfo:
            engine.infer_binary(poisoned, extents, on_error="raise")
        assert excinfo.value.binary == stripped.name
        assert excinfo.value.function == stripped.functions[indices[0]].name

        with pytest.raises(ElfParseError) as excinfo:
            ElfFile(fi.minimal_elf(text=fi.GOOD_CODE, corrupt="shnum"))
        assert excinfo.value.stage == "elf"

        with pytest.raises(DwarfError) as excinfo:
            parse_compile_units(
                fi.truncate_second_cu(fi.build_debug_info(2)),
                fi.build_abbrev(), b"", b"")
        assert "truncated compile unit" in str(excinfo.value)

        with pytest.raises(ToolchainError) as excinfo:
            run_tool(["gcc", "--version"], timeout=0.01, retries=0,
                     runner=fi.FlakyRunner(["timeout"]), sleep=fi.no_sleep,
                     binary="fault41")
        assert excinfo.value.binary == "fault41"


# -- CLI knobs -------------------------------------------------------------------


class TestCliKnobs:
    def test_infer_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["infer", "--on-error", "skip", "--job-timeout", "5",
             "--tool-timeout", "30"])
        assert args.on_error == "skip"
        assert args.job_timeout == 5.0
        assert args.tool_timeout == 30.0

    def test_config_validates_timeouts(self):
        from repro.core.config import CatiConfig

        with pytest.raises(ValueError):
            CatiConfig(tool_timeout=0)
        with pytest.raises(ValueError):
            CatiConfig(job_timeout=-1.0)
        with pytest.raises(ValueError):
            CatiConfig(tool_retries=-1)
        assert CatiConfig(job_timeout=None).job_timeout is None
