"""Deterministic fault-injection harness for the robustness suite.

Everything here *manufactures* a specific failure the pipeline must
survive, without depending on luck or a real flaky machine:

* :class:`FlakyRunner` — a ``subprocess.run`` stand-in driven by a
  scripted plan of outcomes (timeout / oserror / missing / fail / ok),
  plugged into :func:`repro.core.toolchain.run_tool` via its ``runner``
  seam;
* :func:`minimal_elf` — a hand-assembled ELF64 image (header, section
  table, ``.text``, optional symtab/extra sections) with switchable
  corruptions of the section header table;
* :func:`build_debug_info` / :func:`truncate_second_cu` — hand-crafted
  DWARF v4 ``.debug_info``/``.debug_abbrev`` byte streams, including a
  mid-CU truncation and a CU whose body references an unknown abbrev;
* :class:`PoisonedListing` / :func:`poison_binary` — synthetic-corpus
  functions whose instruction stream raises a decode error the moment
  anything touches it;
* :func:`install_worker_fault` — makes the forked pool worker for
  chosen job indices crash (``os._exit``) or hang mid-task.

The wrappers installed into ``repro.core.engine`` are module-level
functions (not closures) because the pool pickles tasks by qualified
name; forked children inherit this module via ``sys.modules`` so the
name resolves on both sides.
"""

from __future__ import annotations

import dataclasses
import os
import struct
import subprocess
import time

from repro.disasm.decoder import DecodeError as DisasmDecodeError

# -- flaky external tools --------------------------------------------------------


class FlakyRunner:
    """A ``subprocess.run`` stand-in that follows a scripted outcome plan.

    Plan entries: ``"timeout"``, ``"oserror"``, ``"missing"``,
    ``"fail"`` (non-zero exit), ``"ok"``.  Once the plan is exhausted
    every further call succeeds.  Calls are recorded for assertions.
    """

    def __init__(self, plan, stdout: str = "", stderr: str = "injected stderr"):
        self.plan = list(plan)
        self.stdout = stdout
        self.stderr = stderr
        self.calls: list[tuple[str, ...]] = []

    def __call__(self, argv, capture_output=True, text=True, timeout=None):
        self.calls.append(tuple(argv))
        outcome = self.plan.pop(0) if self.plan else "ok"
        if outcome == "timeout":
            raise subprocess.TimeoutExpired(argv, timeout if timeout else 0.0)
        if outcome == "oserror":
            raise OSError("injected resource hiccup")
        if outcome == "missing":
            raise FileNotFoundError(argv[0])
        returncode = 1 if outcome == "fail" else 0
        return subprocess.CompletedProcess(
            argv, returncode, stdout=self.stdout, stderr=self.stderr)


def no_sleep(_seconds: float) -> None:
    """Drop-in ``sleep`` that records nothing and waits for nothing."""


class SleepRecorder:
    """``sleep`` stand-in that records the requested backoff delays."""

    def __init__(self):
        self.delays: list[float] = []

    def __call__(self, seconds: float) -> None:
        self.delays.append(seconds)


# -- hand-assembled ELF64 images -------------------------------------------------

TEXT_ADDR = 0x401000

#: 5-byte function that decodes cleanly: push rbp; mov rbp,rsp; ret.
GOOD_CODE = bytes.fromhex("554889e5c3")

#: Bytes no 64-bit decoder accepts (0x06 = push es, invalid in long mode).
BAD_CODE = b"\x06" * 8

_SHDR = "<IIQQQQIIQQ"
_SYM = "<IBBHQQ"


def minimal_elf(text: bytes = b"", symbols=(), extra_sections=(),
                corrupt: str = "none") -> bytes:
    """Hand-assemble a tiny 64-bit little-endian ELF image.

    ``symbols`` are ``(name, value, size)`` GLOBAL FUNC entries bound to
    ``.text`` (give addresses relative to :data:`TEXT_ADDR`).
    ``extra_sections`` are ``(name, data)`` PROGBITS pairs (e.g. the
    ``.debug_*`` sections).  ``corrupt`` switches in one deterministic
    section-header-table defect:

    * ``"none"`` — well-formed image;
    * ``"shnum"`` — ``e_shnum`` claims two entries past the end of the
      file (out-of-bounds header entries);
    * ``"shstrndx"`` — ``e_shstrndx`` points outside the table (section
      names unresolvable);
    * ``"entsize"`` — ``e_shentsize`` is smaller than a real header.
    """
    strtab = b"\x00"
    sym_name_off = {}
    for name, _value, _size in symbols:
        sym_name_off[name] = len(strtab)
        strtab += name.encode() + b"\x00"

    # (name, sh_type, addr, link, entsize, data); table index = position + 1.
    specs = [(".text", 1, TEXT_ADDR, 0, 0, bytes(text))]
    for name, data in extra_sections:
        specs.append((name, 1, 0, 0, 0, bytes(data)))
    if symbols:
        strtab_index = len(specs) + 2  # right after .symtab
        symdata = struct.pack(_SYM, 0, 0, 0, 0, 0, 0)
        for name, value, size in symbols:
            symdata += struct.pack(
                _SYM, sym_name_off[name], 0x12, 0, 1, TEXT_ADDR + value, size)
        specs.append((".symtab", 2, 0, strtab_index, 24, symdata))
        specs.append((".strtab", 3, 0, 0, 0, strtab))

    shstr = b"\x00"
    name_off = {}
    for name in [spec[0] for spec in specs] + [".shstrtab"]:
        name_off[name] = len(shstr)
        shstr += name.encode() + b"\x00"
    specs.append((".shstrtab", 3, 0, 0, 0, shstr))

    offset = 64
    offsets = []
    for spec in specs:
        offsets.append(offset)
        offset += len(spec[-1])
    shoff = offset
    n_sections = len(specs) + 1          # + null entry
    shstrndx = n_sections - 1

    e_shnum = n_sections + 2 if corrupt == "shnum" else n_sections
    e_shstrndx = 0xBEEF if corrupt == "shstrndx" else shstrndx
    e_shentsize = 32 if corrupt == "entsize" else 64

    header = struct.pack(
        "<4sBBBBB7xHHIQQQIHHHHHH",
        b"\x7fELF", 2, 1, 1, 0, 0,       # ELF64, LSB, version, SysV
        2, 0x3E, 1,                      # ET_EXEC, EM_X86_64, EV_CURRENT
        TEXT_ADDR, 0, shoff, 0,
        64, 0, 0,                        # ehsize, phentsize, phnum
        e_shentsize, e_shnum, e_shstrndx,
    )
    table = struct.pack(_SHDR, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
    for (name, sh_type, addr, link, entsize, data), data_off in zip(specs, offsets):
        table += struct.pack(_SHDR, name_off[name], sh_type, 0, addr,
                             data_off, len(data), link, 0, 0, entsize)
    return header + b"".join(spec[-1] for spec in specs) + table


# -- hand-crafted DWARF v4 streams -----------------------------------------------

DW_TAG_COMPILE_UNIT = 0x11
DW_TAG_SUBPROGRAM = 0x2E
DW_AT_NAME = 0x03
DW_FORM_STRING = 0x08


def _uleb(value: int) -> bytes:
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def build_abbrev() -> bytes:
    """Abbrev table: 1 = compile_unit (children), 2 = subprogram (leaf).

    Both carry just ``DW_AT_name`` as an inline string.
    """
    out = bytearray()
    out += _uleb(1) + _uleb(DW_TAG_COMPILE_UNIT) + b"\x01"
    out += _uleb(DW_AT_NAME) + _uleb(DW_FORM_STRING) + b"\x00\x00"
    out += _uleb(2) + _uleb(DW_TAG_SUBPROGRAM) + b"\x00"
    out += _uleb(DW_AT_NAME) + _uleb(DW_FORM_STRING) + b"\x00\x00"
    out += _uleb(0)
    return bytes(out)


def build_cu(cu_name: str, functions=("fn",), bad_abbrev_code: int | None = None) -> bytes:
    """One DWARF v4 compile unit with a root DIE and subprogram children.

    ``bad_abbrev_code`` swaps the first child's abbrev code for one the
    table does not define — a malformed *body* behind a perfectly valid
    header, so the parser can still find the next CU.
    """
    body = bytearray()
    body += _uleb(1) + cu_name.encode() + b"\x00"
    for index, function in enumerate(functions):
        code = bad_abbrev_code if bad_abbrev_code is not None and index == 0 else 2
        body += _uleb(code) + function.encode() + b"\x00"
    body += _uleb(0)                                     # pop the root
    header_rest = struct.pack("<HIB", 4, 0, 8)           # version, abbrev off, addr size
    unit_length = len(header_rest) + len(body)
    return struct.pack("<I", unit_length) + header_rest + bytes(body)


def build_debug_info(n_units: int = 2) -> bytes:
    """A healthy ``.debug_info`` stream of ``n_units`` CUs."""
    return b"".join(build_cu(f"cu{i}", (f"fn{i}a", f"fn{i}b"))
                    for i in range(n_units))


def truncate_second_cu(info: bytes) -> bytes:
    """Chop a 2+-CU stream 12 bytes into the second CU's claimed extent.

    The second header is intact (so the parser *enters* the CU) but the
    unit length now points past end-of-stream.
    """
    first_len = 4 + struct.unpack_from("<I", info, 0)[0]
    assert len(info) > first_len + 12, "need a second CU to truncate"
    return info[:first_len + 12]


def corrupt_unit_length() -> bytes:
    """A ``.debug_info`` stream whose very first unit length is zero."""
    return struct.pack("<I", 0) + b"\xAA" * 16


# -- poisoned synthetic functions ------------------------------------------------


class PoisonedListing:
    """Duck-typed stand-in for a FunctionListing with undecodable bytes.

    Deliberately *not* a FunctionListing subclass: the dataclass field
    would shadow the property.  Touching :attr:`instructions` raises the
    same :class:`~repro.disasm.decoder.DecodeError` real corrupt bytes
    produce.
    """

    def __init__(self, name: str, address: int):
        self.name = name
        self.address = address

    @property
    def instructions(self):
        raise DisasmDecodeError("injected corrupt function bytes")

    def __len__(self) -> int:
        return 0


def poison_binary(stripped, fraction: float = 0.2):
    """Replace ~``fraction`` of a Binary's functions with poisoned listings.

    Deterministic (evenly spaced indices, always at least one).  Returns
    ``(poisoned_copy, poisoned_indices)``; the input is left untouched.
    """
    n = len(stripped.functions)
    count = max(1, round(n * fraction))
    step = max(1, n // count)
    indices = sorted(set(range(0, n, step)))[:count]
    functions = list(stripped.functions)
    for index in indices:
        original = functions[index]
        functions[index] = PoisonedListing(original.name, original.address)
    return dataclasses.replace(stripped, functions=functions), indices


# -- worker-pool faults ----------------------------------------------------------

#: Job indices whose *worker-side* execution dies / stalls (parent is safe).
CRASH_INDICES: frozenset[int] = frozenset()
HANG_INDICES: frozenset[int] = frozenset()
_PARENT_PID: int | None = None
_REAL_POOL_JOB = None


def _faulty_pool_job(index: int):
    """Pool-job wrapper that injects a crash or a hang in the child.

    Module-level (not a closure) so the pool can pickle it by qualified
    name; the parent-PID guard keeps an accidental in-process call from
    killing the test runner.
    """
    if _PARENT_PID is not None and os.getpid() != _PARENT_PID:
        if index in CRASH_INDICES:
            os._exit(17)
        if index in HANG_INDICES:
            time.sleep(3600)
    return _REAL_POOL_JOB(index)


def install_worker_fault(monkeypatch, crash=(), hang=()) -> None:
    """Make the forked worker for the given job indices crash or hang.

    Installs :func:`_faulty_pool_job` over
    ``repro.core.engine._infer_pool_job`` via ``monkeypatch`` (so the
    real job function is restored when the test ends).
    """
    global _PARENT_PID, _REAL_POOL_JOB
    from repro.core import engine as engine_mod

    _PARENT_PID = os.getpid()
    if engine_mod._infer_pool_job is not _faulty_pool_job:
        _REAL_POOL_JOB = engine_mod._infer_pool_job
    monkeypatch.setattr("tests.faultinject.CRASH_INDICES", frozenset(crash))
    monkeypatch.setattr("tests.faultinject.HANG_INDICES", frozenset(hang))
    monkeypatch.setattr(engine_mod, "_infer_pool_job", _faulty_pool_job)
