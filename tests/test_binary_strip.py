"""Binary artifact and stripping tests."""

import pytest

from repro.codegen import GccCompiler, debug_variables, strip
from repro.core.types import TypeName


@pytest.fixture(scope="module")
def binary():
    return GccCompiler().compile_fresh(seed=11, name="bin", opt_level=0)


class TestBinary:
    def test_has_debug_blob(self, binary):
        assert not binary.is_stripped
        assert binary.debug.info
        assert binary.debug.abbrev

    def test_symtab_matches_functions(self, binary):
        assert set(binary.symtab) == {f.name for f in binary.functions}
        for func in binary.functions:
            assert binary.symtab[func.name] == func.address

    def test_render_contains_all_functions(self, binary):
        text = binary.render()
        for func in binary.functions:
            assert f"<{func.name}>:" in text

    def test_instruction_count(self, binary):
        assert binary.instruction_count() == sum(len(f) for f in binary.functions)
        assert binary.instruction_count() == len(binary.all_instructions())


class TestDebugVariables:
    def test_records_match_lowered_slots(self, binary):
        records = debug_variables(binary)
        by_function = {}
        for record in records:
            by_function.setdefault(record.function, []).append(record)
        for lowered in binary.lowered:
            recs = by_function[lowered.listing.name]
            slots = {s.offset: s for s in lowered.slots.values()}
            assert len(recs) == len(slots)
            for record in recs:
                slot = slots[record.frame_offset]
                assert record.size == slot.size
                assert record.type_label is slot.var.label

    def test_every_leaf_type_appears_somewhere(self):
        """Across enough binaries the corpus covers the full taxonomy."""
        seen = set()
        compiler = GccCompiler()
        for seed in range(12):
            b = compiler.compile_fresh(seed=seed, name=f"b{seed}", opt_level=0)
            seen.update(r.type_label for r in debug_variables(b))
        # rare types (short, long long) may need many seeds; require most
        assert len(seen) >= 15

    def test_raises_on_stripped(self, binary):
        with pytest.raises(ValueError):
            debug_variables(strip(binary))


class TestStrip:
    def test_strip_removes_debug_and_symbols(self, binary):
        stripped = strip(binary)
        assert stripped.is_stripped
        assert stripped.symtab == {}
        assert stripped.lowered == []

    def test_function_names_become_sub_addresses(self, binary):
        stripped = strip(binary)
        for func in stripped.functions:
            assert func.name.startswith("sub_")

    def test_instruction_stream_preserved(self, binary):
        stripped = strip(binary)
        assert stripped.instruction_count() == binary.instruction_count()
        for orig, strip_f in zip(binary.functions, stripped.functions):
            for a, b in zip(orig.instructions, strip_f.instructions):
                assert a.mnemonic == b.mnemonic
                assert a.address == b.address

    def test_plt_symbols_survive_local_symbols_do_not(self, binary):
        from repro.asm.operands import Label

        stripped = strip(binary)
        for ins in stripped.all_instructions():
            for op in ins.operands:
                if isinstance(op, Label) and op.symbol is not None:
                    assert "@plt" in op.symbol

    def test_original_unmodified(self, binary):
        before = binary.instruction_count()
        strip(binary)
        assert not binary.is_stripped
        assert binary.instruction_count() == before


class TestCompilerDrivers:
    def test_invalid_opt_level_rejected(self):
        from repro.codegen.progen import generate_program

        program = generate_program(1, "p")
        with pytest.raises(ValueError):
            GccCompiler().compile(program, opt_level=5)

    def test_compiler_by_name(self):
        from repro.codegen import compiler_by_name

        assert compiler_by_name("gcc").name == "gcc"
        assert compiler_by_name("clang").name == "clang"
        with pytest.raises(ValueError):
            compiler_by_name("msvc")

    def test_deterministic_compilation(self):
        a = GccCompiler().compile_fresh(seed=3, name="x", opt_level=1)
        b = GccCompiler().compile_fresh(seed=3, name="x", opt_level=1)
        assert a.render() == b.render()
        assert a.debug.info == b.debug.info

    def test_opt_levels_differ(self):
        a = GccCompiler().compile_fresh(seed=3, name="x", opt_level=0)
        b = GccCompiler().compile_fresh(seed=3, name="x", opt_level=3)
        assert a.render() != b.render()

    def test_compilers_differ(self):
        from repro.codegen import ClangCompiler

        a = GccCompiler().compile_fresh(seed=3, name="x", opt_level=0)
        b = ClangCompiler().compile_fresh(seed=3, name="x", opt_level=0)
        assert a.render() != b.render()
