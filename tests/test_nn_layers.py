"""Gradient checks for every NN layer against finite differences, plus
shape/behavior tests.
"""

import numpy as np
import pytest

from repro.nn.layers import Conv1d, Dense, Dropout, Flatten, MaxPool1d, ReLU
from repro.nn.losses import cross_entropy, softmax


def _numeric_grad(f, x, eps=1e-4):
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = f()
        flat[i] = original - eps
        down = f()
        flat[i] = original
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


def _check_input_grad(layer, x, tol=2e-3):
    rng = np.random.default_rng(0)
    out = layer.forward(x, training=False)
    upstream = rng.normal(size=out.shape)

    def loss():
        return float((layer.forward(x, training=False) * upstream).sum())

    layer.forward(x, training=False)
    analytic = layer.backward(upstream)
    numeric = _numeric_grad(loss, x)
    assert np.allclose(analytic, numeric, atol=tol), (
        f"max err {np.abs(analytic - numeric).max()}"
    )


def _check_param_grads(layer, x, tol=2e-3):
    rng = np.random.default_rng(1)
    out = layer.forward(x, training=False)
    upstream = rng.normal(size=out.shape)

    layer.forward(x, training=False)
    layer.backward(upstream)
    for name, value, grad in layer.params():
        def loss():
            return float((layer.forward(x, training=False) * upstream).sum())

        numeric = _numeric_grad(loss, value)
        assert np.allclose(grad, numeric, atol=tol), (
            f"{name}: max err {np.abs(grad - numeric).max()}"
        )


class TestDense:
    def test_forward_shape(self):
        layer = Dense(8, 3)
        assert layer.forward(np.zeros((4, 8), dtype=np.float64)).shape == (4, 3)

    def test_input_gradient(self):
        x = np.random.default_rng(0).normal(size=(3, 6))
        _check_input_grad(Dense(6, 4), x)

    def test_param_gradients(self):
        x = np.random.default_rng(0).normal(size=(3, 6))
        _check_param_grads(Dense(6, 4), x)


class TestConv1d:
    def test_same_padding_shape(self):
        layer = Conv1d(8, 5, kernel_size=3)
        out = layer.forward(np.zeros((2, 21, 8), dtype=np.float64))
        assert out.shape == (2, 21, 5)

    def test_even_kernel_rejected(self):
        with pytest.raises(ValueError):
            Conv1d(4, 4, kernel_size=2)

    def test_input_gradient(self):
        x = np.random.default_rng(0).normal(size=(2, 7, 3))
        _check_input_grad(Conv1d(3, 4, kernel_size=3), x)

    def test_param_gradients(self):
        x = np.random.default_rng(2).normal(size=(2, 6, 3))
        _check_param_grads(Conv1d(3, 2, kernel_size=3), x)

    def test_kernel5_gradient(self):
        x = np.random.default_rng(3).normal(size=(1, 9, 2))
        _check_input_grad(Conv1d(2, 3, kernel_size=5), x)

    def test_identity_kernel(self):
        """A kernel that only picks the center column reproduces a linear map."""
        layer = Conv1d(2, 2, kernel_size=3)
        layer.weight[...] = 0.0
        layer.weight[2, 0] = 1.0  # center position, channel 0 -> out 0
        layer.weight[3, 1] = 1.0
        layer.bias[...] = 0.0
        x = np.random.default_rng(4).normal(size=(1, 5, 2)).astype(np.float32)
        out = layer.forward(x)
        assert np.allclose(out, x, atol=1e-6)


class TestReLU:
    def test_forward(self):
        layer = ReLU()
        out = layer.forward(np.array([[-1.0, 2.0]]))
        assert np.array_equal(out, [[0.0, 2.0]])

    def test_gradient_masks_negatives(self):
        layer = ReLU()
        layer.forward(np.array([[-1.0, 2.0]]))
        grad = layer.backward(np.array([[5.0, 5.0]]))
        assert np.array_equal(grad, [[0.0, 5.0]])

    def test_numeric_gradient(self):
        x = np.random.default_rng(5).normal(size=(3, 4)) + 0.5
        _check_input_grad(ReLU(), x)


class TestMaxPool1d:
    def test_forward_shape(self):
        layer = MaxPool1d(2)
        assert layer.forward(np.zeros((2, 21, 4))).shape == (2, 10, 4)

    def test_forward_values(self):
        layer = MaxPool1d(2)
        x = np.array([[[1.0], [3.0], [2.0], [0.0]]])
        assert np.array_equal(layer.forward(x), [[[3.0], [2.0]]])

    def test_gradient_conserved(self):
        layer = MaxPool1d(2)
        x = np.random.default_rng(6).normal(size=(2, 8, 3))
        out = layer.forward(x)
        grad = layer.backward(np.ones_like(out))
        assert np.isclose(grad.sum(), out.size)

    def test_numeric_gradient(self):
        x = np.random.default_rng(7).normal(size=(1, 6, 2))
        _check_input_grad(MaxPool1d(2), x)

    def test_odd_length_trims_tail(self):
        layer = MaxPool1d(2)
        x = np.random.default_rng(8).normal(size=(1, 5, 1))
        out = layer.forward(x)
        assert out.shape == (1, 2, 1)
        grad = layer.backward(np.ones_like(out))
        assert grad.shape == x.shape
        assert grad[0, 4, 0] == 0.0  # trimmed tail gets no gradient


class TestFlattenDropout:
    def test_flatten_round_trip(self):
        layer = Flatten()
        x = np.random.default_rng(9).normal(size=(2, 3, 4))
        out = layer.forward(x)
        assert out.shape == (2, 12)
        assert layer.backward(out).shape == x.shape

    def test_dropout_identity_at_inference(self):
        layer = Dropout(0.5)
        x = np.ones((4, 4))
        assert np.array_equal(layer.forward(x, training=False), x)

    def test_dropout_scales_at_training(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((100, 100))
        out = layer.forward(x, training=True)
        kept = out[out > 0]
        assert np.allclose(kept, 2.0)
        assert 0.4 < (out > 0).mean() < 0.6

    def test_dropout_rate_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestLoss:
    def test_softmax_rows_sum_to_one(self):
        probs = softmax(np.random.default_rng(0).normal(size=(5, 7)))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_softmax_stability(self):
        probs = softmax(np.array([[1e4, 0.0]]))
        assert not np.isnan(probs).any()

    def test_cross_entropy_gradient(self):
        rng = np.random.default_rng(10)
        logits = rng.normal(size=(4, 3))
        labels = np.array([0, 2, 1, 1])

        def loss():
            return cross_entropy(logits, labels)[0]

        _, analytic = cross_entropy(logits, labels)
        numeric = _numeric_grad(loss, logits)
        assert np.allclose(analytic, numeric, atol=1e-4)

    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _grad = cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_class_weights_scale_loss(self):
        logits = np.zeros((2, 2))
        labels = np.array([0, 1])
        weights = np.array([2.0, 0.5])
        weighted, _ = cross_entropy(logits, labels, weights)
        unweighted, _ = cross_entropy(logits, labels)
        assert weighted != unweighted
