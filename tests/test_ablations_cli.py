"""Tests for the ablation harness, the flat classifier and the CLI."""

import numpy as np
import pytest

from repro.core.flat import FlatClassifier
from repro.experiments.ablations import (
    run_flat_ablation,
    run_opt_level_breakdown,
    run_threshold_ablation,
)
from repro.experiments.common import ExperimentContext


@pytest.fixture(scope="module")
def mini_context(small_corpus, mini_cati, mini_config):
    return ExperimentContext(
        corpus=small_corpus, cati=mini_cati, config=mini_config, compiler_name="gcc",
    )


class TestFlatClassifier:
    def test_train_and_predict(self, mini_cati, small_corpus, mini_config):
        samples = small_corpus.train.samples[:400]
        x = mini_cati.encode([s.tokens for s in samples])
        import dataclasses

        config = dataclasses.replace(mini_config, epochs=3)
        flat = FlatClassifier(config).train(x, [s.label for s in samples])
        probs = flat.leaf_proba(x[:10])
        assert probs.shape == (10, 19)
        assert np.allclose(probs.sum(axis=1), 1.0, atol=1e-5)

    def test_untrained_raises(self, mini_config):
        with pytest.raises(RuntimeError):
            FlatClassifier(mini_config).leaf_proba(np.zeros((1, 21, 96), dtype=np.float32))


class TestThresholdAblation:
    def test_sweep_shape(self, mini_cache):
        result = run_threshold_ablation(mini_cache)
        assert len(result.rows) == 7
        for threshold, acc in result.rows:
            assert 0.0 <= acc <= 1.0
        assert "threshold" in result.render()

    def test_best_is_max(self, mini_cache):
        result = run_threshold_ablation(mini_cache)
        _t, best = result.best()
        assert best == max(a for _t2, a in result.rows)

    def test_threshold_one_equals_plain_sum(self, mini_cache):
        """At threshold 1.0 clipping is a no-op, so the result equals
        plain confidence summation."""
        from repro.core.types import ALL_TYPES

        result = run_threshold_ablation(mini_cache, thresholds=(1.0,))
        groups: dict[str, list[int]] = {}
        for i, vid in enumerate(mini_cache.variable_ids):
            groups.setdefault(vid, []).append(i)
        hits = 0
        for _vid, idx in groups.items():
            totals = mini_cache.leaf_probs[idx].sum(axis=0)
            hits += ALL_TYPES[int(totals.argmax())] is mini_cache.labels[idx[0]]
        assert result.rows[0][1] == pytest.approx(hits / len(groups))


class TestOptLevelBreakdown:
    def test_levels_present(self, mini_context, mini_cache):
        # seed the memoized cache with the mini one
        from repro.experiments import common

        common._PREDICTION_CACHE[id(mini_context)] = mini_cache
        result = run_opt_level_breakdown(mini_context)
        levels = {level for level, _a, _n in result.rows}
        assert levels == {"-O0", "-O2"}  # the small corpus builds O0+O2
        assert sum(n for _l, _a, n in result.rows) == mini_context.corpus.test.n_variables()


class TestFlatAblation:
    def test_runs_on_mini_context(self, mini_context, mini_cache):
        from repro.experiments import common

        common._PREDICTION_CACHE[id(mini_context)] = mini_cache
        result = run_flat_ablation(mini_context, epochs=2)
        assert 0.0 <= result.flat_vuc_accuracy <= 1.0
        assert 0.0 <= result.tree_vuc_accuracy <= 1.0
        assert "flat" in result.render()


class TestCli:
    def test_parser_commands(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["train", "--small", "--epochs", "2"])
        assert args.command == "train"
        args = parser.parse_args(["experiment", "table6"])
        assert args.name == "table6"

    def test_unknown_experiment_rejected(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])

    def test_train_then_infer_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        model_dir = str(tmp_path / "model")
        assert main(["train", "--small", "--epochs", "2", "--model-dir", model_dir]) == 0
        assert main(["infer", "--model-dir", model_dir, "--seed", "55"]) == 0
        out = capsys.readouterr().out
        assert "accuracy:" in out
        assert "->" in out

    def test_corpus_stats_small(self, capsys):
        from repro.cli import main

        assert main(["corpus-stats", "--small"]) == 0
        assert "Table I" in capsys.readouterr().out
