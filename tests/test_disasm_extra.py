"""Additional decoder vectors: ALU groups, cmov, xchg, conversions,
group3/group5, SSE moves between register files, shift forms.
"""

import pytest

from repro.asm.operands import Imm, Label, Mem, Reg
from repro.disasm.decoder import decode_one


def _decode(hex_bytes: str, address: int = 0):
    data = bytes.fromhex(hex_bytes.replace(" ", ""))
    ins, length = decode_one(data, 0, address)
    assert length == len(data)
    return ins


class TestAluForms:
    @pytest.mark.parametrize("hex_bytes,text", [
        ("01 d0", "add %edx,%eax"),
        ("29 d0", "sub %edx,%eax"),
        ("31 c0", "xor %eax,%eax"),
        ("21 d0", "and %edx,%eax"),
        ("09 d0", "or %edx,%eax"),
        ("39 c2", "cmp %eax,%edx"),
        ("48 01 d0", "add %rdx,%rax"),
        ("48 39 45 f8", "cmp %rax,-0x8(%rbp)"),
        ("03 45 fc", "add -0x4(%rbp),%eax"),
        ("2b 45 fc", "sub -0x4(%rbp),%eax"),
    ])
    def test_alu_rm(self, hex_bytes, text):
        assert str(_decode(hex_bytes)) == text

    @pytest.mark.parametrize("hex_bytes,text", [
        ("83 c0 01", "add $0x1,%eax"),
        ("83 e8 07", "sub $0x7,%eax"),
        ("81 65 fc ff 00 00 00", "andl $0xff,-0x4(%rbp)"),
        ("48 83 65 f0 1f", "andq $0x1f,-0x10(%rbp)"),
        ("83 7d fc 0f", "cmpl $0xf,-0x4(%rbp)"),
        ("80 7d ff 7a", "cmpb $0x7a,-0x1(%rbp)"),
        ("3c 40", "cmp $0x40,%al"),
        ("3d 00 01 00 00", "cmp $0x100,%eax"),
    ])
    def test_alu_imm(self, hex_bytes, text):
        assert str(_decode(hex_bytes)) == text


class TestGroups:
    @pytest.mark.parametrize("hex_bytes,text", [
        ("f7 d8", "neg %eax"),
        ("48 f7 d8", "neg %rax"),
        ("f7 65 fc", "mull -0x4(%rbp)"),
        ("f7 7d fc", "idivl -0x4(%rbp)"),
        ("f7 d0", "not %eax"),
        ("f6 45 fb 01", "testb $0x1,-0x5(%rbp)"),
    ])
    def test_group3(self, hex_bytes, text):
        assert str(_decode(hex_bytes)) == text

    @pytest.mark.parametrize("hex_bytes,text", [
        ("ff 45 fc", "incl -0x4(%rbp)"),
        ("ff 4d fc", "decl -0x4(%rbp)"),
        ("fe 45 ff", "incb -0x1(%rbp)"),
        ("ff d0", "callq %rax"),
    ])
    def test_group5(self, hex_bytes, text):
        assert str(_decode(hex_bytes)) == text

    def test_call_indirect_memory(self):
        # call *0x10(%rip)
        ins = _decode("ff 15 10 00 00 00", address=0x1000)
        assert ins.mnemonic == "callq"
        assert ins.operands[0] == Mem(disp=0x10, base="rip")


class TestMiscForms:
    @pytest.mark.parametrize("hex_bytes,text", [
        ("0f 44 c2", "cmove %edx,%eax"),
        ("0f 4f c2", "cmovg %edx,%eax"),
        ("48 0f 45 c1", "cmovne %rcx,%rax"),
        ("87 d8", "xchg %ebx,%eax"),
        ("48 98", "cltq"),
        ("99", "cltd"),
        ("48 99", "cqto"),
        ("48 0f af c2", "imul %rdx,%rax"),
        ("0f af 45 fc", "imul -0x4(%rbp),%eax"),
        ("d1 65 fc", "shll -0x4(%rbp)"),
        ("48 d3 e8", "shr %cl,%rax"),
        ("c1 e0 04", "shl $0x4,%eax"),
        ("48 c1 f8 3f", "sar $0x3f,%rax"),
    ])
    def test_misc(self, hex_bytes, text):
        assert str(_decode(hex_bytes)) == text


class TestSseExtra:
    @pytest.mark.parametrize("hex_bytes,text", [
        ("66 0f ef c0", "pxor %xmm0,%xmm0"),
        ("0f 57 c0", "xorps %xmm0,%xmm0"),
        ("f2 0f 5e c1", "divsd %xmm1,%xmm0"),
        ("f3 0f 5c 45 f8", "subss -0x8(%rbp),%xmm0"),
        ("66 0f 2e 45 f8", "ucomisd -0x8(%rbp),%xmm0"),
        ("f2 48 0f 2a 45 f0", "cvtsi2sdq -0x10(%rbp),%xmm0"),
        ("f3 0f 5a c0", "cvtss2sd %xmm0,%xmm0"),
        ("66 48 0f 6e c0", "movq %rax,%xmm0"),
        ("66 0f 7e c0", "movd %xmm0,%eax"),
        ("f2 48 0f 2c c0", "cvttsd2si %xmm0,%rax"),
    ])
    def test_sse(self, hex_bytes, text):
        assert str(_decode(hex_bytes)) == text


class TestX87Extra:
    @pytest.mark.parametrize("hex_bytes,text", [
        ("d9 45 f8", "flds -0x8(%rbp)"),
        ("dd 45 f0", "fldl -0x10(%rbp)"),
        ("dd 5d f0", "fstpl -0x10(%rbp)"),
        ("de c1", "faddp %st,%st(1)"),
        ("de c9", "fmulp %st,%st(1)"),
        ("d9 c0", "fld %st(0)"),
        ("df e9", "fucomip"),
        ("d9 e8", "fld1"),
        ("d9 ee", "fldz"),
    ])
    def test_x87(self, hex_bytes, text):
        assert str(_decode(hex_bytes)) == text


class TestRelativeTargets:
    def test_forward_rel8(self):
        ins = _decode("eb 06", address=0x12cf)
        assert ins.operands[0] == Label(0x12CF + 2 + 6)

    def test_rel32_jcc(self):
        ins = _decode("0f 84 84 00 00 00", address=0x2000)
        assert ins.mnemonic == "je"
        assert ins.operands[0] == Label(0x2000 + 6 + 0x84)

    def test_negative_rel32_call(self):
        ins = _decode("e8 d6 fd ff ff", address=0x1420)
        assert ins.operands[0] == Label(0x1420 + 5 - 0x22A)
