"""Unit tests for the Instruction IR and mnemonic metadata."""

import pytest

from repro.asm.instruction import FunctionListing, Instruction, make
from repro.asm.mnemonics import access_width, is_control_flow, is_sse, is_x87
from repro.asm.operands import Imm, Label, Mem, Reg


class TestInstruction:
    def test_str_no_operands(self):
        assert str(make("nop")) == "nop"

    def test_str_two_operands(self):
        ins = make("movl", Imm(0x100), Mem(disp=0xB8, base="rsp"))
        assert str(ins) == "movl $0x100,0xb8(%rsp)"

    def test_too_many_operands_rejected(self):
        with pytest.raises(ValueError):
            Instruction("imul", (Imm(1), Reg("rax"), Reg("rbx"), Reg("rcx")))

    def test_source_and_dest(self):
        ins = make("mov", Reg("rax"), Reg("rbx"))
        assert ins.source == Reg("rax")
        assert ins.dest == Reg("rbx")

    def test_dest_none_for_single_operand(self):
        assert make("push", Reg("rbp")).dest is None

    def test_memory_operands(self):
        ins = make("mov", Mem(disp=-8, base="rbp"), Reg("rax"))
        assert ins.memory_operands() == (Mem(disp=-8, base="rbp"),)

    def test_stack_slots_filters_non_frame(self):
        ins = make("mov", Mem(disp=8, base="rax"), Reg("rbx"))
        assert ins.stack_slots() == ()

    def test_register_families_include_mem_bases(self):
        ins = make("mov", Mem(disp=0, base="rax", index="r9"), Reg("edx"))
        assert ins.register_families() == {"rax", "r9", "rdx"}

    def test_lea_accesses_memory(self):
        assert make("lea", Mem(disp=-16, base="rbp"), Reg("rax")).accesses_memory()

    def test_float_predicate(self):
        assert make("movsd", Mem(disp=-8, base="rbp"), Reg("xmm0")).is_float
        assert make("fldt", Mem(disp=-16, base="rbp")).is_float
        assert not make("movq", Imm(0), Mem(disp=-8, base="rbp")).is_float


class TestMnemonicMetadata:
    @pytest.mark.parametrize("mnemonic,width", [
        ("movb", 1), ("movw", 2), ("movl", 4), ("movq", 8),
        ("addl", 4), ("cmpq", 8), ("movss", 4), ("movsd", 8),
        ("movzbl", 1), ("movswl", 2), ("sete", 1),
    ])
    def test_access_width(self, mnemonic, width):
        assert access_width(mnemonic) == width

    def test_unsuffixed_mov_has_no_width(self):
        assert access_width("mov") is None

    def test_control_flow(self):
        assert is_control_flow("jmp")
        assert is_control_flow("je")
        assert is_control_flow("callq")
        assert not is_control_flow("mov")

    def test_sse_and_x87_disjoint(self):
        assert is_sse("mulsd") and not is_x87("mulsd")
        assert is_x87("fstpt") and not is_sse("fstpt")


class TestFunctionListing:
    def test_render_contains_header_and_instructions(self):
        listing = FunctionListing(
            name="f", address=0x401000,
            instructions=[make("push", Reg("rbp"), address=0x401000)],
        )
        text = listing.render()
        assert "<f>:" in text
        assert "push %rbp" in text

    def test_len(self):
        listing = FunctionListing(name="f", address=0, instructions=[make("nop")] * 3)
        assert len(listing) == 3
