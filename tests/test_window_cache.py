"""Durable window cache (repro.batch.cache): persistence + corruption.

The store's contract is "accelerator, never authority": every test that
damages bytes on disk asserts the damage is detected, counted, and
answered with a miss (so the engine recomputes) — never a crash, never
a wrong row.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch.cache import _HEADER, _KEY_LEN, WindowCacheStore

ROW_LEN = 19


def make_store(tmp_path, key="model-a", **kwargs):
    kwargs.setdefault("fsync", False)
    return WindowCacheStore(tmp_path, key, row_len=ROW_LEN, **kwargs)


def rows(n, seed=0):
    rng = np.random.default_rng(seed)
    return [(bytes([i]) * 12, rng.random(ROW_LEN)) for i in range(n)]


class TestRoundTrip:
    def test_put_then_get(self, tmp_path):
        store = make_store(tmp_path)
        pairs = rows(5)
        store.put_many(pairs)
        store.flush()
        got = store.get_many([raw for raw, _ in pairs])
        assert len(got) == 5
        for raw, row in pairs:
            np.testing.assert_array_equal(got[raw], row)
        store.close()

    def test_missing_keys_are_misses(self, tmp_path):
        store = make_store(tmp_path)
        store.put_many(rows(2))
        got = store.get_many([b"absent-key"])
        assert got == {}
        assert store.stats["misses"] == 1
        store.close()

    def test_rows_are_bit_identical(self, tmp_path):
        store = make_store(tmp_path)
        row = np.random.default_rng(7).random(ROW_LEN)
        store.put_many([(b"key", row)])
        got = store.get_many([b"key"])[b"key"]
        assert got.tobytes() == row.astype(np.float64).tobytes()
        store.close()

    def test_duplicate_puts_are_idempotent(self, tmp_path):
        store = make_store(tmp_path)
        pairs = rows(3)
        store.put_many(pairs)
        appended = store.stats["appends"]
        store.put_many(pairs)
        assert store.stats["appends"] == appended
        store.close()

    def test_wrong_row_width_rejected(self, tmp_path):
        store = make_store(tmp_path)
        with pytest.raises(ValueError, match="payload bytes"):
            store.put_many([(b"key", np.zeros(ROW_LEN + 1))])
        store.close()


class TestPersistence:
    def test_survives_reopen(self, tmp_path):
        pairs = rows(8)
        with make_store(tmp_path) as store:
            store.put_many(pairs)
        reopened = make_store(tmp_path)
        got = reopened.get_many([raw for raw, _ in pairs])
        assert len(got) == 8
        reopened.close()

    def test_index_rebuild_from_segments(self, tmp_path):
        pairs = rows(4)
        with make_store(tmp_path) as store:
            store.put_many(pairs)
            directory = store.directory
        (directory / "index.json").unlink()
        reopened = make_store(tmp_path)
        assert len(reopened.get_many([raw for raw, _ in pairs])) == 4
        assert reopened.stats["segments_scanned"] >= 1
        reopened.close()

    def test_tampered_index_is_rebuilt(self, tmp_path):
        pairs = rows(4)
        with make_store(tmp_path) as store:
            store.put_many(pairs)
            directory = store.directory
        index = directory / "index.json"
        index.write_text(index.read_text().replace('"entries"', '"entr1es"', 1))
        reopened = make_store(tmp_path)
        assert len(reopened.get_many([raw for raw, _ in pairs])) == 4
        reopened.close()

    def test_model_key_namespaces_are_isolated(self, tmp_path):
        pairs = rows(3)
        with make_store(tmp_path, key="model-a") as store:
            store.put_many(pairs)
        other = make_store(tmp_path, key="model-b")
        assert other.get_many([raw for raw, _ in pairs]) == {}
        other.close()


class TestCorruption:
    def test_flipped_byte_is_a_counted_miss(self, tmp_path):
        pairs = rows(6)
        with make_store(tmp_path) as store:
            store.put_many(pairs)
            directory = store.directory
        segment = next(directory.glob("seg-*.bin"))
        blob = bytearray(segment.read_bytes())
        # flip one payload byte of the third record
        record_len = _HEADER.size + _KEY_LEN + ROW_LEN * 8
        victim = 2 * record_len + _HEADER.size + _KEY_LEN + 5
        blob[victim] ^= 0xFF
        segment.write_bytes(blob)
        store = make_store(tmp_path)
        got = store.get_many([raw for raw, _ in pairs])
        # the damaged record is a miss (to be recomputed); others intact
        assert len(got) == 5
        assert pairs[2][0] not in got
        assert store.stats["corrupt_records"] == 1
        # the slot is recomputable: a fresh put serves again
        store.put_many([pairs[2]])
        assert len(store.get_many([pairs[2][0]])) == 1
        store.close()

    def test_torn_tail_is_truncated_not_fatal(self, tmp_path):
        pairs = rows(3)
        with make_store(tmp_path) as store:
            store.put_many(pairs)
            directory = store.directory
        (directory / "index.json").unlink()  # force a scan
        segment = next(directory.glob("seg-*.bin"))
        with open(segment, "ab") as handle:
            handle.write(b"\x01\x02\x03 torn half-record")
        store = make_store(tmp_path)
        assert len(store.get_many([raw for raw, _ in pairs])) == 3
        store.close()

    def test_vanished_segment_is_tolerated(self, tmp_path):
        pairs = rows(3)
        with make_store(tmp_path) as store:
            store.put_many(pairs)
            directory = store.directory
        next(directory.glob("seg-*.bin")).unlink()
        store = make_store(tmp_path)
        assert store.get_many([raw for raw, _ in pairs]) == {}
        store.close()


class TestEngineIntegration:
    def test_store_serves_after_lru_clear(self, tmp_path, mini_cati, demo_binary):
        from repro.codegen.strip import strip
        from repro.experiments.speed import extents_from_debug

        engine = mini_cati.engine
        stripped, extents = strip(demo_binary), extents_from_debug(demo_binary)
        store = make_store(tmp_path, key="mini")
        engine.attach_window_store(store)
        try:
            baseline = mini_cati.infer_binary(stripped, extents)
            assert store.stats["appends"] > 0
            engine.clear_cache()  # drop the in-memory LRU; keep the disk store
            engine.stats.reset()
            again = mini_cati.infer_binary(stripped, extents)
            assert engine.stats.store_hits > 0
            assert [(p.variable_id, p.predicted, p.scores.tobytes())
                    for p in baseline] == \
                   [(p.variable_id, p.predicted, p.scores.tobytes())
                    for p in again]
        finally:
            engine.attach_window_store(None)
            store.close()

    def test_refresh_detaches_store(self, tmp_path, mini_cati):
        engine = mini_cati.engine
        store = make_store(tmp_path, key="mini2")
        engine.attach_window_store(store)
        engine.refresh()
        assert engine.window_store is None
        store.close()
