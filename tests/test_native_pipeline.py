"""End-to-end tests of the fully native real-binary path: ELF + decoder
+ native DWARF, cross-validated against the objdump/readelf text path.
"""

import pytest

from repro.frontend.compile import toolchain_available

pytestmark = pytest.mark.skipif(
    not toolchain_available(), reason="needs a compiler to produce the binary",
)


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    from repro.frontend.compile import compile_sample

    return compile_sample(workdir=str(tmp_path_factory.mktemp("native")))


@pytest.fixture(scope="module")
def loaded(artifact):
    from repro.frontend.native import load_binary

    return load_binary(artifact.binary_path)


class TestLoadBinary:
    def test_functions_decoded(self, loaded):
        names = {f.name for f in loaded.functions}
        assert {"main", "process_ints", "process_floats"} <= names
        for func in loaded.functions:
            assert len(func.instructions) > 3

    def test_variables_extracted(self, loaded):
        assert len(loaded.variables) > 20

    def test_matches_objdump_path(self, artifact, loaded):
        from repro.frontend import parse_disassembly, user_functions

        objdump_funcs = {
            f.name: f for f in user_functions(parse_disassembly(artifact.disassembly))
        }
        native_funcs = loaded.functions_by_name()
        for name, reference in objdump_funcs.items():
            mine = native_funcs.get(name)
            assert mine is not None, name
            assert [str(i) for i in mine.instructions] == \
                [str(i) for i in reference.instructions], name

    def test_matches_readelf_path(self, artifact, loaded):
        from repro.frontend import extract_real_variables

        via_text = {(v.function, v.name): (v.rbp_offset, v.label)
                    for v in extract_real_variables(artifact.dwarf_dump)}
        via_native = {(v.function, v.name): (v.rbp_offset, v.label)
                      for v in loaded.variables}
        assert via_native == via_text


class TestNativeVucExtraction:
    def test_labeled_dataset_from_real_binary(self, loaded):
        from repro.frontend.native import extract_labeled_vucs_native

        dataset = extract_labeled_vucs_native(loaded)
        assert len(dataset) > 50
        assert dataset.n_variables() > 15
        for vucs in dataset.by_variable().values():
            assert len({v.label for v in vucs}) == 1

    def test_mini_cati_predicts_real_binary(self, loaded, mini_cati):
        """The synthetic-trained model runs on fully native real input
        and does clearly better than chance."""
        from repro.frontend.native import extract_labeled_vucs_native

        dataset = extract_labeled_vucs_native(loaded)
        truth = {vid: vucs[0].label for vid, vucs in dataset.by_variable().items()}
        predictions = mini_cati.predict_variables(
            [s.tokens for s in dataset.samples],
            [s.variable_id for s in dataset.samples],
        )
        hits = sum(p.predicted is truth[p.variable_id] for p in predictions)
        # chance is ~1/19 ≈ 0.05; the mini model (tiny corpus, few epochs)
        # transfers only partially to real -O0 codegen, but must clearly
        # beat chance.  The full cached model does substantially better
        # (see examples/real_binary.py).
        assert hits / len(predictions) > 0.10
