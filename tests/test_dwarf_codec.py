"""DIE tree encode/decode round trips, including property-based random
trees with forward type references.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dwarf import decode, dies, encode
from repro.dwarf.decode import DwarfDecodeError
from repro.dwarf.dies import Attr, Die, Encoding, Tag
from repro.dwarf.encode import DebugBlob


def _tree_equal(a: Die, b: Die) -> bool:
    if a.tag is not b.tag:
        return False
    if set(a.attrs) != set(b.attrs):
        return False
    for attr in a.attrs:
        va, vb = a.attrs[attr], b.attrs[attr]
        if isinstance(va, Die) != isinstance(vb, Die):
            return False
        if isinstance(va, Die):
            # Referenced DIEs must at least agree structurally.
            if va.tag is not vb.tag or va.name != vb.name:
                return False
        elif va != vb:
            return False
    if len(a.children) != len(b.children):
        return False
    return all(_tree_equal(ca, cb) for ca, cb in zip(a.children, b.children))


def _sample_cu() -> Die:
    cu = dies.compile_unit("prog.c")
    int_die = dies.base_type("int", 4, Encoding.SIGNED)
    size_t = dies.typedef("size_t", dies.base_type("long unsigned int", 8, Encoding.UNSIGNED))
    node = dies.struct_type("node", 16, [("next", dies.pointer_to(None)), ("v", int_die)])
    sub = cu.add(dies.subprogram("main", 0x401000))
    sub.add(dies.variable("a", int_die, -4))
    sub.add(dies.variable("n", size_t, -16))
    sub.add(dies.variable("head", dies.pointer_to(node), -24))
    cu.children.extend([int_die, size_t, node])
    return cu


class TestRoundTrip:
    def test_sample_cu_round_trips(self):
        cu = _sample_cu()
        decoded = decode(encode(cu))
        assert _tree_equal(cu, decoded)

    def test_variables_preserved_with_locations(self):
        decoded = decode(encode(_sample_cu()))
        variables = decoded.find_all(Tag.VARIABLE)
        assert [v.name for v in variables] == ["a", "n", "head"]
        assert [v.location for v in variables] == [-4, -16, -24]

    def test_typedef_chain_survives(self):
        decoded = decode(encode(_sample_cu()))
        n = next(v for v in decoded.find_all(Tag.VARIABLE) if v.name == "n")
        chain = n.type_ref
        assert chain.tag is Tag.TYPEDEF
        assert chain.type_ref.tag is Tag.BASE_TYPE

    def test_forward_reference_resolves(self):
        cu = dies.compile_unit("f.c")
        target = dies.base_type("int", 4, Encoding.SIGNED)
        sub = cu.add(dies.subprogram("f", 0))
        sub.add(dies.variable("x", target, -8))  # reference appears before the DIE
        cu.children.append(target)
        decoded = decode(encode(cu))
        var = decoded.find_all(Tag.VARIABLE)[0]
        assert var.type_ref.name == "int"

    def test_utf8_names(self):
        cu = dies.compile_unit("ünïcode.c")
        decoded = decode(encode(cu))
        assert decoded.name == "ünïcode.c"


class TestErrors:
    def test_truncated_info_raises(self):
        blob = encode(_sample_cu())
        with pytest.raises((DwarfDecodeError, ValueError)):
            decode(DebugBlob(abbrev=blob.abbrev, info=blob.info[:3]))

    def test_trailing_garbage_raises(self):
        blob = encode(_sample_cu())
        with pytest.raises(DwarfDecodeError):
            decode(DebugBlob(abbrev=blob.abbrev, info=blob.info + b"\x01\x02\x03"))

    def test_loose_reference_auto_attached_on_encode(self):
        cu = dies.compile_unit("x.c")
        orphan_type = dies.base_type("int", 4, Encoding.SIGNED)
        sub = cu.add(dies.subprogram("f", 0))
        sub.add(dies.variable("x", orphan_type, -8))
        # orphan_type never explicitly added to the tree: the encoder
        # attaches it under the root, so the round trip still resolves.
        decoded = decode(encode(cu))
        var = decoded.find_all(Tag.VARIABLE)[0]
        assert var.type_ref.name == "int"


# -- property-based random trees ------------------------------------------------

_names = st.text(st.characters(min_codepoint=33, max_codepoint=126), min_size=1, max_size=8)


@st.composite
def _random_cu(draw):
    cu = dies.compile_unit(draw(_names))
    types = [
        dies.base_type(draw(_names), draw(st.integers(1, 16)), Encoding.SIGNED)
        for _ in range(draw(st.integers(1, 3)))
    ]
    for _ in range(draw(st.integers(1, 3))):
        sub = cu.add(dies.subprogram(draw(_names), draw(st.integers(0, 2**32))))
        for _ in range(draw(st.integers(0, 4))):
            t = draw(st.sampled_from(types))
            if draw(st.booleans()):
                t = dies.pointer_to(t)
                cu.children.append(t)
            sub.add(dies.variable(draw(_names), t, draw(st.integers(-512, 512))))
    cu.children.extend(types)
    return cu


@settings(max_examples=30, deadline=None)
@given(_random_cu())
def test_random_tree_round_trip(cu):
    decoded = decode(encode(cu))
    assert _tree_equal(cu, decoded)
