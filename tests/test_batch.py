"""Batch jobs (repro.batch): specs, checkpoints, resume, fault injection.

The headline assertions mirror ISSUE acceptance:

* a job SIGKILL'd at three distinct fault points (pre-commit,
  torn-commit, post-commit) resumes to predictions **bit-identical** to
  an uninterrupted run, with every work-losing interruption enumerated
  in the merged failure report;
* a partially-written checkpoint is detected (envelope checksum) and
  recomputed, never trusted;
* a poisoned shard consumes its bounded attempt budget — with the
  backoff schedule deterministic under a seeded jitter RNG — and lands
  in quarantine instead of wedging the job.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.batch import (
    BatchJobStore,
    JobSpec,
    demo_corpus,
    job_status,
    load_manifest,
    resume_job,
    run_job,
)
from repro.batch.runner import FaultPlan
from repro.batch.spec import ManifestItem
from repro.core.errors import (
    BatchError,
    ConfigMismatchError,
    FailureRecord,
    FailureReport,
)
from repro.core.toolchain import retry_delays, run_tool

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="session")
def mini_bundle_dir(tmp_path_factory, mini_cati):
    directory = tmp_path_factory.mktemp("bundle") / "model"
    mini_cati.save(str(directory))
    return str(directory)


@pytest.fixture(scope="session")
def drifted_bundle_dir(tmp_path_factory, small_corpus, mini_config):
    """A second, genuinely different model (fewer epochs → new weights)."""
    import dataclasses

    from repro.core.pipeline import Cati

    config = dataclasses.replace(mini_config, epochs=1)
    cati = Cati(config).train(small_corpus.train)
    directory = tmp_path_factory.mktemp("bundle-drift") / "model"
    cati.save(str(directory))
    return str(directory)


# -- spec --------------------------------------------------------------------------


class TestJobSpec:
    def test_rejects_bad_on_error(self):
        with pytest.raises(BatchError, match="on_error"):
            JobSpec(items=demo_corpus(1), on_error="explode")

    def test_rejects_empty_manifest(self):
        with pytest.raises(BatchError, match="no manifest items"):
            JobSpec(items=())

    def test_rejects_bad_item_kind(self):
        with pytest.raises(BatchError, match="kind"):
            ManifestItem.from_dict({"kind": "carrier-pigeon"})

    def test_round_trips_through_dict(self):
        spec = JobSpec(items=demo_corpus(3), shard_size=2,
                       on_error="raise", max_retries=2, seed=7)
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_structs_flag_round_trips(self):
        spec = JobSpec(items=demo_corpus(2), structs=True)
        assert spec.to_dict()["structs"] is True
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_pre_structs_spec_dict_defaults_off(self):
        # Manifests written before the posterior stage existed carry no
        # "structs" key; they must load with the stage off.
        data = JobSpec(items=demo_corpus(2)).to_dict()
        data.pop("structs")
        assert JobSpec.from_dict(data).structs is False

    def test_shards_cover_all_items_in_order(self):
        spec = JobSpec(items=demo_corpus(5), shard_size=2)
        shards = spec.shards()
        assert [len(s) for s in shards] == [2, 2, 1]
        assert [i.name for s in shards for i in s] == \
               [i.name for i in spec.items]

    def test_inputs_hash_binds_model_key(self):
        spec = JobSpec(items=demo_corpus(2), shard_size=2)
        assert spec.shard_inputs_sha256(0, "model-a") != \
               spec.shard_inputs_sha256(0, "model-b")

    def test_manifest_file_relative_paths(self, tmp_path):
        (tmp_path / "wire").mkdir()
        manifest = tmp_path / "corpus.json"
        manifest.write_text(json.dumps({"items": [
            {"kind": "file", "path": "wire/job1.json"},
            {"kind": "demo", "seed": 9},
        ]}))
        items = load_manifest(manifest)
        assert items[0].path == str(tmp_path / "wire" / "job1.json")
        assert items[1].seed == 9

    def test_file_item_with_bad_payload(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"not": "a wire job"}')
        item = ManifestItem(kind="file", name="bad", path=str(bad))
        with pytest.raises(BatchError, match="wire"):
            item.load()


# -- seedable retry backoff --------------------------------------------------------


class TestRetryDelays:
    def test_unjittered_schedule_is_exponential(self):
        assert list(retry_delays(0.1, 3)) == [0.1, 0.2, 0.4]

    def test_seeded_jitter_is_deterministic(self):
        a = list(retry_delays(0.1, 4, jitter=0.5, rng=random.Random(42)))
        b = list(retry_delays(0.1, 4, jitter=0.5, rng=random.Random(42)))
        assert a == b
        base = [0.1, 0.2, 0.4, 0.8]
        for got, lo in zip(a, base):
            assert lo <= got <= lo * 1.5

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            list(retry_delays(0.1, 1, jitter=-1))

    def test_run_tool_sleeps_the_seeded_schedule(self):
        calls = {"n": 0}

        def flaky_runner(argv, **kwargs):
            calls["n"] += 1
            raise OSError("transient")

        slept: list[float] = []
        with pytest.raises(Exception):
            run_tool(["fake-tool"], retries=2, backoff=0.1, jitter=0.5,
                     rng=random.Random(7), runner=flaky_runner,
                     sleep=slept.append)
        assert calls["n"] == 3
        assert slept == list(retry_delays(0.1, 2, jitter=0.5,
                                          rng=random.Random(7)))


# -- failure report plumbing -------------------------------------------------------


class TestFailureReportMerge:
    def test_merge_concatenates_in_order(self):
        first, second = FailureReport(), FailureReport()
        first.record(ValueError("a"), stage="extract", binary="bin-a")
        second.record(KeyError("b"), stage="classify", binary="bin-b")
        merged = FailureReport.merge([first, None, second])
        assert [r.binary for r in merged] == ["bin-a", "bin-b"]
        assert merged.by_stage() == {"extract": 1, "classify": 1}

    def test_record_dict_round_trip(self):
        report = FailureReport()
        report.record(ValueError("boom"), stage="batch",
                      binary="bin", function="fn")
        rebuilt = FailureReport.from_records(report.records_to_dicts())
        original, clone = report.records[0], rebuilt.records[0]
        for field in ("stage", "kind", "message", "binary", "function",
                      "traceback"):
            assert getattr(original, field) == getattr(clone, field)

    def test_from_dict_tolerates_minimal_record(self):
        record = FailureRecord.from_dict({"stage": "batch", "kind": "X",
                                          "message": "m"})
        assert record.stage == "batch"


# -- fault plan --------------------------------------------------------------------


class TestFaultPlan:
    def test_parses_full_spec(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_FAULT",
                           "torn:shard=2:point=torn-commit:times=3")
        plan = FaultPlan.from_env()
        assert plan == FaultPlan(mode="torn", shard=2,
                                 point="torn-commit", times=3)

    def test_absent_env_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH_FAULT", raising=False)
        assert FaultPlan.from_env() is None

    def test_bad_spec_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_FAULT", "maybe:shard=0:point=lunch")
        with pytest.raises(BatchError, match="REPRO_BATCH_FAULT"):
            FaultPlan.from_env()


# -- in-process job lifecycle ------------------------------------------------------


def small_spec(n=3, **kwargs):
    kwargs.setdefault("shard_size", 2)
    kwargs.setdefault("backoff", 0.0)
    return JobSpec(items=demo_corpus(n), **kwargs)


class TestJobLifecycle:
    def test_run_matches_direct_inference(self, tmp_path, mini_bundle_dir,
                                          mini_cati):
        spec = small_spec(3)
        results = run_job(tmp_path / "job", spec,
                          model_dir=mini_bundle_dir,
                          cache_dir=tmp_path / "cache")
        assert results["shards"]["quarantined"] == []
        assert results["shards"]["missing"] == []
        for item in spec.items:
            stripped, extents = item.load()
            direct = mini_cati.infer_binary(stripped, extents)
            got = results["predictions"][item.name]
            assert [p["variable_id"] for p in got] == \
                   [d.variable_id for d in direct]
            assert [p["predicted"] for p in got] == \
                   [str(d.predicted) for d in direct]

    def test_results_committed_and_status_complete(self, tmp_path,
                                                   mini_bundle_dir):
        job_dir = tmp_path / "job"
        run_job(job_dir, small_spec(3), model_dir=mini_bundle_dir)
        status = job_status(job_dir)
        assert status["complete"]
        assert status["has_results"]
        assert status["shards"]["committed"] == 2
        on_disk = json.loads((job_dir / "results.json").read_text())
        assert on_disk["format"] == "cati-batch-results/1"

    def test_rerun_refuses_existing_job_dir(self, tmp_path, mini_bundle_dir):
        job_dir = tmp_path / "job"
        run_job(job_dir, small_spec(2), model_dir=mini_bundle_dir)
        with pytest.raises(BatchError, match="resume"):
            run_job(job_dir, small_spec(2), model_dir=mini_bundle_dir)

    def test_resume_of_complete_job_reuses_everything(self, tmp_path,
                                                      mini_bundle_dir):
        job_dir = tmp_path / "job"
        first = run_job(job_dir, small_spec(3), model_dir=mini_bundle_dir)
        again = resume_job(job_dir)
        assert again["shards_run"] == 0
        assert again["shards_reused"] == 2
        assert again["predictions"] == first["predictions"]

    def test_partial_checkpoint_detected_and_recomputed(self, tmp_path,
                                                        mini_bundle_dir):
        job_dir = tmp_path / "job"
        first = run_job(job_dir, small_spec(3), model_dir=mini_bundle_dir)
        store = BatchJobStore(job_dir)
        path = store.checkpoint_path(0)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        status = job_status(job_dir)
        assert status["shards"]["invalid"] == [0]
        assert not status["complete"]
        resumed = resume_job(job_dir)
        assert resumed["shards_run"] == 1
        assert resumed["predictions"] == first["predictions"]

    def test_tampered_model_key_rejected_then_rebound(self, tmp_path,
                                                      mini_bundle_dir):
        job_dir = tmp_path / "job"
        first = run_job(job_dir, small_spec(2), model_dir=mini_bundle_dir)
        store = BatchJobStore(job_dir)
        body = json.loads(store.job_path.read_text())
        body["model_key"] = "0" * 64  # job.json no longer matches the bundle
        store.job_path.write_text(json.dumps(body))
        with pytest.raises(ConfigMismatchError, match="force"):
            resume_job(job_dir)
        forced = resume_job(job_dir, force=True)
        # force re-binds to the bundle actually on disk — which is the
        # one the checkpoints were computed against, so they revalidate
        assert forced["shards_run"] == 0
        assert forced["predictions"] == first["predictions"]

    def test_real_model_drift_invalidates_checkpoints(
            self, tmp_path, mini_bundle_dir, drifted_bundle_dir):
        job_dir = tmp_path / "job"
        run_job(job_dir, small_spec(2), model_dir=mini_bundle_dir)
        with pytest.raises(ConfigMismatchError, match="force"):
            resume_job(job_dir, model_dir=drifted_bundle_dir)
        forced = resume_job(job_dir, model_dir=drifted_bundle_dir, force=True)
        # the old checkpoints bind the old model key: all recomputed
        assert forced["shards_run"] == 1
        assert forced["shards_reused"] == 0
        body = json.loads(BatchJobStore(job_dir).job_path.read_text())
        assert body["model_dir"] == drifted_bundle_dir

    def test_quarantine_after_bounded_deterministic_retries(
            self, tmp_path, mini_bundle_dir, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_FAULT",
                           "raise:shard=1:point=pre-commit:times=99")
        slept: list[float] = []
        spec = small_spec(3, max_retries=2, backoff=0.05, jitter=0.5, seed=11)
        results = run_job(tmp_path / "job", spec, model_dir=mini_bundle_dir,
                          sleep=slept.append)
        assert results["shards"]["quarantined"] == [1]
        # the poisoned shard's items are absent, the healthy shard's are not
        assert spec.items[0].name in results["predictions"]
        assert spec.items[2].name not in results["predictions"]
        # every injected failure is enumerated in the merged report
        injected = [r for r in results["failures"]["records"]
                    if "injected fault" in r["message"]]
        assert len(injected) == 3  # attempt budget = max_retries + 1
        # the backoff schedule is the seeded per-shard retry_delays schedule
        assert slept == list(retry_delays(0.05, 2, jitter=0.5,
                                          rng=random.Random("11:1")))
        status = job_status(tmp_path / "job")
        assert status["shards"]["quarantined"] == [1]
        assert status["complete"]

    def test_quarantine_raises_under_raise_policy(self, tmp_path,
                                                  mini_bundle_dir,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_FAULT",
                           "raise:shard=0:point=pre-commit:times=99")
        spec = small_spec(2, on_error="raise", max_retries=0)
        with pytest.raises(BatchError, match="quarantined"):
            run_job(tmp_path / "job", spec, model_dir=mini_bundle_dir)


# -- SIGKILL / resume (subprocess) -------------------------------------------------


def _batch_cli(args, *, fault=None, timeout=600):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.pop("REPRO_BATCH_FAULT", None)
    if fault:
        env["REPRO_BATCH_FAULT"] = fault
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env, cwd=REPO, capture_output=True, text=True, timeout=timeout)


@pytest.mark.slow
class TestKillResume:
    """SIGKILL at three distinct fault points, then resume bit-identically."""

    def test_kill_resume_bit_identical(self, tmp_path, mini_bundle_dir):
        job = tmp_path / "job"
        ref_job = tmp_path / "ref"
        cache = tmp_path / "cache"
        base = ["--model-dir", mini_bundle_dir, "--demo-corpus", "6",
                "--shard-size", "2", "--max-retries", "3"]

        # uninterrupted reference run (its own job dir, shared cache is
        # fine: cached rows are bit-identical by construction)
        ref = _batch_cli(["batch", "run", "--job-dir", str(ref_job),
                          "--cache-dir", str(cache), *base])
        assert ref.returncode == 0, ref.stderr

        faults = ["kill:shard=0:point=pre-commit",
                  "torn:shard=1:point=torn-commit",
                  "kill:shard=2:point=post-commit"]
        first = _batch_cli(["batch", "run", "--job-dir", str(job),
                            "--cache-dir", str(cache), *base],
                           fault=faults[0])
        assert first.returncode == -signal.SIGKILL
        for fault in faults[1:]:
            killed = _batch_cli(["batch", "resume", "--job-dir", str(job)],
                                fault=fault)
            assert killed.returncode == -signal.SIGKILL, killed.stderr
        final = _batch_cli(["batch", "resume", "--job-dir", str(job)])
        assert final.returncode == 0, final.stderr

        results = json.loads((job / "results.json").read_text())
        reference = json.loads((ref_job / "results.json").read_text())
        # bit-identical: same variables, same types, same float64 scores
        assert results["predictions"] == reference["predictions"]
        assert results["shards"]["quarantined"] == []
        # the work-losing interruptions (pre-commit kill on shard 0,
        # torn commit on shard 1) are enumerated in the merged report;
        # the post-commit kill lost nothing (its checkpoint committed)
        interrupted = [r for r in results["failures"]["records"]
                       if "died without committing" in r["message"]]
        assert len(interrupted) == 2
        # the torn checkpoint was detected as partial, not trusted
        status = json.loads(
            _batch_cli(["batch", "status", "--job-dir", str(job),
                        "--json"]).stdout)
        assert status["complete"]
        assert status["shards"]["committed"] == 3
