"""Program-generator tests: determinism, budgets, menus, clustering."""

import random
from collections import Counter

import pytest

from repro.codegen.ctypes_model import ArrayType, PointerType, StructType
from repro.codegen.progen import (
    Access,
    AccessKind,
    Filler,
    GeneratorConfig,
    generate_function,
    generate_program,
    menu_for,
)
from repro.core.types import TypeName


class TestDeterminism:
    def test_same_seed_same_program(self):
        a = generate_program(42, "p")
        b = generate_program(42, "p")
        assert len(a.functions) == len(b.functions)
        for fa, fb in zip(a.functions, b.functions):
            assert [v.ctype for v in fa.locals] == [v.ctype for v in fb.locals]
            assert len(fa.events) == len(fb.events)

    def test_different_seed_differs(self):
        a = generate_program(1, "p")
        b = generate_program(2, "p")
        assert any(
            len(fa.events) != len(fb.events)
            for fa, fb in zip(a.functions, b.functions)
        ) or len(a.functions) != len(b.functions)


class TestBudgets:
    def test_every_local_gets_at_least_one_access(self):
        func = generate_function(random.Random(5), "f", GeneratorConfig())
        accessed = {e.var.index for e in func.events if isinstance(e, Access)}
        assert accessed == {v.index for v in func.locals}

    def test_orphan_fraction_approximate(self):
        config = GeneratorConfig(orphan_fraction=0.35)
        rng = random.Random(0)
        counts = Counter()
        for i in range(60):
            func = generate_function(rng, f"f{i}", config)
            per_var = Counter(
                e.var.index for e in func.events if isinstance(e, Access)
            )
            for count in per_var.values():
                counts[min(count, 3)] += 1
        total = sum(counts.values())
        orphan_rate = (counts[1] + counts[2]) / total
        assert 0.2 < orphan_rate < 0.55

    def test_locals_within_configured_range(self):
        config = GeneratorConfig(locals_per_function=(2, 4))
        for i in range(10):
            func = generate_function(random.Random(i), "f", config)
            assert 2 <= len(func.locals) <= 4


class TestMenus:
    def _var(self, ctype):
        from repro.codegen.progen import LocalVar

        return LocalVar(name="v", ctype=ctype, index=0)

    def test_struct_gets_member_menu(self):
        from repro.codegen import ctypes_model as ct

        menu = menu_for(self._var(ct.make_struct_zoo()[0]))
        kinds = {k for k, _w in menu}
        assert AccessKind.MEMBER_STORE in kinds
        assert AccessKind.INIT not in kinds

    def test_pointer_gets_deref_menu(self):
        from repro.codegen import ctypes_model as ct

        menu = menu_for(self._var(PointerType(ct.INT)))
        kinds = {k for k, _w in menu}
        assert AccessKind.DEREF_LOAD in kinds
        assert AccessKind.PTR_ADVANCE in kinds

    def test_void_pointer_never_dereferenced(self):
        menu = menu_for(self._var(PointerType(None)))
        kinds = {k for k, _w in menu}
        assert AccessKind.DEREF_LOAD not in kinds

    def test_bool_menu(self):
        from repro.codegen import ctypes_model as ct

        menu = menu_for(self._var(ct.BOOL))
        kinds = {k for k, _w in menu}
        assert AccessKind.BOOL_TEST in kinds

    def test_array_menu(self):
        from repro.codegen import ctypes_model as ct

        menu = menu_for(self._var(ArrayType(ct.CHAR, 16)))
        kinds = {k for k, _w in menu}
        assert kinds == {AccessKind.ARRAY_STORE, AccessKind.ARRAY_LOAD}


class TestClustering:
    def test_high_stay_prob_creates_runs(self):
        """With stay-probability 1 the schedule processes one variable at
        a time, so adjacent accesses share a variable."""
        config = GeneratorConfig(cluster_stay_prob=0.95, cluster_same_type_prob=0.0,
                                 filler_prob=0.0)
        func = generate_function(random.Random(3), "f", config)
        accesses = [e for e in func.events if isinstance(e, Access)]
        adjacent_same = sum(
            a.var.index == b.var.index for a, b in zip(accesses, accesses[1:])
        )
        assert adjacent_same / max(len(accesses) - 1, 1) > 0.6

    def test_partner_is_same_type_for_arith_var(self):
        for seed in range(20):
            func = generate_function(random.Random(seed), "f", GeneratorConfig())
            for event in func.events:
                if isinstance(event, Access) and event.kind is AccessKind.ARITH_VAR:
                    assert event.partner is not None
                    assert event.partner.label is event.var.label

    def test_addr_of_partner_not_pointer(self):
        for seed in range(20):
            func = generate_function(random.Random(seed), "f", GeneratorConfig())
            for event in func.events:
                if isinstance(event, Access) and event.kind is AccessKind.ADDR_OF:
                    assert not isinstance(event.partner.ctype, PointerType)


class TestTypeWeights:
    def test_zero_weight_type_never_sampled(self):
        from repro.codegen.progen import DEFAULT_TYPE_WEIGHTS

        weights = dict(DEFAULT_TYPE_WEIGHTS)
        weights[TypeName.FLOAT] = 0.0
        weights[TypeName.LONG_DOUBLE] = 0.0
        config = GeneratorConfig(type_weights=weights)
        for seed in range(15):
            program = generate_program(seed, "p", config)
            for func in program.functions:
                for var in func.locals:
                    assert var.label not in (TypeName.FLOAT, TypeName.LONG_DOUBLE)
