"""Unit + integration tests for repro.core.observability.

Covers the satellite checklist: histogram bucketing, span nesting,
thread-safety of counter increments, and an end-to-end ``infer_binary``
run producing non-zero phase spans with consistent cache-hit
accounting.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.codegen.compilers import GccCompiler
from repro.codegen.strip import strip
from repro.core import observability
from repro.core.observability import (
    MARGIN_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
)
from repro.experiments.speed import extents_from_debug


@pytest.fixture()
def registry():
    return MetricsRegistry(enabled=True)


# -- counters ------------------------------------------------------------------


def test_counter_increments(registry):
    registry.inc("a")
    registry.inc("a", 4)
    registry.inc("b", 0.5)
    snap = registry.snapshot()
    assert snap["counters"] == {"a": 5, "b": 0.5}


def test_counter_thread_safety():
    counter = Counter("c")
    n_threads, per_thread = 8, 5000

    def worker():
        for _ in range(per_thread):
            counter.inc()

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert counter.value == n_threads * per_thread


def test_registry_counter_thread_safety(registry):
    """Lazy creation under contention never loses a metric or a count."""
    def worker():
        for i in range(1000):
            registry.inc(f"k{i % 7}")

    threads = [threading.Thread(target=worker) for _ in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    snap = registry.snapshot()
    assert sum(snap["counters"].values()) == 6000
    assert len(snap["counters"]) == 7


def test_disabled_registry_records_nothing(registry):
    registry.enabled = False
    registry.inc("a")
    registry.observe("h", 1.0)
    registry.set_gauge("g", 3)
    with registry.span("s"):
        pass
    snap = registry.snapshot()
    assert snap == {"counters": {}, "gauges": {}, "histograms": {}, "spans": {}}


# -- histograms ----------------------------------------------------------------


def test_histogram_bucketing():
    hist = Histogram("h", boundaries=(1.0, 2.0, 4.0))
    for value in (0.5, 1.0, 1.5, 2.0, 3.9, 4.0, 100.0):
        hist.observe(value)
    data = hist.to_dict()
    # counts[i] means "<= boundaries[i]": {0.5, 1.0} | {1.5, 2.0} | {3.9, 4.0} | {100.0}
    assert data["counts"] == [2, 2, 2, 1]
    assert data["count"] == 7
    assert data["min"] == 0.5
    assert data["max"] == 100.0
    assert data["sum"] == pytest.approx(112.9)


def test_histogram_boundary_values_inclusive():
    hist = Histogram("h", boundaries=(1.0, 2.0))
    hist.observe(2.0)
    assert hist.to_dict()["counts"] == [0, 1, 0]


def test_histogram_rejects_unsorted_boundaries():
    with pytest.raises(ValueError):
        Histogram("h", boundaries=(2.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("h", boundaries=())


def test_histogram_empty_summary():
    data = Histogram("h", boundaries=(1.0,)).to_dict()
    assert data["count"] == 0
    assert data["min"] is None and data["max"] is None and data["mean"] is None


def test_default_margin_buckets_sorted():
    assert list(MARGIN_BUCKETS) == sorted(MARGIN_BUCKETS)


# -- spans ---------------------------------------------------------------------


def test_span_records_wall_time(registry):
    with registry.span("outer"):
        sum(range(1000))
    stat = registry.snapshot()["spans"]["outer"]
    assert stat["count"] == 1
    assert stat["wall_s"] > 0.0
    assert stat["min_s"] <= stat["max_s"]


def test_span_nesting_builds_paths(registry):
    with registry.span("a"):
        with registry.span("b"):
            pass
        with registry.span("b"):
            pass
    with registry.span("b"):
        pass
    spans = registry.snapshot()["spans"]
    assert spans["a"]["count"] == 1
    assert spans["a/b"]["count"] == 2
    assert spans["b"]["count"] == 1


def test_span_stack_unwinds_on_exception(registry):
    with pytest.raises(RuntimeError):
        with registry.span("a"):
            raise RuntimeError("boom")
    with registry.span("c"):
        pass
    spans = registry.snapshot()["spans"]
    # the failed span still recorded, and "c" is NOT nested under "a"
    assert spans["a"]["count"] == 1
    assert spans["c"]["count"] == 1


def test_span_nesting_is_per_thread(registry):
    done = threading.Event()

    def other():
        with registry.span("t2"):
            pass
        done.set()

    with registry.span("t1"):
        thread = threading.Thread(target=other)
        thread.start()
        thread.join()
    assert done.is_set()
    spans = registry.snapshot()["spans"]
    assert "t2" in spans and "t1/t2" not in spans


# -- cross-process snapshot merging (the router's /metricsz rollup) ------------


def snapshot_of(build) -> dict:
    registry = MetricsRegistry(enabled=True)
    build(registry)
    return registry.snapshot()


def test_merge_sums_counters_and_maxes_gauges():
    a = snapshot_of(lambda r: (r.inc("req", 3), r.set_gauge("depth", 2)))
    b = snapshot_of(lambda r: (r.inc("req", 4), r.inc("only_b"),
                               r.set_gauge("depth", 5)))
    merged = observability.merge_snapshots([a, b])
    assert merged["counters"] == {"only_b": 1, "req": 7}
    assert merged["gauges"] == {"depth": 5}


def test_merge_histograms_same_boundaries_adds_bucketwise():
    bounds = (1.0, 2.0, 4.0)
    a = snapshot_of(lambda r: [r.observe("h", v, boundaries=bounds)
                               for v in (0.5, 1.5, 8.0)])
    b = snapshot_of(lambda r: [r.observe("h", v, boundaries=bounds)
                               for v in (0.7, 3.0)])
    merged = observability.merge_snapshots([a, b])["histograms"]["h"]
    assert merged["boundaries"] == list(bounds)
    assert merged["counts"] == [2, 1, 1, 1]
    assert merged["count"] == 5
    assert merged["min"] == 0.5
    assert merged["max"] == 8.0
    assert merged["sum"] == pytest.approx(13.7)
    assert merged["mean"] == pytest.approx(13.7 / 5)


def test_merge_histograms_differing_boundaries_rebins():
    a = snapshot_of(lambda r: [r.observe("h", v, boundaries=(1.0, 2.0))
                               for v in (0.5, 1.5)])
    b = snapshot_of(lambda r: [r.observe("h", v, boundaries=(0.25, 3.0))
                               for v in (0.1, 2.5)])
    merged = observability.merge_snapshots([a, b])["histograms"]["h"]
    # The first snapshot's boundaries win; b's tallies land in the
    # first merged bucket whose boundary covers *their* boundary value.
    assert merged["boundaries"] == [1.0, 2.0]
    assert merged["count"] == 4
    assert sum(merged["counts"]) == 4
    assert merged["min"] == 0.1
    assert merged["max"] == 2.5


def test_quantiles_over_merged_histograms():
    bounds = (0.1, 0.2, 0.4, 0.8)
    a = snapshot_of(lambda r: [r.observe("lat", v, boundaries=bounds)
                               for v in (0.05,) * 40 + (0.15,) * 40])
    b = snapshot_of(lambda r: [r.observe("lat", v, boundaries=bounds)
                               for v in (0.3,) * 15 + (0.7,) * 5])
    merged = observability.merge_snapshots([a, b])["histograms"]["lat"]
    assert merged["count"] == 100
    p50 = observability.quantile_from_dict(merged, 0.5)
    p99 = observability.quantile_from_dict(merged, 0.99)
    # p50 falls in the (0.1, 0.2] bucket; p99 in the (0.4, 0.8] bucket.
    assert 0.1 <= p50 <= 0.2
    assert 0.4 <= p99 <= 0.7  # clamped to the observed max
    assert observability.quantile_from_dict(merged, 0.0) == pytest.approx(0.05)
    assert observability.quantile_from_dict({"counts": [], "count": 0}, 0.5) is None


def test_merge_spans_sums_and_extremes():
    def build_a(r):
        with r.span("load"):
            pass

    def build_b(r):
        with r.span("load"):
            pass
        with r.span("batch"):
            pass

    merged = observability.merge_snapshots(
        [snapshot_of(build_a), snapshot_of(build_b)])["spans"]
    assert merged["load"]["count"] == 2
    assert merged["batch"]["count"] == 1
    assert merged["load"]["min_s"] <= merged["load"]["max_s"]
    assert merged["load"]["wall_s"] >= merged["load"]["min_s"]


def test_merge_tolerates_empty_and_partial_snapshots():
    full = snapshot_of(lambda r: r.inc("a"))
    assert observability.merge_snapshots([]) == {
        "counters": {}, "gauges": {}, "histograms": {}, "spans": {}}
    merged = observability.merge_snapshots([full, {}, {"counters": {"a": 2}}])
    assert merged["counters"]["a"] == 3


# -- rendering -----------------------------------------------------------------


def test_snapshot_is_json_serializable(registry):
    registry.inc("a", 2)
    registry.set_gauge("g", 1.5)
    registry.observe("h", 0.3, boundaries=(1.0,))
    with registry.span("s"):
        pass
    parsed = json.loads(registry.render_json())
    assert parsed["counters"]["a"] == 2
    assert parsed["gauges"]["g"] == 1.5
    assert parsed["histograms"]["h"]["count"] == 1
    assert parsed["spans"]["s"]["count"] == 1


def test_render_text_mentions_every_metric(registry):
    registry.inc("my.counter", 3)
    registry.observe("my.hist", 0.5, boundaries=(1.0,))
    with registry.span("my.span"):
        pass
    text = registry.render_text()
    for name in ("my.counter", "my.hist", "my.span"):
        assert name in text


def test_render_text_empty(registry):
    assert "no metrics" in registry.render_text()


def test_reset_clears_everything(registry):
    registry.inc("a")
    with registry.span("s"):
        pass
    registry.reset()
    assert registry.snapshot() == {
        "counters": {}, "gauges": {}, "histograms": {}, "spans": {}}


def test_global_registry_helpers():
    saved = observability.is_enabled()
    try:
        observability.set_enabled(True)
        observability.inc("test.global.counter", 2)
        assert observability.snapshot()["counters"]["test.global.counter"] >= 2
        observability.set_enabled(False)
        assert not observability.is_enabled()
        observability.inc("test.global.counter", 1000)
        after = observability.snapshot()["counters"]["test.global.counter"]
        assert after < 1000 + 2  # the disabled increment did not land
    finally:
        observability.set_enabled(saved)


# -- integration: the instrumented pipeline ------------------------------------


@pytest.fixture()
def fresh_global_registry():
    """Reset the process-global registry around one test."""
    observability.reset()
    saved = observability.is_enabled()
    observability.set_enabled(True)
    yield observability.get_registry()
    observability.set_enabled(saved)
    observability.reset()


def test_infer_binary_emits_phase_spans(mini_cati, fresh_global_registry):
    binary = GccCompiler().compile_fresh(seed=11, name="obs", opt_level=1)
    result = mini_cati.infer_binary(strip(binary), extents_from_debug(binary))
    assert len(result) > 0
    snap = fresh_global_registry.snapshot()

    spans = snap["spans"]
    for phase in ("infer_binary", "infer_binary/extract",
                  "infer_binary/extract/locate", "infer_binary/encode",
                  "infer_binary/classify", "infer_binary/vote"):
        assert phase in spans, f"missing phase span {phase}"
        assert spans[phase]["count"] >= 1
        assert spans[phase]["wall_s"] > 0.0

    # cache accounting is consistent: every unique window either hit or missed
    counters = snap["counters"]
    assert counters["engine.windows"] >= counters["engine.unique_windows"] > 0
    assert (counters["engine.cache_hits"] + counters["engine.cache_misses"]
            == counters["engine.unique_windows"])

    # voting observability: one margin per decided variable
    assert counters["vote.variables"] == len(result)
    assert snap["histograms"]["vote.margin"]["count"] == len(result)
    assert counters["vote.confidences"] > 0

    # the result carries the cumulative snapshot
    assert result.metrics is not None
    assert result.metrics["counters"]["engine.windows"] > 0


def test_repeat_inference_hits_cache(mini_cati, fresh_global_registry):
    binary = GccCompiler().compile_fresh(seed=12, name="obs2", opt_level=1)
    stripped, extents = strip(binary), extents_from_debug(binary)
    mini_cati.engine.clear_cache()
    mini_cati.infer_binary(stripped, extents)
    first = fresh_global_registry.snapshot()["counters"]
    mini_cati.infer_binary(stripped, extents)
    second = fresh_global_registry.snapshot()["counters"]
    # the second identical run answers every unique window from the LRU cache
    assert (second["engine.cache_hits"] - first["engine.cache_hits"]
            == second["engine.unique_windows"] - first["engine.unique_windows"])
    assert second["engine.cache_misses"] == first["engine.cache_misses"]


def test_metrics_disabled_config_skips_pipeline_metrics(mini_cati, fresh_global_registry):
    binary = GccCompiler().compile_fresh(seed=13, name="obs3", opt_level=1)
    saved = mini_cati.config.metrics_enabled
    mini_cati.config.metrics_enabled = False
    try:
        result = mini_cati.infer_binary(strip(binary), extents_from_debug(binary))
    finally:
        mini_cati.config.metrics_enabled = saved
    assert len(result) > 0
    assert result.metrics is None
    snap = fresh_global_registry.snapshot()
    assert "engine.windows" not in snap["counters"]
    assert not snap["spans"]


def test_failure_counters_record_stage_and_kind(fresh_global_registry):
    from repro.core.errors import DecodeError, FailureReport

    report = FailureReport()
    report.record(DecodeError("bad bytes", stage="decode"), stage="decode")
    report.record(ValueError("nope"), stage="extract")
    counters = fresh_global_registry.snapshot()["counters"]
    assert counters["failures.total"] == 2
    assert counters["failures.stage.decode"] == 1
    assert counters["failures.stage.extract"] == 1
    assert counters["failures.kind.DecodeError"] == 1
    assert counters["failures.kind.ValueError"] == 1


def test_toolchain_metrics_count_retries_and_failures(fresh_global_registry):
    import tests.faultinject as fi
    from repro.core.errors import ToolchainError
    from repro.core.toolchain import run_tool

    result = run_tool(["gcc", "--version"], timeout=0.5, retries=2,
                      backoff=0.1, runner=fi.FlakyRunner(["timeout", "ok"]),
                      sleep=fi.no_sleep)
    assert result.attempts == 2
    with pytest.raises(ToolchainError):
        run_tool(["gcc-99", "x.c"], runner=fi.FlakyRunner(["missing"]),
                 sleep=fi.no_sleep)

    snap = fresh_global_registry.snapshot()
    counters = snap["counters"]
    assert counters["toolchain.runs"] == 2
    assert counters["toolchain.runs.gcc"] == 1
    assert counters["toolchain.retries"] == 1
    assert counters["toolchain.backoff_s"] == pytest.approx(0.1)
    assert counters["toolchain.failures"] == 1
    assert counters["toolchain.missing"] == 1
    assert snap["spans"]["toolchain.gcc"]["count"] == 1


def test_inference_result_pickles_with_metrics(mini_cati):
    import pickle

    from repro.core.engine import InferenceResult

    result = InferenceResult([1, 2], metrics={"counters": {"a": 1}})
    clone = pickle.loads(pickle.dumps(result))
    assert list(clone) == [1, 2]
    assert clone.metrics == {"counters": {"a": 1}}
