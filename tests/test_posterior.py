"""Posterior struct-recovery tests: object collection, pooling, field
voting, tie-breaks, the flat baseline, and engine integration.
"""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.core.types import ALL_TYPES, TypeName
from repro.posterior import (
    flat_baseline_layouts,
    layouts_to_fields,
    recover_layouts,
    truth_layouts,
)
from repro.vuc.dataflow import AccessSite
from repro.vuc.locate import TargetKind

IDX = {name: i for i, name in enumerate(ALL_TYPES)}


@dataclass(frozen=True)
class _Pred:
    """The two attributes recover_layouts reads off a prediction."""

    variable_id: str
    predicted: TypeName


def _row(*pairs):
    """One [19] posterior row from (TypeName, prob) pairs."""
    row = np.zeros(len(ALL_TYPES))
    for name, prob in pairs:
        row[IDX[name]] = prob
    return row


def _slot(vid, offset, width=4):
    return AccessSite(variable_id=vid, kind=TargetKind.SLOT, offset=offset, width=width)


def _deref(vid, offset, width=4):
    return AccessSite(variable_id=vid, kind=TargetKind.DEREF, offset=offset, width=width)


class TestObjectCollection:
    def test_struct_vote_owns_slot_object(self):
        sites = [_slot("s", 0), _slot("s", 0)]
        probs = np.stack([_row((TypeName.INT, 1.0))] * 2)
        layouts = recover_layouts([_Pred("s", TypeName.STRUCT)], probs,
                                  ["s", "s"], sites)
        assert len(layouts) == 1
        assert layouts[0].object_id == "s"

    def test_struct_pointer_owns_pointee_object(self):
        sites = [_deref("p", 8, width=8), _deref("p", 8, width=8)]
        probs = np.stack([_row((TypeName.LONG_INT, 1.0))] * 2)
        layouts = recover_layouts([_Pred("p", TypeName.STRUCT_POINTER)], probs,
                                  ["p", "p"], sites)
        assert [layout.object_id for layout in layouts] == ["p->"]

    def test_structural_fallback_multi_offset_slots(self):
        """Member-labeled models vote field types, not struct: a variable
        whose SLOT accesses span >=2 interior offsets is still an object."""
        sites = [_slot("s", 0), _slot("s", 0), _slot("s", 8), _slot("s", 8)]
        probs = np.stack([_row((TypeName.INT, 1.0))] * 4)
        layouts = recover_layouts([_Pred("s", TypeName.INT)], probs,
                                  ["s"] * 4, sites)
        assert len(layouts) == 1

    def test_single_offset_scalar_is_not_an_object(self):
        sites = [_slot("v", 0), _slot("v", 0)]
        probs = np.stack([_row((TypeName.INT, 1.0))] * 2)
        assert recover_layouts([_Pred("v", TypeName.INT)], probs,
                               ["v", "v"], sites) == []

    def test_structural_fallback_nonzero_deref_disp(self):
        sites = [_deref("p", 16, width=8), _deref("p", 16, width=8)]
        probs = np.stack([_row((TypeName.LONG_INT, 1.0))] * 2)
        layouts = recover_layouts([_Pred("p", TypeName.ARITH_POINTER)], probs,
                                  ["p", "p"], sites)
        assert [layout.object_id for layout in layouts] == ["p->"]

    def test_zero_disp_scalar_pointer_is_not_an_object(self):
        sites = [_deref("p", 0), _deref("p", 0)]
        probs = np.stack([_row((TypeName.INT, 1.0))] * 2)
        assert recover_layouts([_Pred("p", TypeName.ARITH_POINTER)], probs,
                               ["p", "p"], sites) == []

    def test_negative_offsets_are_locator_noise(self):
        sites = [_slot("s", -4), _slot("s", -4)]
        probs = np.stack([_row((TypeName.INT, 1.0))] * 2)
        assert recover_layouts([_Pred("s", TypeName.STRUCT)], probs,
                               ["s", "s"], sites) == []

    def test_misaligned_rows_raise(self):
        with pytest.raises(ValueError):
            recover_layouts([], np.zeros((1, len(ALL_TYPES))), ["a"], [])


class TestFieldVoting:
    def test_fields_voted_per_offset(self):
        sites = [_slot("s", 0, width=4), _slot("s", 0, width=4),
                 _slot("s", 8, width=8), _slot("s", 8, width=8)]
        probs = np.stack([
            _row((TypeName.INT, 1.0)), _row((TypeName.INT, 1.0)),
            _row((TypeName.LONG_INT, 1.0)), _row((TypeName.LONG_INT, 1.0)),
        ])
        layouts = recover_layouts([_Pred("s", TypeName.STRUCT)], probs,
                                  ["s"] * 4, sites)
        assert layouts[0].field_types() == {0: TypeName.INT, 8: TypeName.LONG_INT}
        assert layouts[0].n_accesses == 4

    def test_min_accesses_floor_drops_sparse_offsets(self):
        sites = [_slot("s", 0), _slot("s", 0), _slot("s", 8)]
        probs = np.stack([_row((TypeName.INT, 1.0))] * 3)
        pooled = recover_layouts([_Pred("s", TypeName.STRUCT)], probs,
                                 ["s"] * 3, sites, min_accesses=2)
        assert set(pooled[0].field_types()) == {0}
        flat = flat_baseline_layouts([_Pred("s", TypeName.STRUCT)], probs,
                                     ["s"] * 3, sites)
        assert set(flat[0].field_types()) == {0, 8}

    def test_width_breaks_score_ties(self):
        # Both rows split evenly between int (width 4) and long (width 8):
        # the observed access width must decide.
        probs = np.stack([_row((TypeName.INT, 0.5), (TypeName.LONG_INT, 0.5))] * 2)
        for width, expected in ((8, TypeName.LONG_INT), (4, TypeName.INT)):
            sites = [_slot("s", 0, width=width), _slot("s", 8, width=width)]
            layouts = recover_layouts([_Pred("s", TypeName.STRUCT)], probs,
                                      ["s", "s"], sites, min_accesses=1)
            assert all(label is expected
                       for label in layouts[0].field_types().values())

    def test_mean_posterior_breaks_residual_ties(self):
        # Both leaves clear the clip threshold (eq. 3 sets them to 1.0),
        # so summed clipped scores tie; the unclipped mean must decide.
        probs = np.stack(
            [_row((TypeName.INT, 0.95), (TypeName.LONG_INT, 0.90)),
             _row((TypeName.INT, 0.95), (TypeName.LONG_INT, 0.90)),
             _row((TypeName.INT, 0.95), (TypeName.LONG_INT, 0.90)),
             _row((TypeName.INT, 0.95), (TypeName.LONG_INT, 0.90))])
        sites = [_slot("s", 0, width=0), _slot("s", 0, width=0),
                 _slot("s", 8, width=0), _slot("s", 8, width=0)]
        layouts = recover_layouts([_Pred("s", TypeName.STRUCT)], probs,
                                  ["s"] * 4, sites)
        assert all(label is TypeName.INT
                   for label in layouts[0].field_types().values())

    def test_confidence_and_margin(self):
        sites = [_slot("s", 0), _slot("s", 0), _slot("s", 8), _slot("s", 8)]
        probs = np.stack([_row((TypeName.INT, 1.0))] * 4)
        field = recover_layouts([_Pred("s", TypeName.STRUCT)], probs,
                                ["s"] * 4, sites)[0].fields[0]
        assert field.label is TypeName.INT
        assert field.n_accesses == 2
        assert field.confidence == pytest.approx(1.0)
        assert field.margin == pytest.approx(2.0)   # 2 clipped votes vs 0

    def test_layouts_sorted_by_object_id(self):
        sites = [_slot("z", 0), _slot("z", 0), _slot("a", 0), _slot("a", 0)]
        probs = np.stack([_row((TypeName.INT, 1.0))] * 4)
        predictions = [_Pred("z", TypeName.STRUCT), _Pred("a", TypeName.STRUCT)]
        layouts = flat_baseline_layouts(predictions, probs,
                                        ["z", "z", "a", "a"], sites)
        assert [layout.object_id for layout in layouts] == ["a", "z"]


class TestPooling:
    def _rich_and_sparse(self):
        variable_ids = ["f1::s"] * 4 + ["f2::s"] * 2
        sites = [_slot("f1::s", 0, width=4), _slot("f1::s", 0, width=4),
                 _slot("f1::s", 8, width=8), _slot("f1::s", 8, width=8),
                 _slot("f2::s", 0, width=4), _slot("f2::s", 0, width=4)]
        probs = np.stack([
            _row((TypeName.INT, 1.0)), _row((TypeName.INT, 1.0)),
            _row((TypeName.LONG_INT, 1.0)), _row((TypeName.LONG_INT, 1.0)),
            _row((TypeName.INT, 1.0)), _row((TypeName.INT, 1.0)),
        ])
        predictions = [_Pred("f1::s", TypeName.STRUCT),
                       _Pred("f2::s", TypeName.STRUCT)]
        return predictions, probs, variable_ids, sites

    def test_sparse_object_inherits_cluster_layout(self):
        predictions, probs, variable_ids, sites = self._rich_and_sparse()
        layouts = recover_layouts(predictions, probs, variable_ids, sites)
        assert len(layouts) == 1
        assert layouts[0].objects == ("f1::s", "f2::s")
        fields = layouts_to_fields(layouts)
        # The sparse f2 object (one observed offset) gets the pooled layout.
        assert fields["f2::s"] == {0: TypeName.INT, 8: TypeName.LONG_INT}

    def test_flat_baseline_keeps_objects_separate(self):
        predictions, probs, variable_ids, sites = self._rich_and_sparse()
        layouts = flat_baseline_layouts(predictions, probs, variable_ids, sites)
        assert len(layouts) == 2
        fields = layouts_to_fields(layouts)
        assert set(fields["f2::s"]) == {0}

    def test_disagreeing_widths_do_not_pool(self):
        variable_ids = ["f1::s"] * 4 + ["f2::s"] * 4
        sites = [_slot("f1::s", 0, width=4), _slot("f1::s", 0, width=4),
                 _slot("f1::s", 8, width=8), _slot("f1::s", 8, width=8),
                 _slot("f2::s", 0, width=8), _slot("f2::s", 0, width=8),
                 _slot("f2::s", 8, width=8), _slot("f2::s", 8, width=8)]
        probs = np.stack([_row((TypeName.INT, 1.0))] * 8)
        predictions = [_Pred("f1::s", TypeName.STRUCT),
                       _Pred("f2::s", TypeName.STRUCT)]
        layouts = recover_layouts(predictions, probs, variable_ids, sites)
        assert len(layouts) == 2


class TestEngineIntegration:
    def test_disabled_path_predictions_identical(self, mini_cati, demo_binary):
        """structs=True must not perturb per-variable predictions."""
        from repro.codegen.strip import strip
        from repro.experiments.speed import extents_from_debug

        stripped = strip(demo_binary)
        extents = extents_from_debug(demo_binary)
        try:
            plain = mini_cati.infer_binary(stripped, extents)
            with_structs = mini_cati.infer_binary(stripped, extents, structs=True)
        finally:
            # mini_cati is session-scoped: drop what we put in its window
            # LRU so later cache tests see a cold engine.
            mini_cati.engine.clear_cache()
        assert plain.layouts is None            # stage off by default
        assert with_structs.layouts is not None  # stage ran ([] is fine)
        assert len(plain) == len(with_structs)
        for a, b in zip(plain, with_structs):
            assert a.variable_id == b.variable_id
            assert a.predicted is b.predicted
            assert a.n_vucs == b.n_vucs
            assert list(a.scores) == list(b.scores)

    def test_truth_layouts_keyed_like_pipeline_objects(self, demo_binary):
        truth = truth_layouts(demo_binary, scope_name="scoped")
        assert truth  # the demo generator always emits some structs
        for object_id, fields in truth.items():
            assert object_id.startswith("scoped/")
            assert "::" in object_id
            assert fields
            for offset, label in fields.items():
                assert offset >= 0
                assert isinstance(label, TypeName)
