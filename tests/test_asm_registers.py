"""Unit tests for the x86-64 register model."""

import pytest

from repro.asm.registers import (
    GP_ARG_REGISTERS,
    all_register_names,
    gp_name,
    is_register,
    register_family,
    register_info,
    register_width,
)


class TestFamilies:
    def test_rax_family_views(self):
        assert register_family("rax") == "rax"
        assert register_family("eax") == "rax"
        assert register_family("ax") == "rax"
        assert register_family("al") == "rax"

    def test_extended_register_views(self):
        assert register_family("r9d") == "r9"
        assert register_family("r15b") == "r15"
        assert register_family("r10w") == "r10"

    def test_high_byte_registers_map_to_family(self):
        assert register_family("ah") == "rax"
        assert register_family("dh") == "rdx"

    def test_sse_registers_are_their_own_family(self):
        assert register_family("xmm3") == "xmm3"

    def test_x87_registers_share_st_family(self):
        assert register_family("st") == "st"
        assert register_family("st(3)") == "st"


class TestWidths:
    @pytest.mark.parametrize("name,width", [
        ("rax", 8), ("eax", 4), ("ax", 2), ("al", 1),
        ("r8", 8), ("r8d", 4), ("r8w", 2), ("r8b", 1),
        ("xmm0", 16), ("rip", 8),
    ])
    def test_width(self, name, width):
        assert register_width(name) == width

    def test_gp_name_round_trips_widths(self):
        for family in ("rax", "rsi", "r12"):
            for width in (8, 4, 2, 1):
                name = gp_name(family, width)
                assert register_family(name) == family
                assert register_width(name) == width


class TestLookup:
    def test_is_register_accepts_known(self):
        assert is_register("rbp")
        assert is_register("sil")

    def test_is_register_rejects_unknown(self):
        assert not is_register("rax2")
        assert not is_register("")
        assert not is_register("eaxx")

    def test_register_info_fields(self):
        info = register_info("edi")
        assert info.family == "rdi"
        assert info.width == 4
        assert info.kind == "gp"

    def test_register_info_raises_for_unknown(self):
        with pytest.raises(KeyError):
            register_info("bogus")

    def test_arg_registers_are_sysv_order(self):
        assert GP_ARG_REGISTERS == ("rdi", "rsi", "rdx", "rcx", "r8", "r9")

    def test_all_names_cover_every_gp_width(self):
        names = all_register_names()
        assert {"rax", "eax", "ax", "al"} <= names
        assert len(names) > 80
