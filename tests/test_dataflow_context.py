"""Data-flow grouping and VUC window extraction tests."""

import pytest

from repro.asm.instruction import FunctionListing, make
from repro.asm.operands import Imm, Mem, Reg
from repro.vuc.context import extract_vuc, extract_vucs_for_targets
from repro.vuc.dataflow import AccessSite, VariableExtent, access_site, group_targets
from repro.vuc.locate import Target, TargetKind, locate_targets


def _slot_target(index, offset, base="rbp"):
    ins = make("movl", Imm(0), Mem(disp=offset, base=base))
    return Target(index=index, kind=TargetKind.SLOT, base=base, offset=offset, instruction=ins)


class TestExtents:
    def test_contains_boundaries(self):
        extent = VariableExtent("v", "rbp", -16, 8)
        assert extent.contains("rbp", -16)
        assert extent.contains("rbp", -9)
        assert not extent.contains("rbp", -8)   # exclusive upper bound
        assert not extent.contains("rbp", -17)
        assert not extent.contains("rsp", -16)


class TestGrouping:
    def test_groups_by_extent(self):
        extents = [
            VariableExtent("a", "rbp", -4, 4),
            VariableExtent("s", "rbp", -32, 24),
        ]
        targets = [
            _slot_target(0, -4),
            _slot_target(1, -32),   # struct base
            _slot_target(2, -24),   # struct interior member
            _slot_target(3, -4),
        ]
        groups = group_targets(targets, extents, "bin/0")
        by_name = {g.extent.name: g for g in groups}
        assert by_name["a"].n_targets == 2
        assert by_name["s"].n_targets == 2

    def test_targets_outside_extents_dropped(self):
        groups = group_targets([_slot_target(0, -100)], [VariableExtent("a", "rbp", -4, 4)], "s")
        assert groups == []

    def test_variable_ids_unique_per_scope(self):
        extents = [VariableExtent("a", "rbp", -4, 4)]
        g1 = group_targets([_slot_target(0, -4)], extents, "bin1/0")
        g2 = group_targets([_slot_target(0, -4)], extents, "bin2/0")
        assert g1[0].variable_id != g2[0].variable_id

    def test_orphan_property(self):
        extents = [VariableExtent("a", "rbp", -4, 4)]
        one = group_targets([_slot_target(0, -4)], extents, "s")[0]
        assert one.is_orphan
        three = group_targets([_slot_target(i, -4) for i in range(3)], extents, "s")[0]
        assert not three.is_orphan

    def test_variables_without_targets_omitted(self):
        extents = [VariableExtent("a", "rbp", -4, 4), VariableExtent("b", "rbp", -8, 4)]
        groups = group_targets([_slot_target(0, -4)], extents, "s")
        assert len(groups) == 1

    def test_overlapping_extents_lowest_start_wins(self):
        """Documented tie-break: with overlapping extents the containing
        extent with the lowest start offset wins, whatever the caller's
        extent order."""
        wide = VariableExtent("wide", "rbp", -8, 8)
        narrow = VariableExtent("narrow", "rbp", -4, 4)
        targets = [_slot_target(0, -4)]   # contained by both
        for extents in ([wide, narrow], [narrow, wide]):
            groups = group_targets(targets, list(extents), "s")
            assert [g.extent.name for g in groups] == ["wide"]

    def test_target_at_extent_start_is_found(self):
        # bisect_right must include extents starting exactly at the
        # displacement (regression for an off-by-one candidate bound).
        groups = group_targets([_slot_target(0, -16)],
                               [VariableExtent("a", "rbp", -16, 8)], "s")
        assert [g.extent.name for g in groups] == ["a"]

    def test_target_below_all_extent_starts_dropped(self):
        groups = group_targets([_slot_target(0, -40)],
                               [VariableExtent("a", "rbp", -16, 8)], "s")
        assert groups == []

    def test_same_offset_on_different_bases_resolved_by_base(self):
        extents = [VariableExtent("a", "rbp", -4, 4), VariableExtent("b", "rsp", -4, 4)]
        targets = [_slot_target(0, -4, base="rbp"), _slot_target(1, -4, base="rsp")]
        groups = group_targets(targets, extents, "s")
        by_name = {g.extent.name: g for g in groups}
        assert by_name["a"].targets[0].base == "rbp"
        assert by_name["b"].targets[0].base == "rsp"


class TestAccessSites:
    def test_slot_site_uses_interior_offset(self):
        extent = VariableExtent("s", "rbp", -32, 24)
        target = Target(index=0, kind=TargetKind.SLOT, base="rbp", offset=-24,
                        instruction=make("movl", Imm(0), Mem(disp=-24, base="rbp")),
                        width=4)
        site = access_site(target, extent, "vid")
        assert site == AccessSite(variable_id="vid", kind=TargetKind.SLOT,
                                  offset=8, width=4)

    def test_deref_site_uses_pointee_displacement(self):
        extent = VariableExtent("p", "rbp", -16, 8)
        target = Target(index=3, kind=TargetKind.DEREF, base="rbp", offset=-16,
                        instruction=make("mov", Mem(disp=24, base="rax"), Reg("rdx")),
                        deref_disp=24, width=8)
        site = access_site(target, extent, "vid")
        assert site.kind is TargetKind.DEREF
        assert site.offset == 24       # not relative to the frame extent
        assert site.width == 8


class TestVucExtraction:
    def _listing(self, n):
        return FunctionListing(
            name="f", address=0,
            instructions=[make("nop", address=i) for i in range(n)],
        )

    def test_window_length_is_2w_plus_1(self):
        vuc = extract_vuc(self._listing(50), 25, window=10)
        assert len(vuc) == 21
        assert vuc.target is not None

    def test_center_is_target(self):
        listing = self._listing(50)
        listing.instructions[25] = make("movl", Imm(1), Mem(disp=-4, base="rbp"), address=25)
        vuc = extract_vuc(listing, 25, window=10)
        assert vuc.target.mnemonic == "movl"

    def test_padding_at_function_start(self):
        vuc = extract_vuc(self._listing(50), 3, window=10)
        assert vuc.window[:7] == (None,) * 7
        assert vuc.window[7] is not None

    def test_padding_at_function_end(self):
        vuc = extract_vuc(self._listing(50), 47, window=10)
        assert vuc.window[-8:] == (None,) * 8

    def test_tiny_function_mostly_padding(self):
        vuc = extract_vuc(self._listing(1), 0, window=10)
        assert sum(ins is None for ins in vuc.window) == 20
        assert vuc.window[10] is not None

    def test_out_of_range_raises(self):
        with pytest.raises(IndexError):
            extract_vuc(self._listing(5), 5)

    def test_custom_window_size(self):
        vuc = extract_vuc(self._listing(50), 25, window=3)
        assert len(vuc) == 7

    def test_extract_for_targets_order_preserved(self):
        listing = self._listing(30)
        targets = [_slot_target(5, -4), _slot_target(20, -4)]
        vucs = extract_vucs_for_targets(listing, targets)
        assert [v.target_index for v in vucs] == [5, 20]
