"""Sequential model and optimizer tests."""

import numpy as np
import pytest

from repro.nn.layers import Dense, ReLU
from repro.nn.model import Sequential, build_cati_cnn
from repro.nn.optimizers import SGD, Adam


def _xor_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(n, 2)).astype(np.float32)
    y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(np.int64)
    return x, y


class TestSequential:
    def test_fit_learns_xor(self):
        x, y = _xor_data()
        rng = np.random.default_rng(1)
        model = Sequential([Dense(2, 32, rng), ReLU(), Dense(32, 2, rng)])
        result = model.fit(x, y, epochs=60, batch_size=32, optimizer=Adam(1e-2))
        assert result.train_accuracy[-1] > 0.9
        assert result.losses[-1] < result.losses[0]

    def test_sgd_also_converges(self):
        x, y = _xor_data()
        rng = np.random.default_rng(2)
        model = Sequential([Dense(2, 32, rng), ReLU(), Dense(32, 2, rng)])
        result = model.fit(x, y, epochs=80, batch_size=32, optimizer=SGD(0.05))
        assert result.train_accuracy[-1] > 0.85

    def test_predict_proba_rows_sum_to_one(self):
        x, y = _xor_data(50)
        rng = np.random.default_rng(3)
        model = Sequential([Dense(2, 8, rng), ReLU(), Dense(8, 3, rng)])
        probs = model.predict_proba(x)
        assert probs.shape == (50, 3)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_predict_proba_batching_consistent(self):
        x, _y = _xor_data(100)
        rng = np.random.default_rng(4)
        model = Sequential([Dense(2, 8, rng), ReLU(), Dense(8, 2, rng)])
        small = model.predict_proba(x, batch_size=7)
        big = model.predict_proba(x, batch_size=100)
        assert np.allclose(small, big, atol=1e-6)

    def test_save_load_round_trip(self, tmp_path):
        x, y = _xor_data(50)
        rng = np.random.default_rng(5)
        model = Sequential([Dense(2, 8, rng), ReLU(), Dense(8, 2, rng)])
        model.fit(x, y, epochs=5)
        path = str(tmp_path / "model.npz")
        model.save(path)
        clone = Sequential([Dense(2, 8), ReLU(), Dense(8, 2)])
        clone.load(path)
        assert np.allclose(model.predict_proba(x), clone.predict_proba(x))

    def test_deterministic_training(self):
        x, y = _xor_data(80)
        outs = []
        for _ in range(2):
            rng = np.random.default_rng(6)
            model = Sequential([Dense(2, 8, rng), ReLU(), Dense(8, 2, rng)])
            model.fit(x, y, epochs=5, seed=0)
            outs.append(model.predict_proba(x[:5]))
        assert np.array_equal(outs[0], outs[1])

    def test_class_weights_shift_decisions(self):
        """Heavily weighting class 1 must increase its prediction share."""
        rng0 = np.random.default_rng(7)
        x = rng0.normal(size=(300, 4)).astype(np.float32)
        y = (rng0.random(300) < 0.15).astype(np.int64)  # skewed
        share = []
        for weights in (None, np.array([0.2, 5.0])):
            rng = np.random.default_rng(8)
            model = Sequential([Dense(4, 16, rng), ReLU(), Dense(16, 2, rng)])
            model.fit(x, y, epochs=20, class_weights=weights, seed=1)
            share.append((model.predict(x) == 1).mean())
        assert share[1] > share[0]


class TestCatiCnn:
    def test_architecture_shapes(self):
        model = build_cati_cnn(21, 96, 5, fc_width=64)
        probs = model.predict_proba(np.zeros((3, 21, 96), dtype=np.float32))
        assert probs.shape == (3, 5)

    def test_learns_positional_signal(self):
        """The CNN must pick up a signal at the central (target) position."""
        rng = np.random.default_rng(9)
        x = rng.normal(size=(400, 21, 16)).astype(np.float32)
        y = (x[:, 10, 0] > 0).astype(np.int64)
        model = build_cati_cnn(21, 16, 2, conv_channels=(8, 16), fc_width=32)
        result = model.fit(x, y, epochs=30, optimizer=Adam(2e-3), seed=2)
        assert result.train_accuracy[-1] > 0.75

    def test_default_follows_paper_conv_channels(self):
        model = build_cati_cnn(21, 96, 2)
        conv_layers = [l for l in model.layers if l.__class__.__name__ == "Conv1d"]
        assert [c.out_channels for c in conv_layers] == [32, 64]


class TestOptimizers:
    def test_adam_bias_correction_first_step(self):
        """First Adam step must be ~lr in magnitude, not lr*(1-beta1)."""
        param = np.zeros(1, dtype=np.float32)
        grad = np.ones(1, dtype=np.float32)
        adam = Adam(learning_rate=0.1)
        adam.step([("p", param, grad)])
        assert np.isclose(param[0], -0.1, atol=1e-3)

    def test_sgd_momentum_accumulates(self):
        param = np.zeros(1, dtype=np.float32)
        grad = np.ones(1, dtype=np.float32)
        sgd = SGD(learning_rate=0.1, momentum=0.9)
        sgd.step([("p", param, grad)])
        first = param.copy()
        sgd.step([("p", param, grad)])
        second_delta = param - first
        assert abs(second_delta[0]) > abs(first[0])  # momentum grows the step
