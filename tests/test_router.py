"""The pre-fork router: dispatch, fenced reload, respawn, merged rollups.

The acceptance contract (ISSUE 8): N spawned workers serve the exact
single-daemon wire format behind one router port; prediction identities
match the offline engine; a rolling hot reload under live traffic drops
zero requests and bumps the generation only after every worker rolled;
a corrupt bundle answers 409 while the old generation keeps serving; a
SIGKILLed worker is respawned by the monitor and ``/healthz``
enumerates the restart; SIGTERM drains the whole tree to rc 0.

The workers share the model through the bundle's memory-mapped
``.shared`` mirror — asserted both at the artifact layer (the loaded
arrays are memmap-backed) and end-to-end (worker ``/healthz`` reports
``mmap: true`` and served predictions still match the in-process
float path exactly).

Worker processes are real ``multiprocessing`` spawns, so this module
is the slowest of the serve tests; everything shares one module-scoped
router to pay the spawn cost once.
"""

from __future__ import annotations

import http.server
import json
import os
import shutil
import signal
import socket
import threading
import time

import numpy as np
import pytest

from repro.core.artifacts import ModelBundle
from repro.core.pipeline import Cati
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.router import RouterDaemon
from tests.test_serve import prediction_tuples


@pytest.fixture(scope="session")
def router_bundle_dir(tmp_path_factory, mini_cati):
    directory = tmp_path_factory.mktemp("router") / "bundle"
    mini_cati.save(str(directory))
    return directory


@pytest.fixture(scope="session")
def router_windows(small_corpus):
    samples = list(small_corpus.test)[:60]
    windows = [sample.tokens for sample in samples]
    variable_ids = [f"rv{i // 3}" for i in range(len(windows))]
    return windows, variable_ids


@pytest.fixture(scope="session")
def router_expected(mini_cati, router_windows):
    windows, variable_ids = router_windows
    return prediction_tuples(
        mini_cati.engine.predict_variables(windows, variable_ids))


@pytest.fixture(scope="module")
def router(router_bundle_dir):
    daemon = RouterDaemon(str(router_bundle_dir), port=0, workers=2,
                          queue_limit=32)
    thread = threading.Thread(target=daemon.run, daemon=True)
    thread.start()
    client = ServeClient(daemon.host, daemon.port, timeout=120)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        try:
            client.health()
            break
        except OSError:
            time.sleep(0.05)
    yield daemon, client
    daemon.request_shutdown()
    thread.join(timeout=60)
    assert not thread.is_alive(), "router did not drain"


def wait_all_live(client, *, min_restarts=0, timeout=60.0):
    """Poll /healthz until every worker slot is alive again."""
    deadline = time.monotonic() + timeout
    health = client.health()
    while time.monotonic() < deadline:
        health = client.health()
        if (health["restarts"] >= min_restarts
                and all(w["alive"] for w in health["workers"])):
            return health
        time.sleep(0.2)
    raise AssertionError(f"workers never recovered: {health['workers']}")


class TestRouterServing:
    def test_health_aggregates_workers(self, router):
        _daemon, client = router
        health = client.health()
        assert health["status"] == "ok"
        assert health["role"] == "router"
        assert health["model"]["workers"] == 2
        assert health["model"]["mmap"] is True
        assert health["workers_live"] == 2
        assert len(health["workers"]) == 2
        for worker in health["workers"]:
            assert worker["alive"]
            assert worker["pid"] > 0
            assert worker["generation"] == health["model"]["generation"]
            assert worker["mmap"] is True
            assert "queue" in worker

    def test_infer_matches_offline(self, router, router_windows,
                                   router_expected):
        _daemon, client = router
        windows, variable_ids = router_windows
        response = client.infer_windows(windows, variable_ids)
        assert prediction_tuples(response["predictions"]) == router_expected

    def test_merged_metrics_roll_up_both_layers(self, router):
        _daemon, client = router
        merged = client.metrics()
        # Router-side and worker-side counters appear in one snapshot.
        assert merged["counters"]["router.requests"] >= 1
        assert merged["counters"]["serve.requests"] >= 1
        assert "router.request.seconds" in merged["histograms"]
        assert "serve.batch.seconds" in merged["histograms"]
        # Bucket merges stay internally consistent.
        hist = merged["histograms"]["serve.batch.seconds"]
        assert sum(hist["counts"]) == hist["count"]

    def test_rolling_reload_under_load_drops_nothing(
            self, router, router_windows, router_expected):
        _daemon, client = router
        windows, variable_ids = router_windows
        before = client.health()["model"]["generation"]
        failures: list = []
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                try:
                    response = client.infer_windows(windows[:12],
                                                    variable_ids[:12])
                    assert (prediction_tuples(response["predictions"])
                            == router_expected[:4])
                except Exception as error:  # noqa: BLE001 — collected
                    failures.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            time.sleep(0.3)
            result = client.reload()
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not failures, f"requests failed during the roll: {failures[:3]}"
        assert result["reloaded"] is True
        assert result["generation"] == before + 1
        assert result["rolled_workers"] == 2
        assert all(o["status"] == "rolled" for o in result["outcomes"])
        health = client.health()
        assert health["model"]["generation"] == before + 1
        assert all(w["generation"] == before + 1 for w in health["workers"])

    def test_corrupt_bundle_409_old_generation_serves(
            self, router, router_bundle_dir, tmp_path,
            router_windows, router_expected):
        _daemon, client = router
        bad_dir = tmp_path / "corrupt"
        shutil.copytree(router_bundle_dir, bad_dir,
                        ignore=shutil.ignore_patterns(".shared"))
        payload = bad_dir / "word2vec.npz"
        data = bytearray(payload.read_bytes())
        data[100] ^= 0xFF
        payload.write_bytes(bytes(data))

        before = client.health()["model"]["generation"]
        with pytest.raises(ServeClientError) as exc:
            client.reload(str(bad_dir))
        assert exc.value.status == 409

        health = client.health()
        assert health["status"] == "ok"
        assert health["model"]["generation"] == before
        windows, variable_ids = router_windows
        response = client.infer_windows(windows, variable_ids)
        assert prediction_tuples(response["predictions"]) == router_expected

    def test_sigkill_worker_respawns_and_serving_continues(
            self, router, router_windows, router_expected):
        _daemon, client = router
        health = client.health()
        restarts_before = health["restarts"]
        victim_pid = health["workers"][0]["pid"]
        os.kill(victim_pid, signal.SIGKILL)

        health = wait_all_live(client, min_restarts=restarts_before + 1)
        assert health["restarts"] == restarts_before + 1
        assert health["workers"][0]["restarts"] >= 1
        assert health["workers"][0]["pid"] != victim_pid
        assert "last_restart_at" in health["workers"][0]

        # The respawned worker joined on the router's *current* bundle
        # and generation, and serving still matches offline.
        assert all(w["generation"] == health["model"]["generation"]
                   for w in health["workers"])
        windows, variable_ids = router_windows
        response = client.infer_windows(windows, variable_ids)
        assert prediction_tuples(response["predictions"]) == router_expected


class TestSharedModelMemory:
    def test_shared_mirror_is_memmap_backed(self, router_bundle_dir):
        bundle = ModelBundle.open(str(router_bundle_dir))
        bundle.ensure_shared_arrays()
        bundle.ensure_shared_arrays()  # idempotent — no rebuild, no error
        arrays = bundle.load_shared("word2vec.npz")
        vectors = arrays["vectors"]
        assert (isinstance(vectors, np.memmap)
                or isinstance(getattr(vectors, "base", None), np.memmap))

    def test_mmap_load_matches_copied_load(self, router_bundle_dir,
                                           router_windows):
        windows, _variable_ids = router_windows
        copied = Cati.load(str(router_bundle_dir))
        mapped = Cati.load(str(router_bundle_dir), mmap=True)
        assert copied.mmap_active is False
        assert mapped.mmap_active is True
        table = mapped.encoder.embedding.vectors
        assert (isinstance(table, np.memmap)
                or isinstance(getattr(table, "base", None), np.memmap))
        np.testing.assert_array_equal(
            mapped.engine.leaf_proba(windows), copied.engine.leaf_proba(windows))

    def test_shared_mirror_detects_stale_shapes(self, router_bundle_dir,
                                                tmp_path):
        from repro.core.errors import ArtifactError

        clone = tmp_path / "clone"
        shutil.copytree(router_bundle_dir, clone)
        bundle = ModelBundle.open(str(clone))
        bundle.ensure_shared_arrays()
        # Truncate one mirror file behind the marker's back.
        mirrors = sorted((bundle.shared_dir() / "word2vec.npz").glob("*.npy"))
        mirrors[0].write_bytes(b"\x93NUMPY")
        with pytest.raises(ArtifactError):
            bundle.load_shared("word2vec.npz")


class _FlakyHTTPServer(threading.Thread):
    """Accepts TCP connections; drops the first N cold, answers after."""

    def __init__(self, drops: int) -> None:
        super().__init__(daemon=True)
        self.drops = drops
        self.connections = 0
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.port = self.sock.getsockname()[1]
        self._stop = threading.Event()

    def run(self) -> None:
        self.sock.settimeout(0.2)
        while not self._stop.is_set():
            try:
                conn, _addr = self.sock.accept()
            except TimeoutError:
                continue
            except OSError:
                return
            self.connections += 1
            if self.connections <= self.drops:
                # The reload/respawn race: close without answering.
                conn.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                                b"\x01\x00\x00\x00\x00\x00\x00\x00")
                conn.close()
                continue
            conn.recv(65536)
            body = json.dumps({"status": "ok"}).encode()
            conn.sendall(b"HTTP/1.0 200 OK\r\n"
                         b"Content-Type: application/json\r\n"
                         + f"Content-Length: {len(body)}\r\n\r\n".encode()
                         + body)
            conn.close()

    def close(self) -> None:
        self._stop.set()
        self.sock.close()


class TestClientRetries:
    def test_retries_through_connection_drops(self):
        server = _FlakyHTTPServer(drops=2)
        server.start()
        try:
            client = ServeClient("127.0.0.1", server.port, timeout=10,
                                 retries=2, retry_backoff_s=0.01)
            assert client.health() == {"status": "ok"}
            assert server.connections == 3
        finally:
            server.close()

    def test_retries_exhausted_raises(self):
        server = _FlakyHTTPServer(drops=100)
        server.start()
        try:
            client = ServeClient("127.0.0.1", server.port, timeout=10,
                                 retries=2, retry_backoff_s=0.01)
            with pytest.raises(ConnectionError):
                client.health()
            assert server.connections == 3
        finally:
            server.close()

    def test_retries_disabled(self):
        server = _FlakyHTTPServer(drops=100)
        server.start()
        try:
            client = ServeClient("127.0.0.1", server.port, timeout=10,
                                 retries=0)
            with pytest.raises(ConnectionError):
                client.health()
            assert server.connections == 1
        finally:
            server.close()
