"""ELF parser + native DWARF reader tests, cross-validated against the
readelf text path on a freshly compiled real binary.
"""

import struct

import pytest

from repro.elf.parser import ElfFile, ElfParseError
from repro.frontend.compile import toolchain_available


class TestElfErrors:
    def test_not_elf(self):
        with pytest.raises(ElfParseError):
            ElfFile(b"MZ" + b"\x00" * 100)

    def test_too_short(self):
        with pytest.raises(ElfParseError):
            ElfFile(b"\x7fELF")

    def test_elf32_rejected(self):
        data = bytearray(b"\x7fELF" + bytes(60))
        data[4] = 1  # ELFCLASS32
        data[5] = 1
        with pytest.raises(ElfParseError):
            ElfFile(bytes(data))

    def test_big_endian_rejected(self):
        data = bytearray(b"\x7fELF" + bytes(60))
        data[4] = 2
        data[5] = 2  # ELFDATA2MSB
        with pytest.raises(ElfParseError):
            ElfFile(bytes(data))


needs_toolchain = pytest.mark.skipif(
    not toolchain_available(), reason="gcc/objdump/readelf not on PATH",
)


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    if not toolchain_available():
        pytest.skip("no toolchain")
    from repro.frontend.compile import compile_sample

    return compile_sample(workdir=str(tmp_path_factory.mktemp("elf")))


@pytest.fixture(scope="module")
def elf(artifact):
    return ElfFile.load(artifact.binary_path)


@needs_toolchain
class TestElfOnRealBinary:
    def test_standard_sections_present(self, elf):
        for name in (".text", ".symtab", ".strtab", ".debug_info", ".debug_abbrev"):
            assert elf.section(name) is not None, name

    def test_has_debug_info(self, elf):
        assert elf.has_debug_info

    def test_function_symbols_sorted_and_named(self, elf):
        functions = elf.function_symbols()
        names = {s.name for s in functions}
        assert {"main", "process_ints", "process_floats"} <= names
        addresses = [s.value for s in functions]
        assert addresses == sorted(addresses)

    def test_text_bytes_for_function(self, elf):
        main = next(s for s in elf.function_symbols() if s.name == "main")
        code = elf.text_bytes_for(main)
        assert len(code) == main.size
        # gcc rbp-framed prologue starts with endbr64 (f3 0f 1e fa) or push %rbp (55)
        assert code[:4] == b"\xf3\x0f\x1e\xfa" or code[0] == 0x55

    def test_section_data_absent_returns_empty(self, elf):
        assert elf.section_data(".no_such_section") == b""


@needs_toolchain
class TestNativeDwarf:
    def test_compile_units_parse(self, elf):
        from repro.dwarf.native import load_compile_units

        units = load_compile_units(elf)
        assert len(units) >= 1
        from repro.dwarf.dies import Tag

        assert units[0].tag is Tag.COMPILE_UNIT

    def test_cross_validates_against_readelf(self, artifact, elf):
        """The native byte-level parser and the readelf text parser must
        recover the identical variable set."""
        from repro.dwarf.native import native_variables
        from repro.frontend.readelf import extract_real_variables

        native = {
            (v.function, v.name): (v.rbp_offset, v.label)
            for v in native_variables(elf)
        }
        via_readelf = {
            (v.function, v.name): (v.rbp_offset, v.label)
            for v in extract_real_variables(artifact.dwarf_dump)
        }
        assert native == via_readelf

    def test_known_types_native(self, elf):
        from repro.core.types import TypeName
        from repro.dwarf.native import native_variables

        by_key = {(v.function, v.name): v for v in native_variables(elf)}
        assert by_key[("process_floats", "precise")].label is TypeName.LONG_DOUBLE
        assert by_key[("process_pointers", "blob")].label is TypeName.VOID_POINTER
        assert by_key[("process_chars", "buf")].label is TypeName.CHAR
        assert by_key[("process_chars", "buf")].size == 64  # char[64]

    def test_no_debug_info_raises(self, artifact, tmp_path):
        import subprocess

        from repro.dwarf.native import NativeDwarfError, load_compile_units

        stripped_path = tmp_path / "stripped"
        subprocess.run(
            ["objcopy", "--strip-debug", str(artifact.binary_path), str(stripped_path)],
            check=True, capture_output=True,
        )
        with pytest.raises(NativeDwarfError):
            load_compile_units(ElfFile.load(stripped_path))


@needs_toolchain
class TestAbbrevParsing:
    def test_abbrev_table_round(self, elf):
        from repro.dwarf.native import parse_abbrev_table

        table = parse_abbrev_table(elf.section_data(".debug_abbrev"), 0)
        assert len(table) > 3
        tags = {a.tag for a in table.values()}
        assert 0x11 in tags  # DW_TAG_compile_unit
        assert 0x34 in tags  # DW_TAG_variable
