"""Failure injection and adversarial-input robustness tests.

The pipeline must degrade cleanly on malformed inputs: corrupt debug
blobs, hostile assembly text, pathological listings, empty corpora.
"""

import numpy as np
import pytest

from repro.asm.instruction import FunctionListing, make
from repro.asm.operands import Imm, Label, Mem, Reg
from repro.asm.parser import AsmParseError, parse_instruction, parse_objdump_line
from repro.codegen import GccCompiler
from repro.dwarf import DebugBlob, decode
from repro.dwarf.decode import DwarfDecodeError


class TestCorruptDebugInfo:
    @pytest.fixture(scope="class")
    def blob(self):
        return GccCompiler().compile_fresh(seed=3, name="x", opt_level=0).debug

    def test_truncated_info(self, blob):
        for cut in (0, 1, len(blob.info) // 2):
            with pytest.raises((DwarfDecodeError, ValueError)):
                decode(DebugBlob(abbrev=blob.abbrev, info=blob.info[:cut]))

    def test_truncated_abbrev(self, blob):
        with pytest.raises((DwarfDecodeError, ValueError)):
            decode(DebugBlob(abbrev=blob.abbrev[:2], info=blob.info))

    def test_empty_blob(self):
        with pytest.raises((DwarfDecodeError, ValueError)):
            decode(DebugBlob(abbrev=b"", info=b""))

    def test_bitflips_never_crash_uncontrolled(self, blob):
        """Random single-byte corruption must either decode to *some*
        tree or raise a controlled decode error — never hang or segfault
        the process."""
        rng = np.random.default_rng(0)
        for _ in range(40):
            data = bytearray(blob.info)
            position = int(rng.integers(len(data)))
            data[position] ^= 1 << int(rng.integers(8))
            try:
                decode(DebugBlob(abbrev=blob.abbrev, info=bytes(data)))
            except (DwarfDecodeError, ValueError, KeyError):
                pass  # controlled failure is acceptable


class TestHostileAssemblyText:
    @pytest.mark.parametrize("text", [
        "mov",                       # missing operands is fine (no-op parse)
        "mov %rax,%rbx,%rcx,%rdx",   # too many operands
        "mov $zzz,%rax",             # junk immediate
        "mov ((%rax)),%rbx",         # nested parens
        "mov -0x(%rbp),%rax",        # broken hex
    ])
    def test_bad_lines_raise_or_parse(self, text):
        try:
            parse_instruction(text)
        except (AsmParseError, ValueError):
            pass

    def test_objdump_garbage_lines_skipped(self):
        for line in ("", "Disassembly of section .text:", "\t...", "401000 <f>:", "  junk"):
            assert parse_objdump_line(line) is None or True  # must not raise

    def test_very_long_operand_field(self):
        text = "mov " + "$0x1," * 2 + "%rax"
        try:
            parse_instruction(text)
        except (AsmParseError, ValueError):
            pass


class TestLocatorPathologies:
    def test_empty_function(self):
        from repro.vuc.locate import locate_targets

        assert locate_targets(FunctionListing(name="f", address=0, instructions=[])) == []

    def test_only_control_flow(self):
        from repro.vuc.locate import locate_targets

        listing = FunctionListing(name="f", address=0, instructions=[
            make("jmp", Label(0x1000)),
            make("callq", Label(0x2000)),
            make("retq"),
        ])
        assert locate_targets(listing) == []

    def test_huge_function_linear_time(self):
        """10k instructions must locate in well under a second."""
        import time

        from repro.vuc.locate import locate_targets

        instructions = []
        for i in range(10_000):
            if i % 3 == 0:
                instructions.append(make("movl", Imm(1), Mem(disp=-(i % 64) - 4, base="rbp"), address=i))
            else:
                instructions.append(make("mov", Reg("rax"), Reg("rbx"), address=i))
        listing = FunctionListing(name="big", address=0, instructions=instructions)
        start = time.perf_counter()
        targets = locate_targets(listing)
        assert time.perf_counter() - start < 1.0
        assert len(targets) == 3334

    def test_deref_chain_through_many_registers(self):
        """Pointer tracking handles several live tracked registers."""
        from repro.vuc.locate import TargetKind, locate_targets

        listing = FunctionListing(name="f", address=0, instructions=[
            make("mov", Mem(disp=-8, base="rbp"), Reg("rax")),
            make("mov", Mem(disp=-16, base="rbp"), Reg("rbx")),
            make("movl", Mem(disp=0, base="rax"), Reg("ecx")),
            make("movl", Mem(disp=0, base="rbx"), Reg("edx")),
        ])
        targets = locate_targets(listing)
        derefs = [t for t in targets if t.kind is TargetKind.DEREF]
        assert {t.offset for t in derefs} == {-8, -16}


class TestEncoderEdgeCases:
    def test_all_blank_window_encodes(self, mini_cati):
        from repro.vuc.generalize import BLANK_TOKENS

        window = tuple([BLANK_TOKENS] * 21)
        probs = mini_cati.predict_vuc_proba([window])
        assert probs.shape == (1, 19)
        assert np.isfinite(probs).all()

    def test_unknown_tokens_fall_back_to_unk(self, mini_cati):
        window = tuple([("totally_new_mnemonic", "$WEIRD", "%rax")] * 21)
        probs = mini_cati.predict_vuc_proba([window])
        assert np.isfinite(probs).all()

    def test_prediction_deterministic(self, mini_cati, small_corpus):
        windows = [s.tokens for s in small_corpus.test.samples[:10]]
        a = mini_cati.predict_vuc_proba(windows)
        b = mini_cati.predict_vuc_proba(windows)
        assert np.array_equal(a, b)


class TestVotingEdgeCases:
    def test_single_variable_many_identical_vucs(self, mini_cati, small_corpus):
        sample = small_corpus.test.samples[0]
        predictions = mini_cati.predict_variables(
            [sample.tokens] * 50, ["v"] * 50,
        )
        assert len(predictions) == 1
        assert predictions[0].n_vucs == 50
