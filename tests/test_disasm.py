"""x86-64 decoder tests: hand-assembled vectors, objdump cross-
validation on a real binary, and robustness under corruption.
"""

import pytest

from repro.asm.operands import Imm, Label, Mem, Reg
from repro.disasm.decoder import DecodeError, decode_function, decode_one
from repro.frontend.compile import toolchain_available


def _decode(hex_bytes: str, address: int = 0x1000):
    data = bytes.fromhex(hex_bytes.replace(" ", ""))
    instruction, length = decode_one(data, 0, address)
    assert length == len(data), f"consumed {length} of {len(data)} bytes"
    return instruction


class TestHandAssembled:
    """Byte sequences verified against the Intel SDM / gas output."""

    def test_push_rbp(self):
        ins = _decode("55")
        assert str(ins) == "push %rbp"

    def test_mov_rsp_rbp(self):
        ins = _decode("48 89 e5")
        assert str(ins) == "mov %rsp,%rbp"

    def test_sub_imm_rsp(self):
        ins = _decode("48 83 ec 20")
        assert str(ins) == "sub $0x20,%rsp"

    def test_movl_imm_to_slot(self):
        ins = _decode("c7 45 fc 03 00 00 00")
        assert str(ins) == "movl $0x3,-0x4(%rbp)"

    def test_movb_imm_to_slot(self):
        ins = _decode("c6 45 ff 78")
        assert str(ins) == "movb $0x78,-0x1(%rbp)"

    def test_mov_slot_to_eax(self):
        ins = _decode("8b 45 fc")
        assert str(ins) == "mov -0x4(%rbp),%eax"

    def test_mov_rax_to_slot_rex(self):
        ins = _decode("48 89 45 f0")
        assert str(ins) == "mov %rax,-0x10(%rbp)"

    def test_lea_rip_relative(self):
        ins = _decode("48 8d 05 10 20 00 00", address=0x1000)
        assert ins.mnemonic == "lea"
        mem = ins.operands[0]
        assert mem == Mem(disp=0x2010, base="rip")

    def test_lea_sib_scale(self):
        # lea (%rdi,%rsi,4),%rax = 48 8d 04 b7
        ins = _decode("48 8d 04 b7")
        assert str(ins) == "lea (%rdi,%rsi,4),%rax"

    def test_movsbl(self):
        ins = _decode("0f be 45 ff")
        assert str(ins) == "movsbl -0x1(%rbp),%eax"

    def test_movzbl(self):
        ins = _decode("0f b6 45 ff")
        assert str(ins) == "movzbl -0x1(%rbp),%eax"

    def test_movslq(self):
        ins = _decode("48 63 d0")
        assert str(ins) == "movslq %eax,%rdx"

    def test_extended_registers(self):
        # mov %r15,%rdx = 4c 89 fa
        ins = _decode("4c 89 fa")
        assert str(ins) == "mov %r15,%rdx"

    def test_movss_load(self):
        ins = _decode("f3 0f 10 45 f8")
        assert str(ins) == "movss -0x8(%rbp),%xmm0"

    def test_movsd_store(self):
        ins = _decode("f2 0f 11 45 f0")
        assert str(ins) == "movsd %xmm0,-0x10(%rbp)"

    def test_addsd(self):
        ins = _decode("f2 0f 58 c1")
        assert str(ins) == "addsd %xmm1,%xmm0"

    def test_cvtsi2sd(self):
        ins = _decode("f2 0f 2a c0")
        assert str(ins) == "cvtsi2sd %eax,%xmm0"

    def test_fldt(self):
        ins = _decode("db 6d e0")
        assert str(ins) == "fldt -0x20(%rbp)"

    def test_fstpt(self):
        ins = _decode("db 7d e0")
        assert str(ins) == "fstpt -0x20(%rbp)"

    def test_call_rel32(self):
        ins = _decode("e8 fb 00 00 00", address=0x1000)
        assert ins.mnemonic == "callq"
        assert ins.operands[0] == Label(0x1000 + 5 + 0xFB)

    def test_jle_rel8_backwards(self):
        ins = _decode("7e e4", address=0x11bf)
        assert ins.mnemonic == "jle"
        assert ins.operands[0] == Label(0x11BF + 2 - 0x1C)

    def test_sete(self):
        ins = _decode("0f 94 c0")
        assert str(ins) == "sete %al"

    def test_test_al_al(self):
        ins = _decode("84 c0")
        assert str(ins) == "test %al,%al"

    def test_shrl_mem(self):
        ins = _decode("c1 6d fc 02")
        assert str(ins) == "shrl $0x2,-0x4(%rbp)"

    def test_endbr64(self):
        assert str(_decode("f3 0f 1e fa")) == "endbr64"

    def test_leave_ret(self):
        assert str(_decode("c9")) == "leave"
        assert str(_decode("c3")) == "retq"

    def test_imul_three_operand(self):
        # imul $0x8,%eax,%eax = 6b c0 08
        ins = _decode("6b c0 08")
        assert ins.mnemonic == "imul"
        assert ins.operands[0] == Imm(8)

    def test_addq_imm_slot(self):
        ins = _decode("48 83 45 f0 04")
        assert str(ins) == "addq $0x4,-0x10(%rbp)"

    def test_deref_store(self):
        # movl %edx,(%rax) = 89 10
        assert str(_decode("89 10")) == "mov %edx,(%rax)"

    def test_deref_load_member(self):
        # mov 0x8(%rax),%rdx = 48 8b 50 08
        assert str(_decode("48 8b 50 08")) == "mov 0x8(%rax),%rdx"

    def test_movabs(self):
        ins = _decode("48 b8 88 77 66 55 44 33 22 11")
        assert ins.mnemonic == "movabs"
        assert ins.operands[0] == Imm(0x1122334455667788)

    def test_indexed_store(self):
        # movb $0x0,-0x40(%rbp,%rax,1) = c6 44 05 c0 00
        ins = _decode("c6 44 05 c0 00")
        assert str(ins) == "movb $0x0,-0x40(%rbp,%rax,1)"

    def test_cmpb_mem(self):
        # cmpb $0x0,-0x5(%rbp) = 80 7d fb 00
        assert str(_decode("80 7d fb 00")) == "cmpb $0x0,-0x5(%rbp)"

    def test_nopl(self):
        # nopl 0x0(%rax,%rax,1) = 0f 1f 44 00 00
        ins = _decode("0f 1f 44 00 00")
        assert ins.mnemonic == "nopl"


class TestErrors:
    def test_truncated_raises(self):
        with pytest.raises(DecodeError):
            decode_one(bytes.fromhex("48"), 0, 0)

    def test_truncated_modrm_disp(self):
        with pytest.raises(DecodeError):
            decode_one(bytes.fromhex("8b 85 01"), 0, 0)  # needs disp32

    def test_unknown_opcode(self):
        with pytest.raises(DecodeError):
            decode_one(b"\x06", 0, 0)  # invalid in 64-bit mode

    def test_random_bytes_never_hang(self):
        import numpy as np

        rng = np.random.default_rng(0)
        for _ in range(300):
            blob = bytes(rng.integers(0, 256, size=15, dtype=np.uint8))
            try:
                decode_one(blob, 0, 0)
            except DecodeError:
                pass


@pytest.mark.skipif(not toolchain_available(), reason="needs gcc/objdump")
class TestObjdumpCrossValidation:
    """The gold test: byte-exact agreement with objdump on a real binary."""

    @pytest.fixture(scope="class")
    def setup(self, tmp_path_factory):
        from repro.disasm.decoder import elf_symbolizer
        from repro.elf.parser import ElfFile
        from repro.frontend import compile_sample, parse_disassembly, user_functions

        artifact = compile_sample(workdir=str(tmp_path_factory.mktemp("disasm")))
        elf = ElfFile.load(artifact.binary_path)
        objdump_funcs = {
            f.name: f for f in user_functions(parse_disassembly(artifact.disassembly))
        }
        return elf, elf_symbolizer(elf), objdump_funcs

    def test_every_instruction_matches_objdump_exactly(self, setup):
        elf, symbolizer, objdump_funcs = setup
        total = 0
        for symbol in elf.function_symbols():
            reference = objdump_funcs.get(symbol.name)
            if reference is None:
                continue
            mine = decode_function(elf.text_bytes_for(symbol), symbol.value,
                                   symbolizer=symbolizer)
            assert len(mine) == len(reference.instructions), symbol.name
            for a, b in zip(mine, reference.instructions):
                assert a.address == b.address, f"{symbol.name}: desync at {a.address:x}"
                assert str(a) == str(b), f"{symbol.name}: [{a}] != [{b}]"
                total += 1
        assert total > 150

    def test_plt_names_resolved(self, setup):
        elf, symbolizer, _objdump = setup
        plt = elf.plt_map()
        assert any("@plt" in name for name in plt.values())
        names = set(plt.values())
        assert "malloc@plt" in names or "strlen@plt" in names
