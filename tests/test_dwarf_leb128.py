"""LEB128 codec tests, including DWARF-standard vectors and property
round trips.
"""

import pytest
from hypothesis import given, strategies as st

from repro.dwarf.leb128 import decode_sleb128, decode_uleb128, encode_sleb128, encode_uleb128


class TestKnownVectors:
    """Vectors from the DWARF v4 specification, Appendix C."""

    @pytest.mark.parametrize("value,encoded", [
        (2, b"\x02"),
        (127, b"\x7f"),
        (128, b"\x80\x01"),
        (129, b"\x81\x01"),
        (130, b"\x82\x01"),
        (12857, b"\xb9\x64"),
    ])
    def test_uleb_spec_vectors(self, value, encoded):
        assert encode_uleb128(value) == encoded
        assert decode_uleb128(encoded) == (value, len(encoded))

    @pytest.mark.parametrize("value,encoded", [
        (2, b"\x02"),
        (-2, b"\x7e"),
        (127, b"\xff\x00"),
        (-127, b"\x81\x7f"),
        (128, b"\x80\x01"),
        (-128, b"\x80\x7f"),
        (129, b"\x81\x01"),
        (-129, b"\xff\x7e"),
    ])
    def test_sleb_spec_vectors(self, value, encoded):
        assert encode_sleb128(value) == encoded
        assert decode_sleb128(encoded) == (value, len(encoded))


class TestErrors:
    def test_uleb_rejects_negative(self):
        with pytest.raises(ValueError):
            encode_uleb128(-1)

    def test_truncated_uleb_raises(self):
        with pytest.raises(ValueError):
            decode_uleb128(b"\x80")

    def test_truncated_sleb_raises(self):
        with pytest.raises(ValueError):
            decode_sleb128(b"\xff")

    def test_decode_with_offset(self):
        data = b"\x00\x02"
        assert decode_uleb128(data, 1) == (2, 2)


@given(st.integers(0, 2**64))
def test_uleb_round_trip(value):
    encoded = encode_uleb128(value)
    decoded, offset = decode_uleb128(encoded)
    assert decoded == value
    assert offset == len(encoded)


@given(st.integers(-2**63, 2**63))
def test_sleb_round_trip(value):
    encoded = encode_sleb128(value)
    decoded, offset = decode_sleb128(encoded)
    assert decoded == value
    assert offset == len(encoded)


@given(st.lists(st.integers(0, 2**32), min_size=1, max_size=10))
def test_uleb_stream_round_trip(values):
    stream = b"".join(encode_uleb128(v) for v in values)
    offset = 0
    decoded = []
    for _ in values:
        value, offset = decode_uleb128(stream, offset)
        decoded.append(value)
    assert decoded == values
    assert offset == len(stream)
