"""Multi-stage classifier + pipeline integration tests (use the
session-scoped mini-trained CATI).
"""

import numpy as np
import pytest

from repro.core.types import ALL_TYPES, STAGE_SPECS, Stage, TypeName, stage_label
from repro.core.pipeline import Cati


class TestClassifier:
    def test_all_six_stages_trained(self, mini_cati):
        assert set(mini_cati.classifier.stages) == set(STAGE_SPECS)

    def test_leaf_proba_shape_and_normalization(self, mini_cati, small_corpus):
        windows = [s.tokens for s in small_corpus.test.samples[:20]]
        probs = mini_cati.predict_vuc_proba(windows)
        assert probs.shape == (20, 19)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert (probs >= 0).all()

    def test_stage_proba_rows_normalized(self, mini_cati, small_corpus):
        x = mini_cati.encode([s.tokens for s in small_corpus.test.samples[:10]])
        for stage in STAGE_SPECS:
            probs = mini_cati.classifier.stage_proba(stage, x)
            assert probs.shape == (10, len(STAGE_SPECS[stage].labels))
            assert np.allclose(probs.sum(axis=1), 1.0, atol=1e-5)

    def test_leaf_proba_consistent_with_stage_product(self, mini_cati, small_corpus):
        """Leaf column = normalized product of its path's stage confidences."""
        from repro.core.types import stage_path

        x = mini_cati.encode([s.tokens for s in small_corpus.test.samples[:5]])
        stage_probs = {s: mini_cati.classifier.stage_proba(s, x) for s in STAGE_SPECS}
        leaf = mini_cati.classifier.leaf_proba(x)
        raw = np.zeros_like(leaf)
        for col, t in enumerate(ALL_TYPES):
            factor = np.ones(len(x))
            for stage, label in stage_path(t):
                factor *= stage_probs[stage][:, STAGE_SPECS[stage].label_index(label)]
            raw[:, col] = factor
        raw /= raw.sum(axis=1, keepdims=True)
        assert np.allclose(leaf, raw, atol=1e-9)

    def test_predict_leaf_returns_typenames(self, mini_cati, small_corpus):
        x = mini_cati.encode([s.tokens for s in small_corpus.test.samples[:5]])
        preds = mini_cati.classifier.predict_leaf(x)
        assert all(isinstance(p, TypeName) for p in preds)

    def test_hierarchical_vote_returns_leaf(self, mini_cache, mini_cati):
        """vote_variable routes clipped stage votes down to a leaf type."""
        groups: dict[str, list[int]] = {}
        for i, vid in enumerate(mini_cache.variable_ids):
            groups.setdefault(vid, []).append(i)
        some = list(groups.items())[:20]
        for _vid, indices in some:
            leaf = mini_cati.classifier.vote_variable(mini_cache.stage_probs, indices)
            assert isinstance(leaf, TypeName)

    def test_hierarchical_vote_agrees_with_certain_stages(self, mini_cache, mini_cati):
        """When stage 1 is unanimous for 'pointer', the hierarchical vote
        must land on a pointer leaf."""
        import numpy as np

        from repro.core.types import POINTER_TYPES, STAGE_SPECS, Stage

        groups: dict[str, list[int]] = {}
        for i, vid in enumerate(mini_cache.variable_ids):
            groups.setdefault(vid, []).append(i)
        pointer_col = STAGE_SPECS[Stage.STAGE1].label_index("pointer")
        checked = 0
        for _vid, indices in groups.items():
            stage1 = mini_cache.stage_probs[Stage.STAGE1][indices]
            if (stage1[:, pointer_col] > 0.8).all():
                leaf = mini_cati.classifier.vote_variable(mini_cache.stage_probs, indices)
                assert leaf in POINTER_TYPES
                checked += 1
            if checked >= 10:
                break
        if checked == 0:
            pytest.skip("mini model produced no confidently-pointer variables")

    def test_hierarchical_vote_agrees_with_leaf_vote_when_confident(self, mini_cati):
        """When every stage on a leaf's path is confident, stage-by-stage
        routing (vote_variable) and flat leaf-level voting (eq. 4 over
        the composed leaf_proba) must pick the same type — the tree
        factorization cannot disagree with its own product when every
        factor is certain.  Checked for every one of the 19 leaves with
        constructed stage confidences (the mini model rarely reaches
        unanimous confidence on its own)."""
        from repro.core.classifier import compose_leaves
        from repro.core.types import stage_path
        from repro.core.voting import vote

        threshold = mini_cati.config.confidence_threshold
        n = 3  # a few VUCs per synthetic variable
        for leaf in ALL_TYPES:
            path = dict(stage_path(leaf))
            stage_probs = {}
            for stage in STAGE_SPECS:
                labels = STAGE_SPECS[stage].labels
                row = np.full(len(labels), (1.0 - 0.98) / max(len(labels) - 1, 1))
                if stage in path:
                    row[:] = (1.0 - 0.98) / max(len(labels) - 1, 1)
                    row[STAGE_SPECS[stage].label_index(path[stage])] = 0.98
                else:
                    row[:] = 1.0 / len(labels)
                stage_probs[stage] = np.tile(row, (n, 1))
            leaf_rows = compose_leaves(stage_probs)
            flat_winner = ALL_TYPES[vote(leaf_rows, threshold)]
            routed = mini_cati.classifier.vote_variable(
                stage_probs, list(range(n)), threshold)
            assert routed is leaf
            assert flat_winner is leaf


class TestPipeline:
    def test_training_beats_chance_on_unseen_apps(self, mini_cati, small_corpus):
        samples = small_corpus.test.samples
        preds = mini_cati.predict_vucs([s.tokens for s in samples])
        acc = sum(p is s.label for p, s in zip(preds, samples)) / len(samples)
        assert acc > 0.25, f"VUC accuracy {acc:.3f} barely above chance (1/19)"

    def test_variable_predictions_cover_all_variables(self, mini_cati, small_corpus):
        samples = small_corpus.test.samples
        predictions = mini_cati.predict_variables(
            [s.tokens for s in samples], [s.variable_id for s in samples],
        )
        assert {p.variable_id for p in predictions} == {s.variable_id for s in samples}

    def test_vote_scores_nonnegative(self, mini_cati, small_corpus):
        samples = small_corpus.test.samples[:50]
        predictions = mini_cati.predict_variables(
            [s.tokens for s in samples], [s.variable_id for s in samples],
        )
        for p in predictions:
            assert p.scores.shape == (19,)
            assert (p.scores >= 0).all()
            assert p.n_vucs >= 1

    def test_misaligned_inputs_raise(self, mini_cati, small_corpus):
        with pytest.raises(ValueError):
            mini_cati.predict_variables([small_corpus.test.samples[0].tokens], [])

    def test_untrained_raises(self, mini_config):
        with pytest.raises(RuntimeError):
            Cati(mini_config).predict_vucs([])

    def test_train_empty_raises(self, mini_config):
        from repro.vuc.dataset import VucDataset

        with pytest.raises(ValueError):
            Cati(mini_config).train(VucDataset())

    def test_save_load_round_trip(self, mini_cati, small_corpus, tmp_path, mini_config):
        directory = str(tmp_path / "model")
        mini_cati.save(directory)
        loaded = Cati.load(directory, mini_config)
        windows = [s.tokens for s in small_corpus.test.samples[:10]]
        assert np.allclose(
            mini_cati.predict_vuc_proba(windows),
            loaded.predict_vuc_proba(windows),
            atol=1e-6,
        )

    def test_infer_binary_end_to_end(self, mini_cati):
        from repro.codegen import GccCompiler, strip
        from repro.experiments.speed import extents_from_debug

        binary = GccCompiler().compile_fresh(seed=555, name="t", opt_level=0)
        extents = extents_from_debug(binary)
        predictions = mini_cati.infer_binary(strip(binary), extents)
        assert len(predictions) > 5
        assert all(isinstance(p.predicted, TypeName) for p in predictions)

    def test_infer_binary_no_extents_returns_empty(self, mini_cati):
        from repro.codegen import GccCompiler, strip

        binary = GccCompiler().compile_fresh(seed=556, name="t2", opt_level=0)
        assert mini_cati.infer_binary(strip(binary), []) == []


class TestConfig:
    def test_vuc_length(self, mini_config):
        assert mini_config.vuc_length == 21
        assert mini_config.instruction_dim == 96

    def test_invalid_window_rejected(self):
        from repro.core.config import CatiConfig

        with pytest.raises(ValueError):
            CatiConfig(window=-1)

    def test_window_zero_allowed_for_ablation(self):
        from repro.core.config import CatiConfig

        config = CatiConfig(window=0)
        assert config.vuc_length == 1

    def test_invalid_threshold_rejected(self):
        from repro.core.config import CatiConfig

        with pytest.raises(ValueError):
            CatiConfig(confidence_threshold=1.5)

    def test_word2vec_dim_follows_token_dim(self):
        from repro.core.config import CatiConfig

        config = CatiConfig(token_dim=16)
        assert config.word2vec.dim == 16
        assert config.instruction_dim == 48
