"""C type model tests: sizes, layout, labels and DIE emission."""

import pytest

from repro.codegen import ctypes_model as ct
from repro.codegen.ctypes_model import ArrayType, EnumType, PointerType, StructType, TypedefType
from repro.core.types import ALL_TYPES, TypeName
from repro.dwarf.resolver import resolve_type


class TestSizes:
    @pytest.mark.parametrize("ctype,size", [
        (ct.BOOL, 1), (ct.CHAR, 1), (ct.SHORT, 2), (ct.INT, 4),
        (ct.LONG, 8), (ct.FLOAT, 4), (ct.DOUBLE, 8), (ct.LONG_DOUBLE, 16),
        (PointerType(None), 8), (EnumType("e"), 4),
    ])
    def test_base_sizes(self, ctype, size):
        assert ctype.size == size

    def test_array_size(self):
        assert ArrayType(ct.CHAR, 64).size == 64
        assert ArrayType(ct.INT, 8).size == 32

    def test_typedef_size_follows_target(self):
        assert ct.SIZE_T.size == 8
        assert ct.BYTE_T.size == 1


class TestStructLayout:
    def test_member_offsets_respect_alignment(self):
        s = StructType("s", (("c", ct.CHAR), ("i", ct.INT), ("p", PointerType(None))))
        offsets = {name: off for name, _t, off in s.member_offsets()}
        assert offsets == {"c": 0, "i": 4, "p": 8}
        assert s.size == 16

    def test_tail_padding(self):
        s = StructType("s", (("p", PointerType(None)), ("c", ct.CHAR)))
        assert s.size == 16  # padded to 8-byte alignment

    def test_packed_scalars(self):
        s = StructType("s", (("a", ct.SHORT), ("b", ct.SHORT)))
        assert s.size == 4


class TestLabels:
    def test_every_leaf_label_has_representative(self):
        for label in ALL_TYPES:
            assert ct.representative(label).leaf_label() is label

    def test_pointer_labels(self):
        assert PointerType(None).leaf_label() is TypeName.VOID_POINTER
        assert PointerType(StructType("s", ())).leaf_label() is TypeName.STRUCT_POINTER
        assert PointerType(ct.INT).leaf_label() is TypeName.ARITH_POINTER
        assert PointerType(EnumType("e")).leaf_label() is TypeName.ARITH_POINTER

    def test_pointer_through_typedef(self):
        alias = TypedefType("node_t", StructType("node", ()))
        assert PointerType(alias).leaf_label() is TypeName.STRUCT_POINTER

    def test_array_label_is_element(self):
        assert ArrayType(ct.UCHAR, 16).leaf_label() is TypeName.UNSIGNED_CHAR

    def test_pointer_stride(self):
        assert PointerType(ct.INT).stride == 4
        assert PointerType(None).stride == 1


class TestDieEmission:
    def test_die_round_trip_through_resolver(self):
        cache = {}
        for label in ALL_TYPES:
            die = ct.representative(label).to_die(cache)
            assert resolve_type(die) is label, label

    def test_die_cache_is_shared(self):
        cache = {}
        a = ct.INT.to_die(cache)
        b = ct.INT.to_die(cache)
        assert a is b

    def test_typedef_die_chain(self):
        cache = {}
        die = ct.BYTE_T.to_die(cache)  # byte -> uint8_t -> unsigned char
        assert die.tag.name == "TYPEDEF"
        assert die.type_ref.tag.name == "TYPEDEF"
        assert die.type_ref.type_ref.name == "unsigned char"

    def test_struct_zoo_resolves(self):
        cache = {}
        for struct in ct.make_struct_zoo():
            assert resolve_type(struct.to_die(cache)) is TypeName.STRUCT
