"""Project profile and corpus-construction tests."""

import pytest

from repro.codegen import GccCompiler
from repro.core.types import TypeName
from repro.datasets.corpus import build_dataset, build_project_binaries
from repro.datasets.projects import (
    TEST_APP_NAMES,
    TEST_PROJECTS,
    TRAINING_PROJECTS,
    ProjectProfile,
    profile_by_name,
)


class TestProfiles:
    def test_twelve_test_apps_match_paper(self):
        assert TEST_APP_NAMES == (
            "bash", "bison", "cflow", "gawk", "grep", "gzip",
            "inetutils", "less", "nano", "R", "sed", "wget",
        )

    def test_train_and_test_disjoint(self):
        assert not {p.name for p in TRAINING_PROJECTS} & {p.name for p in TEST_PROJECTS}

    def test_seeds_unique(self):
        seeds = [p.seed for p in TRAINING_PROJECTS + TEST_PROJECTS]
        assert len(seeds) == len(set(seeds))

    def test_profile_by_name(self):
        assert profile_by_name("R").name == "R"
        with pytest.raises(KeyError):
            profile_by_name("notepad")

    def test_gzip_nano_sed_have_no_float_family(self):
        """The paper notes gzip/nano/sed lack float-family variables."""
        for name in ("gzip", "nano", "sed"):
            profile = profile_by_name(name)
            weights = profile.generator_config().type_weights
            assert weights[TypeName.FLOAT] == 0.0

    def test_r_is_float_heavy(self):
        r_weights = profile_by_name("R").generator_config().type_weights
        base_weights = profile_by_name("bash").generator_config().type_weights
        assert r_weights[TypeName.DOUBLE] > base_weights[TypeName.DOUBLE]

    def test_size_scale_applies(self):
        profile = profile_by_name("R")
        config = profile.generator_config()
        low, high = config.functions_per_binary
        assert high > 14  # scaled above the default


class TestCorpusBuild:
    def test_binaries_per_project(self):
        profile = ProjectProfile("p", seed=900, n_binaries=2)
        binaries = build_project_binaries(profile, GccCompiler(), opt_levels=(0, 2))
        assert len(binaries) == 4
        assert {b.opt_level for b in binaries} == {0, 2}

    def test_dataset_apps_labeled(self):
        profile = ProjectProfile("p", seed=901, n_binaries=1)
        dataset, binaries = build_dataset([profile], GccCompiler(), opt_levels=(0,))
        assert dataset.apps() == ["p"]
        assert len(binaries) == 1
        assert len(dataset) > 0

    def test_small_corpus_fixture_shape(self, small_corpus):
        assert len(small_corpus.train) > 200
        assert len(small_corpus.test) > 200
        assert small_corpus.train.window == 10
        train_apps = set(small_corpus.train.apps())
        test_apps = set(small_corpus.test.apps())
        assert not train_apps & test_apps

    def test_summary_mentions_counts(self, small_corpus):
        text = small_corpus.summary()
        assert "train" in text and "test" in text

    def test_corpus_determinism(self):
        profile = ProjectProfile("p", seed=902, n_binaries=1)
        a, _bins1 = build_dataset([profile], GccCompiler(), opt_levels=(0,))
        b, _bins2 = build_dataset([profile], GccCompiler(), opt_levels=(0,))
        assert len(a) == len(b)
        assert [s.label for s in a.samples] == [s.label for s in b.samples]
        assert [s.tokens for s in a.samples[:10]] == [s.tokens for s in b.samples[:10]]


class TestCorpusPhenomena:
    """The calibrated phenomena of DESIGN.md §5 must actually hold."""

    def test_orphan_fraction_in_paper_range(self, small_corpus):
        from repro.eval.stats import orphan_stats

        stats = orphan_stats(small_corpus.train)
        assert 0.15 < stats.orphan_fraction < 0.55

    def test_uncertain_dominate_orphans(self, small_corpus):
        from repro.eval.stats import orphan_stats

        stats = orphan_stats(small_corpus.train)
        # paper: >97%; small corpora have fewer collisions, require majority
        assert stats.uncertain_fraction_of_orphans > 0.5

    def test_type_distribution_shape(self, small_corpus):
        counts = small_corpus.train.variable_label_counts()
        assert counts[TypeName.INT] > counts.get(TypeName.SHORT_INT, 0)
        assert counts[TypeName.STRUCT_POINTER] > counts.get(TypeName.FLOAT, 0)
