"""ModelBundle persistence: round trips, integrity, migration, atomicity."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import artifacts
from repro.core.artifacts import ModelBundle
from repro.core.config import CatiConfig
from repro.core.errors import (
    ArtifactError,
    BundleIntegrityError,
    BundleSchemaError,
    CatiError,
    ConfigMismatchError,
)
from repro.core.pipeline import Cati

TOL = 1e-6


@pytest.fixture()
def bundle_dir(mini_cati, tmp_path):
    directory = tmp_path / "model"
    mini_cati.save(str(directory))
    return directory


@pytest.fixture()
def test_windows(small_corpus):
    return [sample.tokens for sample in small_corpus.test.samples[:32]]


def _flip_byte(path: Path) -> None:
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0xFF
    path.write_bytes(bytes(data))


class TestRoundTrip:
    def test_engine_output_equivalence(self, mini_cati, bundle_dir, test_windows):
        loaded = Cati.load(str(bundle_dir), warm_start=True)
        reference = mini_cati.predict_vuc_proba(test_windows)
        assert np.abs(loaded.engine.leaf_proba(test_windows) - reference).max() <= TOL
        assert np.abs(loaded.predict_vuc_proba(test_windows) - reference).max() <= TOL

    def test_saved_config_restored_verbatim(self, mini_cati, bundle_dir):
        loaded = Cati.load(str(bundle_dir))
        assert loaded.config.to_dict() == mini_cati.config.to_dict()

    def test_warm_start_compiles_kernels(self, bundle_dir):
        cold = Cati.load(str(bundle_dir))
        assert cold._engine is None
        warm = Cati.load(str(bundle_dir), warm_start=True)
        assert warm._engine is not None
        assert warm._engine._ops is not None

    def test_matching_explicit_config_is_kept(self, bundle_dir, mini_config):
        import dataclasses

        runtime = dataclasses.replace(
            mini_config, metrics_enabled=False, max_batch=77)
        loaded = Cati.load(str(bundle_dir), runtime)
        assert loaded.config.metrics_enabled is False
        assert loaded.config.max_batch == 77

    def test_provenance_travels(self, mini_cati, bundle_dir, small_corpus):
        assert mini_cati.provenance["n_train_vucs"] == len(small_corpus.train)
        loaded = Cati.load(str(bundle_dir))
        assert loaded.provenance == mini_cati.provenance


class TestManifest:
    def test_manifest_fields(self, bundle_dir, mini_cati):
        manifest = ModelBundle.open(str(bundle_dir)).manifest
        assert manifest["format"] == artifacts.BUNDLE_FORMAT
        assert manifest["schema_version"] == artifacts.SCHEMA_VERSION
        assert manifest["vocab_size"] == len(mini_cati.embedding.vocab)
        assert manifest["config"]["fc_width"] == mini_cati.config.fc_width
        assert set(manifest["provenance"]) == {
            "trained_at", "n_train_vucs", "vocab_size", "repro_version"}
        names = set(manifest["files"])
        assert artifacts.EMBEDDING_FILE in names
        assert {n for n in names if n.startswith("stages/")} == {
            f"stages/{s}.npz" for s in (
                "Stage1", "Stage2-1", "Stage2-2", "Stage3-1", "Stage3-2", "Stage3-3")}
        for entry in manifest["files"].values():
            assert len(entry["sha256"]) == 64
            assert entry["bytes"] > 0
            assert entry["tensors"]

    def test_verify_clean(self, bundle_dir):
        bundle = ModelBundle.open(str(bundle_dir))
        assert bundle.problems() == []
        bundle.verify()  # must not raise

    def test_config_round_trips_through_dict(self, mini_config):
        clone = CatiConfig.from_dict(mini_config.to_dict())
        assert clone.to_dict() == mini_config.to_dict()
        assert clone.conv_channels == mini_config.conv_channels

    def test_config_from_dict_rejects_unknown_fields(self):
        data = CatiConfig().to_dict()
        data["from_the_future"] = 1
        with pytest.raises(ValueError, match="from_the_future"):
            CatiConfig.from_dict(data)


class TestConfigConflict:
    def test_structural_mismatch_raises_naming_fields(self, bundle_dir):
        conflicting = CatiConfig(fc_width=128, window=7)
        with pytest.raises(ConfigMismatchError) as excinfo:
            Cati.load(str(bundle_dir), conflicting)
        error = excinfo.value
        assert set(error.mismatches) == {"fc_width", "window"}
        assert "fc_width" in str(error) and "window" in str(error)
        assert isinstance(error, CatiError)

    def test_conv_channels_mismatch(self, bundle_dir):
        with pytest.raises(ConfigMismatchError, match="conv_channels"):
            Cati.load(str(bundle_dir), CatiConfig(conv_channels=(16, 32)))


class TestIntegrity:
    @pytest.mark.parametrize("payload", ["word2vec.npz", "stages/Stage2-2.npz"])
    def test_flipped_byte_rejected(self, bundle_dir, payload):
        _flip_byte(bundle_dir / payload)
        with pytest.raises(BundleIntegrityError, match="checksum"):
            Cati.load(str(bundle_dir))
        assert any(payload in problem
                   for problem in ModelBundle.open(str(bundle_dir)).problems())

    def test_missing_payload_rejected(self, bundle_dir):
        (bundle_dir / "stages" / "Stage1.npz").unlink()
        with pytest.raises(BundleIntegrityError, match="missing"):
            Cati.load(str(bundle_dir))

    def test_corrupt_manifest_is_schema_error(self, bundle_dir):
        (bundle_dir / "manifest.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(BundleSchemaError):
            ModelBundle.open(str(bundle_dir))

    def test_future_schema_version_rejected(self, bundle_dir):
        path = bundle_dir / "manifest.json"
        manifest = json.loads(path.read_text())
        manifest["schema_version"] = artifacts.SCHEMA_VERSION + 1
        path.write_text(json.dumps(manifest))
        with pytest.raises(BundleSchemaError, match="schema version"):
            ModelBundle.open(str(bundle_dir))

    def test_foreign_manifest_rejected(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"format": "something-else"}')
        with pytest.raises(BundleSchemaError):
            ModelBundle.open(str(tmp_path))

    def test_not_a_model_directory(self, tmp_path):
        with pytest.raises(ArtifactError, match="neither"):
            Cati.load(str(tmp_path / "nope"))


class TestAtomicity:
    def test_crashed_save_leaves_no_bundle(self, mini_cati, tmp_path, monkeypatch):
        target = tmp_path / "model"
        calls = {"n": 0}
        real = np.savez_compressed

        def explode(path, **arrays):
            calls["n"] += 1
            if calls["n"] == 3:
                raise OSError("disk on fire")
            return real(path, **arrays)

        monkeypatch.setattr(artifacts.np, "savez_compressed", explode)
        with pytest.raises(ArtifactError, match="disk on fire"):
            mini_cati.save(str(target))
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []  # staging dir cleaned up
        with pytest.raises(ArtifactError):
            ModelBundle.open(str(target))

    def test_crashed_overwrite_keeps_old_bundle(self, mini_cati, bundle_dir,
                                                test_windows, monkeypatch):
        before = mini_cati.predict_vuc_proba(test_windows)

        def explode(path, **arrays):
            raise OSError("disk on fire")

        monkeypatch.setattr(artifacts.np, "savez_compressed", explode)
        with pytest.raises(ArtifactError):
            mini_cati.save(str(bundle_dir))
        monkeypatch.undo()
        survivor = ModelBundle.open(str(bundle_dir))
        survivor.verify()
        loaded = Cati.load(str(bundle_dir))
        assert np.abs(loaded.predict_vuc_proba(test_windows) - before).max() <= TOL


class TestLegacyMigration:
    @pytest.fixture()
    def legacy_dir(self, bundle_dir):
        # The legacy layout is exactly a bundle minus its manifest: bare
        # word2vec.npz + stages/*.npz, as Cati.save wrote pre-refactor.
        (bundle_dir / "manifest.json").unlink()
        assert ModelBundle.is_legacy(bundle_dir)
        return bundle_dir

    def test_legacy_directory_still_loads(self, mini_cati, legacy_dir,
                                          mini_config, test_windows):
        loaded = Cati.load(str(legacy_dir), mini_config)
        assert np.abs(
            loaded.predict_vuc_proba(test_windows)
            - mini_cati.predict_vuc_proba(test_windows)
        ).max() <= TOL

    def test_migrate_in_place(self, mini_cati, legacy_dir, test_windows):
        bundle = ModelBundle.migrate(str(legacy_dir))
        bundle.verify()
        assert ModelBundle.is_bundle(legacy_dir)
        config = bundle.saved_config()
        assert config.fc_width == mini_cati.config.fc_width
        assert config.token_dim == mini_cati.config.token_dim
        assert config.conv_channels == mini_cati.config.conv_channels
        assert bundle.manifest["provenance"]["migrated_from"] == str(legacy_dir)
        loaded = Cati.load(str(legacy_dir))
        assert np.abs(
            loaded.predict_vuc_proba(test_windows)
            - mini_cati.predict_vuc_proba(test_windows)
        ).max() <= TOL

    def test_migrate_to_dest(self, legacy_dir, tmp_path):
        dest = tmp_path / "migrated"
        ModelBundle.migrate(str(legacy_dir), dest=str(dest)).verify()
        assert ModelBundle.is_bundle(dest)
        assert ModelBundle.is_legacy(legacy_dir)  # source untouched

    def test_migrate_refuses_bundle_and_garbage(self, bundle_dir, tmp_path):
        with pytest.raises(ArtifactError, match="already"):
            ModelBundle.migrate(str(bundle_dir))
        with pytest.raises(ArtifactError, match="not a legacy"):
            ModelBundle.migrate(str(tmp_path / "empty"))


class TestExperimentCache:
    """get_context's cache acceptance goes through _load_cached_model."""

    def test_verified_bundle_accepted(self, bundle_dir, mini_config):
        from repro.experiments.common import _load_cached_model

        cati = _load_cached_model(bundle_dir, mini_config)
        assert cati is not None
        assert cati._engine is not None  # warm-started

    def test_tampered_bundle_triggers_retrain(self, bundle_dir, mini_config, capsys):
        from repro.experiments.common import _load_cached_model

        _flip_byte(bundle_dir / "word2vec.npz")
        assert _load_cached_model(bundle_dir, mini_config) is None
        assert "retraining" in capsys.readouterr().out

    def test_half_written_cache_triggers_retrain(self, bundle_dir, mini_config):
        from repro.experiments.common import _load_cached_model

        (bundle_dir / "manifest.json").write_text("", encoding="utf-8")
        assert _load_cached_model(bundle_dir, mini_config) is None

    def test_missing_cache_triggers_retrain(self, tmp_path, mini_config):
        from repro.experiments.common import _load_cached_model

        assert _load_cached_model(tmp_path / "absent", mini_config) is None

    def test_legacy_cache_upgraded_in_place(self, bundle_dir, mini_config):
        from repro.experiments.common import _load_cached_model

        (bundle_dir / "manifest.json").unlink()
        cati = _load_cached_model(bundle_dir, mini_config)
        assert cati is not None
        assert ModelBundle.is_bundle(bundle_dir)
        ModelBundle.open(str(bundle_dir)).verify()


class TestRequireTrained:
    def test_save_untrained_raises_runtime_error(self, mini_config, tmp_path):
        # Survives `python -O` (the old guard was a bare assert).
        with pytest.raises(RuntimeError, match="not trained"):
            Cati(mini_config).save(str(tmp_path / "nope"))


class TestCli:
    def test_inspect_ok(self, bundle_dir, capsys):
        from repro.cli import main

        assert main(["model", "inspect", str(bundle_dir)]) == 0
        out = capsys.readouterr().out
        assert "integrity: OK" in out
        assert "manifest" not in out  # human format, not JSON

    def test_inspect_json(self, bundle_dir, capsys):
        from repro.cli import main

        assert main(["model", "inspect", str(bundle_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["problems"] == []
        assert payload["manifest"]["schema_version"] == artifacts.SCHEMA_VERSION

    def test_inspect_tampered_fails(self, bundle_dir, capsys):
        from repro.cli import main

        _flip_byte(bundle_dir / "stages" / "Stage1.npz")
        assert main(["model", "inspect", str(bundle_dir)]) == 1
        assert "integrity: FAILED" in capsys.readouterr().out

    def test_inspect_legacy_fails_with_hint(self, bundle_dir, capsys):
        from repro.cli import main

        (bundle_dir / "manifest.json").unlink()
        assert main(["model", "inspect", str(bundle_dir)]) == 2
        assert "migrate" in capsys.readouterr().err

    def test_migrate_command(self, bundle_dir, tmp_path, capsys):
        from repro.cli import main

        (bundle_dir / "manifest.json").unlink()
        dest = tmp_path / "migrated"
        assert main(["model", "migrate", str(bundle_dir), "--dest", str(dest)]) == 0
        assert "migrated" in capsys.readouterr().out
        assert ModelBundle.is_bundle(dest)


class TestStateDicts:
    def test_sequential_load_state_rejects_bad_shapes(self, mini_cati):
        model = mini_cati.classifier.stages[
            next(iter(mini_cati.classifier.stages))].model
        state = model.get_state()
        key = next(iter(state))
        bad = dict(state)
        bad[key] = np.zeros((1, 1))
        with pytest.raises(ValueError, match="shape"):
            model.load_state(bad)
        missing = dict(state)
        del missing[key]
        with pytest.raises(ValueError, match="lacks"):
            model.load_state(missing)

    def test_word2vec_state_round_trip(self, mini_cati):
        from repro.embedding.word2vec import Word2Vec

        clone = Word2Vec.from_state(mini_cati.embedding.get_state())
        assert np.array_equal(clone.vectors, mini_cati.embedding.vectors)
        assert clone.vocab.token_to_id == mini_cati.embedding.vocab.token_to_id

    def test_classifier_state_round_trip(self, mini_cati, mini_config, test_windows):
        from repro.core.classifier import MultiStageClassifier

        clone = MultiStageClassifier(mini_config)
        clone.load_state(mini_cati.classifier.get_state(),
                         input_length=mini_config.vuc_length,
                         input_channels=mini_config.instruction_dim)
        x = mini_cati.encode(test_windows)
        assert np.abs(
            clone.leaf_proba(x) - mini_cati.classifier.leaf_proba(x)).max() <= TOL
