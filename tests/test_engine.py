"""Equivalence suite for the batched inference engine.

Every fast path (window dedup, context-dedup cascade, float32 stacked
kernels, chunking, batched occlusion, worker sharding) must reproduce
the naive float64 reference to ≤1e-6 — that tolerance is the engine's
contract (ISSUE acceptance criterion), everything below it is free
performance.
"""

import numpy as np
import pytest

from repro.core.config import CatiConfig
from repro.core.engine import (
    InferenceEngine,
    _compile_ops,
    _neighbor_rows,
    _run_ops,
    _unique_rows,
)
from repro.core.occlusion import (
    epsilon_distribution,
    occlusion_epsilons,
    occlusion_epsilons_many,
)
from repro.vuc.generalize import BLANK_TOKENS

TOL = 1e-6


@pytest.fixture(scope="module")
def test_windows(small_corpus):
    return [s.tokens for s in small_corpus.test.samples[:300]]


@pytest.fixture(scope="module")
def test_variable_ids(small_corpus):
    return [s.variable_id for s in small_corpus.test.samples[:300]]


def fresh_engine(mini_cati, **overrides) -> InferenceEngine:
    """An engine over the mini model with config knobs overridden."""
    base = mini_cati.config
    config = CatiConfig(
        epochs=base.epochs, fc_width=base.fc_width, word2vec=base.word2vec,
        **overrides,
    )
    return InferenceEngine(mini_cati.classifier, mini_cati.encoder, config)


class TestDedupPrimitives:
    def test_unique_rows_round_trip(self):
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 5, size=(200, 3)).astype(np.int64)
        unique, inverse = _unique_rows(rows)
        assert len(unique) < len(rows)
        assert np.array_equal(unique[inverse], rows)
        assert len({r.tobytes() for r in unique}) == len(unique)

    def test_neighbor_rows_edges_are_padding(self):
        positions = np.array([[3, 1, 4, 1]])
        contexts = _neighbor_rows(positions)
        assert contexts.shape == (1, 4, 3)
        assert contexts[0, 0].tolist() == [-1, 3, 1]
        assert contexts[0, 1].tolist() == [3, 1, 4]
        assert contexts[0, 3].tolist() == [4, 1, -1]


class TestCompiledOps:
    def test_generic_ops_match_model_forward(self):
        """The float32 mirror program agrees with the float64 Sequential,
        including the no-pooling shape used by the window-0 ablation."""
        from repro.nn.model import build_cati_cnn

        rng = np.random.default_rng(7)
        for length in (1, 5, 21):
            model = build_cati_cnn(
                input_length=length, input_channels=12, n_classes=4,
                conv_channels=(8, 16), fc_width=32, dropout=0.5, seed=3,
            )
            ops = _compile_ops(model)
            assert ops is not None
            x = rng.standard_normal((9, length, 12)).astype(np.float32)
            got = _run_ops(ops, x)
            want = model.forward(x, training=False)
            assert np.abs(got - want).max() <= TOL

    def test_unknown_layer_returns_none(self):
        class Odd:
            layers = [object()]

        assert _compile_ops(Odd()) is None


class TestLeafProbaEquivalence:
    def test_matches_naive(self, mini_cati, test_windows):
        naive = mini_cati.predict_vuc_proba(test_windows)
        fast = mini_cati.engine.leaf_proba(test_windows)
        assert fast.shape == naive.shape
        assert np.abs(fast - naive).max() <= TOL

    def test_cascade_path_is_active(self, mini_cati, test_windows):
        """The mini model has the canonical stack, so the dedup cascade
        (not the generic fallback) must be what the equivalence covers."""
        engine = mini_cati.engine
        engine.leaf_proba(test_windows[:5])
        assert engine._cascade
        assert engine.stats.ctx_unique > 0

    def test_chunking_invariance(self, mini_cati, test_windows):
        naive = mini_cati.predict_vuc_proba(test_windows)
        for max_batch in (1, 17, 4096):
            engine = fresh_engine(mini_cati, max_batch=max_batch)
            assert np.abs(engine.leaf_proba(test_windows) - naive).max() <= TOL

    def test_cache_disabled_matches(self, mini_cati, test_windows):
        engine = fresh_engine(mini_cati, dedup_cache_size=0)
        naive = mini_cati.predict_vuc_proba(test_windows)
        assert np.abs(engine.leaf_proba(test_windows) - naive).max() <= TOL
        assert len(engine._cache) == 0

    def test_empty_input(self, mini_cati):
        assert mini_cati.engine.leaf_proba([]).shape == (0, 19)
        assert mini_cati.engine.predict_variables([], []) == []

    def test_cache_hits_across_calls(self, mini_cati, test_windows):
        engine = fresh_engine(mini_cati)
        first = engine.leaf_proba(test_windows)
        hits_before = engine.stats.cache_hits
        second = engine.leaf_proba(test_windows)
        assert engine.stats.cache_hits >= hits_before + engine.stats.unique_windows // 2
        assert np.array_equal(first, second)

    def test_cache_eviction_bounded(self, mini_cati, test_windows):
        engine = fresh_engine(mini_cati, dedup_cache_size=16)
        engine.leaf_proba(test_windows)
        assert len(engine._cache) <= 16
        naive = mini_cati.predict_vuc_proba(test_windows)
        assert np.abs(engine.leaf_proba(test_windows) - naive).max() <= TOL

    def test_refresh_recompiles(self, mini_cati, test_windows):
        engine = fresh_engine(mini_cati)
        before = engine.leaf_proba(test_windows[:10])
        engine.refresh()
        assert engine._ops is None and len(engine._cache) == 0
        assert np.abs(engine.leaf_proba(test_windows[:10]) - before).max() <= TOL


class TestVoteEquivalence:
    def test_predictions_match_naive(self, mini_cati, test_windows, test_variable_ids):
        naive = mini_cati.predict_variables(test_windows, test_variable_ids)
        fast = mini_cati.engine.predict_variables(test_windows, test_variable_ids)
        assert [p.variable_id for p in fast] == [p.variable_id for p in naive]
        assert [p.predicted for p in fast] == [p.predicted for p in naive]
        assert [p.n_vucs for p in fast] == [p.n_vucs for p in naive]
        for a, b in zip(fast, naive):
            assert np.abs(a.scores - b.scores).max() <= TOL

    def test_misaligned_inputs_raise(self, mini_cati, test_windows):
        with pytest.raises(ValueError):
            mini_cati.engine.predict_variables(test_windows, [])


class TestOcclusionEquivalence:
    def test_matches_naive(self, mini_cati, test_windows):
        sub = test_windows[:12]
        batched = occlusion_epsilons_many(mini_cati, sub)
        assert batched.epsilons.shape == (len(sub), 21)
        for i, window in enumerate(sub):
            single = occlusion_epsilons(mini_cati, window)
            assert np.abs(batched.epsilons[i] - single.epsilons).max() <= TOL
            assert batched.predicted_indices[i] == single.predicted_index
            assert abs(batched.base_confidences[i] - single.base_confidence) <= TOL

    def test_occluding_padding_is_neutral(self, mini_cati, small_corpus):
        """BLANKing an already-BLANK row is a bitwise no-op: window dedup
        must make epsilon exactly 1, not approximately."""
        sample = next(
            s for s in small_corpus.test.samples if s.tokens[0] == BLANK_TOKENS
        )
        batched = occlusion_epsilons_many(mini_cati, [sample.tokens])
        assert batched.epsilons[0, 0] == 1.0

    def test_group_chunking_invariance(self, mini_cati, test_windows):
        sub = test_windows[:8]
        reference = occlusion_epsilons_many(mini_cati, sub).epsilons
        tiny = fresh_engine(mini_cati, max_batch=5)  # forces group size 1
        assert np.abs(tiny.occlusion_epsilons_many(sub).epsilons - reference).max() <= TOL

    def test_epsilon_distribution_paths_agree(self, mini_cati, test_windows):
        """Both heat-map paths agree except where an ε sits within the
        equivalence tolerance of an indicator boundary (the strict
        ε ∈ (t, 1) test is discontinuous there, so a ≤1e-6 value
        difference can legitimately flip a count)."""
        sub = test_windows[:10]
        thresholds = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
        fast = epsilon_distribution(mini_cati, sub, use_engine=True)
        slow = epsilon_distribution(mini_cati, sub, use_engine=False)
        assert fast.shape == slow.shape == (21, 10)
        naive_eps = np.stack(
            [occlusion_epsilons(mini_cati, w).epsilons for w in sub])   # [N, L]
        bounds = np.asarray(thresholds + (1.0,))
        near = (np.abs(naive_eps[:, :, None] - bounds) <= TOL).any(axis=2)
        allowance = near.mean(axis=0)                                   # [L]
        assert (np.abs(fast - slow).max(axis=1) <= allowance + 1e-12).all()

    def test_empty_input(self, mini_cati):
        batched = mini_cati.engine.occlusion_epsilons_many([])
        assert batched.epsilons.shape == (0, 21)


class TestBinaryInference:
    @pytest.fixture(scope="class")
    def jobs(self):
        from repro.codegen import GccCompiler, strip
        from repro.experiments.speed import extents_from_debug

        jobs = []
        for seed in (901, 902, 903):
            binary = GccCompiler().compile_fresh(seed=seed, name=f"j{seed}", opt_level=0)
            jobs.append((strip(binary), extents_from_debug(binary)))
        return jobs

    def test_infer_binary_matches_naive(self, mini_cati, jobs):
        from repro.vuc.dataset import extract_unlabeled_vucs

        stripped, extents = jobs[0]
        fast = mini_cati.engine.infer_binary(stripped, extents)
        pairs = extract_unlabeled_vucs(stripped, extents, mini_cati.config.window)
        naive = mini_cati.predict_variables(
            [tokens for _vid, tokens in pairs], [vid for vid, _tokens in pairs],
        )
        assert [p.variable_id for p in fast] == [p.variable_id for p in naive]
        assert [p.predicted for p in fast] == [p.predicted for p in naive]

    def test_infer_binary_many_serial(self, mini_cati, jobs):
        engine = mini_cati.engine
        looped = [engine.infer_binary(stripped, extents) for stripped, extents in jobs]
        many = engine.infer_binary_many(jobs, n_workers=0)
        assert len(many) == len(looped)
        for a, b in zip(many, looped):
            assert [p.predicted for p in a] == [p.predicted for p in b]

    def test_infer_binary_many_parallel(self, mini_cati, jobs):
        engine = mini_cati.engine
        serial = engine.infer_binary_many(jobs, n_workers=0)
        parallel = engine.infer_binary_many(jobs, n_workers=2)
        assert len(parallel) == len(serial)
        for a, b in zip(parallel, serial):
            assert [p.variable_id for p in a] == [p.variable_id for p in b]
            assert [p.predicted for p in a] == [p.predicted for p in b]


class TestPipelineIntegration:
    def test_engine_property_cached_and_reset_on_load(self, mini_cati, tmp_path,
                                                      mini_config, test_windows):
        from repro.core.pipeline import Cati

        assert mini_cati.engine is mini_cati.engine
        directory = str(tmp_path / "model")
        mini_cati.save(directory)
        loaded = Cati.load(directory, mini_config)
        assert loaded._engine is None
        assert np.abs(
            loaded.engine.leaf_proba(test_windows[:20])
            - mini_cati.predict_vuc_proba(test_windows[:20])
        ).max() <= TOL


class TestKernelArena:
    """The arena-fused cascade must be invisible: any chunking, any call
    size, buffers reused — identical probabilities."""

    def test_ragged_chunk_boundaries(self, mini_cati, test_windows):
        naive = mini_cati.predict_vuc_proba(test_windows)
        n = len(test_windows)
        for max_batch in (7, 64, n - 1, n, n + 1):
            engine = fresh_engine(mini_cati, max_batch=max_batch)
            assert np.abs(engine.leaf_proba(test_windows) - naive).max() <= TOL

    def test_arena_reused_across_differently_sized_calls(self, mini_cati,
                                                         test_windows):
        engine = fresh_engine(mini_cati, dedup_cache_size=0)
        naive = mini_cati.predict_vuc_proba(test_windows)
        engine.leaf_proba(test_windows)  # peak-size call grows the arena
        peak = engine.arena_nbytes
        assert peak > 0
        for size in (20, 150, 1, len(test_windows)):
            got = engine.leaf_proba(test_windows[:size])
            assert np.abs(got - naive[:size]).max() <= TOL
        # Shrink-and-regrow must reuse the grown buffers, not reallocate.
        assert engine.arena_nbytes == peak

    def test_refresh_drops_arena(self, mini_cati, test_windows):
        engine = fresh_engine(mini_cati)
        engine.leaf_proba(test_windows[:40])
        assert engine.arena_nbytes > 0
        engine.refresh()
        assert engine.arena_nbytes == 0
        naive = mini_cati.predict_vuc_proba(test_windows[:40])
        assert np.abs(engine.leaf_proba(test_windows[:40]) - naive).max() <= TOL


class TestQuantizedEmbeddings:
    """The opt-in int8 embedding table trades the exact-equivalence gate
    for a bounded, measured accuracy delta."""

    def test_leaf_probs_within_bound(self, mini_cati, test_windows):
        naive = mini_cati.predict_vuc_proba(test_windows)
        engine = fresh_engine(mini_cati, quantize_embeddings=True)
        quantized = engine.leaf_proba(test_windows)
        assert np.abs(quantized - naive).max() <= 0.05
        agreement = (quantized.argmax(axis=1) == naive.argmax(axis=1)).mean()
        assert agreement >= 0.98

    def test_table_built_only_when_opted_in(self, mini_cati):
        engine = fresh_engine(mini_cati)
        engine.warm_start()
        assert engine._q_table is None
        quantized = fresh_engine(mini_cati, quantize_embeddings=True)
        quantized.warm_start()
        values, scales = quantized._q_table
        assert values.dtype == np.int8
        assert values.shape == quantized.encoder.embedding.vectors.shape
        assert scales.shape == (len(values),)

    def test_quantize_rows_int8_bounds(self):
        from repro.nn.layers import quantize_rows_int8

        rng = np.random.default_rng(0)
        matrix = rng.normal(size=(50, 32)).astype(np.float32)
        matrix[7] = 0.0
        values, scales = quantize_rows_int8(matrix)
        assert values.dtype == np.int8
        # Dequantization error is at most half a quantization step per row.
        recon = values.astype(np.float64) * scales[:, None]
        assert np.all(np.abs(recon - matrix) <= scales[:, None] / 2 + 1e-7)
        # All-zero rows stay exactly zero with a well-defined scale.
        assert (values[7] == 0).all()
        assert scales[7] == 1.0

    def test_refresh_rebuilds_table(self, mini_cati, test_windows):
        engine = fresh_engine(mini_cati, quantize_embeddings=True)
        before = engine.leaf_proba(test_windows[:30])
        engine.refresh()
        after = engine.leaf_proba(test_windows[:30])
        assert np.array_equal(before, after)
