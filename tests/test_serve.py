"""The serving subsystem: protocol, scheduler, daemon, reload, drain.

The acceptance contract (ISSUE 5): concurrent served results match the
offline ``Cati.infer_binary`` path, overload answers 503 + Retry-After
instead of queueing unboundedly, SIGTERM finishes in-flight work, and a
hot reload never drops traffic — corrupt or config-incompatible bundles
are rejected while the old model keeps serving.

On "match": prediction identity (variable id, voted type, VUC count)
is asserted exactly.  Confidences are compared to 1e-6: the engine's
GEMMs reduce in shape-dependent order, so coalescing a request into a
different batch composition legitimately perturbs leaf probabilities at
the ~1e-8 level without ever moving a vote.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.codegen.compilers import GccCompiler
from repro.codegen.strip import strip
from repro.core.errors import (
    DeadlineExceededError,
    QueueFullError,
    ServerClosedError,
)
from repro.experiments.speed import extents_from_debug
from repro.serve import protocol
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.host import ModelHost
from repro.serve.scheduler import MicroBatchScheduler
from repro.serve.server import ServeDaemon
from repro.vuc.dataset import extract_unlabeled_vucs

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


def prediction_tuples(predictions):
    """The batch-composition-stable identity of a prediction list."""
    out = []
    for p in predictions:
        if isinstance(p, dict):
            out.append((p["variable_id"], p["type"], p["n_vucs"]))
        else:
            out.append((p.variable_id, str(p.predicted), p.n_vucs))
    return out


@pytest.fixture(scope="session")
def serve_bundle_dir(tmp_path_factory, mini_cati):
    directory = tmp_path_factory.mktemp("serve") / "bundle"
    mini_cati.save(str(directory))
    return directory


@pytest.fixture(scope="session")
def job_binaries():
    """A few stripped binaries + extents, distinct from the demo seed."""
    jobs = []
    for seed in (11, 22, 33, 44):
        binary = GccCompiler().compile_fresh(
            seed=seed, name=f"job{seed}", opt_level=seed % 3)
        jobs.append((strip(binary), extents_from_debug(binary)))
    return jobs


@pytest.fixture(scope="session")
def offline_results(mini_cati, job_binaries):
    return [mini_cati.infer_binary(stripped, extents)
            for stripped, extents in job_binaries]


def start_daemon(bundle_dir, **kwargs):
    """A running daemon on a free port + its serve thread."""
    kwargs.setdefault("port", 0)
    daemon = ServeDaemon(str(bundle_dir), **kwargs)
    thread = threading.Thread(target=daemon.run, daemon=True)
    thread.start()
    deadline = time.monotonic() + 10
    client = ServeClient(daemon.host, daemon.port, timeout=120)
    while time.monotonic() < deadline:
        try:
            client.health()
            break
        except OSError:
            time.sleep(0.02)
    return daemon, thread, client


def stop_daemon(daemon, thread):
    daemon.request_shutdown()
    thread.join(timeout=30)
    assert not thread.is_alive(), "daemon did not drain"


@pytest.fixture(scope="module")
def daemon(serve_bundle_dir):
    daemon, thread, client = start_daemon(serve_bundle_dir, queue_limit=32)
    yield daemon, client
    stop_daemon(daemon, thread)


# -- protocol ---------------------------------------------------------------------


class TestProtocol:
    def test_binary_round_trips_exactly(self, job_binaries):
        stripped, _extents = job_binaries[0]
        rebuilt = protocol.binary_from_wire(protocol.binary_to_wire(stripped))
        assert rebuilt.name == stripped.name
        assert len(rebuilt.functions) == len(stripped.functions)
        for ours, theirs in zip(rebuilt.functions, stripped.functions):
            assert ours.name == theirs.name and ours.address == theirs.address
            assert len(ours.instructions) == len(theirs.instructions)
            for a, b in zip(ours.instructions, theirs.instructions):
                assert a == b, f"instruction drifted over the wire: {a} != {b}"

    def test_extents_round_trip(self, job_binaries):
        _stripped, extents = job_binaries[0]
        rebuilt = protocol.extents_from_wire(protocol.extents_to_wire(extents))
        assert rebuilt == extents

    def test_windows_from_wire_yields_hashable_tuples(self):
        windows = protocol.windows_from_wire([[["mov", "reg", "mem"]]])
        assert windows == [(("mov", "reg", "mem"),)]
        hash(windows[0])  # encoder memoization requires this

    def test_packed_windows_round_trip(self):
        windows = [(("mov", "reg", "mem"), ("add", "$IMM", "reg")),
                   (("lea", "mem", "reg"), ("BLANK", "BLANK", "BLANK"))]
        packed = protocol.pack_windows(windows)
        assert all(isinstance(entry, str) for entry in packed)
        assert protocol.unpack_windows(packed) == windows
        assert protocol.windows_from_packed(packed) is packed

    def test_packed_windows_rejects_non_strings(self):
        from repro.core.errors import RequestError

        with pytest.raises(RequestError):
            protocol.windows_from_packed("not a list")
        with pytest.raises(RequestError):
            protocol.windows_from_packed([["mov", "reg", "mem"]])
        with pytest.raises(RequestError):
            protocol.windows_from_packed([""])

    def test_encode_packed_ids_matches_encode_ids(self, mini_cati):
        import numpy as np

        encoder = mini_cati.engine.encoder
        windows = [(("mov", "reg", "mem"), ("add", "$IMM", "reg")),
                   (("mov", "reg", "mem"), ("sub", "reg", "reg"))]
        plain = encoder.encode_ids(windows)
        packed = encoder.encode_packed_ids(protocol.pack_windows(windows))
        np.testing.assert_array_equal(plain, packed)
        with pytest.raises(ValueError):
            encoder.encode_packed_ids(["mov\treg"])  # 2 tokens, not 3
        with pytest.raises(ValueError):
            encoder.encode_packed_ids(["a\tb\tc\nx\ty\tz", "a\tb\tc"])

    def test_job_kind_requires_exactly_one(self):
        from repro.core.errors import RequestError

        assert protocol.job_kind({"windows": [], "variable_ids": []}) == "windows"
        with pytest.raises(RequestError):
            protocol.job_kind({})
        with pytest.raises(RequestError):
            protocol.job_kind({"windows": [], "demo": {}})

    def test_bad_instruction_is_a_request_error(self):
        from repro.core.errors import RequestError

        wire = {"name": "x", "functions": [
            {"name": "f", "address": 0,
             "instructions": [[0, "definitely not asm ???"]]}]}
        with pytest.raises(RequestError):
            protocol.binary_from_wire(wire)

    def test_prediction_dict_vote_detail(self):
        """Schema /2: margin is winner minus runner-up of the vote scores."""
        import numpy as np

        from repro.core.pipeline import VariablePrediction
        from repro.core.types import ALL_TYPES, TypeName

        scores = np.zeros(len(ALL_TYPES))
        scores[ALL_TYPES.index(TypeName.INT)] = 3.0
        scores[ALL_TYPES.index(TypeName.LONG_INT)] = 1.5
        data = protocol.prediction_to_dict(
            VariablePrediction("v", TypeName.INT, 4, scores))
        assert data["type"] == str(TypeName.INT)
        assert data["confidence"] == pytest.approx(3.0)
        assert data["runner_up"] == str(TypeName.LONG_INT)
        assert data["runner_up_confidence"] == pytest.approx(1.5)
        assert data["margin"] == pytest.approx(1.5)

    def test_layout_dict_shape(self):
        from repro.core.types import TypeName
        from repro.posterior import FieldPrediction, StructLayout

        layout = StructLayout(
            object_id="b/0::rbp-32", objects=("b/0::rbp-32", "b/1::rbp-48"),
            fields=[FieldPrediction(offset=8, label=TypeName.LONG_INT,
                                    n_accesses=5, width=8,
                                    confidence=0.9, margin=1.2)],
            n_accesses=5)
        data = protocol.layout_to_dict(layout)
        assert data["object_id"] == "b/0::rbp-32"
        assert data["objects"] == ["b/0::rbp-32", "b/1::rbp-48"]
        assert data["fields"] == [{
            "offset": 8, "type": str(TypeName.LONG_INT), "n_accesses": 5,
            "width": 8, "confidence": 0.9, "margin": 1.2,
        }]


# -- scheduler --------------------------------------------------------------------


class BlockableEngine:
    """Wrap an engine's leaf_proba_ids with a gate + call counter."""

    def __init__(self, engine):
        self.gate = threading.Event()
        self.gate.set()
        self.calls = 0
        self.entered = threading.Event()
        self._original = engine.leaf_proba_ids
        engine.leaf_proba_ids = self._wrapped

    def _wrapped(self, ids):
        self.calls += 1
        self.entered.set()
        self.gate.wait(timeout=30)
        return self._original(ids)

    def block(self):
        self.entered.clear()
        self.gate.clear()


class TestScheduler:
    @pytest.fixture()
    def host(self, serve_bundle_dir):
        return ModelHost(str(serve_bundle_dir))

    @pytest.fixture()
    def windows_job(self, mini_cati, job_binaries):
        stripped, extents = job_binaries[0]
        pairs = extract_unlabeled_vucs(stripped, extents,
                                       mini_cati.config.window)
        return ([tokens for _vid, tokens in pairs],
                [vid for vid, _tokens in pairs])

    def test_queued_requests_coalesce_into_one_engine_call(
            self, host, windows_job, mini_cati):
        windows, variable_ids = windows_job
        _cati, engine, _gen = host.acquire()
        gate = BlockableEngine(engine)
        scheduler = MicroBatchScheduler(host, queue_limit=32)
        scheduler.start()
        try:
            gate.block()
            blocker = scheduler.submit(windows[:1], variable_ids[:1])
            assert gate.entered.wait(timeout=10)
            # These all queue while the worker is stuck in the gate...
            queued = [scheduler.submit(windows, variable_ids)
                      for _ in range(4)]
            gate.gate.set()
            results = [scheduler.wait(p, timeout=30) for p in queued]
            scheduler.wait(blocker, timeout=30)
            # ...so they ride one coalesced engine call (2 total).
            assert gate.calls == 2
            expected = prediction_tuples(
                mini_cati.engine.predict_variables(windows, variable_ids))
            for result in results:
                assert prediction_tuples(result) == expected
        finally:
            gate.gate.set()
            scheduler.close(timeout=10)

    def test_queue_full_raises_with_retry_hint(self, host, windows_job):
        windows, variable_ids = windows_job
        _cati, engine, _gen = host.acquire()
        gate = BlockableEngine(engine)
        scheduler = MicroBatchScheduler(host, queue_limit=1)
        scheduler.start()
        try:
            gate.block()
            first = scheduler.submit(windows, variable_ids)
            assert gate.entered.wait(timeout=10)
            second = scheduler.submit(windows, variable_ids)  # fills the queue
            with pytest.raises(QueueFullError) as excinfo:
                scheduler.submit(windows, variable_ids)
            assert excinfo.value.retry_after_s > 0
            assert excinfo.value.status == 503
            gate.gate.set()
            scheduler.wait(first, timeout=30)
            scheduler.wait(second, timeout=30)
        finally:
            gate.gate.set()
            scheduler.close(timeout=10)

    def test_deadline_expires_in_queue(self, host, windows_job):
        windows, variable_ids = windows_job
        _cati, engine, _gen = host.acquire()
        gate = BlockableEngine(engine)
        scheduler = MicroBatchScheduler(host, queue_limit=8)
        scheduler.start()
        try:
            gate.block()
            blocker = scheduler.submit(windows[:1], variable_ids[:1])
            assert gate.entered.wait(timeout=10)
            doomed = scheduler.submit(windows, variable_ids, deadline_s=0.01)
            time.sleep(0.1)
            gate.gate.set()
            scheduler.wait(blocker, timeout=30)
            with pytest.raises(DeadlineExceededError):
                scheduler.wait(doomed, timeout=30)
        finally:
            gate.gate.set()
            scheduler.close(timeout=10)

    def test_close_drains_queued_work_then_rejects(self, host, windows_job,
                                                   mini_cati):
        windows, variable_ids = windows_job
        scheduler = MicroBatchScheduler(host, queue_limit=32)
        scheduler.start()
        pending = [scheduler.submit(windows, variable_ids) for _ in range(3)]
        scheduler.close(timeout=30)
        expected = prediction_tuples(
            mini_cati.engine.predict_variables(windows, variable_ids))
        for p in pending:
            assert prediction_tuples(scheduler.wait(p, timeout=1)) == expected
        with pytest.raises(ServerClosedError):
            scheduler.submit(windows, variable_ids)

    def test_empty_request_completes_without_queueing(self, host):
        scheduler = MicroBatchScheduler(host, queue_limit=1)
        pending = scheduler.submit([], [])
        assert scheduler.wait(pending, timeout=0.1) == []
        scheduler.close(timeout=5)


# -- HTTP end-to-end ---------------------------------------------------------------


class TestHttpServing:
    def test_healthz_surfaces_version_model_and_queue(self, daemon):
        import repro

        _daemon, client = daemon
        health = client.health()
        assert health["status"] == "ok"
        assert health["version"] == repro.__version__
        assert health["model"]["generation"] >= 1
        assert health["model"]["repro_version"] == repro.__version__
        assert health["queue"]["limit"] == 32
        assert "p99_s" in health["latency"]

    def test_binary_job_matches_offline(self, daemon, job_binaries,
                                        offline_results):
        _daemon, client = daemon
        stripped, extents = job_binaries[0]
        response = client.infer_binary(stripped, extents)
        assert response["schema"] == protocol.RESPONSE_SCHEMA
        assert response["binary"] == stripped.name
        assert (prediction_tuples(response["predictions"])
                == prediction_tuples(offline_results[0]))

    def test_eight_concurrent_clients_match_offline(self, daemon, job_binaries,
                                                    offline_results):
        _daemon, client = daemon
        wire_jobs = [
            {"binary": protocol.binary_to_wire(stripped),
             "extents": protocol.extents_to_wire(extents)}
            for stripped, extents in job_binaries
        ]
        results: list = [None] * 8
        errors: list = []

        def worker(slot: int) -> None:
            try:
                results[slot] = client.infer(wire_jobs[slot % len(wire_jobs)])
            except Exception as error:  # noqa: BLE001 — collected for assert
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(slot,))
                   for slot in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        for slot, response in enumerate(results):
            offline = offline_results[slot % len(job_binaries)]
            assert (prediction_tuples(response["predictions"])
                    == prediction_tuples(offline))
            for served, reference in zip(response["predictions"], offline):
                assert served["confidence"] == pytest.approx(
                    float(reference.scores.max()), abs=1e-6)

    def test_windows_job_and_metricsz(self, daemon, mini_cati, job_binaries):
        _daemon, client = daemon
        stripped, extents = job_binaries[1]
        pairs = extract_unlabeled_vucs(stripped, extents,
                                       mini_cati.config.window)
        response = client.infer_windows([t for _v, t in pairs],
                                        [v for v, _t in pairs])
        expected = mini_cati.engine.predict_variables(
            [t for _v, t in pairs], [v for v, _t in pairs])
        assert (prediction_tuples(response["predictions"])
                == prediction_tuples(expected))
        snapshot = client.metrics()
        assert snapshot["counters"].get("serve.requests", 0) >= 1

    def test_packed_and_verbose_windows_agree(self, daemon, mini_cati,
                                              job_binaries):
        _daemon, client = daemon
        stripped, extents = job_binaries[0]
        pairs = extract_unlabeled_vucs(stripped, extents,
                                       mini_cati.config.window)
        windows = [t for _v, t in pairs]
        variable_ids = [v for v, _t in pairs]
        packed = client.infer_windows(windows, variable_ids)
        verbose = client.infer_windows(windows, variable_ids, packed=False)
        assert (prediction_tuples(packed["predictions"])
                == prediction_tuples(verbose["predictions"]))

    def test_malformed_packed_windows_get_400(self, daemon):
        _daemon, client = daemon
        with pytest.raises(ServeClientError) as excinfo:
            client.infer({"windows_packed": ["mov\treg\tmem\textra"],
                          "variable_ids": ["v"]})
        assert excinfo.value.status == 400
        with pytest.raises(ServeClientError) as excinfo:
            client.infer({"windows_packed": [["mov", "reg", "mem"]],
                          "variable_ids": ["v"]})
        assert excinfo.value.status == 400

    def test_path_job_reads_server_side_file(self, daemon, job_binaries,
                                             offline_results, tmp_path):
        _daemon, client = daemon
        stripped, extents = job_binaries[2]
        job_file = tmp_path / "job.json"
        job_file.write_text(json.dumps({
            "binary": protocol.binary_to_wire(stripped),
            "extents": protocol.extents_to_wire(extents)}))
        response = client.infer({"path": str(job_file)})
        assert (prediction_tuples(response["predictions"])
                == prediction_tuples(offline_results[2]))

    def test_malformed_requests_get_400(self, daemon):
        _daemon, client = daemon
        with pytest.raises(ServeClientError) as excinfo:
            client.infer({"windows": [[["a", "b", "c"]]]})  # no variable_ids
        assert excinfo.value.status == 400
        with pytest.raises(ServeClientError) as excinfo:
            client.infer({})
        assert excinfo.value.status == 400
        with pytest.raises(ServeClientError) as excinfo:
            client._request("POST", "/v1/nope", {})
        assert excinfo.value.status == 404

    def test_queue_full_returns_503_with_retry_after(self, serve_bundle_dir):
        daemon, thread, client = start_daemon(serve_bundle_dir, queue_limit=1)
        try:
            _cati, engine, _gen = daemon.model_host.acquire()
            gate = BlockableEngine(engine)
            gate.block()
            windows = [[["mov", "reg", "mem"]] * 3]
            job = {"windows": windows, "variable_ids": ["v0"]}
            outcomes: list = []

            def post() -> None:
                try:
                    outcomes.append(client.infer(job))
                except ServeClientError as error:
                    outcomes.append(error)

            threads = []
            first = threading.Thread(target=post)
            first.start()
            threads.append(first)
            assert gate.entered.wait(timeout=10)  # worker holds request 1
            for _ in range(2):  # request 2 queues, request 3 must bounce
                t = threading.Thread(target=post)
                t.start()
                threads.append(t)
                time.sleep(0.2)
            gate.gate.set()
            for t in threads:
                t.join(timeout=60)
            rejected = [o for o in outcomes if isinstance(o, ServeClientError)]
            served = [o for o in outcomes if isinstance(o, dict)]
            assert len(rejected) == 1 and len(served) == 2
            assert rejected[0].status == 503
            assert rejected[0].kind == "QueueFullError"
            assert rejected[0].retry_after is not None
            assert rejected[0].retry_after >= 1
        finally:
            stop_daemon(daemon, thread)


# -- hot reload --------------------------------------------------------------------


class TestReload:
    def test_reload_under_load_bumps_generation_without_drops(
            self, serve_bundle_dir, job_binaries, offline_results):
        daemon, thread, client = start_daemon(serve_bundle_dir, queue_limit=32)
        try:
            wire = {"binary": protocol.binary_to_wire(job_binaries[0][0]),
                    "extents": protocol.extents_to_wire(job_binaries[0][1])}
            stop = threading.Event()
            errors: list = []
            mismatches: list = []
            expected = prediction_tuples(offline_results[0])

            def hammer() -> None:
                while not stop.is_set():
                    try:
                        response = client.infer(wire)
                    except Exception as error:  # noqa: BLE001
                        errors.append(error)
                        return
                    if prediction_tuples(response["predictions"]) != expected:
                        mismatches.append(response)

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for t in threads:
                t.start()
            time.sleep(0.3)
            reloaded = client.reload()
            assert reloaded["reloaded"] is True
            assert reloaded["model"]["generation"] == 2
            time.sleep(0.3)
            stop.set()
            for t in threads:
                t.join(timeout=60)
            assert not errors, f"requests failed across reload: {errors[:3]}"
            assert not mismatches
            assert client.health()["model"]["generation"] == 2
        finally:
            stop_daemon(daemon, thread)

    def test_corrupt_bundle_rejected_409_old_model_keeps_serving(
            self, serve_bundle_dir, tmp_path, job_binaries, offline_results):
        corrupt = tmp_path / "corrupt"
        shutil.copytree(serve_bundle_dir, corrupt)
        payload = corrupt / "word2vec.npz"
        blob = bytearray(payload.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        payload.write_bytes(bytes(blob))

        daemon, thread, client = start_daemon(serve_bundle_dir, queue_limit=32)
        try:
            with pytest.raises(ServeClientError) as excinfo:
                client.reload(str(corrupt))
            assert excinfo.value.status == 409
            assert excinfo.value.kind == "BundleIntegrityError"
            health = client.health()
            assert health["model"]["generation"] == 1
            assert health["model"]["bundle"] == str(serve_bundle_dir)
            response = client.infer_binary(*job_binaries[0])
            assert (prediction_tuples(response["predictions"])
                    == prediction_tuples(offline_results[0]))
        finally:
            stop_daemon(daemon, thread)

    def test_structural_config_drift_rejected_409(self, serve_bundle_dir,
                                                  tmp_path):
        drifted = tmp_path / "drifted"
        shutil.copytree(serve_bundle_dir, drifted)
        manifest_path = drifted / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["config"]["fc_width"] = manifest["config"]["fc_width"] * 2
        manifest_path.write_text(json.dumps(manifest))

        daemon, thread, client = start_daemon(serve_bundle_dir, queue_limit=32)
        try:
            with pytest.raises(ServeClientError) as excinfo:
                client.reload(str(drifted))
            assert excinfo.value.status == 409
            assert excinfo.value.kind == "ConfigMismatchError"
            assert client.health()["model"]["generation"] == 1
        finally:
            stop_daemon(daemon, thread)


# -- SIGTERM drain (subprocess) ----------------------------------------------------


class TestSigtermDrain:
    def test_sigterm_finishes_in_flight_request(self, serve_bundle_dir,
                                                mini_cati, job_binaries):
        env = dict(os.environ, PYTHONPATH=SRC_DIR, PYTHONUNBUFFERED="1")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--model-dir", str(serve_bundle_dir), "--port", "0",
             "--max-delay-ms", "700", "--queue-limit", "8"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)
        try:
            port = None
            deadline = time.monotonic() + 120
            assert process.stdout is not None
            while time.monotonic() < deadline:
                line = process.stdout.readline()
                if line.startswith("serving on http://"):
                    port = int(line.rsplit(":", 1)[1])
                    break
                if not line and process.poll() is not None:
                    pytest.fail("serve process died before binding")
            assert port, "never saw the serving banner"

            stripped, extents = job_binaries[0]
            pairs = extract_unlabeled_vucs(stripped, extents,
                                           mini_cati.config.window)
            client = ServeClient("127.0.0.1", port, timeout=60)
            outcome: dict = {}

            def post() -> None:
                outcome["response"] = client.infer_windows(
                    [t for _v, t in pairs], [v for v, _t in pairs])

            poster = threading.Thread(target=post)
            poster.start()
            # The 700 ms coalescing window holds the request in flight;
            # SIGTERM lands mid-request and must not cut it off.
            time.sleep(0.25)
            process.send_signal(signal.SIGTERM)
            poster.join(timeout=60)
            assert "response" in outcome, "in-flight request was dropped"
            expected = mini_cati.engine.predict_variables(
                [t for _v, t in pairs], [v for v, _t in pairs])
            assert (prediction_tuples(outcome["response"]["predictions"])
                    == prediction_tuples(expected))
            assert process.wait(timeout=60) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)


# -- satellites --------------------------------------------------------------------


class TestVersionSurfacing:
    def test_manifest_provenance_carries_repro_version(self, serve_bundle_dir):
        import repro

        manifest = json.loads((serve_bundle_dir / "manifest.json").read_text())
        assert manifest["provenance"]["repro_version"] == repro.__version__

    def test_model_inspect_prints_version(self, serve_bundle_dir, capsys):
        import repro
        from repro.cli import main

        assert main(["model", "inspect", str(serve_bundle_dir)]) == 0
        assert f"by repro {repro.__version__}" in capsys.readouterr().out


class TestCliJson:
    def test_infer_json_emits_the_wire_schema(self, serve_bundle_dir, capsys):
        from repro.cli import main

        assert main(["infer", "--model-dir", str(serve_bundle_dir),
                     "--seed", "7", "--json"]) == 0
        body = json.loads(capsys.readouterr().out)
        assert body["schema"] == protocol.RESPONSE_SCHEMA
        assert body["binary"] == "cli-demo"
        assert body["n_predictions"] == len(body["predictions"])
        assert body["model"]["bundle"] == str(serve_bundle_dir)
        for prediction in body["predictions"]:
            assert set(prediction) == {"variable_id", "type", "n_vucs",
                                       "confidence", "margin", "runner_up",
                                       "runner_up_confidence", "scores"}

    def test_cli_json_matches_served_demo_job(self, serve_bundle_dir, daemon,
                                              capsys):
        from repro.cli import main

        _daemon, client = daemon
        assert main(["infer", "--model-dir", str(serve_bundle_dir),
                     "--seed", "9", "--json"]) == 0
        offline = json.loads(capsys.readouterr().out)
        served = client.infer({"demo": {"seed": 9, "compiler": "gcc",
                                        "opt_level": 1, "name": "cli-demo"}})
        assert (prediction_tuples(served["predictions"])
                == prediction_tuples(offline["predictions"]))


class TestMetricsOut:
    def test_metrics_out_creates_parents_and_writes_atomically(self, tmp_path):
        import argparse

        from repro.cli import _dump_metrics

        target = tmp_path / "deep" / "nested" / "metrics.json"
        args = argparse.Namespace(metrics_out=str(target))
        _dump_metrics(args)
        payload = json.loads(target.read_text())
        assert set(payload) == {"metrics", "failures"}
        leftovers = [p for p in target.parent.iterdir() if p != target]
        assert not leftovers, f"temp files left behind: {leftovers}"


class TestHistogramQuantile:
    def test_quantiles_interpolate_within_buckets(self):
        from repro.core.observability import Histogram

        histogram = Histogram("t", boundaries=(1.0, 10.0, 100.0))
        assert histogram.quantile(0.5) is None
        histogram.observe_many([0.5] * 50 + [5.0] * 50)
        p25, p75 = histogram.quantile(0.25), histogram.quantile(0.75)
        assert 0.0 <= p25 <= 1.0
        assert 1.0 <= p75 <= 10.0
        assert histogram.quantile(0.0) == pytest.approx(0.5)
        assert histogram.quantile(1.0) == pytest.approx(5.0)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)
