"""Occlusion (eq. 5 / Fig. 6) tests."""

import numpy as np
import pytest

from repro.core.occlusion import epsilon_distribution, occlusion_epsilons
from repro.vuc.generalize import BLANK_TOKENS


class TestOcclusion:
    def test_epsilons_shape(self, mini_cati, small_corpus):
        sample = small_corpus.test.samples[0]
        result = occlusion_epsilons(mini_cati, sample.tokens)
        assert result.epsilons.shape == (21,)
        assert (result.epsilons >= 0).all()
        assert 0.0 < result.base_confidence <= 1.0

    def test_occluding_padding_is_neutral(self, mini_cati, small_corpus):
        """BLANKing a position that is already BLANK changes nothing:
        epsilon must be exactly 1."""
        sample = next(
            s for s in small_corpus.test.samples
            if s.tokens[0] == BLANK_TOKENS
        )
        result = occlusion_epsilons(mini_cati, sample.tokens)
        assert result.epsilons[0] == pytest.approx(1.0)

    def test_target_occlusion_matters_on_average(self, mini_cati, small_corpus):
        """Across many VUCs, occluding the central (target) instruction
        must hurt confidence more than occluding the outermost ones."""
        windows = [s.tokens for s in small_corpus.test.samples[:40]]
        center_eps = []
        edge_eps = []
        for window in windows:
            eps = occlusion_epsilons(mini_cati, window).epsilons
            center_eps.append(eps[10])
            edge_eps.append((eps[0] + eps[20]) / 2)
        assert np.mean(center_eps) < np.mean(edge_eps)

    def test_distribution_shape(self, mini_cati, small_corpus):
        windows = [s.tokens for s in small_corpus.test.samples[:10]]
        heatmap = epsilon_distribution(mini_cati, windows)
        assert heatmap.shape == (21, 10)
        assert (heatmap >= 0).all() and (heatmap <= 1).all()

    def test_distribution_columns_monotone(self, mini_cati, small_corpus):
        """P(eps in (t,1)) must not increase with t."""
        windows = [s.tokens for s in small_corpus.test.samples[:10]]
        heatmap = epsilon_distribution(mini_cati, windows)
        for row in heatmap:
            assert all(a >= b - 1e-12 for a, b in zip(row, row[1:]))

    def test_empty_windows_raise(self, mini_cati):
        with pytest.raises(ValueError):
            epsilon_distribution(mini_cati, [])
