"""Real-binary frontend tests (skipped without gcc/objdump/readelf)."""

import pytest

from repro.frontend.compile import toolchain_available

pytestmark = pytest.mark.skipif(
    not toolchain_available(), reason="gcc/objdump/readelf not on PATH",
)


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    from repro.frontend.compile import compile_sample

    return compile_sample(workdir=str(tmp_path_factory.mktemp("frontend")))


@pytest.fixture(scope="module")
def functions(artifact):
    from repro.frontend.objdump import parse_disassembly, user_functions

    return user_functions(parse_disassembly(artifact.disassembly))


@pytest.fixture(scope="module")
def variables(artifact):
    from repro.frontend.readelf import extract_real_variables

    return extract_real_variables(artifact.dwarf_dump)


class TestObjdumpParsing:
    def test_user_functions_found(self, functions):
        names = {f.name for f in functions}
        assert {"main", "process_ints", "process_floats", "process_chars",
                "process_pointers", "process_struct"} <= names

    def test_instructions_nonempty_with_addresses(self, functions):
        for func in functions:
            assert len(func.instructions) > 5
            addresses = [i.address for i in func.instructions]
            assert all(a < b for a, b in zip(addresses, addresses[1:]))

    def test_plt_and_glue_filtered(self, artifact):
        from repro.frontend.objdump import parse_disassembly, user_functions

        everything = parse_disassembly(artifact.disassembly)
        filtered = user_functions(everything)
        assert len(filtered) < len(everything)
        assert all("@plt" not in f.name for f in filtered)


class TestDwarfParsing:
    def test_variables_extracted(self, variables):
        assert len(variables) > 20

    def test_known_types(self, variables):
        from repro.core.types import TypeName

        by_key = {(v.function, v.name): v.label for v in variables}
        assert by_key[("process_ints", "total")] is TypeName.INT
        assert by_key[("process_ints", "mask")] is TypeName.UNSIGNED_INT
        assert by_key[("process_ints", "big")] is TypeName.LONG_INT
        assert by_key[("process_floats", "acc")] is TypeName.DOUBLE
        assert by_key[("process_floats", "ratio")] is TypeName.FLOAT
        assert by_key[("process_floats", "precise")] is TypeName.LONG_DOUBLE
        assert by_key[("process_chars", "c")] is TypeName.CHAR
        assert by_key[("process_chars", "raw")] is TypeName.UNSIGNED_CHAR
        assert by_key[("process_chars", "seen")] is TypeName.BOOL
        assert by_key[("process_chars", "buf")] is TypeName.CHAR       # char[64]
        assert by_key[("process_pointers", "p")] is TypeName.STRUCT_POINTER
        assert by_key[("process_pointers", "cursor")] is TypeName.ARITH_POINTER
        assert by_key[("process_pointers", "blob")] is TypeName.VOID_POINTER
        assert by_key[("process_pointers", "tone")] is TypeName.ENUM
        assert by_key[("process_struct", "buf")] is TypeName.STRUCT
        assert by_key[("process_struct", "small")] is TypeName.SHORT_INT

    def test_typedef_resolution(self, variables):
        from repro.core.types import TypeName

        by_key = {(v.function, v.name): v.label for v in variables}
        assert by_key[("process_chars", "limit")] is TypeName.LONG_UNSIGNED_INT  # usize

    def test_array_sizes_synthesized(self, variables):
        buf = next(v for v in variables if v.name == "buf" and v.function == "process_chars")
        assert buf.size == 64


class TestLocatorOnRealCode:
    def test_slot_accesses_match_dwarf_extents(self, functions, variables):
        """Real DWARF offsets (after CFA->rbp conversion) must cover the
        majority of located slot accesses in each function."""
        from repro.vuc.dataflow import VariableExtent, group_targets
        from repro.vuc.locate import locate_targets

        covered_functions = 0
        for func in functions:
            func_vars = [v for v in variables if v.function == func.name]
            if not func_vars:
                continue
            extents = [VariableExtent(v.name, "rbp", v.rbp_offset, max(v.size, 1))
                       for v in func_vars]
            targets = locate_targets(func)
            groups = group_targets(targets, extents, func.name)
            grouped = sum(g.n_targets for g in groups)
            assert grouped > 0, func.name
            covered_functions += 1
        assert covered_functions >= 5

    def test_real_vucs_generalize_cleanly(self, functions):
        from repro.vuc.context import extract_vuc
        from repro.vuc.generalize import generalize_window
        from repro.vuc.locate import locate_targets

        for func in functions[:3]:
            for target in locate_targets(func)[:20]:
                tokens = generalize_window(extract_vuc(func, target.index).window)
                assert len(tokens) == 21
                assert all(len(t) == 3 for t in tokens)
