"""Voting tests: eqs. (3)-(4) plus property-based invariants."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.voting import clip_confidences, vote, vote_many, vote_scores


class TestClipping:
    def test_eq3_clips_high_confidence_to_one(self):
        probs = np.array([[0.95, 0.05], [0.5, 0.5]])
        clipped = clip_confidences(probs, 0.9)
        assert clipped[0, 0] == 1.0
        assert clipped[0, 1] == 0.05
        assert np.array_equal(clipped[1], [0.5, 0.5])

    def test_threshold_boundary_inclusive(self):
        probs = np.array([[0.9, 0.1]])
        assert clip_confidences(probs, 0.9)[0, 0] == 1.0

    def test_input_not_mutated(self):
        probs = np.array([[0.95, 0.05]])
        clip_confidences(probs)
        assert probs[0, 0] == 0.95


class TestVote:
    def test_eq4_majority_wins(self):
        probs = np.array([
            [0.6, 0.4],
            [0.7, 0.3],
            [0.3, 0.7],
        ])
        assert vote(probs, threshold=0.99) == 0

    def test_confident_vote_dominates_borderline(self):
        """One clipped 0.95 vote outweighs two 0.52 votes the other way."""
        probs = np.array([
            [0.95, 0.05],
            [0.48, 0.52],
            [0.48, 0.52],
        ])
        assert vote(probs, threshold=0.9) == 0

    def test_single_vuc(self):
        assert vote(np.array([[0.3, 0.7]])) == 1

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            vote(np.zeros((0, 3)))

    def test_wrong_ndim_raises(self):
        with pytest.raises(ValueError):
            vote(np.array([0.5, 0.5]))

    def test_vote_scores_shape(self):
        scores = vote_scores(np.array([[0.95, 0.05], [0.5, 0.5]]))
        assert scores.shape == (2,)
        assert scores[0] == 1.5


class TestVoteMany:
    def test_groups_by_variable(self):
        probs = np.array([
            [0.9, 0.1],
            [0.2, 0.8],
            [0.1, 0.9],
        ])
        result = vote_many(probs, ["a", "b", "b"])
        assert result == {"a": 0, "b": 1}

    def test_misaligned_raises(self):
        with pytest.raises(ValueError):
            vote_many(np.zeros((2, 2)), ["a"])


# -- property-based invariants ----------------------------------------------

_prob_rows = hnp.arrays(
    np.float64, st.tuples(st.integers(1, 8), st.integers(2, 6)),
    elements=st.floats(0.001, 0.999),
)


@given(_prob_rows)
def test_vote_returns_valid_class(matrix):
    # normalize rows to distributions
    matrix = matrix / matrix.sum(axis=1, keepdims=True)
    winner = vote(matrix)
    assert 0 <= winner < matrix.shape[1]


@given(_prob_rows)
def test_clipping_is_monotone(matrix):
    matrix = matrix / matrix.sum(axis=1, keepdims=True)
    clipped = clip_confidences(matrix)
    assert (clipped >= matrix - 1e-12).all()
    assert (clipped <= 1.0).all()


@given(_prob_rows)
def test_unanimous_certain_vote_unbeatable(matrix):
    """If every VUC has confidence >= 0.9 for class 0, class 0 wins."""
    matrix = matrix / matrix.sum(axis=1, keepdims=True)
    matrix[:, 0] = 0.95
    assert vote(matrix) == 0


@given(st.integers(1, 20), st.integers(2, 5))
def test_identical_rows_vote_their_argmax(n_rows, n_classes):
    row = np.linspace(0.1, 0.9, n_classes)
    row = row / row.sum()
    matrix = np.tile(row, (n_rows, 1))
    assert vote(matrix) == int(row.argmax())
