"""Type-resolution tests: typedef chains, qualifiers, pointers, arrays,
and the taxonomy exclusions (§IV-A, §V-A).
"""

import pytest

from repro.core.types import TypeName
from repro.dwarf import dies
from repro.dwarf.dies import Die, Encoding, Tag
from repro.dwarf.resolver import UnresolvableType, resolve_type, variables_with_types


def _base(name, size, encoding):
    return dies.base_type(name, size, encoding)


class TestBaseTypes:
    @pytest.mark.parametrize("name,size,encoding,expected", [
        ("_Bool", 1, Encoding.BOOLEAN, TypeName.BOOL),
        ("char", 1, Encoding.SIGNED_CHAR, TypeName.CHAR),
        ("unsigned char", 1, Encoding.UNSIGNED_CHAR, TypeName.UNSIGNED_CHAR),
        ("short int", 2, Encoding.SIGNED, TypeName.SHORT_INT),
        ("int", 4, Encoding.SIGNED, TypeName.INT),
        ("long int", 8, Encoding.SIGNED, TypeName.LONG_INT),
        ("long long int", 8, Encoding.SIGNED, TypeName.LONG_LONG_INT),
        ("unsigned int", 4, Encoding.UNSIGNED, TypeName.UNSIGNED_INT),
        ("long unsigned int", 8, Encoding.UNSIGNED, TypeName.LONG_UNSIGNED_INT),
        ("float", 4, Encoding.FLOAT, TypeName.FLOAT),
        ("double", 8, Encoding.FLOAT, TypeName.DOUBLE),
        ("long double", 16, Encoding.FLOAT, TypeName.LONG_DOUBLE),
    ])
    def test_named_base_types(self, name, size, encoding, expected):
        assert resolve_type(_base(name, size, encoding)) is expected

    def test_unnamed_base_type_falls_back_to_encoding(self):
        die = Die(Tag.BASE_TYPE, {dies.Attr.BYTE_SIZE: 4, dies.Attr.ENCODING: int(Encoding.SIGNED)})
        assert resolve_type(die) is TypeName.INT

    def test_unknown_base_type_raises(self):
        die = Die(Tag.BASE_TYPE, {dies.Attr.NAME: "__int128"})
        with pytest.raises(UnresolvableType):
            resolve_type(die)


class TestChains:
    def test_single_typedef(self):
        t = dies.typedef("size_t", _base("long unsigned int", 8, Encoding.UNSIGNED))
        assert resolve_type(t) is TypeName.LONG_UNSIGNED_INT

    def test_nested_typedef_chain(self):
        inner = dies.typedef("u8", _base("unsigned char", 1, Encoding.UNSIGNED_CHAR))
        outer = dies.typedef("byte", inner)
        assert resolve_type(outer) is TypeName.UNSIGNED_CHAR

    def test_const_volatile_peeled(self):
        t = dies.const_of(dies.volatile_of(_base("int", 4, Encoding.SIGNED)))
        assert resolve_type(t) is TypeName.INT

    def test_cycle_detected(self):
        a = Die(Tag.TYPEDEF, {dies.Attr.NAME: "a"})
        b = Die(Tag.TYPEDEF, {dies.Attr.NAME: "b", dies.Attr.TYPE: a})
        a.attrs[dies.Attr.TYPE] = b
        with pytest.raises(UnresolvableType):
            resolve_type(a)

    def test_typedef_without_target_raises(self):
        with pytest.raises(UnresolvableType):
            resolve_type(Die(Tag.TYPEDEF, {dies.Attr.NAME: "broken"}))


class TestPointers:
    def test_void_pointer(self):
        assert resolve_type(dies.pointer_to(None)) is TypeName.VOID_POINTER

    def test_struct_pointer(self):
        node = dies.struct_type("node", 16)
        assert resolve_type(dies.pointer_to(node)) is TypeName.STRUCT_POINTER

    def test_arith_pointer_int(self):
        assert resolve_type(dies.pointer_to(_base("int", 4, Encoding.SIGNED))) is TypeName.ARITH_POINTER

    def test_arith_pointer_char(self):
        assert resolve_type(dies.pointer_to(_base("char", 1, Encoding.SIGNED_CHAR))) is TypeName.ARITH_POINTER

    def test_enum_pointer_is_arith(self):
        assert resolve_type(dies.pointer_to(dies.enum_type("e"))) is TypeName.ARITH_POINTER

    def test_pointer_to_typedef_struct(self):
        node = dies.struct_type("node", 16)
        alias = dies.typedef("node_t", node)
        assert resolve_type(dies.pointer_to(alias)) is TypeName.STRUCT_POINTER

    def test_pointer_to_pointer_folds_to_void(self):
        pp = dies.pointer_to(dies.pointer_to(_base("char", 1, Encoding.SIGNED_CHAR)))
        assert resolve_type(pp) is TypeName.VOID_POINTER


class TestAggregates:
    def test_struct(self):
        assert resolve_type(dies.struct_type("s", 8)) is TypeName.STRUCT

    def test_enum(self):
        assert resolve_type(dies.enum_type("color")) is TypeName.ENUM

    def test_array_labeled_by_element(self):
        arr = dies.array_of(_base("char", 1, Encoding.SIGNED_CHAR), 64)
        assert resolve_type(arr) is TypeName.CHAR

    def test_struct_array_is_struct(self):
        arr = dies.array_of(dies.struct_type("s", 8), 4)
        assert resolve_type(arr) is TypeName.STRUCT

    def test_union_excluded(self):
        with pytest.raises(UnresolvableType):
            resolve_type(Die(Tag.UNION_TYPE, {dies.Attr.NAME: "u", dies.Attr.BYTE_SIZE: 8}))

    def test_none_raises(self):
        with pytest.raises(UnresolvableType):
            resolve_type(None)


class TestVariablesWithTypes:
    def test_extracts_resolvable_skips_union(self):
        cu = dies.compile_unit("x.c")
        sub = cu.add(dies.subprogram("f", 0))
        sub.add(dies.variable("a", _base("int", 4, Encoding.SIGNED), -4))
        union = Die(Tag.UNION_TYPE, {dies.Attr.BYTE_SIZE: 8})
        sub.add(dies.variable("u", union, -16))
        out = variables_with_types(cu)
        assert len(out) == 1
        assert out[0][1].name == "a"
        assert out[0][2] is TypeName.INT
