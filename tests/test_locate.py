"""Locator tests: slot detection, dereference tracking, and agreement
with the generator-side ground truth.
"""

import random

import pytest

from repro.asm.instruction import FunctionListing, make
from repro.asm.operands import Imm, Label, Mem, Reg
from repro.codegen import GccCompiler
from repro.codegen.lowering import gcc_style, lower_function
from repro.codegen.progen import GeneratorConfig, generate_function
from repro.vuc.locate import Target, TargetKind, locate_targets


def _listing(*instructions):
    return FunctionListing(name="f", address=0, instructions=list(instructions))


class TestSlotDetection:
    def test_rbp_slot_is_target(self):
        targets = locate_targets(_listing(make("movl", Imm(1), Mem(disp=-4, base="rbp"))))
        assert len(targets) == 1
        assert targets[0].kind is TargetKind.SLOT
        assert targets[0].offset == -4

    def test_rsp_slot_is_target(self):
        targets = locate_targets(_listing(make("mov", Reg("rax"), Mem(disp=0xA8, base="rsp"))))
        assert targets[0].base == "rsp"
        assert targets[0].offset == 0xA8

    def test_indexed_stack_access_is_target(self):
        ins = make("movb", Imm(0), Mem(disp=-64, base="rbp", index="rax", scale=1))
        targets = locate_targets(_listing(ins))
        assert len(targets) == 1
        assert targets[0].offset == -64

    def test_lea_of_slot_is_target(self):
        targets = locate_targets(_listing(make("lea", Mem(disp=-32, base="rbp"), Reg("rax"))))
        assert len(targets) == 1

    def test_rip_relative_not_target(self):
        targets = locate_targets(_listing(make("mov", Mem(disp=0x2000, base="rip"), Reg("rax"))))
        assert targets == []

    def test_register_only_not_target(self):
        targets = locate_targets(_listing(make("mov", Reg("rax"), Reg("rbx"))))
        assert targets == []


class TestDerefTracking:
    def test_deref_after_slot_load(self):
        targets = locate_targets(_listing(
            make("mov", Mem(disp=-16, base="rbp"), Reg("rax")),
            make("movl", Mem(disp=0, base="rax"), Reg("edx")),
        ))
        assert [t.kind for t in targets] == [TargetKind.SLOT, TargetKind.DEREF]
        assert targets[1].offset == -16  # attributed to the pointer slot

    def test_deref_with_member_offset(self):
        targets = locate_targets(_listing(
            make("mov", Mem(disp=-16, base="rbp"), Reg("rax")),
            make("mov", Mem(disp=8, base="rax"), Reg("rdx")),
        ))
        assert targets[1].kind is TargetKind.DEREF

    def test_tracking_invalidated_by_overwrite(self):
        targets = locate_targets(_listing(
            make("mov", Mem(disp=-16, base="rbp"), Reg("rax")),
            make("mov", Reg("rbx"), Reg("rax")),            # overwrites rax
            make("movl", Mem(disp=0, base="rax"), Reg("edx")),
        ))
        assert [t.kind for t in targets] == [TargetKind.SLOT]

    def test_tracking_invalidated_by_call(self):
        targets = locate_targets(_listing(
            make("mov", Mem(disp=-16, base="rbp"), Reg("rax")),
            make("callq", Label(0x401000)),
            make("movl", Mem(disp=0, base="rax"), Reg("edx")),
        ))
        assert [t.kind for t in targets] == [TargetKind.SLOT]

    def test_tracking_ages_out(self):
        filler = [make("nop")] * 15
        targets = locate_targets(_listing(
            make("mov", Mem(disp=-16, base="rbp"), Reg("rax")),
            *filler,
            make("movl", Mem(disp=0, base="rax"), Reg("edx")),
        ))
        assert [t.kind for t in targets] == [TargetKind.SLOT]

    def test_narrow_load_does_not_track_pointer(self):
        targets = locate_targets(_listing(
            make("movl", Mem(disp=-8, base="rbp"), Reg("eax")),  # 4-byte load
            make("movl", Mem(disp=0, base="rax"), Reg("edx")),
        ))
        assert [t.kind for t in targets] == [TargetKind.SLOT]

    def test_family_width_views_tracked_consistently(self):
        """A 64-bit reload of the same slot keeps tracking alive."""
        targets = locate_targets(_listing(
            make("mov", Mem(disp=-16, base="rbp"), Reg("rax")),
            make("mov", Mem(disp=-16, base="rbp"), Reg("rax")),
            make("movl", Mem(disp=0, base="rax"), Reg("edx")),
        ))
        assert [t.kind for t in targets] == [
            TargetKind.SLOT, TargetKind.SLOT, TargetKind.DEREF,
        ]


class TestAccessWidths:
    """Targets carry access widths + deref displacements for the
    posterior stage's base+offset records."""

    def _width_of(self, ins):
        return locate_targets(_listing(ins))[0].width

    def test_suffixed_mov_widths(self):
        for mnemonic, width in (("movb", 1), ("movw", 2), ("movl", 4), ("movq", 8)):
            assert self._width_of(make(mnemonic, Imm(0), Mem(disp=-4, base="rbp"))) == width

    def test_sse_scalar_widths(self):
        assert self._width_of(make("movss", Mem(disp=-8, base="rbp"), Reg("xmm0"))) == 4
        assert self._width_of(make("movsd", Mem(disp=-8, base="rbp"), Reg("xmm0"))) == 8

    def test_extension_loads_use_source_width(self):
        assert self._width_of(make("movzbl", Mem(disp=-1, base="rbp"), Reg("eax"))) == 1
        assert self._width_of(make("movswl", Mem(disp=-2, base="rbp"), Reg("eax"))) == 2
        assert self._width_of(make("movslq", Mem(disp=-4, base="rbp"), Reg("rax"))) == 4

    def test_lea_is_address_only(self):
        assert self._width_of(make("lea", Mem(disp=-32, base="rbp"), Reg("rax"))) == 0

    def test_imul_trailing_l_is_not_a_suffix(self):
        # "imul" ends in 'l' but is not a suffixed mnemonic; the width
        # comes from the register partner instead.
        assert self._width_of(make("imul", Mem(disp=-8, base="rbp"), Reg("eax"))) == 4

    def test_plain_mov_falls_back_to_register_partner(self):
        assert self._width_of(make("mov", Mem(disp=-8, base="rbp"), Reg("rax"))) == 8
        assert self._width_of(make("mov", Mem(disp=-8, base="rbp"), Reg("eax"))) == 4

    def test_deref_disp_recorded(self):
        targets = locate_targets(_listing(
            make("mov", Mem(disp=-16, base="rbp"), Reg("rax")),
            make("movl", Mem(disp=12, base="rax"), Reg("edx")),
        ))
        assert targets[0].deref_disp == 0          # SLOT: offsets via extent
        assert targets[1].deref_disp == 12         # DEREF: [reg+disp] field
        assert targets[1].width == 4


class TestAgreementWithGroundTruth:
    """The locator must rediscover what the lowering recorded."""

    @pytest.mark.parametrize("seed", range(6))
    def test_locator_covers_lowering_truth(self, seed):
        func = generate_function(random.Random(seed), "f", GeneratorConfig())
        lowered = lower_function(func, gcc_style(0), random.Random(seed), 0)
        located = {t.index for t in locate_targets(lowered.listing)}
        truth = {ins_index for ins_index, _var in lowered.truth}
        missing = truth - located
        assert not missing, (
            f"locator missed {len(missing)} of {len(truth)} truth targets: "
            f"{[str(lowered.listing.instructions[i]) for i in sorted(missing)][:5]}"
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_located_slot_attribution_matches_truth(self, seed):
        func = generate_function(random.Random(seed), "f", GeneratorConfig())
        lowered = lower_function(func, gcc_style(0), random.Random(seed), 0)
        slots = {var_index: info for var_index, info in lowered.slots.items()}
        truth = dict(lowered.truth)
        for target in locate_targets(lowered.listing):
            var_index = truth.get(target.index)
            if var_index is None:
                continue  # extra located targets are allowed (spills etc.)
            slot = slots[var_index]
            assert slot.offset <= target.offset < slot.offset + slot.size, (
                f"target {lowered.listing.instructions[target.index]} attributed "
                f"to offset {target.offset}, but variable spans "
                f"[{slot.offset}, {slot.offset + slot.size})"
            )

    def test_whole_binary_locator_coverage(self):
        binary = GccCompiler().compile_fresh(seed=77, name="b", opt_level=2)
        for lowered in binary.lowered:
            located = {t.index for t in locate_targets(lowered.listing)}
            truth = {i for i, _v in lowered.truth}
            assert truth <= located
