"""Crash-safe filesystem primitives (repro.core.fsutil)."""

from __future__ import annotations

import os

import pytest

from repro.core.fsutil import atomic_replace_dir, atomic_write


class TestAtomicWrite:
    def test_writes_bytes(self, tmp_path):
        target = tmp_path / "out.bin"
        atomic_write(target, b"\x00\x01payload")
        assert target.read_bytes() == b"\x00\x01payload"

    def test_writes_str_utf8(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write(target, "héllo")
        assert target.read_text(encoding="utf-8") == "héllo"

    def test_overwrites_existing(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        atomic_write(target, "new")
        assert target.read_text() == "new"

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.txt"
        atomic_write(target, "deep")
        assert target.read_text() == "deep"

    def test_no_stray_temp_files(self, tmp_path):
        atomic_write(tmp_path / "out.txt", "x")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_failure_leaves_old_content(self, tmp_path, monkeypatch):
        target = tmp_path / "out.txt"
        target.write_text("old")

        def boom(src, dst):
            raise OSError("simulated rename failure")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError, match="simulated"):
            atomic_write(target, "new")
        monkeypatch.undo()
        assert target.read_text() == "old"
        # the temp file was cleaned up, not leaked
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_fsync_false_still_atomic(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write(target, "fast", fsync=False)
        assert target.read_text() == "fast"


class TestAtomicReplaceDir:
    def test_promotes_fresh_target(self, tmp_path):
        staging = tmp_path / "staging"
        staging.mkdir()
        (staging / "f.txt").write_text("v1")
        target = tmp_path / "target"
        atomic_replace_dir(staging, target)
        assert (target / "f.txt").read_text() == "v1"
        assert not staging.exists()

    def test_replaces_existing_target(self, tmp_path):
        target = tmp_path / "target"
        target.mkdir()
        (target / "old.txt").write_text("old")
        staging = tmp_path / "staging"
        staging.mkdir()
        (staging / "new.txt").write_text("new")
        atomic_replace_dir(staging, target)
        assert (target / "new.txt").read_text() == "new"
        assert not (target / "old.txt").exists()
        # no .old remnant left behind
        assert sorted(p.name for p in tmp_path.iterdir()) == ["target"]
