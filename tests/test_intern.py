"""Instruction-triple interning: one canonical object per distinct triple.

The intern table is process-wide shared state feeding the encoder's
``intern_id → vocab rows`` fast path and the serving wire decoder, so
these tests pin down the identity, consistency, and process-boundary
(pickle / fork) semantics everything else relies on.
"""

import multiprocessing
import pickle

import numpy as np
import pytest

from repro.vuc.intern import (
    InternedTokens,
    intern_count,
    intern_line,
    intern_tokens,
    interned_by_id,
)


class TestInternTable:
    def test_same_object_for_same_triple(self):
        a = intern_tokens(("mov", "reg", "mem"))
        b = intern_tokens(("mov", "reg", "mem"))
        assert a is b
        assert isinstance(a, InternedTokens)
        assert interned_by_id(a.intern_id) is a

    def test_equal_and_hash_compatible_with_plain_tuple(self):
        interned = intern_tokens(("add", "reg", "val"))
        plain = ("add", "reg", "val")
        assert interned == plain
        assert hash(interned) == hash(plain)
        assert interned in {plain}
        assert plain in {interned}

    def test_ids_are_dense_and_stable(self):
        before = intern_count()
        fresh = intern_tokens(("uniq-test", f"op-{before}", "x"))
        assert fresh.intern_id == before
        assert intern_count() == before + 1
        # Re-interning mints no new id.
        intern_tokens(("uniq-test", f"op-{before}", "x"))
        assert intern_count() == before + 1

    def test_line_memo_shares_triple_table(self):
        triple = intern_tokens(("cmp", "reg", "val"))
        assert intern_line("cmp\treg\tval") is triple
        assert intern_line("cmp\treg\tval") is triple  # memo hit

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            intern_line("only-two\ttokens")

    def test_pickle_reinterns_to_same_object(self):
        original = intern_tokens(("xor", "reg", "reg"))
        clone = pickle.loads(pickle.dumps(original))
        assert clone is original
        assert clone.intern_id == original.intern_id


class TestForkConsistency:
    def test_forked_worker_sees_parent_ids(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("platform has no fork start method")
        parent = intern_tokens(("fork-test", "reg", "mem"))
        context = multiprocessing.get_context("fork")
        with context.Pool(1) as pool:
            child_id, child_new_id = pool.apply(_child_intern_ids)
        # Triples interned before the fork keep the parent's id in the
        # child; triples interned after the fork get fresh ids past the
        # inherited table.
        assert child_id == parent.intern_id
        assert child_new_id >= intern_count() - 1


def _child_intern_ids():
    inherited = intern_tokens(("fork-test", "reg", "mem"))
    fresh = intern_tokens(("fork-test-child-only", "reg", "mem"))
    return inherited.intern_id, fresh.intern_id


class TestPipelineIntegration:
    def test_generalize_returns_interned_triples(self, small_corpus):
        sample = next(iter(small_corpus.train))
        assert all(isinstance(triple, InternedTokens) for triple in sample.tokens)

    def test_encode_ids_matches_encode_packed_ids(self, mini_cati, small_corpus):
        from repro.serve import protocol

        windows = [s.tokens for s in small_corpus.test.samples[:50]]
        encoder = mini_cati.encoder
        length = mini_cati.config.vuc_length
        via_tuples = encoder.encode_ids(windows, length=length)
        packed = protocol.pack_windows(windows)
        via_packed = encoder.encode_packed_ids(packed, length=length)
        assert np.array_equal(via_tuples, via_packed)

    def test_unpack_windows_round_trips_interned(self, small_corpus):
        from repro.serve import protocol

        windows = [s.tokens for s in small_corpus.test.samples[:10]]
        packed = protocol.pack_windows(windows)
        unpacked = protocol.unpack_windows(packed)
        assert [tuple(w) for w in unpacked] == [tuple(w) for w in windows]
        for window in unpacked:
            for triple in window:
                assert triple is intern_tokens(tuple(triple))

    def test_uninterned_tuples_still_encode(self, mini_cati, small_corpus):
        windows = [s.tokens for s in small_corpus.test.samples[:5]]
        plain = [tuple(tuple(t) for t in window) for window in windows]
        encoder = mini_cati.encoder
        length = mini_cati.config.vuc_length
        assert np.array_equal(
            encoder.encode_ids(windows, length=length),
            encoder.encode_ids(plain, length=length))
