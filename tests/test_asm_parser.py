"""Parser tests, including render→parse round trips (property-based)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm.instruction import Instruction, make
from repro.asm.operands import Imm, Label, Mem, Reg
from repro.asm.parser import AsmParseError, parse_instruction, parse_listing, parse_objdump_line, parse_operand


class TestParseOperand:
    def test_immediate(self):
        assert parse_operand("$0x100") == Imm(0x100)

    def test_negative_immediate(self):
        assert parse_operand("$-0xd0") == Imm(-0xD0)

    def test_decimal_immediate(self):
        assert parse_operand("$42") == Imm(42)

    def test_register(self):
        assert parse_operand("%rax") == Reg("rax")

    def test_unknown_register_raises(self):
        with pytest.raises(AsmParseError):
            parse_operand("%zzz")

    def test_memory_base_only(self):
        assert parse_operand("-0x4(%rbp)") == Mem(disp=-4, base="rbp")

    def test_memory_full(self):
        assert parse_operand("-0x300(%rbp,%r9,4)") == Mem(disp=-0x300, base="rbp", index="r9", scale=4)

    def test_memory_no_disp(self):
        assert parse_operand("(%rax)") == Mem(disp=0, base="rax")

    def test_memory_index_only(self):
        assert parse_operand("0x10(,%rcx,8)") == Mem(disp=0x10, index="rcx", scale=8)

    def test_label_with_symbol(self):
        op = parse_operand("3bc59 <bfd_zalloc>")
        assert op == Label(0x3BC59, "bfd_zalloc")

    def test_bare_hex_is_label(self):
        assert parse_operand("4044d0") == Label(0x4044D0)


class TestParseInstruction:
    def test_no_operands(self):
        ins = parse_instruction("retq")
        assert ins.mnemonic == "retq"
        assert ins.operands == ()

    def test_two_operands(self):
        ins = parse_instruction("mov %rsp,%rbp")
        assert ins.operands == (Reg("rsp"), Reg("rbp"))

    def test_memory_comma_inside_parens_not_split(self):
        ins = parse_instruction("lea -0x300(%rbp,%r9,4),%rax")
        assert len(ins.operands) == 2
        assert isinstance(ins.operands[0], Mem)

    def test_call_with_symbol(self):
        ins = parse_instruction("callq 4044d0 <memchr@plt>")
        assert ins.is_call
        assert ins.operands[0] == Label(0x4044D0, "memchr@plt")

    def test_jump(self):
        ins = parse_instruction("je 4179f5 <map_html_tags+0x255>")
        assert ins.is_jump
        assert ins.operands[0].symbol == "map_html_tags+0x255"

    def test_lock_prefix_stripped(self):
        ins = parse_instruction("lock add %eax,(%rbx)")
        assert ins.mnemonic == "add"

    def test_comment_stripped(self):
        ins = parse_instruction("mov 0x10(%rip),%rax        # 404080 <stdout>")
        assert ins.operands[0] == Mem(disp=0x10, base="rip")

    def test_empty_line_raises(self):
        with pytest.raises(AsmParseError):
            parse_instruction("   ")


class TestObjdumpLine:
    def test_body_line(self):
        ins = parse_objdump_line("  40113a:\t48 89 e5             \tmov    %rsp,%rbp")
        assert ins is not None
        assert ins.address == 0x40113A
        assert ins.mnemonic == "mov"

    def test_header_line_ignored(self):
        assert parse_objdump_line("0000000000401136 <main>:") is None

    def test_blank_line_ignored(self):
        assert parse_objdump_line("") is None

    def test_unknown_instruction_kept_as_mnemonic_only(self):
        ins = parse_objdump_line("  401150:\t0f ae e8\tlfence")
        assert ins is not None
        assert ins.mnemonic == "lfence"
        assert ins.operands == ()


class TestListing:
    def test_parse_listing_skips_comments(self):
        text = "# header\nmov %rax,%rbx\n\nretq\n"
        instructions = parse_listing(text)
        assert [i.mnemonic for i in instructions] == ["mov", "retq"]


# -- property-based round trips ----------------------------------------------

_regs = st.sampled_from(["rax", "rbx", "ecx", "dl", "r9", "r10d", "xmm2", "rsi"])
_operand = st.one_of(
    st.integers(-0x10000, 0x10000).map(Imm),
    _regs.map(Reg),
    st.builds(
        Mem,
        disp=st.integers(-0x1000, 0x1000),
        base=st.sampled_from(["rbp", "rsp", "rax", "rdi"]),
        index=st.one_of(st.none(), st.sampled_from(["rcx", "r9"])),
        scale=st.sampled_from([1, 2, 4, 8]),
    ),
)


@settings(deadline=None)
@given(st.sampled_from(["mov", "add", "lea", "cmp", "movl"]),
       st.lists(_operand, min_size=0, max_size=2))
def test_render_parse_round_trip(mnemonic, operands):
    original = make(mnemonic, *operands)
    parsed = parse_instruction(str(original))
    assert parsed.mnemonic == original.mnemonic
    assert parsed.operands == original.operands


@given(st.integers(0x1000, 0xFFFFF))
def test_jump_round_trip(address):
    original = make("jmp", Label(address))
    parsed = parse_instruction(str(original))
    assert parsed.operands[0] == Label(address)
