"""Interactive analysis sessions: store bounds, tools, stickiness.

The acceptance contract (ISSUE 10): a session opened over
``/v1/session/open`` parses + encodes the binary once and then answers
``cati-tool-call/1`` tools against held state; every tool's output is
*byte-identical* to the offline path (same renderers, same engine);
idle sessions expire by TTL and excess bytes evict LRU, both visible in
``/healthz``; under ``--workers 2`` session calls route sticky to the
owning worker, and killing that worker turns the session's calls into
retriable 410s while fresh opens keep working.

The store bounds are unit-tested with stub sessions and an injected
clock (no daemon, no sleeps); the tool surface runs against one
module-scoped daemon over the shared mini model; the stickiness tests
pay for one module-scoped two-worker router.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.analysis import SessionStore, mint_session_id, session_slot
from repro.analysis.render import (annotation_variable_ids, render_epsilons,
                                   render_listing)
from repro.codegen.compilers import GccCompiler
from repro.codegen.strip import strip
from repro.core.errors import SessionGoneError
from repro.experiments.speed import extents_from_debug
from repro.serve import protocol
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.router import RouterDaemon
from repro.vuc.dataset import extract_unlabeled_vucs
from tests.test_router import wait_all_live
from tests.test_serve import start_daemon, stop_daemon


class StubSession:
    """The two attributes the store cares about, nothing else."""

    def __init__(self, session_id: str, nbytes: int) -> None:
        self.session_id = session_id
        self.nbytes = nbytes


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestSessionStore:
    def test_get_touches_and_returns(self):
        store = SessionStore(ttl_s=10, max_bytes=1000, clock=FakeClock())
        session = StubSession("a", 10)
        store.put(session)
        assert store.get("a") is session
        assert store.stats()["sessions"] == 1

    def test_unknown_id_raises_session_gone(self):
        store = SessionStore(ttl_s=10, max_bytes=1000)
        with pytest.raises(SessionGoneError, match="re-open"):
            store.get("nope")

    def test_ttl_expires_idle_sessions(self):
        clock = FakeClock()
        store = SessionStore(ttl_s=10, max_bytes=1000, clock=clock)
        store.put(StubSession("a", 10))
        clock.now += 11
        with pytest.raises(SessionGoneError):
            store.get("a")
        stats = store.stats()
        assert stats["sessions"] == 0
        assert stats["evicted_ttl"] == 1
        assert stats["bytes"] == 0

    def test_any_access_sweeps_other_expired_sessions(self):
        clock = FakeClock()
        store = SessionStore(ttl_s=10, max_bytes=1000, clock=clock)
        store.put(StubSession("old", 10))
        clock.now += 11
        store.put(StubSession("new", 10))  # put sweeps "old"
        stats = store.stats()
        assert stats["sessions"] == 1
        assert stats["evicted_ttl"] == 1

    def test_byte_cap_evicts_least_recently_used(self):
        store = SessionStore(ttl_s=10, max_bytes=100, clock=FakeClock())
        store.put(StubSession("a", 60))
        store.put(StubSession("b", 30))
        store.put(StubSession("c", 30))  # 120 > 100 → "a" (oldest) goes
        with pytest.raises(SessionGoneError):
            store.get("a")
        assert store.get("b").session_id == "b"
        assert store.get("c").session_id == "c"
        assert store.stats()["evicted_lru"] == 1

    def test_get_refreshes_lru_order(self):
        store = SessionStore(ttl_s=10, max_bytes=100, clock=FakeClock())
        store.put(StubSession("a", 60))
        store.put(StubSession("b", 30))
        store.get("a")                    # now "b" is the LRU victim
        store.put(StubSession("c", 30))
        with pytest.raises(SessionGoneError):
            store.get("b")
        assert store.get("a").session_id == "a"

    def test_oversized_session_is_kept_not_thrashed(self):
        store = SessionStore(ttl_s=10, max_bytes=100, clock=FakeClock())
        store.put(StubSession("big", 1000))
        assert store.get("big").session_id == "big"
        store.put(StubSession("small", 10))   # evicts "big", fits again
        with pytest.raises(SessionGoneError):
            store.get("big")
        assert store.stats()["bytes"] == 10

    def test_remove_reports_presence(self):
        store = SessionStore(ttl_s=10, max_bytes=1000)
        store.put(StubSession("a", 10))
        assert store.remove("a") is True
        assert store.remove("a") is False
        assert store.stats()["closed"] == 1

    def test_bounds_validated(self):
        with pytest.raises(ValueError, match="ttl_s"):
            SessionStore(ttl_s=0)
        with pytest.raises(ValueError, match="max_bytes"):
            SessionStore(max_bytes=0)


class TestSlotHashing:
    def test_minted_ids_hash_to_their_slot(self):
        for slot_count in (1, 2, 3, 5):
            for slot in range(slot_count):
                session_id = mint_session_id(slot, slot_count)
                assert session_slot(session_id, slot_count) == slot

    def test_slot_is_stable_and_in_range(self):
        assert session_slot("abc", 4) == session_slot("abc", 4)
        assert all(0 <= session_slot(f"s{i}", 3) < 3 for i in range(50))
        assert session_slot("anything", 1) == 0


# -- the tool surface against one daemon ------------------------------------------


@pytest.fixture(scope="module")
def analysis_bundle_dir(tmp_path_factory, mini_cati):
    directory = tmp_path_factory.mktemp("analysis") / "bundle"
    mini_cati.save(str(directory))
    return directory


@pytest.fixture(scope="module")
def target():
    """One stripped binary + extents, distinct from other tests' seeds."""
    binary = GccCompiler().compile_fresh(seed=55, name="annot", opt_level=0)
    return strip(binary), extents_from_debug(binary)


@pytest.fixture(scope="module")
def offline(mini_cati, target):
    """The offline ground truth every served tool must match exactly."""
    stripped, extents = target
    return mini_cati.infer_binary(stripped, extents, structs=True)


@pytest.fixture(scope="module")
def daemon(analysis_bundle_dir):
    daemon, thread, client = start_daemon(analysis_bundle_dir, queue_limit=32)
    yield daemon, client
    stop_daemon(daemon, thread)


@pytest.fixture()
def handle(daemon, target):
    _daemon, client = daemon
    stripped, extents = target
    handle = client.session(binary=stripped, extents=extents)
    yield handle
    try:
        handle.close()
    except ServeClientError:
        pass


class TestSessionTools:
    def test_open_response_shape(self, handle, target, daemon):
        stripped, _extents = target
        info = handle.info
        assert info["binary"] == stripped.name
        assert info["n_functions"] == len(stripped.functions)
        assert info["n_windows"] > 0
        assert info["variables"] == sorted(info["variables"])
        assert info["nbytes"] > 0
        _daemon, client = daemon
        assert client.health()["sessions"]["sessions"] >= 1

    def test_list_functions(self, handle, target):
        stripped, _extents = target
        result = handle.list_functions()
        assert result["n_functions"] == len(stripped.functions)
        names = [f["name"] for f in result["functions"]]
        assert names == [f.name for f in stripped.functions]
        listed = {v for f in result["functions"] for v in f["variables"]}
        assert listed == set(handle.variables)

    def test_disassemble_matches_renderer(self, handle, target):
        stripped, _extents = target
        result = handle.disassemble(function=1)
        assert result["lines"] == render_listing(stripped.functions[1])
        by_name = handle.disassemble(function=stripped.functions[1].name)
        assert by_name["lines"] == result["lines"]

    def test_type_variable_matches_offline(self, handle, offline):
        by_id = {p.variable_id: p for p in offline}
        for variable_id in handle.variables[:5]:
            served = handle.type_variable(variable_id)["prediction"]
            assert served == protocol.prediction_to_dict(by_id[variable_id])

    def test_explain_matches_offline_occlusion(self, handle, target,
                                               mini_cati):
        stripped, extents = target
        pairs = extract_unlabeled_vucs(stripped, extents,
                                       mini_cati.config.window)
        variable_id = handle.variables[0]
        window = next(tokens for vid, tokens in pairs if vid == variable_id)
        batched = mini_cati.engine.occlusion_epsilons_many([window])
        served = handle.explain(variable_id, vuc=0)
        assert served["lines"] == render_epsilons(window, batched.epsilons[0])
        assert served["epsilons"] == [float(e) for e in batched.epsilons[0]]
        assert served["base_confidence"] == float(batched.base_confidences[0])

    def test_annotate_matches_offline(self, handle, target, offline):
        stripped, extents = target
        types = {p.variable_id: str(p.predicted) for p in offline}
        for index in range(len(stripped.functions)):
            ids = annotation_variable_ids(stripped.functions[index],
                                          extents[index],
                                          f"{stripped.name}/{index}")
            annotation = {i: types[vid] for i, vid in ids.items()
                          if vid in types}
            served = handle.annotate_disassembly(function=index)
            assert served["lines"] == render_listing(
                stripped.functions[index], annotation)

    def test_struct_layouts_match_offline(self, handle, offline):
        served = handle.struct_layouts()
        expected = [protocol.layout_to_dict(layout)
                    for layout in offline.layouts]
        assert served["layouts"] == expected
        assert served["n_layouts"] == len(expected)

    def test_bad_tool_and_args_are_400(self, handle, daemon):
        _daemon, client = daemon
        with pytest.raises(ServeClientError) as excinfo:
            handle.call("decompile")
        assert excinfo.value.status == 400
        with pytest.raises(ServeClientError) as excinfo:
            handle.type_variable("no/such::variable")
        assert excinfo.value.status == 400
        with pytest.raises(ServeClientError) as excinfo:
            handle.explain(handle.variables[0], vuc=10_000)
        assert excinfo.value.status == 400

    def test_unknown_session_is_410(self, daemon):
        _daemon, client = daemon
        with pytest.raises(ServeClientError) as excinfo:
            client._request("POST", "/v1/session/deadbeef00000000/call",
                            {"tool": "list_functions", "args": {}})
        assert excinfo.value.status == 410
        assert excinfo.value.kind == "SessionGoneError"

    def test_close_then_call_is_410(self, daemon, target):
        _daemon, client = daemon
        stripped, extents = target
        handle = client.session(binary=stripped, extents=extents)
        assert handle.close()["closed"] is True
        with pytest.raises(ServeClientError) as excinfo:
            handle.list_functions()
        assert excinfo.value.status == 410

    def test_session_survives_hot_reload(self, daemon, handle, offline):
        _daemon, client = daemon
        before = handle.annotate_disassembly(function=0)["lines"]
        client.reload()
        assert handle.annotate_disassembly(function=0)["lines"] == before

    def test_windows_job_cannot_open_session(self, daemon, small_corpus):
        _daemon, client = daemon
        samples = list(small_corpus.test)[:3]
        with pytest.raises(ServeClientError) as excinfo:
            client.open_session({
                "windows_packed": protocol.pack_windows(
                    [s.tokens for s in samples]),
                "variable_ids": ["a", "b", "c"],
            })
        assert excinfo.value.status == 400

    def test_metrics_count_session_traffic(self, daemon, handle):
        _daemon, client = daemon
        handle.list_functions()
        counters = client.metrics()["counters"]
        assert counters.get("sessions.opened", 0) >= 1
        assert counters.get("sessions.calls", 0) >= 1
        assert counters.get("sessions.tool.list_functions", 0) >= 1


class TestSessionBoundsServed:
    def test_ttl_expiry_end_to_end(self, analysis_bundle_dir, mini_config,
                                   target):
        import dataclasses

        config = dataclasses.replace(mini_config, session_ttl_s=0.2)
        daemon, thread, client = start_daemon(analysis_bundle_dir,
                                              config=config)
        try:
            stripped, extents = target
            handle = client.session(binary=stripped, extents=extents)
            handle.list_functions()
            time.sleep(0.3)
            with pytest.raises(ServeClientError) as excinfo:
                handle.list_functions()
            assert excinfo.value.status == 410
            health = client.health()["sessions"]
            assert health["evicted_ttl"] >= 1
        finally:
            stop_daemon(daemon, thread)

    def test_lru_eviction_under_concurrent_opens(self, analysis_bundle_dir,
                                                 mini_config, target):
        import dataclasses

        # Budget of one byte: any real session overflows it, so each
        # insert keeps only itself (the just-put session is never its
        # own victim) and every earlier session answers 410.
        config = dataclasses.replace(mini_config, session_max_bytes=1)
        daemon, thread, client = start_daemon(analysis_bundle_dir,
                                              config=config)
        try:
            stripped, extents = target
            handles = []
            errors = []

            def open_one():
                try:
                    handles.append(
                        client.session(binary=stripped, extents=extents))
                except ServeClientError as error:  # pragma: no cover
                    errors.append(error)

            threads = [threading.Thread(target=open_one) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not errors
            assert len(handles) == 4
            stats = client.health()["sessions"]
            assert stats["sessions"] == 1
            assert stats["evicted_lru"] == 3
            alive = [h for h in handles if _session_alive(h)]
            assert len(alive) == 1
        finally:
            stop_daemon(daemon, thread)


def _session_alive(handle) -> bool:
    try:
        handle.list_functions()
        return True
    except ServeClientError as error:
        assert error.status == 410
        return False


# -- sticky sessions behind the router ---------------------------------------------


@pytest.fixture(scope="module")
def session_router(analysis_bundle_dir):
    daemon = RouterDaemon(str(analysis_bundle_dir), port=0, workers=2,
                          queue_limit=32)
    thread = threading.Thread(target=daemon.run, daemon=True)
    thread.start()
    client = ServeClient(daemon.host, daemon.port, timeout=120)
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        try:
            client.health()
            break
        except OSError:
            time.sleep(0.05)
    yield daemon, client
    daemon.request_shutdown()
    thread.join(timeout=60)
    assert not thread.is_alive(), "router did not drain"


class TestStickySessions:
    def test_sessions_route_to_their_worker(self, session_router, target,
                                            offline):
        _daemon, client = session_router
        stripped, extents = target
        handles = [client.session(binary=stripped, extents=extents)
                   for _ in range(3)]
        types = {p.variable_id: str(p.predicted) for p in offline}
        # Interleave calls across sessions: every one must land on the
        # worker holding its state and answer exactly like offline.
        for _round in range(2):
            for handle in handles:
                listing = handle.list_functions()
                assert listing["n_functions"] == len(stripped.functions)
                variable_id = handle.variables[0]
                served = handle.type_variable(variable_id)["prediction"]
                assert served["type"] == types[variable_id]
        health = client.health()
        assert health["sessions"]["sessions"] == 3
        assert health["sessions"]["opened"] >= 3
        per_worker = [w["sessions"]["sessions"] for w in health["workers"]]
        assert sum(per_worker) == 3
        counters = client.metrics()["counters"]
        assert counters.get("sessions.opened", 0) >= 3
        for handle in handles:
            handle.close()

    def test_worker_crash_answers_410_then_reopen_works(self, session_router,
                                                        target):
        daemon, client = session_router
        stripped, extents = target
        handle = client.session(binary=stripped, extents=extents)
        handle.list_functions()
        slot = session_slot(handle.id, 2)
        health = client.health()
        os.kill(health["workers"][slot]["pid"], signal.SIGKILL)
        # Every call until (and after) the respawn answers a retriable
        # 410 — the state died with the worker.
        deadline = time.monotonic() + 60
        saw_gone = False
        while time.monotonic() < deadline and not saw_gone:
            try:
                handle.list_functions()
                time.sleep(0.1)
            except ServeClientError as error:
                assert error.status == 410
                saw_gone = True
        assert saw_gone, "calls kept succeeding after the owner died"
        wait_all_live(client, min_restarts=1)
        with pytest.raises(ServeClientError) as excinfo:
            handle.list_functions()
        assert excinfo.value.status == 410
        # Re-opening is the documented recovery; the new session works.
        fresh = client.session(binary=stripped, extents=extents)
        assert fresh.list_functions()["n_functions"] == len(stripped.functions)
        fresh.close()
