"""Shared fixtures: tiny deterministic corpora and a mini-trained CATI.

Session-scoped so the expensive bits (corpus compilation, mini training)
run once per pytest invocation.
"""

from __future__ import annotations

import pytest

from repro.codegen.compilers import GccCompiler
from repro.core.config import CatiConfig
from repro.core.pipeline import Cati
from repro.datasets.corpus import build_small_corpus
from repro.embedding.word2vec import Word2VecConfig


@pytest.fixture(scope="session")
def small_corpus():
    """2 train projects + 2 test apps at -O0/-O2 (seconds to build)."""
    return build_small_corpus()


@pytest.fixture(scope="session")
def demo_binary():
    """One unstripped synthetic binary with debug info."""
    return GccCompiler().compile_fresh(seed=1, name="demo", opt_level=0)


@pytest.fixture(scope="session")
def mini_config():
    return CatiConfig(
        epochs=5,
        fc_width=64,
        word2vec=Word2VecConfig(dim=32, window=5, epochs=1, subsample_pairs=0.4),
    )


@pytest.fixture(scope="session")
def mini_cati(small_corpus, mini_config):
    """A quickly trained CATI over the small corpus (≈20 s once)."""
    return Cati(mini_config).train(small_corpus.train)


@pytest.fixture(scope="session")
def mini_cache(small_corpus, mini_cati):
    """Prediction cache of the mini model over the small test corpus."""
    from repro.experiments.common import PredictionCache

    return PredictionCache.build(mini_cati, small_corpus.test)
