"""Corpus-statistics tests (Table I / Table V machinery)."""

import pytest

from repro.core.types import TypeName
from repro.eval.stats import clustering_stats, find_uncertain_examples, orphan_stats
from repro.vuc.dataset import LabeledVuc, VucDataset
from repro.vuc.generalize import BLANK_TOKENS


def _vuc(target, label, vid, binary="b"):
    """Build a 5-instruction window with the given target row."""
    pad = ("nop", "BLANK", "BLANK")
    tokens = (pad, pad, target, pad, pad)
    return LabeledVuc(tokens=tokens, label=label, variable_id=vid,
                      binary=binary, app="a", compiler="gcc")


MOVL = ("movl", "$IMM", "-IMM(%rbp)")
MOVQ = ("mov", "%rax", "-IMM(%rbp)")


class TestOrphanStats:
    def test_counts(self):
        ds = VucDataset(window=2, samples=[
            _vuc(MOVL, TypeName.INT, "v1"),
            _vuc(MOVL, TypeName.ENUM, "v2"),          # uncertain with v1
            _vuc(MOVQ, TypeName.LONG_INT, "v3"),
            _vuc(MOVQ, TypeName.LONG_INT, "v3"),      # 2 VUCs
            _vuc(MOVL, TypeName.INT, "v4"),
            _vuc(MOVL, TypeName.INT, "v4"),
            _vuc(MOVL, TypeName.INT, "v4"),           # 3 VUCs: not orphan
        ])
        stats = orphan_stats(ds)
        assert stats.n_variables == 4
        assert stats.n_vucs == 7
        assert stats.variables_with_1_vuc == 2
        assert stats.uncertain_1 == 2         # v1 and v2 collide
        assert stats.variables_with_2_vucs == 1
        assert stats.uncertain_2 == 0

    def test_orphan_fraction(self):
        ds = VucDataset(window=2, samples=[
            _vuc(MOVL, TypeName.INT, "v1"),
            _vuc(MOVQ, TypeName.LONG_INT, "v2"),
            _vuc(MOVL, TypeName.INT, "v3"),
            _vuc(MOVL, TypeName.INT, "v3"),
            _vuc(MOVL, TypeName.INT, "v3"),
        ])
        stats = orphan_stats(ds)
        assert stats.orphan_fraction == pytest.approx(2 / 3)

    def test_same_type_collision_not_uncertain(self):
        ds = VucDataset(window=2, samples=[
            _vuc(MOVL, TypeName.INT, "v1"),
            _vuc(MOVL, TypeName.INT, "v2"),
        ])
        stats = orphan_stats(ds)
        assert stats.uncertain_1 == 0


class TestUncertainExamples:
    def test_finds_colliding_signatures(self):
        ds = VucDataset(window=2, samples=[
            _vuc(MOVL, TypeName.INT, "v1"),
            _vuc(MOVL, TypeName.ENUM, "v2"),
        ])
        examples = find_uncertain_examples(ds)
        assert len(examples) == 1
        signature, a, b = examples[0]
        assert "movl" in signature
        assert {a, b} == {TypeName.INT, TypeName.ENUM}

    def test_no_collisions_no_examples(self):
        ds = VucDataset(window=2, samples=[_vuc(MOVL, TypeName.INT, "v1")])
        assert find_uncertain_examples(ds) == []


class TestClusteringStats:
    def test_same_type_context_counted(self):
        # Context rows that are themselves targets of same-type variables
        context_row = ("movl", "$IMM", "-IMM(%rbp)")
        tokens = (context_row, BLANK_TOKENS, MOVL, BLANK_TOKENS, context_row)
        ds = VucDataset(window=2, samples=[
            LabeledVuc(tokens=tokens, label=TypeName.INT, variable_id="v1",
                       binary="b", app="a", compiler="gcc"),
        ])
        stats = clustering_stats(ds)
        overall = stats[None]
        assert overall.cnt_all == 2.0
        assert overall.cnt_same == 2.0
        assert overall.c_rate == 1.0

    def test_different_type_context_not_same(self):
        other_row = ("fldt", "BLANK", "-IMM(%rbp)")
        tokens = (other_row, BLANK_TOKENS, MOVL, BLANK_TOKENS, BLANK_TOKENS)
        ds = VucDataset(window=2, samples=[
            LabeledVuc(tokens=tokens, label=TypeName.INT, variable_id="v1",
                       binary="b", app="a", compiler="gcc"),
        ])
        stats = clustering_stats(ds)
        assert stats[None].cnt_all == 1.0
        assert stats[None].cnt_same == 0.0

    def test_corpus_exhibits_clustering(self, small_corpus):
        """The planted phenomenon: overall same-type rate around or above
        the paper's 53%."""
        stats = clustering_stats(small_corpus.test)
        overall = stats[None]
        assert overall.cnt_all > 1.0
        assert overall.c_rate > 0.40

    def test_per_type_keys_are_typenames(self, small_corpus):
        stats = clustering_stats(small_corpus.test)
        keys = set(stats) - {None}
        assert keys <= set(TypeName)
