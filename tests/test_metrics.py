"""Metric tests: P/R/F1 algebra, confusion matrices, properties."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.eval.metrics import accuracy, confusion_matrix, evaluate


class TestEvaluate:
    def test_perfect_prediction(self):
        report = evaluate(["a", "b", "a"], ["a", "b", "a"])
        assert report.accuracy == 1.0
        assert report.weighted_f1 == 1.0
        for metrics in report.per_class.values():
            assert metrics.precision == 1.0
            assert metrics.recall == 1.0

    def test_known_values(self):
        # true: a a a b; pred: a a b b
        report = evaluate(list("aaab"), list("aabb"))
        a = report.per_class["a"]
        b = report.per_class["b"]
        assert a.precision == 1.0
        assert a.recall == pytest.approx(2 / 3)
        assert b.precision == pytest.approx(1 / 2)
        assert b.recall == 1.0
        assert report.accuracy == pytest.approx(3 / 4)

    def test_f1_is_harmonic_mean(self):
        report = evaluate(list("aaab"), list("aabb"))
        a = report.per_class["a"]
        expected = 2 * a.precision * a.recall / (a.precision + a.recall)
        assert a.f1 == pytest.approx(expected)

    def test_absent_class_zero_metrics(self):
        report = evaluate(["a", "a"], ["b", "b"])
        assert report.per_class["a"].recall == 0.0
        assert report.per_class["b"].precision == 0.0
        assert report.per_class["b"].support == 0

    def test_empty_inputs(self):
        report = evaluate([], [])
        assert report.accuracy == 0.0
        assert report.n_samples == 0

    def test_misaligned_raises(self):
        with pytest.raises(ValueError):
            evaluate(["a"], [])

    def test_supports_sum_to_n(self):
        report = evaluate(list("aabbcc"), list("abcabc"))
        assert sum(m.support for m in report.per_class.values()) == 6


class TestConfusion:
    def test_diagonal_counts_hits(self):
        matrix = confusion_matrix(list("aab"), list("aab"), ["a", "b"])
        assert np.array_equal(matrix, [[2, 0], [0, 1]])

    def test_off_diagonal(self):
        matrix = confusion_matrix(["a", "a"], ["b", "a"], ["a", "b"])
        assert matrix[0, 1] == 1
        assert matrix[0, 0] == 1

    def test_unknown_labels_ignored(self):
        matrix = confusion_matrix(["a", "z"], ["a", "a"], ["a", "b"])
        assert matrix.sum() == 1


class TestAccuracy:
    def test_basic(self):
        assert accuracy(list("abc"), list("abd")) == pytest.approx(2 / 3)

    def test_empty(self):
        assert accuracy([], []) == 0.0


# -- property-based ------------------------------------------------------------

_labels = st.lists(st.sampled_from("abcd"), min_size=1, max_size=50)


@given(_labels)
def test_self_evaluation_is_perfect(labels):
    report = evaluate(labels, labels)
    assert report.accuracy == 1.0
    assert report.weighted_precision == pytest.approx(1.0)


@given(st.tuples(_labels, _labels).map(lambda t: (t[0], (t[1] * 50)[:len(t[0])])))
def test_metrics_bounded(pair):
    y_true, y_pred = pair
    report = evaluate(y_true, y_pred)
    assert 0.0 <= report.accuracy <= 1.0
    assert 0.0 <= report.weighted_f1 <= 1.0
    for metrics in report.per_class.values():
        assert 0.0 <= metrics.precision <= 1.0
        assert 0.0 <= metrics.recall <= 1.0
        assert min(metrics.precision, metrics.recall) - 1e-9 <= metrics.f1 \
            <= max(metrics.precision, metrics.recall) + 1e-9


@given(st.tuples(_labels, _labels).map(lambda t: (t[0], (t[1] * 50)[:len(t[0])])))
def test_accuracy_equals_weighted_recall(pair):
    """Micro identity: weighted recall == accuracy for single-label tasks."""
    y_true, y_pred = pair
    report = evaluate(y_true, y_pred)
    assert report.weighted_recall == pytest.approx(report.accuracy)


@given(st.tuples(_labels, _labels).map(lambda t: (t[0], (t[1] * 50)[:len(t[0])])))
def test_confusion_row_sums_are_supports(pair):
    y_true, y_pred = pair
    classes = sorted({*y_true, *y_pred})
    matrix = confusion_matrix(y_true, y_pred, classes)
    report = evaluate(y_true, y_pred)
    for i, cls in enumerate(classes):
        assert matrix[i].sum() == report.per_class[cls].support
