"""Metric tests: P/R/F1 algebra, confusion matrices, properties."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.eval.metrics import accuracy, confusion_matrix, evaluate


class TestEvaluate:
    def test_perfect_prediction(self):
        report = evaluate(["a", "b", "a"], ["a", "b", "a"])
        assert report.accuracy == 1.0
        assert report.weighted_f1 == 1.0
        for metrics in report.per_class.values():
            assert metrics.precision == 1.0
            assert metrics.recall == 1.0

    def test_known_values(self):
        # true: a a a b; pred: a a b b
        report = evaluate(list("aaab"), list("aabb"))
        a = report.per_class["a"]
        b = report.per_class["b"]
        assert a.precision == 1.0
        assert a.recall == pytest.approx(2 / 3)
        assert b.precision == pytest.approx(1 / 2)
        assert b.recall == 1.0
        assert report.accuracy == pytest.approx(3 / 4)

    def test_f1_is_harmonic_mean(self):
        report = evaluate(list("aaab"), list("aabb"))
        a = report.per_class["a"]
        expected = 2 * a.precision * a.recall / (a.precision + a.recall)
        assert a.f1 == pytest.approx(expected)

    def test_absent_class_zero_metrics(self):
        report = evaluate(["a", "a"], ["b", "b"])
        assert report.per_class["a"].recall == 0.0
        assert report.per_class["b"].precision == 0.0
        assert report.per_class["b"].support == 0

    def test_empty_inputs(self):
        report = evaluate([], [])
        assert report.accuracy == 0.0
        assert report.n_samples == 0

    def test_misaligned_raises(self):
        with pytest.raises(ValueError):
            evaluate(["a"], [])

    def test_supports_sum_to_n(self):
        report = evaluate(list("aabbcc"), list("abcabc"))
        assert sum(m.support for m in report.per_class.values()) == 6


class TestConfusion:
    def test_diagonal_counts_hits(self):
        matrix = confusion_matrix(list("aab"), list("aab"), ["a", "b"])
        assert np.array_equal(matrix, [[2, 0], [0, 1]])

    def test_off_diagonal(self):
        matrix = confusion_matrix(["a", "a"], ["b", "a"], ["a", "b"])
        assert matrix[0, 1] == 1
        assert matrix[0, 0] == 1

    def test_unknown_labels_ignored(self):
        matrix = confusion_matrix(["a", "z"], ["a", "a"], ["a", "b"])
        assert matrix.sum() == 1


class TestAccuracy:
    def test_basic(self):
        assert accuracy(list("abc"), list("abd")) == pytest.approx(2 / 3)

    def test_empty(self):
        assert accuracy([], []) == 0.0


# -- property-based ------------------------------------------------------------

_labels = st.lists(st.sampled_from("abcd"), min_size=1, max_size=50)


@given(_labels)
def test_self_evaluation_is_perfect(labels):
    report = evaluate(labels, labels)
    assert report.accuracy == 1.0
    assert report.weighted_precision == pytest.approx(1.0)


@given(st.tuples(_labels, _labels).map(lambda t: (t[0], (t[1] * 50)[:len(t[0])])))
def test_metrics_bounded(pair):
    y_true, y_pred = pair
    report = evaluate(y_true, y_pred)
    assert 0.0 <= report.accuracy <= 1.0
    assert 0.0 <= report.weighted_f1 <= 1.0
    for metrics in report.per_class.values():
        assert 0.0 <= metrics.precision <= 1.0
        assert 0.0 <= metrics.recall <= 1.0
        assert min(metrics.precision, metrics.recall) - 1e-9 <= metrics.f1 \
            <= max(metrics.precision, metrics.recall) + 1e-9


@given(st.tuples(_labels, _labels).map(lambda t: (t[0], (t[1] * 50)[:len(t[0])])))
def test_accuracy_equals_weighted_recall(pair):
    """Micro identity: weighted recall == accuracy for single-label tasks."""
    y_true, y_pred = pair
    report = evaluate(y_true, y_pred)
    assert report.weighted_recall == pytest.approx(report.accuracy)


@given(st.tuples(_labels, _labels).map(lambda t: (t[0], (t[1] * 50)[:len(t[0])])))
def test_confusion_row_sums_are_supports(pair):
    y_true, y_pred = pair
    classes = sorted({*y_true, *y_pred})
    matrix = confusion_matrix(y_true, y_pred, classes)
    report = evaluate(y_true, y_pred)
    for i, cls in enumerate(classes):
        assert matrix[i].sum() == report.per_class[cls].support


class TestFieldReports:
    """evaluate_layouts: field-level scoring of recovered struct layouts."""

    def _report(self, predicted, truth):
        from repro.eval.metrics import evaluate_layouts

        return evaluate_layouts(predicted, truth)

    def test_perfect_match(self):
        layout = {"a": {0: "int", 8: "long"}, "b->": {0: "char"}}
        report = self._report(layout, layout)
        assert report.offset_precision == report.offset_recall == 1.0
        assert report.field_precision == report.field_recall == report.field_f1 == 1.0
        assert report.type_accuracy == 1.0
        assert report.layout_exact_match == 1.0
        assert report.n_true_fields == report.n_predicted_fields == 3

    def test_wrong_label_hits_offset_but_not_field(self):
        truth = {"a": {0: "int", 8: "long"}}
        predicted = {"a": {0: "int", 8: "char"}}
        report = self._report(predicted, truth)
        assert report.offset_precision == report.offset_recall == 1.0
        assert report.field_precision == pytest.approx(1 / 2)
        assert report.field_recall == pytest.approx(1 / 2)
        assert report.type_accuracy == pytest.approx(1 / 2)
        assert report.layout_exact_match == 0.0

    def test_spurious_object_hurts_precision_only(self):
        truth = {"a": {0: "int", 8: "long"}}
        predicted = {"a": {0: "int", 8: "long"}, "ghost": {0: "int"}}
        report = self._report(predicted, truth)
        assert report.field_recall == 1.0
        assert report.field_precision == pytest.approx(2 / 3)
        assert report.layout_exact_match == 1.0   # the true object is exact

    def test_missing_offset_hurts_recall_and_exactness(self):
        truth = {"a": {0: "int", 8: "long"}, "b": {0: "char"}}
        predicted = {"a": {0: "int"}, "b": {0: "char"}}
        report = self._report(predicted, truth)
        assert report.field_precision == 1.0
        assert report.field_recall == pytest.approx(2 / 3)
        assert report.layout_exact_match == pytest.approx(1 / 2)

    def test_f1_is_harmonic_mean(self):
        truth = {"a": {0: "int", 8: "long"}}
        predicted = {"a": {0: "int", 16: "char"}}
        report = self._report(predicted, truth)
        p, r = report.field_precision, report.field_recall
        assert report.field_f1 == pytest.approx(2 * p * r / (p + r))

    def test_empty_truth_is_all_zero(self):
        report = self._report({"a": {0: "int"}}, {})
        assert report.n_objects == 0
        assert report.n_predicted_fields == 1
        assert report.field_f1 == 0.0
        assert report.layout_exact_match == 0.0

    def test_empty_prediction_scores_zero_recall(self):
        report = self._report({}, {"a": {0: "int"}})
        assert report.field_recall == 0.0
        assert report.offset_recall == 0.0
        assert report.type_accuracy == 0.0
