"""Unit tests for operand AST rendering and predicates."""

import pytest

from repro.asm.operands import Imm, Label, Mem, Reg


class TestImm:
    def test_renders_hex_with_dollar(self):
        assert str(Imm(0x100)) == "$0x100"

    def test_renders_negative(self):
        assert str(Imm(-0xD0)) == "$-0xd0"

    def test_zero(self):
        assert str(Imm(0)) == "$0x0"


class TestReg:
    def test_renders_with_percent(self):
        assert str(Reg("rax")) == "%rax"

    def test_family_and_width(self):
        reg = Reg("esi")
        assert reg.family == "rsi"
        assert reg.width == 4


class TestMem:
    def test_simple_base(self):
        assert str(Mem(disp=-4, base="rbp")) == "-0x4(%rbp)"

    def test_positive_disp_rsp(self):
        assert str(Mem(disp=0xA8, base="rsp")) == "0xa8(%rsp)"

    def test_full_effective_address(self):
        mem = Mem(disp=-0x300, base="rbp", index="r9", scale=4)
        assert str(mem) == "-0x300(%rbp,%r9,4)"

    def test_zero_disp_omitted_with_base(self):
        assert str(Mem(disp=0, base="rax")) == "(%rax)"

    def test_index_without_base(self):
        mem = Mem(disp=0x10, base=None, index="rcx", scale=8)
        assert str(mem) == "0x10(,%rcx,8)"

    def test_bare_displacement(self):
        assert str(Mem(disp=0x601040)) == "0x601040"

    @pytest.mark.parametrize("base,expected", [("rbp", True), ("rsp", True), ("rax", False), (None, False)])
    def test_is_stack_slot(self, base, expected):
        assert Mem(disp=-8, base=base).is_stack_slot is expected

    def test_indexed_stack_access_is_not_plain_slot(self):
        assert not Mem(disp=-8, base="rbp", index="rax", scale=4).is_stack_slot

    def test_rip_relative(self):
        assert Mem(disp=0x2000, base="rip").is_rip_relative
        assert not Mem(disp=0x2000, base="rbp").is_rip_relative


class TestLabel:
    def test_renders_bare_address(self):
        assert str(Label(0x3BC59)) == "3bc59"

    def test_renders_symbol(self):
        assert str(Label(0x3BC59, "bfd_zalloc")) == "3bc59 <bfd_zalloc>"
