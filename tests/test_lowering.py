"""Lowering tests: per-type instruction patterns, frame layout, truth
bookkeeping, compiler styles.
"""

import random

import pytest

from repro.asm.operands import Mem, Reg
from repro.codegen import ctypes_model as ct
from repro.codegen.ctypes_model import ArrayType, PointerType
from repro.codegen.lowering import FunctionLowerer, clang_style, gcc_style, lower_function
from repro.codegen.progen import Access, AccessKind, FunctionIR, LocalVar
from repro.core.types import TypeName


def _single_access_function(ctype, kind, partner_ctype=None, n=1):
    var = LocalVar(name="v0", ctype=ctype, index=0)
    locals_ = [var]
    partner = None
    if partner_ctype is not None:
        partner = LocalVar(name="v1", ctype=partner_ctype, index=1)
        locals_.append(partner)
    events = [Access(var=var, kind=kind, partner=partner)] * n
    return FunctionIR(name="f", locals=locals_, events=events)


def _lower(ctype, kind, style=None, partner_ctype=None, seed=0):
    func = _single_access_function(ctype, kind, partner_ctype)
    import dataclasses

    style = style or gcc_style(0)
    # Deterministic instruction counts: no reloads, no type-blind noise.
    style = dataclasses.replace(style, redundant_load_prob=0.0, trace_noise_prob=0.0)
    return lower_function(func, style, random.Random(seed), 0x401000)


def _target_mnemonics(lowered):
    return [lowered.listing.instructions[i].mnemonic for i, _v in lowered.truth]


class TestTypePatterns:
    def test_bool_init_is_movb(self):
        assert _target_mnemonics(_lower(ct.BOOL, AccessKind.INIT)) == ["movb"]

    def test_int_init_is_movl(self):
        assert _target_mnemonics(_lower(ct.INT, AccessKind.INIT)) == ["movl"]

    def test_long_init_is_movq(self):
        assert _target_mnemonics(_lower(ct.LONG, AccessKind.INIT)) == ["movq"]

    def test_double_init_uses_movsd(self):
        assert "movsd" in _target_mnemonics(_lower(ct.DOUBLE, AccessKind.INIT))

    def test_float_init_uses_movss(self):
        assert "movss" in _target_mnemonics(_lower(ct.FLOAT, AccessKind.INIT))

    def test_long_double_uses_x87(self):
        assert "fstpt" in _target_mnemonics(_lower(ct.LONG_DOUBLE, AccessKind.INIT))

    def test_char_load_sign_extends(self):
        assert _target_mnemonics(_lower(ct.CHAR, AccessKind.LOAD)) == ["movsbl"]

    def test_uchar_load_zero_extends(self):
        assert _target_mnemonics(_lower(ct.UCHAR, AccessKind.LOAD)) == ["movzbl"]

    def test_short_load_extends(self):
        assert _target_mnemonics(_lower(ct.SHORT, AccessKind.LOAD)) == ["movswl"]
        assert _target_mnemonics(_lower(ct.USHORT, AccessKind.LOAD)) == ["movzwl"]

    def test_bool_test_pattern(self):
        lowered = _lower(ct.BOOL, AccessKind.BOOL_TEST)
        mnemonics = [i.mnemonic for i in lowered.listing.instructions]
        assert "movzbl" in mnemonics
        assert "test" in mnemonics

    def test_bool_set_ends_with_movb(self):
        lowered = _lower(ct.BOOL, AccessKind.BOOL_SET)
        assert _target_mnemonics(lowered) == ["movb"]
        mnemonics = [i.mnemonic for i in lowered.listing.instructions]
        assert any(m.startswith("set") for m in mnemonics)

    def test_pointer_compare_is_null_check(self):
        lowered = _lower(PointerType(ct.INT), AccessKind.COMPARE_BRANCH)
        assert "cmpq" in _target_mnemonics(lowered)

    def test_deref_load_two_targets(self):
        lowered = _lower(PointerType(ct.INT), AccessKind.DEREF_LOAD)
        # one target for the slot load, one for the dereference
        assert len(lowered.truth) == 2
        deref = lowered.listing.instructions[lowered.truth[1][0]]
        mems = deref.memory_operands()
        assert mems and mems[0].base not in ("rbp", "rsp", "rip")

    def test_struct_pointer_deref_uses_member_offset(self):
        rng_hits = 0
        for seed in range(10):
            lowered = _lower(PointerType(ct.make_struct_zoo()[2]), AccessKind.DEREF_LOAD, seed=seed)
            deref = lowered.listing.instructions[lowered.truth[1][0]]
            if deref.memory_operands()[0].disp > 0:
                rng_hits += 1
        assert rng_hits > 0  # interior offsets appear

    def test_ptr_advance_uses_stride(self):
        lowered = _lower(PointerType(ct.INT), AccessKind.PTR_ADVANCE)
        ins = lowered.listing.instructions[lowered.truth[0][0]]
        assert ins.mnemonic == "addq"
        assert ins.operands[0].value == 4

    def test_addr_of_emits_lea_for_target(self):
        lowered = _lower(PointerType(ct.INT), AccessKind.ADDR_OF, partner_ctype=ct.INT)
        mnemonics = _target_mnemonics(lowered)
        assert mnemonics[0] == "lea"
        # lea is attributed to the partner, mov to the pointer
        assert lowered.truth[0][1] == 1
        assert lowered.truth[1][1] == 0

    def test_member_store_within_extent(self):
        struct = ct.make_struct_zoo()[2]  # stats: ulong, double, int, int
        for member in range(4):
            func = FunctionIR(
                name="f",
                locals=[LocalVar("v0", struct, 0)],
                events=[Access(var=LocalVar("v0", struct, 0), kind=AccessKind.MEMBER_STORE, member=member)],
            )
            lowered = lower_function(func, gcc_style(0), random.Random(0), 0)
            slot = lowered.slots[0]
            ins = lowered.listing.instructions[lowered.truth[0][0]]
            mem = ins.memory_operands()[0]
            assert slot.offset <= mem.disp < slot.offset + slot.size

    def test_array_store_stays_in_extent(self):
        array = ArrayType(ct.INT, 8)
        for seed in range(8):
            lowered = _lower(array, AccessKind.ARRAY_STORE, seed=seed)
            slot = lowered.slots[0]
            ins = lowered.listing.instructions[lowered.truth[0][0]]
            mem = ins.memory_operands()[0]
            assert slot.offset <= mem.disp < slot.offset + slot.size


class TestFrameLayout:
    def test_gcc_o0_uses_rbp_negative_offsets(self):
        lowered = _lower(ct.INT, AccessKind.INIT, style=gcc_style(0))
        assert lowered.frame_base == "rbp"
        assert all(s.offset < 0 for s in lowered.slots.values())

    def test_clang_uses_rsp_positive_offsets(self):
        lowered = _lower(ct.INT, AccessKind.INIT, style=clang_style(0))
        assert lowered.frame_base == "rsp"
        assert all(s.offset > 0 for s in lowered.slots.values())

    def test_gcc_o2_drops_frame_pointer(self):
        assert gcc_style(2).frame_base == "rsp"

    def test_slots_do_not_overlap(self):
        func = FunctionIR(
            name="f",
            locals=[
                LocalVar("a", ct.CHAR, 0),
                LocalVar("b", ct.INT, 1),
                LocalVar("c", ct.make_struct_zoo()[3], 2),
                LocalVar("d", ct.LONG_DOUBLE, 3),
            ],
            events=[],
        )
        lowered = lower_function(func, gcc_style(0), random.Random(0), 0)
        ranges = sorted(
            (s.offset, s.offset + s.size) for s in lowered.slots.values()
        )
        for (a_lo, a_hi), (b_lo, b_hi) in zip(ranges, ranges[1:]):
            assert a_hi <= b_lo

    def test_alignment_respected(self):
        func = FunctionIR(
            name="f",
            locals=[LocalVar("a", ct.CHAR, 0), LocalVar("b", ct.DOUBLE, 1)],
            events=[],
        )
        lowered = lower_function(func, gcc_style(0), random.Random(0), 0)
        assert lowered.slots[1].offset % 8 == 0

    def test_frame_size_positive_multiple_of_16(self):
        lowered = _lower(ct.INT, AccessKind.INIT)
        lowerer = FunctionLowerer(
            _single_access_function(ct.INT, AccessKind.INIT), gcc_style(0),
            random.Random(0), 0,
        )
        assert lowerer.frame_size % 16 == 0
        assert lowerer.frame_size > 0


class TestStyles:
    def test_gcc_prologue_has_endbr_and_rbp_setup(self):
        lowered = _lower(ct.INT, AccessKind.INIT, style=gcc_style(0))
        mnemonics = [i.mnemonic for i in lowered.listing.instructions[:4]]
        assert mnemonics[0] == "endbr64"
        assert "push" in mnemonics

    def test_clang_has_no_endbr(self):
        lowered = _lower(ct.INT, AccessKind.INIT, style=clang_style(0))
        assert lowered.listing.instructions[0].mnemonic != "endbr64"

    def test_clang_zeroes_with_xor(self):
        lowered = _lower(ct.INT, AccessKind.INIT, style=clang_style(0))
        mnemonics = [i.mnemonic for i in lowered.listing.instructions]
        assert "xor" in mnemonics

    def test_epilogue_ends_with_ret(self):
        for style in (gcc_style(0), gcc_style(2), clang_style(1)):
            lowered = _lower(ct.INT, AccessKind.INIT, style=style)
            assert lowered.listing.instructions[-1].mnemonic == "retq"

    def test_addresses_strictly_increase(self):
        lowered = _lower(ct.INT, AccessKind.ARITH_IMM)
        addresses = [i.address for i in lowered.listing.instructions]
        assert all(a < b for a, b in zip(addresses, addresses[1:]))


class TestMemberTruth:
    """Field-level ground truth (MemberTruth) recorded by the lowerer —
    what member-labeled training and the posterior stage consume."""

    def _member_func(self, ctype, kind, member):
        var = LocalVar("v0", ctype, 0)
        return FunctionIR(name="f", locals=[var],
                          events=[Access(var=var, kind=kind, member=member)])

    def test_member_store_records_offset_and_label(self):
        struct = ct.make_struct_zoo()[2]  # stats: ulong, double, int, int
        offsets = struct.member_offsets()
        for member, (_name, mtype, moff) in enumerate(offsets):
            func = self._member_func(struct, AccessKind.MEMBER_STORE, member)
            lowered = lower_function(func, gcc_style(0), random.Random(0), 0)
            assert len(lowered.member_truth) == 1
            record = lowered.member_truth[0]
            assert record.member_offset == moff
            assert record.label is mtype.leaf_label()
            assert record.var_index == 0
            assert record.instruction_index == lowered.truth[0][0]

    def test_member_load_records_offset_and_label(self):
        struct = ct.make_struct_zoo()[4]  # options: bool, int, char*, long
        offsets = struct.member_offsets()
        for member, (_name, mtype, moff) in enumerate(offsets):
            func = self._member_func(struct, AccessKind.MEMBER_LOAD, member)
            lowered = lower_function(func, gcc_style(0), random.Random(0), 0)
            record = lowered.member_truth[0]
            assert record.member_offset == moff
            assert record.label is mtype.leaf_label()

    def test_member_truth_instruction_touches_the_field(self):
        struct = ct.make_struct_zoo()[2]
        for member in range(4):
            func = self._member_func(struct, AccessKind.MEMBER_STORE, member)
            lowered = lower_function(func, gcc_style(0), random.Random(0), 0)
            record = lowered.member_truth[0]
            ins = lowered.listing.instructions[record.instruction_index]
            slot = lowered.slots[0]
            assert ins.memory_operands()[0].disp == slot.offset + record.member_offset

    def test_array_of_struct_member_uses_element_layout(self):
        struct = ct.make_struct_zoo()[2]
        offsets = struct.member_offsets()
        func = self._member_func(ArrayType(struct, 3), AccessKind.MEMBER_STORE, 1)
        lowered = lower_function(func, gcc_style(0), random.Random(0), 0)
        record = lowered.member_truth[0]
        assert record.member_offset == offsets[1][2]
        assert record.label is offsets[1][1].leaf_label()

    def test_struct_pointer_deref_records_member_truth(self):
        struct = ct.make_struct_zoo()[2]
        field_truth = {moff: mtype.leaf_label()
                       for _name, mtype, moff in struct.member_offsets()}
        seen_offsets = set()
        for seed in range(10):
            lowered = _lower(PointerType(struct), AccessKind.DEREF_LOAD, seed=seed)
            assert len(lowered.member_truth) == 1
            record = lowered.member_truth[0]
            deref = lowered.listing.instructions[record.instruction_index]
            assert deref.memory_operands()[0].disp == record.member_offset
            assert field_truth[record.member_offset] is record.label
            seen_offsets.add(record.member_offset)
        assert len(seen_offsets) > 1   # the rng samples multiple fields

    def test_scalar_accesses_record_no_member_truth(self):
        assert _lower(ct.INT, AccessKind.INIT).member_truth == []
        assert _lower(PointerType(ct.INT), AccessKind.DEREF_LOAD).member_truth == []

    def test_member_truth_by_instruction_roundtrip(self):
        struct = ct.make_struct_zoo()[3]
        var = LocalVar("v0", struct, 0)
        func = FunctionIR(name="f", locals=[var], events=[
            Access(var=var, kind=AccessKind.MEMBER_STORE, member=0),
            Access(var=var, kind=AccessKind.MEMBER_LOAD, member=2),
        ])
        lowered = lower_function(func, gcc_style(0), random.Random(0), 0)
        by_index = lowered.member_truth_by_instruction()
        assert len(by_index) == len(lowered.member_truth) == 2
        for record in lowered.member_truth:
            assert by_index[record.instruction_index] is record


class TestTruth:
    def test_truth_indices_valid(self):
        for seed in range(5):
            from repro.codegen.progen import generate_function, GeneratorConfig

            func = generate_function(random.Random(seed), "f", GeneratorConfig())
            lowered = lower_function(func, gcc_style(0), random.Random(seed), 0)
            n = len(lowered.listing.instructions)
            var_indices = {v.index for v in func.locals}
            for ins_index, var_index in lowered.truth:
                assert 0 <= ins_index < n
                assert var_index in var_indices

    def test_truth_instructions_touch_their_slot(self):
        """Every slot-kind truth entry's instruction references the frame
        range of its variable (derefs go through registers instead)."""
        from repro.codegen.progen import generate_function, GeneratorConfig

        func = generate_function(random.Random(9), "f", GeneratorConfig())
        lowered = lower_function(func, gcc_style(0), random.Random(9), 0)
        for ins_index, var_index in lowered.truth:
            ins = lowered.listing.instructions[ins_index]
            slot = lowered.slots[var_index]
            frame_mems = [m for m in ins.memory_operands() if m.base == "rbp"]
            if frame_mems:
                assert any(
                    slot.offset <= m.disp < slot.offset + slot.size
                    for m in frame_mems
                )
