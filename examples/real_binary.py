#!/usr/bin/env python
"""Real-binary scenario: run the pipeline on genuine GCC output.

Compiles the bundled C sample with the system toolchain (gcc -g -O0),
parses real objdump/readelf output, extracts labeled VUCs from the real
DWARF, and evaluates both the rule-ladder baseline and a CATI model
trained on the real binary's own functions (leave-one-function-out).

Skips cleanly when gcc/objdump/readelf are unavailable.
"""

import sys

from repro.core import Cati, CatiConfig, TypeName
from repro.frontend import (
    compile_sample,
    extract_real_variables,
    parse_disassembly,
    toolchain_available,
    user_functions,
)
from repro.vuc import (
    VariableExtent,
    VucDataset,
    extract_vuc,
    generalize_window,
    group_targets,
    locate_targets,
)
from repro.vuc.dataset import LabeledVuc
from repro.baselines import rules_predict


def build_real_dataset() -> VucDataset:
    """Labeled VUCs from the real compiled sample."""
    artifact = compile_sample()
    functions = user_functions(parse_disassembly(artifact.disassembly))
    variables = extract_real_variables(artifact.dwarf_dump)
    dataset = VucDataset()
    for func in functions:
        func_vars = [v for v in variables if v.function == func.name]
        if not func_vars:
            continue
        extents = [VariableExtent(v.name, "rbp", v.rbp_offset, max(v.size, 1))
                   for v in func_vars]
        labels = {(e.base, e.offset): v.label for e, v in zip(extents, func_vars)}
        targets = locate_targets(func)
        for group in group_targets(targets, extents, f"real/{func.name}"):
            label = labels[(group.extent.base, group.extent.offset)]
            for target in group.targets:
                vuc = extract_vuc(func, target.index)
                dataset.samples.append(LabeledVuc(
                    tokens=generalize_window(vuc.window),
                    label=label,
                    variable_id=group.variable_id,
                    binary="real/sample", app="sample", compiler="gcc",
                ))
    return dataset


def main() -> None:
    if not toolchain_available():
        print("gcc/objdump/readelf not found - skipping real-binary example")
        sys.exit(0)

    dataset = build_real_dataset()
    groups = dataset.by_variable()
    print(f"real binary: {len(dataset)} VUCs over {len(groups)} variables")
    print("type distribution:", {str(k): v for k, v in dataset.variable_label_counts().items()})

    truth = {vid: vucs[0].label for vid, vucs in groups.items()}
    rule_preds = rules_predict(groups)
    rule_hits = sum(rule_preds[vid] is truth[vid] for vid in rule_preds)
    print(f"\nrule-ladder baseline: {rule_hits}/{len(rule_preds)} variables correct "
          f"({rule_hits / len(rule_preds):.0%})")

    print("\ntraining CATI on synthetic corpus, predicting real variables...")
    from repro.datasets import build_small_corpus

    corpus = build_small_corpus()
    cati = Cati(CatiConfig(epochs=8)).train(corpus.train)
    predictions = cati.predict_variables(
        [s.tokens for s in dataset.samples],
        [s.variable_id for s in dataset.samples],
    )
    hits = sum(p.predicted is truth[p.variable_id] for p in predictions)
    print(f"CATI (synthetic-trained) on real GCC output: {hits}/{len(predictions)} "
          f"({hits / len(predictions):.0%})")
    for p in predictions[:12]:
        mark = "ok " if p.predicted is truth[p.variable_id] else "   "
        print(f"  {mark} {p.variable_id:34s} -> {str(p.predicted):16s} "
              f"(truth: {truth[p.variable_id]})")


if __name__ == "__main__":
    main()
