#!/usr/bin/env python
"""Baseline-comparison scenario: CATI vs DEBIN/TypeMiner/rules.

Reproduces the spirit of §VII-B's comparison at small scale: every
system is trained (where applicable) on the same corpus and evaluated on
the same unseen applications, projected onto the 17-type DEBIN label
set.
"""

from repro.baselines import DebinModel, TypeMinerModel, rules_predict
from repro.core import Cati, CatiConfig, DEBIN_TYPES, to_debin_label
from repro.datasets import build_small_corpus
from repro.eval import accuracy, render_table


def main() -> None:
    corpus = build_small_corpus()
    print(corpus.summary())

    train_groups = corpus.train.by_variable()
    test_groups = corpus.test.by_variable()
    train_labels = {vid: to_debin_label(v[0].label) for vid, v in train_groups.items()}
    test_labels = {vid: to_debin_label(v[0].label) for vid, v in test_groups.items()}

    print("\ntraining CATI...")
    cati = Cati(CatiConfig(epochs=8)).train(corpus.train)
    predictions = cati.predict_variables(
        [s.tokens for s in corpus.test.samples],
        [s.variable_id for s in corpus.test.samples],
    )
    cati_acc = accuracy(
        [test_labels[p.variable_id] for p in predictions],
        [to_debin_label(p.predicted) for p in predictions],
    )

    print("training DEBIN stand-in (dependency graph + ICM)...")
    debin = DebinModel(DEBIN_TYPES).train(train_groups, train_labels)
    debin_out = debin.predict(test_groups)
    debin_acc = accuracy(
        [test_labels[vid] for vid in debin_out],
        [debin_out[vid] for vid in debin_out],
    )

    print("training TypeMiner stand-in (n-grams)...")
    typeminer = TypeMinerModel(DEBIN_TYPES).train(train_groups, train_labels)
    tm_out = typeminer.predict(test_groups)
    tm_acc = accuracy(
        [test_labels[vid] for vid in tm_out],
        [tm_out[vid] for vid in tm_out],
    )

    rule_out = rules_predict(test_groups)
    rules_acc = accuracy(
        [test_labels[vid] for vid in rule_out],
        [to_debin_label(rule_out[vid]) for vid in rule_out],
    )

    print()
    print(render_table(
        ["System", "17-type accuracy"],
        [
            ("CATI (instruction context + voting)", f"{cati_acc:.3f}"),
            ("DEBIN stand-in (no context)", f"{debin_acc:.3f}"),
            ("TypeMiner stand-in (no context)", f"{tm_acc:.3f}"),
            ("Rule ladder (expert knowledge)", f"{rules_acc:.3f}"),
        ],
        title="Variable-type accuracy on unseen applications",
    ))
    print("\npaper's corresponding result: CATI 0.84 vs DEBIN 0.73")
    print("note: at this demo's tiny training scale the CNN is data-starved;")
    print("see EXPERIMENTS.md for the full-corpus comparison and analysis.")


if __name__ == "__main__":
    main()
