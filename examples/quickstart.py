#!/usr/bin/env python
"""Quickstart: build a corpus, train CATI, type a stripped binary.

Runs in ~1 minute on one CPU core.  Walks the full paper pipeline:

1. "compile" a small corpus of synthetic projects with debug info,
2. extract labeled VUCs and train the embedding + six stage CNNs,
3. strip an unseen binary and infer its variables' types,
4. compare against the ground truth the debug info held.
"""

from repro.codegen import GccCompiler, debug_variables, strip
from repro.core import Cati, CatiConfig
from repro.datasets import build_small_corpus
from repro.experiments.speed import extents_from_debug


def main() -> None:
    print("== 1. building corpus (synthetic GCC-style binaries) ==")
    corpus = build_small_corpus()
    print(corpus.summary())

    print("\n== 2. training CATI (Word2Vec + 6 stage CNNs) ==")
    cati = Cati(CatiConfig(epochs=8)).train(corpus.train, verbose=True)

    print("\n== 3. inferring types from an unseen stripped binary ==")
    unseen = GccCompiler().compile_fresh(seed=991, name="unseen", opt_level=1)
    truth = {
        f"unseen/{i}::{('rbp' if r.frame_offset < 0 else 'rsp')}{r.frame_offset:+d}": r
        for i, func in enumerate(unseen.functions)
        for r in debug_variables(unseen) if r.function == func.name
    }
    extents = extents_from_debug(unseen)
    stripped = strip(unseen)
    predictions = cati.infer_binary(stripped, extents)

    print(f"{len(predictions)} variables located and typed:")
    hits = 0
    for pred in predictions[:15]:
        record = truth.get(pred.variable_id)
        true_label = record.type_label if record else "?"
        mark = "ok " if record and record.type_label is pred.predicted else "   "
        hits += bool(record and record.type_label is pred.predicted)
        print(f"  {mark} {pred.variable_id:28s} -> {str(pred.predicted):24s} "
              f"(truth: {true_label}, {pred.n_vucs} VUCs)")
    total_hits = sum(
        1 for p in predictions
        if truth.get(p.variable_id) and truth[p.variable_id].type_label is p.predicted
    )
    print(f"\naccuracy on this binary: {total_hits}/{len(predictions)} "
          f"= {total_hits / len(predictions):.0%}")


if __name__ == "__main__":
    main()
