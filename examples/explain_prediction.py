#!/usr/bin/env python
"""Explainability scenario: occlusion importance (Fig. 6).

Prints the per-instruction ε (eq. 5) for one VUC of one variable in a
stripped binary: re-prediction confidence with each instruction BLANKed
out, relative to the unoccluded confidence.  Small ε = the instruction
mattered; the paper shows the target and its same-type neighbours carry
the prediction.

By default the explanation comes from a *serving daemon*: the script
trains a small model, stands up a local :class:`ServeDaemon`, opens an
analysis session on the stripped binary, and calls the ``explain``
tool.  ``--connect HOST:PORT`` talks to a daemon you already run;
``--offline`` computes the same ε in process.  Both paths render
through :func:`repro.analysis.render.render_epsilons`, so their output
is byte-identical.
"""

import argparse
import tempfile
import threading

from repro.analysis.render import render_epsilons
from repro.codegen import GccCompiler, strip
from repro.core import Cati, CatiConfig
from repro.core.types import ALL_TYPES
from repro.datasets import build_small_corpus
from repro.experiments.speed import extents_from_debug
from repro.serve.client import ServeClient
from repro.vuc.dataset import extract_unlabeled_vucs


def compile_target():
    """The demo binary every mode explains: seed 4242, -O0."""
    binary = GccCompiler().compile_fresh(seed=4242, name="target", opt_level=0)
    return strip(binary), extents_from_debug(binary)


def train_small() -> Cati:
    print("training CATI on a small corpus...")
    corpus = build_small_corpus()
    return Cati(CatiConfig(epochs=8)).train(corpus.train)


def local_daemon(cati: Cati):
    """Save the model to a bundle and serve it from a daemon thread."""
    from repro.serve.server import ServeDaemon

    bundle_dir = tempfile.mkdtemp(prefix="cati-example-")
    cati.save(bundle_dir)
    daemon = ServeDaemon(bundle_dir, host="127.0.0.1", port=0,
                         config=cati.config)
    thread = threading.Thread(target=daemon.run, daemon=True)
    thread.start()
    return daemon, thread


def explain_offline(cati: Cati, stripped, extents) -> tuple[str, str, float, list[str]]:
    """(variable_id, predicted, base confidence, rendered lines) offline.

    Picks the alphabetically-first variable's first VUC — exactly what
    ``session.variables[0]`` + ``vuc=0`` names on the served path (the
    open response sorts variable ids; per-variable VUCs keep extraction
    order), so the two modes explain the same window.
    """
    pairs = extract_unlabeled_vucs(stripped, extents, cati.config.window)
    variable_id = sorted({vid for vid, _tokens in pairs})[0]
    window = next(tokens for vid, tokens in pairs if vid == variable_id)
    batched = cati.engine.occlusion_epsilons_many([window])
    predicted = str(ALL_TYPES[int(batched.predicted_indices[0])])
    base = float(batched.base_confidences[0])
    return variable_id, predicted, base, render_epsilons(window, batched.epsilons[0])


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--offline", action="store_true",
                        help="classic in-process path, no daemon")
    parser.add_argument("--connect", metavar="HOST:PORT", default=None,
                        help="use a running daemon instead of training one")
    args = parser.parse_args()

    stripped, extents = compile_target()

    if args.offline:
        variable_id, predicted, base, lines = explain_offline(
            train_small(), stripped, extents)
    else:
        daemon = thread = None
        if args.connect:
            host, _, port = args.connect.rpartition(":")
            client = ServeClient(host or "127.0.0.1", int(port))
        else:
            daemon, thread = local_daemon(train_small())
            client = ServeClient(daemon.host, daemon.port)
        session = client.session(binary=stripped, extents=extents)
        variable_id = session.variables[0]
        result = session.explain(variable_id, vuc=0)
        predicted, base = result["predicted"], result["base_confidence"]
        lines = result["lines"]
        session.close()
        if daemon is not None:
            daemon.request_shutdown()
            thread.join(timeout=30)

    print(f"\nexplaining one VUC of {variable_id}")
    print(f"predicted: {predicted} (confidence {base:.3f})\n")
    for line in lines:
        print(line)
    print("\n('#' bars mark instructions whose removal hurts the prediction)")


if __name__ == "__main__":
    main()
