#!/usr/bin/env python
"""Explainability scenario: occlusion importance (Fig. 6).

Trains a small CATI, picks one VUC, and prints the per-instruction ε
(eq. 5): re-prediction confidence with each instruction BLANKed out,
relative to the unoccluded confidence.  Small ε = the instruction
mattered; the paper shows the target and its same-type neighbours carry
the prediction.
"""

from repro.core import Cati, CatiConfig
from repro.core.occlusion import occlusion_epsilons
from repro.core.types import TypeName
from repro.datasets import build_small_corpus
from repro.vuc import tokens_to_text


def main() -> None:
    corpus = build_small_corpus()
    print("training CATI...")
    cati = Cati(CatiConfig(epochs=8)).train(corpus.train)

    sample = next(
        (s for s in corpus.test if s.label is TypeName.STRUCT),
        corpus.test.samples[0],
    )
    print(f"\nexplaining one VUC of a variable with true type: {sample.label}")
    result = occlusion_epsilons(cati, sample.tokens)
    from repro.core.types import ALL_TYPES

    print(f"predicted: {ALL_TYPES[result.predicted_index]} "
          f"(confidence {result.base_confidence:.3f})")
    print(f"\n{'epsilon':>8s}  instruction")
    center = len(sample.tokens) // 2
    for position, (eps, tokens) in enumerate(zip(result.epsilons, sample.tokens)):
        marker = "  <= target" if position == center else ""
        bar = "#" * int(max(0.0, (1.0 - min(eps, 1.0))) * 20)
        print(f"{eps:8.4f}  {tokens_to_text(tokens):40s} {bar}{marker}")
    print("\n('#' bars mark instructions whose removal hurts the prediction)")


if __name__ == "__main__":
    main()
