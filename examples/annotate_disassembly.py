#!/usr/bin/env python
"""Reverse-engineering scenario: annotate a stripped binary's listing.

Produces Fig. 2-style output — the raw disassembly with each located
variable instruction annotated with CATI's inferred type — the artifact
a reverse engineer would load into their disassembler's comment stream.
"""

from repro.codegen import GccCompiler, strip
from repro.core import Cati, CatiConfig
from repro.datasets import build_small_corpus
from repro.experiments.speed import extents_from_debug
from repro.vuc import group_targets, locate_targets


def main() -> None:
    print("training CATI on a small corpus...")
    corpus = build_small_corpus()
    cati = Cati(CatiConfig(epochs=8)).train(corpus.train)

    binary = GccCompiler().compile_fresh(seed=4242, name="target", opt_level=0)
    extents = extents_from_debug(binary)
    stripped = strip(binary)
    predictions = {p.variable_id: p for p in cati.infer_binary(stripped, extents)}

    func_index = 0
    func = stripped.functions[func_index]
    targets = locate_targets(func)
    groups = group_targets(targets, extents[func_index], f"{stripped.name}/{func_index}")
    annotation: dict[int, str] = {}
    for group in groups:
        prediction = predictions.get(group.variable_id)
        if prediction is None:
            continue
        for target in group.targets:
            annotation[target.index] = str(prediction.predicted)

    print(f"\n{func.name} (stripped) with inferred types:")
    for index, ins in enumerate(func.instructions):
        note = annotation.get(index, "")
        print(f"  {ins.address:6x}:  {str(ins):42s} {note}")


if __name__ == "__main__":
    main()
