#!/usr/bin/env python
"""Reverse-engineering scenario: annotate a stripped binary's listing.

Produces Fig. 2-style output — the raw disassembly with each located
variable instruction annotated with CATI's inferred type — the artifact
a reverse engineer would load into their disassembler's comment stream.

By default the annotation comes from a *serving daemon*: the script
trains a small model, stands up a local :class:`ServeDaemon`, opens an
analysis session on the stripped binary, and calls the
``annotate_disassembly`` tool — the same round-trip a decompiler plugin
would make.  ``--connect HOST:PORT`` skips the training and talks to a
daemon you already run; ``--offline`` keeps the classic in-process path
(no server at all).  Both paths render through
:mod:`repro.analysis.render`, so their output is byte-identical.
"""

import argparse
import tempfile
import threading

from repro.analysis.render import annotation_variable_ids, render_listing
from repro.codegen import GccCompiler, strip
from repro.core import Cati, CatiConfig
from repro.datasets import build_small_corpus
from repro.experiments.speed import extents_from_debug
from repro.serve.client import ServeClient


def compile_target():
    """The demo binary every mode annotates: seed 4242, -O0."""
    binary = GccCompiler().compile_fresh(seed=4242, name="target", opt_level=0)
    return strip(binary), extents_from_debug(binary)


def train_small() -> Cati:
    print("training CATI on a small corpus...")
    corpus = build_small_corpus()
    return Cati(CatiConfig(epochs=8)).train(corpus.train)


def local_daemon(cati: Cati):
    """Save the model to a bundle and serve it from a daemon thread."""
    from repro.serve.server import ServeDaemon

    bundle_dir = tempfile.mkdtemp(prefix="cati-example-")
    cati.save(bundle_dir)
    daemon = ServeDaemon(bundle_dir, host="127.0.0.1", port=0,
                         config=cati.config)
    thread = threading.Thread(target=daemon.run, daemon=True)
    thread.start()
    return daemon, thread


def annotate_offline(cati: Cati, stripped, extents, func_index: int) -> list[str]:
    predictions = {p.variable_id: str(p.predicted)
                   for p in cati.infer_binary(stripped, extents)}
    ids = annotation_variable_ids(stripped.functions[func_index],
                                  extents[func_index],
                                  f"{stripped.name}/{func_index}")
    annotation = {index: predictions[variable_id]
                  for index, variable_id in ids.items()
                  if variable_id in predictions}
    return render_listing(stripped.functions[func_index], annotation)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--offline", action="store_true",
                        help="classic in-process path, no daemon")
    parser.add_argument("--connect", metavar="HOST:PORT", default=None,
                        help="use a running daemon instead of training one")
    args = parser.parse_args()

    stripped, extents = compile_target()
    func = stripped.functions[0]

    if args.offline:
        lines = annotate_offline(train_small(), stripped, extents, 0)
    else:
        daemon = thread = None
        if args.connect:
            host, _, port = args.connect.rpartition(":")
            client = ServeClient(host or "127.0.0.1", int(port))
        else:
            daemon, thread = local_daemon(train_small())
            client = ServeClient(daemon.host, daemon.port)
        session = client.session(binary=stripped, extents=extents)
        lines = session.annotate_disassembly(function=0)["lines"]
        session.close()
        if daemon is not None:
            daemon.request_shutdown()
            thread.join(timeout=30)

    print(f"\n{func.name} (stripped) with inferred types:")
    for line in lines:
        print(line)


if __name__ == "__main__":
    main()
