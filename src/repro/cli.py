"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``train``       — build a corpus, train CATI, save the model bundle.
* ``infer``       — load a model, compile+strip a seeded demo binary,
                    print inferred variable types against ground truth.
* ``experiment``  — run one paper experiment by name and print its table.
* ``corpus-stats``— print Table I-style statistics for a corpus.
* ``model``       — artifact tooling: ``inspect`` prints a bundle's
                    manifest and verifies its checksums; ``migrate``
                    upgrades a pre-bundle model directory.

``infer`` and ``experiment`` take ``--metrics-out PATH`` to dump the
run's observability report (per-phase spans, engine cache counters,
vote-margin histograms, failure counts — see docs/OPERATIONS.md) as
JSON, and ``--no-metrics`` to switch instrumentation off entirely.

The CLI exists so the system is usable without writing Python; every
command is a thin veneer over the public API.
"""

from __future__ import annotations

import argparse
import json
import sys


def _add_metrics_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write the run's metrics report as JSON")
    parser.add_argument("--no-metrics", action="store_true",
                        help="disable observability instrumentation")


def _apply_metrics_flags(args: argparse.Namespace) -> None:
    if getattr(args, "no_metrics", False):
        from repro.core import observability

        observability.set_enabled(False)


def _dump_metrics(args: argparse.Namespace, failures=None) -> None:
    """Write ``{"metrics": ..., "failures": ...}`` to ``--metrics-out``."""
    path = getattr(args, "metrics_out", None)
    if not path:
        return
    from repro.core import observability
    from repro.core.errors import FailureReport

    report = failures if failures is not None else FailureReport()
    payload = {
        "metrics": observability.snapshot(),
        "failures": report.to_dict(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"metrics report written to {path}")


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.core.config import CatiConfig
    from repro.core.pipeline import Cati
    from repro.datasets.corpus import build_corpus, build_small_corpus

    corpus = build_small_corpus() if args.small else build_corpus()
    print(corpus.summary())
    config = CatiConfig(epochs=args.epochs)
    cati = Cati(config).train(corpus.train, verbose=args.verbose)
    cati.save(args.model_dir)
    print(f"model saved to {args.model_dir}")
    return 0


def _cmd_infer(args: argparse.Namespace) -> int:
    from repro.codegen.compilers import compiler_by_name
    from repro.codegen.strip import strip
    from repro.codegen.binary import debug_variables
    from repro.core.config import CatiConfig
    from repro.core.errors import FailureReport
    from repro.core.pipeline import Cati
    from repro.experiments.speed import extents_from_debug

    _apply_metrics_flags(args)
    config = CatiConfig(job_timeout=args.job_timeout,
                        tool_timeout=args.tool_timeout,
                        metrics_enabled=not args.no_metrics)
    cati = Cati.load(args.model_dir, config=config, warm_start=True)
    compiler = compiler_by_name(args.compiler)
    binary = compiler.compile_fresh(seed=args.seed, name="cli-demo", opt_level=args.opt_level)
    truth = {}
    for func_index, func in enumerate(binary.functions):
        for record in debug_variables(binary):
            if record.function != func.name:
                continue
            base = "rbp" if record.frame_offset < 0 else "rsp"
            truth[f"cli-demo/{func_index}::{base}{record.frame_offset:+d}"] = record.type_label
    failures = FailureReport()
    predictions = cati.infer_binary(strip(binary), extents_from_debug(binary),
                                    on_error=args.on_error, failures=failures)
    hits = 0
    for prediction in predictions:
        true_label = truth.get(prediction.variable_id)
        mark = "ok" if true_label is prediction.predicted else "  "
        hits += true_label is prediction.predicted
        print(f"{mark} {prediction.variable_id:30s} -> {str(prediction.predicted):22s}"
              f" (truth: {true_label}, {prediction.n_vucs} VUCs)")
    if predictions:
        print(f"\naccuracy: {hits}/{len(predictions)} = {hits / len(predictions):.0%}")
    if failures:
        print(f"\nskipped: {failures.summary()}")
        for record in failures:
            where = record.function or record.binary or "?"
            print(f"  [{record.stage}] {where}: {record.kind}: {record.message}")
    _dump_metrics(args, failures)
    return 0


_EXPERIMENTS = (
    "table1", "table3", "table4", "table5", "table6",
    "debin", "fig6", "table7", "compiler-id", "speed", "opt-levels",
)


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.common import get_context

    _apply_metrics_flags(args)
    name = args.name
    if name not in _EXPERIMENTS:
        print(f"unknown experiment {name!r}; choose from {', '.join(_EXPERIMENTS)}")
        return 2
    context = get_context("clang" if name == "table7" else "gcc")
    if name == "table1":
        from repro.experiments import table1

        result = table1.run(context.corpus)
    elif name == "table3":
        from repro.experiments import table3

        result = table3.run(context)
    elif name == "table4":
        from repro.experiments import table4

        result = table4.run(context)
    elif name == "table5":
        from repro.experiments import table5

        result = table5.run(context)
    elif name == "table6":
        from repro.experiments import table6

        result = table6.run(context)
    elif name == "debin":
        from repro.experiments import debin_compare

        result = debin_compare.run(context)
    elif name == "fig6":
        from repro.experiments import fig6

        result = fig6.run(context)
    elif name == "table7":
        from repro.experiments import table7

        result = table7.run(context)
    elif name == "compiler-id":
        from repro.experiments import compiler_id

        result = compiler_id.run(context)
    elif name == "opt-levels":
        from repro.experiments.ablations import run_opt_level_breakdown

        result = run_opt_level_breakdown(context)
    else:  # speed
        from repro.experiments import speed

        result = speed.run(context)
    print(result.render())
    _dump_metrics(args)
    return 0


def _cmd_model_inspect(args: argparse.Namespace) -> int:
    from repro.core.artifacts import ModelBundle
    from repro.core.errors import ArtifactError

    try:
        bundle = ModelBundle.open(args.model_dir)
    except ArtifactError as error:
        print(f"not a readable bundle: {error}", file=sys.stderr)
        return 2
    problems = bundle.problems()
    if args.json:
        print(json.dumps({"manifest": bundle.manifest, "problems": problems},
                         indent=2, sort_keys=True))
    else:
        print(bundle.describe())
        if problems:
            print("\nintegrity: FAILED")
            for problem in problems:
                print(f"  {problem}")
        else:
            print("\nintegrity: OK (all checksums verified)")
    return 1 if problems else 0


def _cmd_model_migrate(args: argparse.Namespace) -> int:
    from repro.core.artifacts import ModelBundle
    from repro.core.config import CatiConfig
    from repro.core.errors import ArtifactError

    config = CatiConfig(window=args.window)
    try:
        bundle = ModelBundle.migrate(args.model_dir, dest=args.dest, config=config)
    except ArtifactError as error:
        print(f"migration failed: {error}", file=sys.stderr)
        return 2
    print(f"migrated {args.model_dir} -> {bundle.directory}")
    print(bundle.describe())
    return 0


def _cmd_corpus_stats(args: argparse.Namespace) -> int:
    from repro.datasets.corpus import build_corpus, build_small_corpus
    from repro.experiments import table1

    corpus = build_small_corpus() if args.small else build_corpus()
    print(table1.run(corpus).render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CATI reproduction: type inference from stripped binaries",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train CATI and save the model")
    train.add_argument("--model-dir", default=".cache/cli-model")
    train.add_argument("--epochs", type=int, default=10)
    train.add_argument("--small", action="store_true", help="use the small test corpus")
    train.add_argument("--verbose", action="store_true")
    train.set_defaults(func=_cmd_train)

    infer = sub.add_parser("infer", help="type a freshly compiled stripped binary")
    infer.add_argument("--model-dir", default=".cache/cli-model")
    infer.add_argument("--compiler", default="gcc", choices=("gcc", "clang"))
    infer.add_argument("--opt-level", type=int, default=1, choices=(0, 1, 2, 3))
    infer.add_argument("--seed", type=int, default=1234)
    infer.add_argument("--on-error", choices=("raise", "skip"), default="raise",
                       help="skip-and-record damaged functions instead of aborting")
    infer.add_argument("--job-timeout", type=float, default=None,
                       help="seconds per worker-pool job (default: wait)")
    infer.add_argument("--tool-timeout", type=float, default=60.0,
                       help="seconds per external tool invocation")
    _add_metrics_flags(infer)
    infer.set_defaults(func=_cmd_infer)

    experiment = sub.add_parser("experiment", help="run one paper experiment")
    experiment.add_argument("name", choices=_EXPERIMENTS)
    _add_metrics_flags(experiment)
    experiment.set_defaults(func=_cmd_experiment)

    stats = sub.add_parser("corpus-stats", help="Table I statistics for a corpus")
    stats.add_argument("--small", action="store_true")
    stats.set_defaults(func=_cmd_corpus_stats)

    model = sub.add_parser("model", help="inspect or migrate saved model artifacts")
    model_sub = model.add_subparsers(dest="model_command", required=True)

    inspect = model_sub.add_parser(
        "inspect", help="print a bundle's manifest and verify its checksums")
    inspect.add_argument("model_dir")
    inspect.add_argument("--json", action="store_true",
                         help="emit the manifest + problems as JSON")
    inspect.set_defaults(func=_cmd_model_inspect)

    migrate = model_sub.add_parser(
        "migrate", help="upgrade a legacy word2vec.npz + stages/ directory to a bundle")
    migrate.add_argument("model_dir")
    migrate.add_argument("--dest", default=None,
                         help="write the bundle here (default: upgrade in place)")
    migrate.add_argument("--window", type=int, default=10,
                         help="context window the legacy model was trained with "
                              "(not recoverable from the arrays; default 10)")
    migrate.set_defaults(func=_cmd_model_migrate)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
