"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``train``       — build a corpus, train CATI, save the model bundle.
* ``infer``       — load a model, compile+strip a seeded demo binary,
                    print inferred variable types against ground truth
                    (``--json`` emits the serve wire schema instead).
* ``serve``       — run the batching inference daemon over a bundle
                    (see :mod:`repro.serve` and docs/OPERATIONS.md §7).
* ``client``      — talk to a running daemon: health, metrics, reload,
                    or a round-trip inference demo.
* ``repl``        — interactive analysis shell over a daemon's session
                    API (``--exec`` scripts it; see :mod:`repro.repl`).
* ``experiment``  — run one paper experiment by name and print its table.
* ``corpus-stats``— print Table I-style statistics for a corpus.
* ``model``       — artifact tooling: ``inspect`` prints a bundle's
                    manifest and verifies its checksums; ``migrate``
                    upgrades a pre-bundle model directory.
* ``batch``       — resumable corpus-scale analysis: ``run`` a job spec
                    to checkpointed shards, ``resume`` an interrupted
                    job, ``status`` a job directory (see
                    :mod:`repro.batch` and docs/OPERATIONS.md §8).

``infer`` and ``experiment`` take ``--metrics-out PATH`` to dump the
run's observability report (per-phase spans, engine cache counters,
vote-margin histograms, failure counts — see docs/OPERATIONS.md) as
JSON, and ``--no-metrics`` to switch instrumentation off entirely.

The CLI exists so the system is usable without writing Python; every
command is a thin veneer over the public API.
"""

from __future__ import annotations

import argparse
import json
import sys


def _add_metrics_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write the run's metrics report as JSON")
    parser.add_argument("--no-metrics", action="store_true",
                        help="disable observability instrumentation")


def _apply_metrics_flags(args: argparse.Namespace) -> None:
    if getattr(args, "no_metrics", False):
        from repro.core import observability

        observability.set_enabled(False)


def _dump_metrics(args: argparse.Namespace, failures=None) -> None:
    """Write ``{"metrics": ..., "failures": ...}`` to ``--metrics-out``."""
    path = getattr(args, "metrics_out", None)
    if not path:
        return
    from repro.core import observability
    from repro.core.errors import FailureReport

    from repro.core.fsutil import atomic_write

    report = failures if failures is not None else FailureReport()
    payload = {
        "metrics": observability.snapshot(),
        "failures": report.to_dict(),
    }
    # Atomic: a crash mid-dump (or a concurrent reader) must never see a
    # truncated report, and a nested path must not require a manual mkdir.
    atomic_write(path, json.dumps(payload, indent=2) + "\n")
    print(f"metrics report written to {path}")


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.core.config import CatiConfig
    from repro.core.pipeline import Cati
    from repro.datasets.corpus import build_corpus, build_small_corpus

    corpus = build_small_corpus() if args.small else build_corpus()
    print(corpus.summary())
    config = CatiConfig(epochs=args.epochs)
    cati = Cati(config).train(corpus.train, verbose=args.verbose)
    cati.save(args.model_dir)
    print(f"model saved to {args.model_dir}")
    return 0


def _config_for_model(model_dir: str, **overrides) -> "CatiConfig":
    """A config for loading ``model_dir`` with runtime knobs overridden.

    For a bundle the manifest's config snapshot is authoritative for
    the structural fields, so start from it and replace only the given
    runtime knobs — a CLI built from defaults must load bundles trained
    with any architecture. Legacy directories get plain defaults.
    """
    import dataclasses

    from repro.core.artifacts import ModelBundle
    from repro.core.config import CatiConfig

    if ModelBundle.is_bundle(model_dir):
        saved = ModelBundle.open(model_dir).saved_config()
        return dataclasses.replace(saved, **overrides)
    return CatiConfig(**overrides)


def _cmd_infer(args: argparse.Namespace) -> int:
    from repro.codegen.compilers import compiler_by_name
    from repro.codegen.strip import strip
    from repro.codegen.binary import debug_variables
    from repro.core.errors import FailureReport
    from repro.core.pipeline import Cati
    from repro.experiments.speed import extents_from_debug

    _apply_metrics_flags(args)
    config = _config_for_model(args.model_dir,
                               job_timeout=args.job_timeout,
                               tool_timeout=args.tool_timeout,
                               metrics_enabled=not args.no_metrics)
    cati = Cati.load(args.model_dir, config=config, warm_start=True)
    compiler = compiler_by_name(args.compiler)
    binary = compiler.compile_fresh(seed=args.seed, name="cli-demo", opt_level=args.opt_level)
    truth = {}
    for func_index, func in enumerate(binary.functions):
        for record in debug_variables(binary):
            if record.function != func.name:
                continue
            base = "rbp" if record.frame_offset < 0 else "rsp"
            truth[f"cli-demo/{func_index}::{base}{record.frame_offset:+d}"] = record.type_label
    failures = FailureReport()
    structs = True if getattr(args, "structs", False) else None
    predictions = cati.infer_binary(strip(binary), extents_from_debug(binary),
                                    on_error=args.on_error, failures=failures,
                                    structs=structs)
    if getattr(args, "json", False):
        import repro
        from repro.serve.protocol import build_infer_response

        model = {
            "bundle": args.model_dir,
            "repro_version": repro.__version__,
            "provenance": dict(cati.provenance or {}),
        }
        print(json.dumps(build_infer_response(
            list(predictions), failures, model=model, binary="cli-demo",
            layouts=predictions.layouts),
            indent=2))
        _dump_metrics(args, failures)
        return 0
    hits = 0
    for prediction in predictions:
        true_label = truth.get(prediction.variable_id)
        mark = "ok" if true_label is prediction.predicted else "  "
        hits += true_label is prediction.predicted
        print(f"{mark} {prediction.variable_id:30s} -> {str(prediction.predicted):22s}"
              f" (truth: {true_label}, {prediction.n_vucs} VUCs)")
    if predictions:
        print(f"\naccuracy: {hits}/{len(predictions)} = {hits / len(predictions):.0%}")
    if predictions.layouts is not None:
        from repro.eval.reports import render_layouts

        print()
        print(render_layouts(predictions.layouts, title="recovered struct layouts"))
    if failures:
        print(f"\nskipped: {failures.summary()}")
        for record in failures:
            where = record.function or record.binary or "?"
            print(f"  [{record.stage}] {where}: {record.kind}: {record.message}")
    _dump_metrics(args, failures)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    _apply_metrics_flags(args)
    config = _config_for_model(args.model_dir,
                               metrics_enabled=not args.no_metrics,
                               serve_max_batch=args.max_batch,
                               serve_max_delay_ms=args.max_delay_ms,
                               session_ttl_s=args.session_ttl_s,
                               session_max_bytes=args.session_max_bytes,
                               serve_workers=(args.workers
                                              if args.workers is not None
                                              else 0))
    workers = config.resolved_serve_workers()
    # mmap default: on for the pre-fork router (that is the point of the
    # shared mirror), off for the classic in-process daemon unless asked.
    mmap = args.mmap if args.mmap is not None else workers > 1
    if workers <= 1:
        # Today's in-process daemon: one process, one engine, no router.
        from repro.serve.server import ServeDaemon

        daemon = ServeDaemon(
            args.model_dir,
            host=args.host,
            port=args.port,
            config=config,
            queue_limit=args.queue_limit,
            default_deadline_s=args.deadline_s,
            default_on_error=args.on_error,
            watch=args.watch,
            watch_interval_s=args.watch_interval,
            verbose=args.verbose,
            mmap=mmap,
        )
    else:
        from repro.serve.router import RouterDaemon

        daemon = RouterDaemon(
            args.model_dir,
            host=args.host,
            port=args.port,
            workers=workers,
            config=config,
            queue_limit=args.queue_limit,
            default_deadline_s=args.deadline_s,
            default_on_error=args.on_error,
            watch=args.watch,
            watch_interval_s=args.watch_interval,
            verbose=args.verbose,
            mmap=mmap,
        )
    daemon.install_signal_handlers()
    try:
        return daemon.run()
    finally:
        _dump_metrics(args)


def _cmd_repl(args: argparse.Namespace) -> int:
    from repro.repl import run_repl

    return run_repl(args.host, args.port, timeout=args.timeout,
                    exec_commands=args.exec_commands)


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeClient, ServeClientError

    client = ServeClient(args.host, args.port, timeout=args.timeout)
    try:
        if args.client_command == "health":
            print(json.dumps(client.health(), indent=2))
        elif args.client_command == "metrics":
            print(json.dumps(client.metrics(), indent=2))
        elif args.client_command == "reload":
            print(json.dumps(client.reload(args.new_model_dir), indent=2))
        else:  # infer: compile the demo locally, upload it, score vs truth
            return _client_infer(args, client)
    except ServeClientError as error:
        print(f"request failed: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"cannot reach {args.host}:{args.port}: {error}", file=sys.stderr)
        return 2
    return 0


def _client_infer(args: argparse.Namespace, client) -> int:
    from repro.codegen.binary import debug_variables
    from repro.codegen.compilers import compiler_by_name
    from repro.codegen.strip import strip
    from repro.experiments.speed import extents_from_debug

    compiler = compiler_by_name(args.compiler)
    binary = compiler.compile_fresh(seed=args.seed, name="cli-demo",
                                    opt_level=args.opt_level)
    truth = {}
    for func_index, func in enumerate(binary.functions):
        for record in debug_variables(binary):
            if record.function != func.name:
                continue
            base = "rbp" if record.frame_offset < 0 else "rsp"
            truth[f"cli-demo/{func_index}::{base}{record.frame_offset:+d}"] = record.type_label
    response = client.infer_binary(strip(binary), extents_from_debug(binary),
                                   on_error=args.on_error)
    if args.json:
        print(json.dumps(response, indent=2))
        return 0
    hits = 0
    for prediction in response["predictions"]:
        true_label = truth.get(prediction["variable_id"])
        match = true_label is not None and str(true_label) == prediction["type"]
        hits += match
        mark = "ok" if match else "  "
        print(f"{mark} {prediction['variable_id']:30s} -> {prediction['type']:22s}"
              f" (truth: {true_label}, {prediction['n_vucs']} VUCs)")
    if response["predictions"]:
        n = len(response["predictions"])
        print(f"\naccuracy: {hits}/{n} = {hits / n:.0%}")
    model = response.get("model", {})
    print(f"served by generation {model.get('generation')} "
          f"(repro {model.get('repro_version')})")
    return 0


_EXPERIMENTS = (
    "table1", "table3", "table4", "table5", "table6",
    "debin", "fig6", "table7", "compiler-id", "speed", "opt-levels",
)


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.common import get_context

    _apply_metrics_flags(args)
    name = args.name
    if name not in _EXPERIMENTS:
        print(f"unknown experiment {name!r}; choose from {', '.join(_EXPERIMENTS)}")
        return 2
    context = get_context("clang" if name == "table7" else "gcc")
    if name == "table1":
        from repro.experiments import table1

        result = table1.run(context.corpus)
    elif name == "table3":
        from repro.experiments import table3

        result = table3.run(context)
    elif name == "table4":
        from repro.experiments import table4

        result = table4.run(context)
    elif name == "table5":
        from repro.experiments import table5

        result = table5.run(context)
    elif name == "table6":
        from repro.experiments import table6

        result = table6.run(context)
    elif name == "debin":
        from repro.experiments import debin_compare

        result = debin_compare.run(context)
    elif name == "fig6":
        from repro.experiments import fig6

        result = fig6.run(context)
    elif name == "table7":
        from repro.experiments import table7

        result = table7.run(context)
    elif name == "compiler-id":
        from repro.experiments import compiler_id

        result = compiler_id.run(context)
    elif name == "opt-levels":
        from repro.experiments.ablations import run_opt_level_breakdown

        result = run_opt_level_breakdown(context)
    else:  # speed
        from repro.experiments import speed

        result = speed.run(context)
    print(result.render())
    _dump_metrics(args)
    return 0


def _cmd_model_inspect(args: argparse.Namespace) -> int:
    from repro.core.artifacts import ModelBundle
    from repro.core.errors import ArtifactError

    try:
        bundle = ModelBundle.open(args.model_dir)
    except ArtifactError as error:
        print(f"not a readable bundle: {error}", file=sys.stderr)
        return 2
    problems = bundle.problems()
    if args.json:
        print(json.dumps({"manifest": bundle.manifest, "problems": problems},
                         indent=2, sort_keys=True))
    else:
        print(bundle.describe())
        if problems:
            print("\nintegrity: FAILED")
            for problem in problems:
                print(f"  {problem}")
        else:
            print("\nintegrity: OK (all checksums verified)")
    return 1 if problems else 0


def _cmd_model_migrate(args: argparse.Namespace) -> int:
    from repro.core.artifacts import ModelBundle
    from repro.core.config import CatiConfig
    from repro.core.errors import ArtifactError

    config = CatiConfig(window=args.window)
    try:
        bundle = ModelBundle.migrate(args.model_dir, dest=args.dest, config=config)
    except ArtifactError as error:
        print(f"migration failed: {error}", file=sys.stderr)
        return 2
    print(f"migrated {args.model_dir} -> {bundle.directory}")
    print(bundle.describe())
    return 0


def _print_batch_results(results: dict) -> None:
    shards = results["shards"]
    print(f"items: {results['items']}  predictions: {results['n_predictions']}  "
          f"shards: {shards['total']} total, {results['shards_run']} run, "
          f"{results['shards_reused']} reused from checkpoints, "
          f"{len(shards['quarantined'])} quarantined")
    failures = results["failures"]
    if failures["total"]:
        print(f"skipped/failed: {failures['total']} "
              f"(by stage: {failures['by_stage']})")
    cache = results.get("window_cache")
    if cache:
        print(f"window cache: {cache['hits']} hits, {cache['misses']} misses, "
              f"{cache['appends']} appended, "
              f"{cache['corrupt_records']} corrupt record(s) recomputed")
    print(f"elapsed: {results['elapsed_s']:.2f}s")


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.batch import (
        JobSpec,
        demo_corpus,
        job_status,
        load_manifest,
        resume_job,
        run_job,
    )
    from repro.core.errors import CatiError

    _apply_metrics_flags(args)
    try:
        if args.batch_command == "status":
            status = job_status(args.job_dir)
            if args.json:
                print(json.dumps(status, indent=2, sort_keys=True))
            else:
                shards = status["shards"]
                state = "complete" if status["complete"] else "in progress"
                print(f"job {status['job_dir']} ({state}): "
                      f"{shards['committed']}/{shards['total']} shard(s) "
                      f"committed, {len(shards['pending'])} pending, "
                      f"{len(shards['invalid'])} invalid (will recompute), "
                      f"{len(shards['quarantined'])} quarantined")
            return 0
        if args.batch_command == "resume":
            results = resume_job(args.job_dir, model_dir=args.model_dir,
                                 force=args.force)
        else:  # run
            if args.manifest:
                items = load_manifest(args.manifest)
            else:
                items = demo_corpus(args.demo_corpus,
                                    compiler=args.compiler,
                                    opt_level=args.opt_level,
                                    base_seed=args.base_seed)
            spec = JobSpec(items=items, shard_size=args.shard_size,
                           on_error=args.on_error,
                           max_retries=args.max_retries, seed=args.seed,
                           structs=args.structs)
            cache_dir = None if args.no_cache else args.cache_dir
            config = None
            if args.model_dir:
                config = _config_for_model(
                    args.model_dir, metrics_enabled=not args.no_metrics)
            results = run_job(args.job_dir, spec, model_dir=args.model_dir,
                              config=config, cache_dir=cache_dir)
    except CatiError as error:
        print(f"batch {args.batch_command} failed: {error}", file=sys.stderr)
        return 2
    _print_batch_results(results)
    _dump_metrics(args)
    return 0


def _cmd_corpus_stats(args: argparse.Namespace) -> int:
    from repro.datasets.corpus import build_corpus, build_small_corpus
    from repro.experiments import table1

    corpus = build_small_corpus() if args.small else build_corpus()
    print(table1.run(corpus).render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CATI reproduction: type inference from stripped binaries",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train CATI and save the model")
    train.add_argument("--model-dir", default=".cache/cli-model")
    train.add_argument("--epochs", type=int, default=10)
    train.add_argument("--small", action="store_true", help="use the small test corpus")
    train.add_argument("--verbose", action="store_true")
    train.set_defaults(func=_cmd_train)

    infer = sub.add_parser("infer", help="type a freshly compiled stripped binary")
    infer.add_argument("--model-dir", default=".cache/cli-model")
    infer.add_argument("--compiler", default="gcc", choices=("gcc", "clang"))
    infer.add_argument("--opt-level", type=int, default=1, choices=(0, 1, 2, 3))
    infer.add_argument("--seed", type=int, default=1234)
    infer.add_argument("--on-error", choices=("raise", "skip"), default="raise",
                       help="skip-and-record damaged functions instead of aborting")
    infer.add_argument("--job-timeout", type=float, default=None,
                       help="seconds per worker-pool job (default: wait)")
    infer.add_argument("--tool-timeout", type=float, default=60.0,
                       help="seconds per external tool invocation")
    infer.add_argument("--structs", action="store_true",
                       help="also run the posterior struct-layout recovery stage "
                            "and print/emit recovered layouts")
    infer.add_argument("--json", action="store_true",
                       help="emit the serve wire schema (cati-infer-response/2) "
                            "instead of the human-readable table")
    _add_metrics_flags(infer)
    infer.set_defaults(func=_cmd_infer)

    serve = sub.add_parser(
        "serve", help="run the batching inference daemon over a model bundle")
    serve.add_argument("--model-dir", default=".cache/cli-model")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8417,
                       help="listen port (0 picks a free one and prints it)")
    serve.add_argument("--workers", type=int, default=None,
                       help="worker processes behind the router "
                            "(default: min(cores, 4); 1 = classic "
                            "in-process daemon)")
    serve.add_argument("--mmap", action=argparse.BooleanOptionalAction,
                       default=None,
                       help="memory-map bundle payloads via the shared "
                            ".npy mirror (default: on with workers > 1)")
    serve.add_argument("--queue-limit", type=int, default=64,
                       help="pending requests beyond this are answered 503")
    serve.add_argument("--max-batch", type=int, default=4096,
                       help="max VUC windows coalesced per engine call")
    serve.add_argument("--max-delay-ms", type=float, default=5.0,
                       help="max wait to coalesce concurrent requests")
    serve.add_argument("--deadline-s", type=float, default=None,
                       help="default per-request deadline (504 past it)")
    serve.add_argument("--on-error", choices=("raise", "skip"), default="skip",
                       help="default per-request degradation policy")
    serve.add_argument("--session-ttl-s", type=float, default=600.0,
                       help="idle seconds before an analysis session expires")
    serve.add_argument("--session-max-bytes", type=int,
                       default=256 * 1024 * 1024,
                       help="per-worker session-store byte budget "
                            "(LRU eviction past it)")
    serve.add_argument("--watch", action="store_true",
                       help="poll the bundle dir and hot-reload on change")
    serve.add_argument("--watch-interval", type=float, default=2.0,
                       help="seconds between --watch polls")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request")
    _add_metrics_flags(serve)
    serve.set_defaults(func=_cmd_serve)

    client = sub.add_parser("client", help="talk to a running serve daemon")
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, default=8417)
    client.add_argument("--timeout", type=float, default=300.0)
    client_sub = client.add_subparsers(dest="client_command", required=True)
    client_sub.add_parser("health", help="GET /healthz")
    client_sub.add_parser("metrics", help="GET /metricsz")
    reload_cmd = client_sub.add_parser("reload", help="POST /v1/reload")
    reload_cmd.add_argument("--new-model-dir", default=None,
                            help="switch the daemon to this bundle "
                                 "(default: re-read its current one)")
    client_infer = client_sub.add_parser(
        "infer", help="compile a demo binary locally, type it via the daemon")
    client_infer.add_argument("--compiler", default="gcc",
                              choices=("gcc", "clang"))
    client_infer.add_argument("--opt-level", type=int, default=1,
                              choices=(0, 1, 2, 3))
    client_infer.add_argument("--seed", type=int, default=1234)
    client_infer.add_argument("--on-error", choices=("raise", "skip"),
                              default="raise")
    client_infer.add_argument("--json", action="store_true",
                              help="print the raw response body")
    client.set_defaults(func=_cmd_client)

    repl = sub.add_parser(
        "repl", help="interactive analysis shell over a daemon's session API")
    repl.add_argument("--host", default="127.0.0.1")
    repl.add_argument("--port", type=int, default=8417)
    repl.add_argument("--timeout", type=float, default=300.0)
    repl.add_argument("--exec", dest="exec_commands", default=None,
                      metavar="COMMANDS",
                      help="run a ';'-separated command list and exit "
                           "(non-zero on the first failure)")
    repl.set_defaults(func=_cmd_repl)

    experiment = sub.add_parser("experiment", help="run one paper experiment")
    experiment.add_argument("name", choices=_EXPERIMENTS)
    _add_metrics_flags(experiment)
    experiment.set_defaults(func=_cmd_experiment)

    batch = sub.add_parser(
        "batch", help="resumable corpus-scale analysis over checkpointed shards")
    batch_sub = batch.add_subparsers(dest="batch_command", required=True)

    batch_run = batch_sub.add_parser(
        "run", help="create a job from a corpus manifest and run it")
    batch_run.add_argument("--job-dir", required=True,
                           help="fresh directory for the job's durable state")
    batch_run.add_argument("--model-dir", default=".cache/cli-model")
    batch_run.add_argument("--manifest", default=None,
                           help="corpus manifest JSON (see docs/OPERATIONS.md §8)")
    batch_run.add_argument("--demo-corpus", type=int, default=0, metavar="N",
                           help="instead of --manifest: N seeded demo binaries")
    batch_run.add_argument("--compiler", default="gcc", choices=("gcc", "clang"),
                           help="toolchain for --demo-corpus items")
    batch_run.add_argument("--opt-level", type=int, default=1, choices=(0, 1, 2, 3))
    batch_run.add_argument("--base-seed", type=int, default=100,
                           help="first codegen seed for --demo-corpus items")
    batch_run.add_argument("--shard-size", type=int, default=4,
                           help="binaries per checkpointed shard")
    batch_run.add_argument("--on-error", choices=("raise", "skip"), default="skip",
                           help="per-shard failure policy")
    batch_run.add_argument("--max-retries", type=int, default=1,
                           help="re-tries per shard before quarantine")
    batch_run.add_argument("--seed", type=int, default=0,
                           help="seeds the retry-backoff jitter (determinism)")
    batch_run.add_argument("--structs", action="store_true",
                           help="run the posterior struct-layout recovery "
                                "stage on every item (layouts land in the "
                                "checkpoints and merged results)")
    batch_run.add_argument("--cache-dir", default=".cache/window-cache",
                           help="durable window cache location")
    batch_run.add_argument("--no-cache", action="store_true",
                           help="disable the durable window cache")
    _add_metrics_flags(batch_run)
    batch_run.set_defaults(func=_cmd_batch)

    batch_resume = batch_sub.add_parser(
        "resume", help="resume an interrupted job from its checkpoints")
    batch_resume.add_argument("--job-dir", required=True)
    batch_resume.add_argument("--model-dir", default=None,
                              help="override the recorded model (drift-checked)")
    batch_resume.add_argument("--force", action="store_true",
                              help="accept model/config drift; stale "
                                   "checkpoints are recomputed")
    _add_metrics_flags(batch_resume)
    batch_resume.set_defaults(func=_cmd_batch)

    batch_status = batch_sub.add_parser(
        "status", help="summarize a job directory's checkpoint state")
    batch_status.add_argument("--job-dir", required=True)
    batch_status.add_argument("--json", action="store_true")
    batch_status.set_defaults(func=_cmd_batch)

    stats = sub.add_parser("corpus-stats", help="Table I statistics for a corpus")
    stats.add_argument("--small", action="store_true")
    stats.set_defaults(func=_cmd_corpus_stats)

    model = sub.add_parser("model", help="inspect or migrate saved model artifacts")
    model_sub = model.add_subparsers(dest="model_command", required=True)

    inspect = model_sub.add_parser(
        "inspect", help="print a bundle's manifest and verify its checksums")
    inspect.add_argument("model_dir")
    inspect.add_argument("--json", action="store_true",
                         help="emit the manifest + problems as JSON")
    inspect.set_defaults(func=_cmd_model_inspect)

    migrate = model_sub.add_parser(
        "migrate", help="upgrade a legacy word2vec.npz + stages/ directory to a bundle")
    migrate.add_argument("model_dir")
    migrate.add_argument("--dest", default=None,
                         help="write the bundle here (default: upgrade in place)")
    migrate.add_argument("--window", type=int, default=10,
                         help="context window the legacy model was trained with "
                              "(not recoverable from the arrays; default 10)")
    migrate.set_defaults(func=_cmd_model_migrate)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
