"""Corpus construction: projects → compiled binaries → labeled VUCs.

The paper builds every project at -O0..-O3 with one compiler (§VII-A);
:func:`build_corpus` does the same over the synthetic projects.  Corpus
size is controlled by ``opt_levels`` and each profile's ``n_binaries``,
so tests can run on tiny corpora while benches use the full thing.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.codegen.binary import Binary
from repro.codegen.compilers import Compiler, GccCompiler
from repro.datasets.projects import TEST_PROJECTS, TRAINING_PROJECTS, ProjectProfile
from repro.vuc.dataset import VucDataset, extract_labeled_vucs


@dataclass
class Corpus:
    """Train + test VUC datasets plus the binaries they came from."""

    train: VucDataset
    test: VucDataset
    train_binaries: list[Binary]
    test_binaries: list[Binary]

    def summary(self) -> str:
        return (
            f"train: {len(self.train)} VUCs / {self.train.n_variables()} variables "
            f"({len(self.train_binaries)} binaries); "
            f"test: {len(self.test)} VUCs / {self.test.n_variables()} variables "
            f"({len(self.test_binaries)} binaries)"
        )


def build_project_binaries(
    profile: ProjectProfile,
    compiler: Compiler,
    opt_levels: Sequence[int] = (0, 1, 2, 3),
) -> list[Binary]:
    """Compile every binary of one project at every optimization level."""
    config = profile.generator_config()
    binaries = []
    for binary_index in range(profile.n_binaries):
        for opt_level in opt_levels:
            binaries.append(compiler.compile_fresh(
                seed=profile.seed * 1000 + binary_index,
                name=f"{profile.name}-{binary_index}",
                opt_level=opt_level,
                config=config,
            ))
    return binaries


def build_dataset(
    profiles: Sequence[ProjectProfile],
    compiler: Compiler,
    opt_levels: Sequence[int] = (0, 1, 2, 3),
    window: int = 10,
) -> tuple[VucDataset, list[Binary]]:
    """Extract one labeled dataset over many projects."""
    dataset = VucDataset(window=window)
    binaries: list[Binary] = []
    for profile in profiles:
        for binary in build_project_binaries(profile, compiler, opt_levels):
            dataset.extend(extract_labeled_vucs(binary, app=profile.name, window=window))
            binaries.append(binary)
    return dataset, binaries


def build_corpus(
    compiler: Compiler | None = None,
    opt_levels: Sequence[int] = (0, 1, 2, 3),
    train_profiles: Sequence[ProjectProfile] = TRAINING_PROJECTS,
    test_profiles: Sequence[ProjectProfile] = TEST_PROJECTS,
    window: int = 10,
) -> Corpus:
    """The full train/test corpus used by the experiment harness.

    Test applications are disjoint from training projects, matching the
    paper's unseen-binaries evaluation.
    """
    compiler = compiler or GccCompiler()
    train, train_binaries = build_dataset(train_profiles, compiler, opt_levels, window)
    test, test_binaries = build_dataset(test_profiles, compiler, opt_levels, window)
    return Corpus(
        train=train,
        test=test,
        train_binaries=train_binaries,
        test_binaries=test_binaries,
    )


def build_small_corpus(window: int = 10) -> Corpus:
    """A fast corpus for tests: 2 projects x 1 binary x -O0/-O2."""
    small_train = tuple(TRAINING_PROJECTS[:2])
    small_test = tuple(TEST_PROJECTS[:2])
    resized_train = [
        ProjectProfile(p.name, p.seed, 1, dict(p.weight_overrides), p.size_scale)
        for p in small_train
    ]
    resized_test = [
        ProjectProfile(p.name, p.seed, 1, dict(p.weight_overrides), p.size_scale)
        for p in small_test
    ]
    return build_corpus(
        opt_levels=(0, 2),
        train_profiles=resized_train,
        test_profiles=resized_test,
        window=window,
    )
