"""Corpus management: project profiles matching the paper's application
list and train/test dataset assembly.
"""

from repro.datasets.corpus import (
    Corpus,
    build_corpus,
    build_dataset,
    build_project_binaries,
    build_small_corpus,
)
from repro.datasets.projects import (
    TEST_APP_NAMES,
    TEST_PROJECTS,
    TRAINING_PROJECTS,
    ProjectProfile,
    profile_by_name,
)

__all__ = [
    "Corpus",
    "build_corpus",
    "build_dataset",
    "build_project_binaries",
    "build_small_corpus",
    "TEST_APP_NAMES",
    "TEST_PROJECTS",
    "TRAINING_PROJECTS",
    "ProjectProfile",
    "profile_by_name",
]
