"""Project profiles: the synthetic stand-ins for the paper's corpus.

Training projects mirror §VII-A's list (OS tools, network programs,
computationally intensive programs, R/Python-style mixed projects); the
twelve test applications are the ones Tables III/IV/VI report.  Each
profile tweaks the base type distribution the way the real project's
domain does — R is float-heavy, grep/sed are char-buffer-heavy, gzip is
unsigned-heavy — which is what creates the per-application accuracy
spread the paper observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.types import TypeName
from repro.codegen.progen import DEFAULT_TYPE_WEIGHTS, GeneratorConfig


@dataclass(frozen=True)
class ProjectProfile:
    """One project: name, corpus role, size and distribution tweaks."""

    name: str
    seed: int
    n_binaries: int
    weight_overrides: dict[TypeName, float] = field(default_factory=dict)
    size_scale: float = 1.0     # multiplies functions-per-binary

    def generator_config(self) -> GeneratorConfig:
        weights = dict(DEFAULT_TYPE_WEIGHTS)
        weights.update(self.weight_overrides)
        config = GeneratorConfig(type_weights=weights)
        if self.size_scale != 1.0:
            low, high = config.functions_per_binary
            config.functions_per_binary = (
                max(2, int(low * self.size_scale)),
                max(3, int(high * self.size_scale)),
            )
        return config


#: Training-side projects (§VII-A's categories).
TRAINING_PROJECTS: tuple[ProjectProfile, ...] = (
    ProjectProfile("coreutils", seed=101, n_binaries=4),
    ProjectProfile("binutils", seed=102, n_binaries=4,
                   weight_overrides={TypeName.STRUCT_POINTER: 26.0}),
    ProjectProfile("gcc", seed=103, n_binaries=4,
                   weight_overrides={TypeName.ENUM: 4.0, TypeName.STRUCT: 7.0}),
    ProjectProfile("php", seed=104, n_binaries=3,
                   weight_overrides={TypeName.VOID_POINTER: 5.0}),
    ProjectProfile("nginx", seed=105, n_binaries=3,
                   weight_overrides={TypeName.STRUCT_POINTER: 28.0, TypeName.UNSIGNED_INT: 3.0}),
    ProjectProfile("xpdf", seed=106, n_binaries=3,
                   weight_overrides={TypeName.DOUBLE: 7.0, TypeName.FLOAT: 0.6}),
    ProjectProfile("zlib", seed=107, n_binaries=2,
                   weight_overrides={TypeName.UNSIGNED_CHAR: 2.0, TypeName.LONG_UNSIGNED_INT: 8.0}),
    ProjectProfile("python", seed=108, n_binaries=3,
                   weight_overrides={TypeName.DOUBLE: 5.0, TypeName.LONG_INT: 7.0}),
)

#: The 12 test applications of Tables III/IV/VI.
TEST_PROJECTS: tuple[ProjectProfile, ...] = (
    ProjectProfile("bash", seed=201, n_binaries=2,
                   weight_overrides={TypeName.CHAR: 3.5, TypeName.INT: 26.0}),
    ProjectProfile("bison", seed=202, n_binaries=2,
                   weight_overrides={TypeName.ENUM: 4.5, TypeName.STRUCT: 7.0}),
    ProjectProfile("cflow", seed=203, n_binaries=1,
                   weight_overrides={TypeName.STRUCT_POINTER: 25.0}),
    ProjectProfile("gawk", seed=204, n_binaries=2,
                   weight_overrides={TypeName.DOUBLE: 5.0, TypeName.CHAR: 3.0}),
    ProjectProfile("grep", seed=205, n_binaries=1,
                   weight_overrides={TypeName.CHAR: 4.5, TypeName.UNSIGNED_CHAR: 1.2}),
    ProjectProfile("gzip", seed=206, n_binaries=1, size_scale=0.7,
                   weight_overrides={TypeName.UNSIGNED_INT: 4.0, TypeName.FLOAT: 0.0,
                                     TypeName.DOUBLE: 0.0, TypeName.LONG_DOUBLE: 0.0}),
    ProjectProfile("inetutils", seed=207, n_binaries=3,
                   weight_overrides={TypeName.STRUCT_POINTER: 26.0, TypeName.VOID_POINTER: 4.0}),
    ProjectProfile("less", seed=208, n_binaries=1, size_scale=0.8),
    ProjectProfile("nano", seed=209, n_binaries=1,
                   weight_overrides={TypeName.FLOAT: 0.0, TypeName.DOUBLE: 0.0,
                                     TypeName.LONG_DOUBLE: 0.0, TypeName.BOOL: 2.5}),
    ProjectProfile("R", seed=210, n_binaries=4, size_scale=1.4,
                   weight_overrides={TypeName.DOUBLE: 9.0, TypeName.FLOAT: 0.5,
                                     TypeName.LONG_DOUBLE: 0.6, TypeName.STRUCT_POINTER: 24.0}),
    ProjectProfile("sed", seed=211, n_binaries=1, size_scale=0.8,
                   weight_overrides={TypeName.CHAR: 4.0, TypeName.FLOAT: 0.0,
                                     TypeName.DOUBLE: 0.0, TypeName.LONG_DOUBLE: 0.0}),
    ProjectProfile("wget", seed=212, n_binaries=2,
                   weight_overrides={TypeName.STRUCT_POINTER: 24.0, TypeName.CHAR: 3.0}),
)

TEST_APP_NAMES: tuple[str, ...] = tuple(p.name for p in TEST_PROJECTS)


def profile_by_name(name: str) -> ProjectProfile:
    for profile in TRAINING_PROJECTS + TEST_PROJECTS:
        if profile.name == name:
            return profile
    raise KeyError(f"unknown project {name!r}")
