"""Shared experiment context: one trained CATI per corpus, cached on disk.

Every table/figure bench needs the same expensive artifacts — the
compiled corpus and the trained pipeline.  ``get_context()`` builds them
once and caches the trained models under ``.cache/`` at the repository
root (corpora are deterministic and rebuild in seconds; model training
is what gets cached).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.codegen.compilers import ClangCompiler, Compiler, GccCompiler
from repro.core.artifacts import ModelBundle
from repro.core.config import CatiConfig
from repro.core.pipeline import Cati
from repro.core.types import STAGE_SPECS, Stage, TypeName, stage_label
from repro.core.voting import clip_confidences
from repro.datasets.corpus import Corpus, build_corpus
from repro.datasets.projects import TEST_PROJECTS, TRAINING_PROJECTS
from repro.eval.metrics import Report, evaluate
from repro.vuc.dataset import LabeledVuc, VucDataset

#: Cache directory for trained models (overridable for tests).
CACHE_ROOT = Path(os.environ.get("REPRO_CACHE", Path(__file__).resolve().parents[3] / ".cache"))

#: Training-set VUC budget; keeps a full context build to minutes on 1 CPU.
TRAIN_BUDGET = 30_000


@dataclass
class ExperimentContext:
    """Corpus + trained system, shared across experiments."""

    corpus: Corpus
    cati: Cati
    config: CatiConfig
    compiler_name: str


_MEMORY_CACHE: dict[str, ExperimentContext] = {}


def default_config() -> CatiConfig:
    return CatiConfig(epochs=14, class_weighting=False)


def _build_corpus(compiler: Compiler) -> Corpus:
    corpus = build_corpus(compiler=compiler)
    corpus.train = corpus.train.subsample(TRAIN_BUDGET, seed=7)
    return corpus


def _load_cached_model(cache_dir: Path, config: CatiConfig) -> Cati | None:
    """A verified model from the cache, or None when a retrain is due.

    The cache is trusted only when it is a :class:`ModelBundle` whose
    manifest parses (current schema) and whose checksums all hold —
    corrupt, tampered, or stale-schema caches retrain exactly as a
    missing cache does.  A pre-bundle (legacy) cache is loaded once and
    upgraded to a bundle in place.
    """
    if ModelBundle.is_bundle(cache_dir):
        try:
            bundle = ModelBundle.open(cache_dir)
            bundle.verify()
            return Cati.load(str(cache_dir), config, warm_start=True)
        except Exception as error:  # corrupt/stale cache -> retrain
            print(f"[context] cached model failed verification ({error!r}); retraining")
            return None
    if ModelBundle.is_legacy(cache_dir):
        try:
            cati = Cati.load(str(cache_dir), config)
            cati.save(str(cache_dir))
            print(f"[context] migrated legacy model cache {cache_dir} to a bundle")
            return cati
        except Exception as error:
            print(f"[context] legacy cache unreadable ({error!r}); retraining")
    return None


def get_context(compiler_name: str = "gcc", refresh: bool = False) -> ExperimentContext:
    """The shared trained context for one compiler's corpus.

    Training happens once; the trained embedding + stage models are
    cached as a verified model bundle under ``.cache/cati-<compiler>/``
    and reloaded (checksums and schema checked) afterwards.
    """
    cached = _MEMORY_CACHE.get(compiler_name)
    if cached is not None and not refresh:
        return cached
    compiler: Compiler = GccCompiler() if compiler_name == "gcc" else ClangCompiler()
    config = default_config()
    corpus = _build_corpus(compiler)
    cache_dir = CACHE_ROOT / f"cati-{compiler_name}"
    cati = None if refresh else _load_cached_model(cache_dir, config)
    if cati is None:
        cati = Cati(config).train(corpus.train)
        cati.save(str(cache_dir))
    context = ExperimentContext(
        corpus=corpus, cati=cati, config=config, compiler_name=compiler_name,
    )
    _MEMORY_CACHE[compiler_name] = context
    return context


# -- prediction cache shared by several tables -----------------------------------


@dataclass
class PredictionCache:
    """All model outputs over one dataset, computed once.

    Tables III-VI and Fig. 6 all need the same stage/leaf confidences over
    the same test corpus; computing them once turns each table into pure
    numpy selection.
    """

    labels: list[TypeName]
    variable_ids: list[str]
    apps: list[str]
    stage_probs: dict[Stage, np.ndarray]    # [N, C_stage] each
    leaf_probs: np.ndarray                  # [N, 19]

    @classmethod
    def build(cls, cati: Cati, dataset: VucDataset, batch: int = 4096) -> "PredictionCache":
        samples = dataset.samples
        stage_probs: dict[Stage, list[np.ndarray]] = {s: [] for s in STAGE_SPECS}
        leaf_chunks: list[np.ndarray] = []
        for start in range(0, len(samples), batch):
            chunk = samples[start:start + batch]
            x = cati.encode([s.tokens for s in chunk])
            for stage in STAGE_SPECS:
                stage_probs[stage].append(cati.classifier.stage_proba(stage, x))
            leaf_chunks.append(cati.classifier.leaf_proba(x))
        return cls(
            labels=[s.label for s in samples],
            variable_ids=[s.variable_id for s in samples],
            apps=[s.app for s in samples],
            stage_probs={s: np.concatenate(chunks) if chunks else np.zeros((0, 1))
                         for s, chunks in stage_probs.items()},
            leaf_probs=np.concatenate(leaf_chunks) if leaf_chunks else np.zeros((0, 19)),
        )

    def __len__(self) -> int:
        return len(self.labels)

    def indices_for(self, app: str | None = None) -> list[int]:
        if app is None:
            return list(range(len(self.labels)))
        return [i for i, a in enumerate(self.apps) if a == app]


_PREDICTION_CACHE: dict[int, PredictionCache] = {}


def predictions_for(context: ExperimentContext) -> PredictionCache:
    """The (memoized) prediction cache over the context's test corpus."""
    key = id(context)
    cache = _PREDICTION_CACHE.get(key)
    if cache is None:
        cache = PredictionCache.build(context.cati, context.corpus.test)
        _PREDICTION_CACHE[key] = cache
    return cache


# -- evaluation helpers shared by several tables --------------------------------


def stage_vuc_metrics(
    cache: PredictionCache,
    stage: Stage,
    app: str | None = None,
) -> Report:
    """VUC-granularity P/R/F1 for one stage on ground-truth-routed samples."""
    spec = STAGE_SPECS[stage]
    probs = cache.stage_probs[stage]
    y_true = []
    y_pred = []
    for index in cache.indices_for(app):
        label = stage_label(cache.labels[index], stage)
        if label is None:
            continue
        y_true.append(label)
        y_pred.append(spec.labels[int(probs[index].argmax())])
    return evaluate(y_true, y_pred)


def stage_variable_metrics(
    cache: PredictionCache,
    stage: Stage,
    threshold: float = 0.9,
    app: str | None = None,
) -> Report:
    """Variable-granularity P/R/F1 after per-stage voting (Table IV)."""
    spec = STAGE_SPECS[stage]
    probs = cache.stage_probs[stage]
    groups: dict[str, list[int]] = {}
    for index in cache.indices_for(app):
        if stage_label(cache.labels[index], stage) is None:
            continue
        groups.setdefault(cache.variable_ids[index], []).append(index)
    y_true = []
    y_pred = []
    for _variable_id, indices in groups.items():
        matrix = probs[indices]
        totals = clip_confidences(matrix, threshold).sum(axis=0)
        y_true.append(stage_label(cache.labels[indices[0]], stage))
        y_pred.append(spec.labels[int(totals.argmax())])
    return evaluate(y_true, y_pred)


def vuc_leaf_predictions(
    cache: PredictionCache,
    app: str | None = None,
) -> tuple[list[TypeName], list[TypeName]]:
    """(true, predicted) leaf types at VUC granularity."""
    from repro.core.types import ALL_TYPES

    indices = cache.indices_for(app)
    y_true = [cache.labels[i] for i in indices]
    y_pred = [ALL_TYPES[int(cache.leaf_probs[i].argmax())] for i in indices]
    return y_true, y_pred


def variable_leaf_predictions(
    cache: PredictionCache,
    threshold: float = 0.9,
    app: str | None = None,
) -> tuple[list[TypeName], list[TypeName]]:
    """(true, predicted) leaf types at variable granularity (voting)."""
    from repro.core.types import ALL_TYPES

    groups: dict[str, list[int]] = {}
    for index in cache.indices_for(app):
        groups.setdefault(cache.variable_ids[index], []).append(index)
    y_true = []
    y_pred = []
    for _variable_id, indices in groups.items():
        matrix = cache.leaf_probs[indices]
        totals = clip_confidences(matrix, threshold).sum(axis=0)
        y_true.append(cache.labels[indices[0]])
        y_pred.append(ALL_TYPES[int(totals.argmax())])
    return y_true, y_pred
