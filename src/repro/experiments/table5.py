"""Table V — per-type stage recalls, final accuracy, support and the
same-type-clustering statistics (cnt-same / cnt-all / c-rate).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import ALL_TYPES, Stage, TypeName, stage_path
from repro.eval.metrics import accuracy
from repro.eval.reports import render_table
from repro.eval.stats import ClusteringStats, clustering_stats
from repro.experiments.common import (
    ExperimentContext,
    predictions_for,
    stage_vuc_metrics,
    variable_leaf_predictions,
)


@dataclass
class Table5Row:
    type_name: TypeName
    s1_recall: float
    s2_recall: float
    s3_recall: float | None     # None for types that end at stage 2
    acc: float
    support: int
    cnt_same: float
    cnt_all: float

    @property
    def c_rate(self) -> float:
        return self.cnt_same / self.cnt_all if self.cnt_all else 0.0


@dataclass
class Table5:
    rows: list[Table5Row]
    overall_c_rate: float

    def render(self) -> str:
        table_rows = []
        for row in self.rows:
            table_rows.append((
                str(row.type_name),
                f"{row.s1_recall:.2f}",
                f"{row.s2_recall:.2f}",
                "-" if row.s3_recall is None else f"{row.s3_recall:.2f}",
                f"{row.acc:.2f}",
                row.support,
                f"{row.cnt_same:.2f}",
                f"{row.cnt_all:.2f}",
                f"{row.c_rate:.2%}",
            ))
        table = render_table(
            ["Type", "S1-R", "S2-R", "S3-R", "ACC", "Support", "cnt-same", "cnt-all", "c-rate"],
            table_rows,
            title="Table V: per-type stage recall, accuracy and clustering",
        )
        return table + f"\n\noverall clustering rate: {self.overall_c_rate:.2%}"


def _stage_recall_for_type(predictions, stage: Stage, type_name: TypeName,
                           cache: dict) -> float | None:
    """Recall of ``type_name``'s label at ``stage``, over test VUCs."""
    report = cache.get(stage)
    if report is None:
        report = stage_vuc_metrics(predictions, stage)
        cache[stage] = report
    from repro.core.types import stage_label

    label = stage_label(type_name, stage)
    if label is None or label not in report.per_class:
        return None
    return report.per_class[label].recall


def run(context: ExperimentContext) -> Table5:
    test = context.corpus.test
    cluster = clustering_stats(test)
    predictions = predictions_for(context)
    y_true, y_pred = variable_leaf_predictions(
        predictions, threshold=context.config.confidence_threshold,
    )

    stage_cache: dict = {}
    rows: list[Table5Row] = []
    variable_counts = test.variable_label_counts()
    for type_name in ALL_TYPES:
        support = variable_counts.get(type_name, 0)
        if support == 0:
            continue
        path = stage_path(type_name)
        recalls: list[float] = []
        for stage, _label in path:
            recall = _stage_recall_for_type(predictions, stage, type_name, stage_cache)
            recalls.append(recall if recall is not None else 0.0)
        while len(recalls) < 3:
            recalls.append(1.0)  # types ending at stage 2 trivially "pass" stage 3
        type_pairs = [(t, p) for t, p in zip(y_true, y_pred) if t is type_name]
        acc = accuracy([t for t, _ in type_pairs], [p for _, p in type_pairs])
        stats = cluster.get(type_name, ClusteringStats(0.0, 0.0, 0))
        rows.append(Table5Row(
            type_name=type_name,
            s1_recall=recalls[0],
            s2_recall=recalls[1],
            s3_recall=recalls[2] if len(stage_path(type_name)) >= 3 else None,
            acc=acc,
            support=support,
            cnt_same=stats.cnt_same,
            cnt_all=stats.cnt_all,
        ))
    overall = cluster.get(None, ClusteringStats(0.0, 0.0, 0))
    return Table5(rows=rows, overall_c_rate=overall.c_rate)
