"""Experiment harness: one module per table/figure of the paper.

Each module exposes ``run(context) -> result`` where the result has a
``render()`` method printing the paper-style table.  The shared trained
context (corpus + CATI) comes from :func:`repro.experiments.common.get_context`
and is cached on disk, so re-running individual experiments is cheap.

| Paper artifact | Module |
|---|---|
| Table I + Fig. 1 | :mod:`repro.experiments.table1` |
| Table III        | :mod:`repro.experiments.table3` |
| Table IV         | :mod:`repro.experiments.table4` |
| Table V + Fig. 2 | :mod:`repro.experiments.table5` |
| Table VI         | :mod:`repro.experiments.table6` |
| DEBIN comparison | :mod:`repro.experiments.debin_compare` |
| Fig. 6 a/b       | :mod:`repro.experiments.fig6` |
| Table VII (§VIII)| :mod:`repro.experiments.table7` |
| Compiler ID      | :mod:`repro.experiments.compiler_id` |
| Speed            | :mod:`repro.experiments.speed` |
"""

from repro.experiments.common import ExperimentContext, get_context

__all__ = ["ExperimentContext", "get_context"]
