"""Table VI — per-application accuracy at VUC and variable granularity.

The headline numbers of the paper: weighted totals 0.68 (VUC) and 0.71
(variable), i.e. voting adds ~3 points.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.metrics import accuracy
from repro.eval.reports import render_table
from repro.experiments.common import (
    ExperimentContext,
    predictions_for,
    variable_leaf_predictions,
    vuc_leaf_predictions,
)


@dataclass
class Table6Row:
    app: str
    vuc_accuracy: float
    vuc_support: int
    variable_accuracy: float
    variable_support: int


@dataclass
class Table6:
    rows: list[Table6Row]
    total_vuc_accuracy: float
    total_vuc_support: int
    total_variable_accuracy: float
    total_variable_support: int

    def render(self) -> str:
        table_rows = [
            (r.app, f"{r.vuc_accuracy:.2f}", r.vuc_support,
             f"{r.variable_accuracy:.2f}", r.variable_support)
            for r in self.rows
        ]
        table_rows.append((
            "Total", f"{self.total_vuc_accuracy:.2f}", self.total_vuc_support,
            f"{self.total_variable_accuracy:.2f}", self.total_variable_support,
        ))
        return render_table(
            ["", "VUC Acc", "VUC Support", "Var Acc", "Var Support"],
            table_rows,
            title="Table VI: per-application accuracy (VUC vs variable granularity)",
        )

    @property
    def voting_gain(self) -> float:
        return self.total_variable_accuracy - self.total_vuc_accuracy


def run(context: ExperimentContext) -> Table6:
    cache = predictions_for(context)
    threshold = context.config.confidence_threshold
    rows: list[Table6Row] = []
    vuc_hits = vuc_total = var_hits = var_total = 0
    for app in context.corpus.test.apps():
        y_true, y_pred = vuc_leaf_predictions(cache, app=app)
        vuc_acc = accuracy(y_true, y_pred)
        vy_true, vy_pred = variable_leaf_predictions(cache, threshold=threshold, app=app)
        var_acc = accuracy(vy_true, vy_pred)
        rows.append(Table6Row(
            app=app,
            vuc_accuracy=vuc_acc,
            vuc_support=len(y_true),
            variable_accuracy=var_acc,
            variable_support=len(vy_true),
        ))
        vuc_hits += round(vuc_acc * len(y_true))
        vuc_total += len(y_true)
        var_hits += round(var_acc * len(vy_true))
        var_total += len(vy_true)
    return Table6(
        rows=rows,
        total_vuc_accuracy=vuc_hits / max(vuc_total, 1),
        total_vuc_support=vuc_total,
        total_variable_accuracy=var_hits / max(var_total, 1),
        total_variable_support=var_total,
    )
