"""§VIII compiler identification: a binary classifier telling GCC VUCs
from Clang VUCs (paper: 100% accuracy, attributed to register-usage
differences).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.linear import SoftmaxRegression
from repro.eval.metrics import accuracy
from repro.experiments.common import ExperimentContext, get_context
from repro.vuc.dataset import LabeledVuc


def _vuc_features(sample: LabeledVuc, dim: int = 512) -> np.ndarray:
    """Hashed bag of tokens over the whole VUC window."""
    import hashlib

    vec = np.zeros(dim, dtype=np.float32)
    for triple in sample.tokens:
        for token in triple:
            digest = hashlib.blake2s(token.encode(), digest_size=4).digest()
            vec[int.from_bytes(digest, "little") % dim] += 1.0
    norm = np.linalg.norm(vec)
    return vec / norm if norm else vec


@dataclass
class CompilerId:
    accuracy: float
    n_train: int
    n_test: int

    def render(self) -> str:
        return (
            f"Compiler identification (GCC vs Clang): "
            f"{self.accuracy:.2%} accuracy on {self.n_test} held-out VUCs "
            f"(paper: 100%)"
        )


def run(
    gcc_context: ExperimentContext | None = None,
    clang_context: ExperimentContext | None = None,
    per_class: int = 4000,
) -> CompilerId:
    """Train a linear VUC classifier on train-corpus VUCs of both
    compilers; evaluate on both test corpora."""
    gcc_context = gcc_context or get_context("gcc")
    clang_context = clang_context or get_context("clang")

    def featurize(samples: list[LabeledVuc], limit: int) -> np.ndarray:
        picked = samples[:limit]
        return np.stack([_vuc_features(s) for s in picked])

    x_train = np.concatenate([
        featurize(gcc_context.corpus.train.samples, per_class),
        featurize(clang_context.corpus.train.samples, per_class),
    ])
    y_train = np.concatenate([
        np.zeros(min(per_class, len(gcc_context.corpus.train.samples)), dtype=np.int64),
        np.ones(min(per_class, len(clang_context.corpus.train.samples)), dtype=np.int64),
    ])
    model = SoftmaxRegression(x_train.shape[1], 2)
    model.fit(x_train, y_train, epochs=40)

    x_test = np.concatenate([
        featurize(gcc_context.corpus.test.samples, per_class),
        featurize(clang_context.corpus.test.samples, per_class),
    ])
    y_test = np.concatenate([
        np.zeros(min(per_class, len(gcc_context.corpus.test.samples)), dtype=np.int64),
        np.ones(min(per_class, len(clang_context.corpus.test.samples)), dtype=np.int64),
    ])
    predictions = model.predict(x_test)
    return CompilerId(
        accuracy=accuracy(list(y_test), list(predictions)),
        n_train=len(y_train),
        n_test=len(y_test),
    )
