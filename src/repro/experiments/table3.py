"""Table III — per-application, per-stage P/R/F1 at VUC granularity."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import ALL_STAGES, Stage
from repro.eval.reports import render_stage_app_table
from repro.experiments.common import ExperimentContext, predictions_for, stage_vuc_metrics


@dataclass
class Table3:
    #: stage name -> app -> (P, R, F1); apps with no samples at a stage
    #: are absent (rendered as '-', like the paper's gzip/nano/sed rows).
    cells: dict[str, dict[str, tuple[float, float, float]]]
    apps: list[str]

    def render(self) -> str:
        return render_stage_app_table(
            self.cells, self.apps,
            title="Table III: VUC prediction per application and stage (P/R/F1)",
        )


def run(context: ExperimentContext) -> Table3:
    apps = context.corpus.test.apps()
    cache = predictions_for(context)
    cells: dict[str, dict[str, tuple[float, float, float]]] = {}
    for stage in ALL_STAGES:
        per_app: dict[str, tuple[float, float, float]] = {}
        for app in apps:
            report = stage_vuc_metrics(cache, stage, app=app)
            if report.n_samples == 0:
                continue
            per_app[app] = (
                report.weighted_precision,
                report.weighted_recall,
                report.weighted_f1,
            )
        cells[stage.value] = per_app
    return Table3(cells=cells, apps=apps)
