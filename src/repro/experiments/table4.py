"""Table IV — per-application, per-stage P/R/F1 after voting
(variable granularity).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import ALL_STAGES
from repro.eval.reports import render_stage_app_table
from repro.experiments.common import ExperimentContext, predictions_for, stage_variable_metrics


@dataclass
class Table4:
    cells: dict[str, dict[str, tuple[float, float, float]]]
    apps: list[str]

    def render(self) -> str:
        return render_stage_app_table(
            self.cells, self.apps,
            title="Table IV: variable prediction after voting (P/R/F1)",
        )


def run(context: ExperimentContext) -> Table4:
    apps = context.corpus.test.apps()
    cache = predictions_for(context)
    threshold = context.config.confidence_threshold
    cells: dict[str, dict[str, tuple[float, float, float]]] = {}
    for stage in ALL_STAGES:
        per_app: dict[str, tuple[float, float, float]] = {}
        for app in apps:
            report = stage_variable_metrics(cache, stage, threshold=threshold, app=app)
            if report.n_samples == 0:
                continue
            per_app[app] = (
                report.weighted_precision,
                report.weighted_recall,
                report.weighted_f1,
            )
        cells[stage.value] = per_app
    return Table4(cells=cells, apps=apps)
