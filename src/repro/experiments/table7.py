"""Table VII + §VIII — Clang transferability: retrain on a Clang-built
corpus, report per-stage P/R/F1 and total variable accuracy
(paper: 82.14%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import ALL_STAGES
from repro.eval.metrics import accuracy
from repro.eval.reports import render_table
from repro.experiments.common import (
    ExperimentContext,
    get_context,
    predictions_for,
    stage_vuc_metrics,
    variable_leaf_predictions,
)


@dataclass
class Table7:
    stage_metrics: dict[str, tuple[float, float, float]]
    total_accuracy: float

    def render(self) -> str:
        rows = [
            (stage, f"{p:.2f}", f"{r:.2f}", f"{f1:.2f}")
            for stage, (p, r, f1) in self.stage_metrics.items()
        ]
        table = render_table(
            ["Stage", "Precision", "Recall", "F1-score"], rows,
            title="Table VII: applications compiled from Clang",
        )
        return table + f"\n\ntotal variable accuracy: {self.total_accuracy:.2%} (paper: 82.14%)"


def run(context: ExperimentContext | None = None) -> Table7:
    """Train/evaluate the Clang context (built on demand if not passed)."""
    clang_context = context or get_context("clang")
    cache = predictions_for(clang_context)
    stage_metrics: dict[str, tuple[float, float, float]] = {}
    for stage in ALL_STAGES:
        report = stage_vuc_metrics(cache, stage)
        stage_metrics[stage.value] = (
            report.weighted_precision,
            report.weighted_recall,
            report.weighted_f1,
        )
    y_true, y_pred = variable_leaf_predictions(
        cache, threshold=clang_context.config.confidence_threshold,
    )
    return Table7(stage_metrics=stage_metrics, total_accuracy=accuracy(y_true, y_pred))
