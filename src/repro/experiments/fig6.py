"""Fig. 6 — occlusion importance: a per-instruction ε visualization for
one struct VUC (6a) and the positional ε distribution heat map over the
test data (6b).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.occlusion import epsilon_distribution, occlusion_epsilons
from repro.core.types import TypeName
from repro.eval.reports import render_table
from repro.experiments.common import ExperimentContext
from repro.vuc.generalize import tokens_to_text

THRESHOLDS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


@dataclass
class Fig6:
    example_lines: list[tuple[float, str]]         # (epsilon, instruction text)
    heatmap: np.ndarray                            # [L, len(THRESHOLDS)]
    central_row_mass: float                        # heat at the central row

    def render(self) -> str:
        lines = ["Fig. 6a: per-instruction epsilon for one struct VUC"]
        center = len(self.example_lines) // 2
        for position, (eps, text) in enumerate(self.example_lines):
            marker = " <= target" if position == center else ""
            lines.append(f"  {eps:7.4f}  {text}{marker}")
        lines.append("")
        header = ["pos"] + [f">{t:.1f}" for t in THRESHOLDS]
        rows = []
        for position in range(self.heatmap.shape[0]):
            rows.append([position - self.heatmap.shape[0] // 2]
                        + [f"{v:.2%}" for v in self.heatmap[position]])
        lines.append(render_table(header, rows, title="Fig. 6b: epsilon distribution by window position"))
        return "\n".join(lines)


def run(context: ExperimentContext, n_distribution_vucs: int = 150) -> Fig6:
    test = context.corpus.test
    # Pick a struct VUC (Fig. 2/6a's running example is a struct variable).
    example = next(
        (s for s in test if s.label is TypeName.STRUCT),
        test.samples[0],
    )
    result = occlusion_epsilons(context.cati, example.tokens)
    example_lines = [
        (float(eps), tokens_to_text(tokens))
        for eps, tokens in zip(result.epsilons, example.tokens)
    ]
    windows = [s.tokens for s in test.samples[:n_distribution_vucs]]
    heatmap = epsilon_distribution(context.cati, windows, THRESHOLDS)
    center = heatmap.shape[0] // 2
    return Fig6(
        example_lines=example_lines,
        heatmap=heatmap,
        central_row_mass=float(heatmap[center, len(THRESHOLDS) // 2]),
    )
