"""Extension — struct-layout recovery via the posterior stage.

The paper's pipeline stops at one leaf type per variable; this
extension evaluates :mod:`repro.posterior`, which re-aggregates the
same leaf posteriors per *field offset* inside struct objects and pools
evidence across functions.  A member-labeled mini model is trained on a
struct-heavy corpus, then held-out binaries are scored field-by-field
against ``DW_AT_data_member_location`` ground truth — once with the
posterior stage (pooling + evidence floor) and once with the flat
per-slot baseline (no pooling, no floor).

``benchmarks/bench_structs.py`` runs the same comparison at a larger
scale and gates the posterior's field F1 strictly above the baseline's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen.compilers import GccCompiler
from repro.codegen.progen import DEFAULT_TYPE_WEIGHTS, GeneratorConfig
from repro.codegen.strip import strip
from repro.core.config import CatiConfig
from repro.core.pipeline import Cati, predictions_from_probs
from repro.core.types import TypeName
from repro.embedding.word2vec import Word2VecConfig
from repro.eval.metrics import FieldReport, evaluate_layouts
from repro.eval.reports import render_field_report
from repro.experiments.speed import extents_from_debug
from repro.posterior import (
    flat_baseline_layouts,
    layouts_to_fields,
    recover_layouts,
    truth_layouts,
)
from repro.vuc.dataset import VucDataset, extract_labeled_vucs, extract_unlabeled_vucs


@dataclass
class StructsResult:
    posterior: FieldReport
    baseline: FieldReport
    n_train_vucs: int

    @property
    def field_f1_lift(self) -> float:
        return self.posterior.field_f1 - self.baseline.field_f1

    def render(self) -> str:
        return (
            render_field_report(self.posterior, title="posterior (pooled)")
            + "\n\n"
            + render_field_report(self.baseline, title="flat per-slot baseline")
            + f"\n\nfield F1 lift over the flat baseline: {self.field_f1_lift:+.2f} "
            f"(member-labeled mini model, {self.n_train_vucs} training VUCs)"
        )


def struct_heavy_config() -> GeneratorConfig:
    """Generator profile where struct objects dominate the frame."""
    weights = dict(DEFAULT_TYPE_WEIGHTS)
    weights[TypeName.STRUCT] = 30.0
    weights[TypeName.STRUCT_POINTER] = 30.0
    return GeneratorConfig(type_weights=weights, orphan_fraction=0.15,
                           normal_accesses=(4, 10), array_fraction=0.0,
                           struct_param_fraction=0.5)


def run(n_train: int = 8, n_eval: int = 3, epochs: int = 15) -> StructsResult:
    gen = struct_heavy_config()
    config = CatiConfig(
        epochs=epochs, fc_width=128, posterior_enabled=True,
        word2vec=Word2VecConfig(dim=32, window=5, epochs=3,
                                subsample_pairs=0.4))
    compiler = GccCompiler()
    dataset = VucDataset(window=config.window)
    for seed in range(9000, 9000 + n_train):
        binary = compiler.compile_fresh(seed=seed, name=f"train-{seed}",
                                        opt_level=0, config=gen)
        dataset.extend(extract_labeled_vucs(binary, app="structs",
                                            window=config.window,
                                            member_labels=True))
    cati = Cati(config).train(dataset)

    pooled: dict = {}
    flat: dict = {}
    truth: dict = {}
    for seed in range(9500, 9500 + n_eval):
        binary = compiler.compile_fresh(seed=seed, name=f"eval-{seed}",
                                        opt_level=0, config=gen)
        stripped = strip(binary)
        sites: list = []
        pairs = extract_unlabeled_vucs(stripped, extents_from_debug(binary),
                                       config.window, sites=sites)
        windows = [tokens for _vid, tokens in pairs]
        variable_ids = [vid for vid, _tokens in pairs]
        probs = cati.engine.leaf_proba(windows)
        predictions = predictions_from_probs(
            probs, variable_ids, config.confidence_threshold)
        pooled.update(layouts_to_fields(recover_layouts(
            predictions, probs, variable_ids, sites,
            threshold=config.confidence_threshold,
            min_accesses=config.posterior_min_accesses)))
        flat.update(layouts_to_fields(flat_baseline_layouts(
            predictions, probs, variable_ids, sites,
            threshold=config.confidence_threshold)))
        truth.update(truth_layouts(binary, scope_name=stripped.name))

    return StructsResult(
        posterior=evaluate_layouts(pooled, truth),
        baseline=evaluate_layouts(flat, truth),
        n_train_vucs=len(dataset),
    )
