"""Ablations of the design choices DESIGN.md calls out.

Three studies, each isolating one mechanism of the system:

* **Window size** — retrain with w in {0, 2, 5, 10}: how much does the
  instruction context (the paper's central idea) buy over the bare
  target instruction (w=0 ≈ what previous work sees per instruction)?
* **Voting threshold** — sweep eq. (3)'s clipping threshold over a
  trained model's cached confidences (the paper picked 0.9 empirically).
* **Flat vs multi-stage** — one 19-way CNN vs the Fig. 5 tree at equal
  feature budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import CatiConfig
from repro.core.flat import FlatClassifier
from repro.core.pipeline import Cati
from repro.core.types import ALL_TYPES
from repro.datasets.corpus import Corpus
from repro.core.voting import clip_confidences
from repro.eval.metrics import accuracy
from repro.eval.reports import render_table
from repro.experiments.common import ExperimentContext, PredictionCache, predictions_for


# -- window-size ablation --------------------------------------------------------


@dataclass
class WindowAblation:
    rows: list[tuple[int, float, float]]  # (w, vuc accuracy, variable accuracy)

    def render(self) -> str:
        table = render_table(
            ["window w", "VUC acc", "Variable acc"],
            [(w, f"{v:.3f}", f"{va:.3f}") for w, v, va in self.rows],
            title="Ablation: context window size (w=0 is 'no context')",
        )
        return table


def run_window_ablation(
    build_corpus_fn,
    windows: tuple[int, ...] = (0, 2, 5, 10),
    epochs: int = 6,
) -> WindowAblation:
    """Retrain per window size on corpora extracted at that window.

    ``build_corpus_fn(window)`` must return a :class:`Corpus`; tests pass
    a small-corpus builder, benches a mid-sized one.
    """
    rows: list[tuple[int, float, float]] = []
    for window in windows:
        corpus = build_corpus_fn(window)
        config = CatiConfig(window=window, epochs=epochs)
        cati = Cati(config).train(corpus.train)
        cache = PredictionCache.build(cati, corpus.test)
        from repro.experiments.common import variable_leaf_predictions, vuc_leaf_predictions

        y_true, y_pred = vuc_leaf_predictions(cache)
        vy_true, vy_pred = variable_leaf_predictions(cache, config.confidence_threshold)
        rows.append((window, accuracy(y_true, y_pred), accuracy(vy_true, vy_pred)))
    return WindowAblation(rows=rows)


# -- voting-threshold ablation ------------------------------------------------------


@dataclass
class ThresholdAblation:
    rows: list[tuple[float, float]]  # (threshold, variable accuracy)

    def render(self) -> str:
        return render_table(
            ["threshold", "Variable acc"],
            [(f"{t:.2f}", f"{a:.3f}") for t, a in self.rows],
            title="Ablation: confidence-clipping threshold (paper: 0.9)",
        )

    def best(self) -> tuple[float, float]:
        return max(self.rows, key=lambda row: row[1])


def run_threshold_ablation(
    cache: PredictionCache,
    thresholds: tuple[float, ...] = (0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0),
) -> ThresholdAblation:
    """Sweep eq. (3)'s threshold over cached leaf confidences (cheap)."""
    groups: dict[str, list[int]] = {}
    for index, variable_id in enumerate(cache.variable_ids):
        groups.setdefault(variable_id, []).append(index)
    rows = []
    for threshold in thresholds:
        hits = 0
        for _vid, indices in groups.items():
            matrix = cache.leaf_probs[indices]
            totals = clip_confidences(matrix, threshold).sum(axis=0)
            hits += ALL_TYPES[int(totals.argmax())] is cache.labels[indices[0]]
        rows.append((threshold, hits / max(len(groups), 1)))
    return ThresholdAblation(rows=rows)


# -- flat vs multi-stage ---------------------------------------------------------------


@dataclass
class FlatAblation:
    tree_vuc_accuracy: float
    flat_vuc_accuracy: float

    def render(self) -> str:
        return render_table(
            ["classifier", "VUC acc"],
            [
                ("multi-stage tree (Fig. 5)", f"{self.tree_vuc_accuracy:.3f}"),
                ("flat 19-way CNN", f"{self.flat_vuc_accuracy:.3f}"),
            ],
            title="Ablation: multi-stage tree vs flat classifier",
        )


def run_flat_ablation(context: ExperimentContext, epochs: int | None = None) -> FlatAblation:
    """Train a flat 19-way CNN on the context's training encodings and
    compare VUC accuracy on the shared test cache."""
    from repro.experiments.common import vuc_leaf_predictions

    cache = predictions_for(context)
    y_true, y_pred = vuc_leaf_predictions(cache)
    tree_acc = accuracy(y_true, y_pred)

    import dataclasses

    config = dataclasses.replace(context.config)
    if epochs is not None:
        config.epochs = epochs
    train = context.corpus.train
    x = context.cati.encode([s.tokens for s in train.samples])
    flat = FlatClassifier(config).train(x, [s.label for s in train.samples])

    test = context.corpus.test
    flat_preds: list = []
    batch = 4096
    for start in range(0, len(test.samples), batch):
        chunk = test.samples[start:start + batch]
        xt = context.cati.encode([s.tokens for s in chunk])
        flat_preds.extend(flat.predict_leaf(xt))
    flat_acc = accuracy([s.label for s in test.samples], flat_preds)
    return FlatAblation(tree_vuc_accuracy=tree_acc, flat_vuc_accuracy=flat_acc)


# -- optimization-level sensitivity (paper's stated future work, §VIII) -------------------


@dataclass
class OptLevelBreakdown:
    rows: list[tuple[str, float, int]]  # (opt level, variable accuracy, support)

    def render(self) -> str:
        return render_table(
            ["opt level", "Variable acc", "Variables"],
            [(o, f"{a:.3f}", n) for o, a, n in self.rows],
            title="Extension: accuracy by optimization level (paper §VIII future work)",
        )


def run_opt_level_breakdown(context: ExperimentContext) -> OptLevelBreakdown:
    """Per-optimization-level variable accuracy over the test corpus.

    The variable id embeds ``<compiler>-O<level>``, so cached predictions
    can be sliced without re-running the model.
    """
    cache = predictions_for(context)
    groups: dict[str, list[int]] = {}
    for index, variable_id in enumerate(cache.variable_ids):
        groups.setdefault(variable_id, []).append(index)
    by_level: dict[str, list[bool]] = {}
    for variable_id, indices in groups.items():
        level = "-O" + variable_id.split("-O")[1][0]
        matrix = cache.leaf_probs[indices]
        totals = clip_confidences(matrix, context.config.confidence_threshold).sum(axis=0)
        hit = ALL_TYPES[int(totals.argmax())] is cache.labels[indices[0]]
        by_level.setdefault(level, []).append(hit)
    rows = [
        (level, sum(hits) / len(hits), len(hits))
        for level, hits in sorted(by_level.items())
    ]
    return OptLevelBreakdown(rows=rows)
