"""The §VII-B comparison: CATI vs the DEBIN stand-in on the 17-type task
(paper: 0.84 vs 0.73), extended with the TypeMiner stand-in and the rule
ladder, plus the orphan-variable breakdown that explains *why* context
wins (§II-B: 35% of variables have only 1-2 instructions and 97% of
those are uncertain from their own instructions alone).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.debin import DebinModel
from repro.baselines.rules import predict as rules_predict
from repro.baselines.typeminer import TypeMinerModel
from repro.core.types import DEBIN_TYPES, to_debin_label
from repro.eval.metrics import accuracy
from repro.eval.reports import render_table
from repro.experiments.common import ExperimentContext, predictions_for, variable_leaf_predictions


@dataclass
class SystemScore:
    overall: float
    orphan: float        # accuracy on variables with <= 2 VUCs
    rich: float          # accuracy on variables with >= 3 VUCs


@dataclass
class DebinComparison:
    cati: SystemScore
    debin: SystemScore
    typeminer: SystemScore
    rules: SystemScore
    n_variables: int
    n_orphans: int

    # Backwards-compatible accessors used by benches/tests.
    @property
    def cati_accuracy(self) -> float:
        return self.cati.overall

    @property
    def debin_accuracy(self) -> float:
        return self.debin.overall

    @property
    def typeminer_accuracy(self) -> float:
        return self.typeminer.overall

    @property
    def rules_accuracy(self) -> float:
        return self.rules.overall

    def render(self) -> str:
        rows = [
            ("CATI (context + voting)", f"{self.cati.overall:.2f}",
             f"{self.cati.orphan:.2f}", f"{self.cati.rich:.2f}"),
            ("DEBIN stand-in (dependency graph)", f"{self.debin.overall:.2f}",
             f"{self.debin.orphan:.2f}", f"{self.debin.rich:.2f}"),
            ("TypeMiner stand-in (n-grams)", f"{self.typeminer.overall:.2f}",
             f"{self.typeminer.orphan:.2f}", f"{self.typeminer.rich:.2f}"),
            ("Rule ladder (IDA-style)", f"{self.rules.overall:.2f}",
             f"{self.rules.orphan:.2f}", f"{self.rules.rich:.2f}"),
        ]
        return render_table(
            ["System", "Overall", "Orphans (<=2 VUCs)", "Rich (>=3)"],
            rows,
            title=(f"DEBIN comparison, 17-type accuracy over {self.n_variables} "
                   f"variables ({self.n_orphans} orphans) — paper: CATI 0.84 vs DEBIN 0.73"),
        )


def _score(predictions: dict[str, str], truth: dict[str, str],
           orphan_ids: set[str]) -> SystemScore:
    def subset_accuracy(ids):
        pairs = [(truth[v], predictions[v]) for v in ids if v in predictions]
        if not pairs:
            return 0.0
        return accuracy([t for t, _ in pairs], [p for _, p in pairs])

    all_ids = list(predictions)
    return SystemScore(
        overall=subset_accuracy(all_ids),
        orphan=subset_accuracy([v for v in all_ids if v in orphan_ids]),
        rich=subset_accuracy([v for v in all_ids if v not in orphan_ids]),
    )


def run(context: ExperimentContext) -> DebinComparison:
    """Train baselines on the training corpus, evaluate all on test.

    Every system is projected onto the 17 DEBIN types so the accuracies
    are directly comparable, as in the paper.
    """
    train_groups = context.corpus.train.by_variable()
    test_groups = context.corpus.test.by_variable()
    train_labels = {vid: to_debin_label(vucs[0].label) for vid, vucs in train_groups.items()}
    test_labels = {vid: to_debin_label(vucs[0].label) for vid, vucs in test_groups.items()}
    orphan_ids = {vid for vid, vucs in test_groups.items() if len(vucs) <= 2}

    debin = DebinModel(DEBIN_TYPES).train(train_groups, train_labels)
    debin_score = _score(debin.predict(test_groups), test_labels, orphan_ids)

    typeminer = TypeMinerModel(DEBIN_TYPES).train(train_groups, train_labels)
    typeminer_score = _score(typeminer.predict(test_groups), test_labels, orphan_ids)

    rules_raw = rules_predict(test_groups)
    rules_score = _score(
        {vid: to_debin_label(label) for vid, label in rules_raw.items()},
        test_labels, orphan_ids,
    )

    cache = predictions_for(context)
    y_true, y_pred = variable_leaf_predictions(
        cache, threshold=context.config.confidence_threshold,
    )
    # Rebuild a per-variable mapping to score subsets.
    variable_order: list[str] = []
    seen: set[str] = set()
    for vid in cache.variable_ids:
        if vid not in seen:
            seen.add(vid)
            variable_order.append(vid)
    cati_predictions = {
        vid: to_debin_label(pred) for vid, pred in zip(variable_order, y_pred)
    }
    cati_score = _score(cati_predictions, test_labels, orphan_ids)

    return DebinComparison(
        cati=cati_score,
        debin=debin_score,
        typeminer=typeminer_score,
        rules=rules_score,
        n_variables=len(test_groups),
        n_orphans=len(orphan_ids),
    )
