"""§VII speed: per-binary extraction + prediction wall-clock
(paper: ~6 seconds per typical binary on their hardware).

Prediction runs on the batched, dedup-aware inference engine — the same
path ``Cati.infer_binary`` deploys — so the numbers here reflect what a
user of the pipeline actually pays.  Throughput is reported as VUCs/s
per stage alongside the per-binary averages.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.codegen.binary import debug_variables
from repro.codegen.strip import strip
from repro.experiments.common import ExperimentContext
from repro.vuc.dataflow import VariableExtent


@dataclass
class SpeedResult:
    per_binary_extract_s: float
    per_binary_predict_s: float
    n_binaries: int
    n_variables: int
    n_vucs: int = 0
    extract_vucs_per_s: float = 0.0
    predict_vucs_per_s: float = 0.0

    @property
    def per_binary_total_s(self) -> float:
        return self.per_binary_extract_s + self.per_binary_predict_s

    def render(self) -> str:
        return (
            f"Speed over {self.n_binaries} binaries "
            f"({self.n_variables} variables, {self.n_vucs} VUCs): "
            f"extract {self.per_binary_extract_s * 1000:.0f} ms + "
            f"predict {self.per_binary_predict_s * 1000:.0f} ms "
            f"= {self.per_binary_total_s:.2f} s per binary "
            f"[extract {self.extract_vucs_per_s:.0f} VUC/s, "
            f"predict {self.predict_vucs_per_s:.0f} VUC/s] "
            f"(paper: ~6 s/binary incl. IDA)"
        )


def extents_from_debug(binary) -> list[list[VariableExtent]]:
    """Ground-truth variable locations (the paper's §VII-B assumption)."""
    records = debug_variables(binary)
    by_function: dict[str, list[VariableExtent]] = {}
    for record in records:
        base = "rbp" if record.frame_offset < 0 else "rsp"
        by_function.setdefault(record.function, []).append(VariableExtent(
            name=record.name, base=base,
            offset=record.frame_offset, size=max(record.size, 1),
        ))
    return [by_function.get(func.name, []) for func in binary.functions]


def run(context: ExperimentContext, n_binaries: int = 8) -> SpeedResult:
    binaries = context.corpus.test_binaries[:n_binaries]
    extract_time = 0.0
    predict_time = 0.0
    n_variables = 0
    n_vucs = 0
    from repro.vuc.dataset import extract_unlabeled_vucs

    engine = context.cati.engine
    for binary in binaries:
        extents = extents_from_debug(binary)
        stripped = strip(binary)
        t0 = time.perf_counter()
        pairs = extract_unlabeled_vucs(stripped, extents, context.config.window)
        extract_time += time.perf_counter() - t0
        if not pairs:
            continue
        n_vucs += len(pairs)
        t0 = time.perf_counter()
        predictions = engine.predict_variables(
            [tokens for _vid, tokens in pairs],
            [vid for vid, _tokens in pairs],
        )
        predict_time += time.perf_counter() - t0
        n_variables += len(predictions)
    return SpeedResult(
        per_binary_extract_s=extract_time / max(len(binaries), 1),
        per_binary_predict_s=predict_time / max(len(binaries), 1),
        n_binaries=len(binaries),
        n_variables=n_variables,
        n_vucs=n_vucs,
        extract_vucs_per_s=n_vucs / max(extract_time, 1e-12),
        predict_vucs_per_s=n_vucs / max(predict_time, 1e-12),
    )
