"""§VII speed: per-binary extraction + prediction wall-clock
(paper: ~6 seconds per typical binary on their hardware).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.codegen.binary import debug_variables
from repro.codegen.strip import strip
from repro.experiments.common import ExperimentContext
from repro.vuc.dataflow import VariableExtent


@dataclass
class SpeedResult:
    per_binary_extract_s: float
    per_binary_predict_s: float
    n_binaries: int
    n_variables: int

    @property
    def per_binary_total_s(self) -> float:
        return self.per_binary_extract_s + self.per_binary_predict_s

    def render(self) -> str:
        return (
            f"Speed over {self.n_binaries} binaries ({self.n_variables} variables): "
            f"extract {self.per_binary_extract_s * 1000:.0f} ms + "
            f"predict {self.per_binary_predict_s * 1000:.0f} ms "
            f"= {self.per_binary_total_s:.2f} s per binary "
            f"(paper: ~6 s/binary incl. IDA)"
        )


def extents_from_debug(binary) -> list[list[VariableExtent]]:
    """Ground-truth variable locations (the paper's §VII-B assumption)."""
    records = debug_variables(binary)
    by_function: dict[str, list[VariableExtent]] = {}
    for record in records:
        base = "rbp" if record.frame_offset < 0 else "rsp"
        by_function.setdefault(record.function, []).append(VariableExtent(
            name=record.name, base=base,
            offset=record.frame_offset, size=max(record.size, 1),
        ))
    return [by_function.get(func.name, []) for func in binary.functions]


def run(context: ExperimentContext, n_binaries: int = 8) -> SpeedResult:
    binaries = context.corpus.test_binaries[:n_binaries]
    extract_time = 0.0
    predict_time = 0.0
    n_variables = 0
    from repro.vuc.dataset import extract_unlabeled_vucs

    for binary in binaries:
        extents = extents_from_debug(binary)
        stripped = strip(binary)
        t0 = time.perf_counter()
        pairs = extract_unlabeled_vucs(stripped, extents, context.config.window)
        extract_time += time.perf_counter() - t0
        if not pairs:
            continue
        t0 = time.perf_counter()
        predictions = context.cati.predict_variables(
            [tokens for _vid, tokens in pairs],
            [vid for vid, _tokens in pairs],
        )
        predict_time += time.perf_counter() - t0
        n_variables += len(predictions)
    return SpeedResult(
        per_binary_extract_s=extract_time / max(len(binaries), 1),
        per_binary_predict_s=predict_time / max(len(binaries), 1),
        n_binaries=len(binaries),
        n_variables=n_variables,
    )
