"""Table I — orphan variables and uncertain samples, plus the Fig. 1
uncertain-sample examples mined from the corpus.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.corpus import Corpus
from repro.eval.reports import render_table
from repro.eval.stats import OrphanStats, find_uncertain_examples, orphan_stats


@dataclass
class Table1:
    train: OrphanStats
    test: OrphanStats
    examples: list[tuple[str, object, object]]

    def render(self) -> str:
        rows = [
            ("Variables", self.train.n_variables, self.test.n_variables),
            ("VUCs", self.train.n_vucs, self.test.n_vucs),
            ("Variables with 1 VUC", self.train.variables_with_1_vuc, self.test.variables_with_1_vuc),
            ("Uncertain Samples-1", self.train.uncertain_1, self.test.uncertain_1),
            ("Variables with 2 VUCs", self.train.variables_with_2_vucs, self.test.variables_with_2_vucs),
            ("Uncertain Samples-2", self.train.uncertain_2, self.test.uncertain_2),
        ]
        table = render_table(
            ["", "Training Set", "Testing Set"], rows,
            title="Table I: orphan variables and uncertain samples",
        )
        lines = [table, "", f"orphan fraction (train): {self.train.orphan_fraction:.2%}",
                 f"uncertain fraction of orphans (train): {self.train.uncertain_fraction_of_orphans:.2%}",
                 "", "Fig. 1-style uncertain samples (same instruction, different type):"]
        for signature, type_a, type_b in self.examples:
            lines.append(f"  {signature!r}: {type_a} vs {type_b}")
        return "\n".join(lines)


def run(corpus: Corpus) -> Table1:
    """Compute Table I over a built corpus."""
    return Table1(
        train=orphan_stats(corpus.train),
        test=orphan_stats(corpus.test),
        examples=find_uncertain_examples(corpus.test, limit=4),
    )
