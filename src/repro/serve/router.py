"""The pre-fork front process: dispatch, fenced reload, respawn, rollups.

:class:`RouterDaemon` is what ``python -m repro serve --workers N``
(N > 1) runs: it accepts every client connection and forwards request
bodies *verbatim* over loopback HTTP to one of N worker processes
(:mod:`repro.serve.worker`), each a full single-process daemon with its
own GIL and engine.  The packed wire format and every endpoint keep
their single-daemon meaning; the router adds:

* **least-loaded dispatch** — each ``/v1/infer`` goes to the live
  worker with the fewest in-flight forwards; a worker that dies mid
  request is skipped and the request retried on a sibling, so a crash
  costs a retry, not a 500.
* **sticky session dispatch** — interactive analysis sessions
  (:mod:`repro.analysis`) live in exactly one worker's memory, so
  ``/v1/session/<id>/*`` routes by the id's slot hash
  (:func:`repro.analysis.store.session_slot`); workers mint only ids
  that hash back to themselves, so no shared session table exists.
  ``/v1/session/open`` goes least-loaded with failover like infer.  A
  dead or respawned slot answers 410
  (:class:`~repro.core.errors.SessionGoneError`) — *retriable by
  re-opening*, which ``repro repl`` and
  :class:`~repro.serve.client.SessionHandle` callers do automatically.
* **admission control at the front** — the bounded pending count, 503 +
  ``Retry-After`` and deadline handling happen here, before any bytes
  reach a worker, exactly like the single daemon's queue gate.
* **a generation fence for hot reload** — ``POST /v1/reload`` verifies
  the new bundle *once* in the router (checksums + structural config
  check; corrupt bundles 409 without any worker noticing), materializes
  the shared ``.npy`` mirror so N workers can mmap it instantly, then
  rolls workers forward one at a time.  The router's generation — what
  ``/healthz`` reports — only advances once every live worker runs the
  new model; until then the old generation keeps answering.
* **liveness + respawn** — a monitor thread notices dead workers
  (crash, OOM-kill, SIGKILL), respawns them on the router's current
  bundle, and counts restarts per slot; ``/healthz`` enumerates them.
* **aggregated observability** — ``/metricsz`` merges every worker's
  registry snapshot with the router's own (counters summed, histograms
  bucket-wise merged — see
  :func:`repro.core.observability.merge_snapshots`); ``/healthz`` rolls
  up per-worker liveness, generation, and restart counts.

Workers mmap their payloads from the bundle's shared mirror, so the
model's big tables exist once in the page cache no matter how many
workers serve them.  See docs/DEPLOYMENT.md for the operator story.
"""

from __future__ import annotations

import http.client
import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

import repro
from repro.analysis.store import session_slot
from repro.core import observability
from repro.core.artifacts import ModelBundle
from repro.core.config import CatiConfig
from repro.core.errors import (
    ArtifactError,
    QueueFullError,
    RequestError,
    ServeError,
    ServerClosedError,
    SessionGoneError,
    check_on_error,
)
from repro.serve import protocol
from repro.serve.server import MAX_BODY_BYTES
from repro.serve.worker import WorkerHandle

#: Seconds the router waits for one worker's answer to a forwarded
#: request before treating the worker as wedged.
FORWARD_TIMEOUT_S = 300.0

#: Seconds between liveness sweeps of the monitor thread.
MONITOR_INTERVAL_S = 0.5


class _WorkerSlot:
    """One of the N fixed serving slots; survives its workers."""

    __slots__ = ("index", "handle", "restarts", "last_restart_at")

    def __init__(self, index: int, handle: WorkerHandle | None) -> None:
        self.index = index
        self.handle = handle
        self.restarts = 0
        self.last_restart_at: float | None = None


class _RouterServer(ThreadingHTTPServer):
    # Same drain contract as the single daemon: server_close joins
    # non-daemon handler threads, so every accepted request answers.
    daemon_threads = False
    allow_reuse_address = True
    router_ref: "RouterDaemon"


class _RouterHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.0"
    timeout = 120

    @property
    def router(self) -> "RouterDaemon":
        return self.server.router_ref  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.router.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, body: dict,
                   headers: dict | None = None) -> None:
        data = json.dumps(body).encode("utf-8") + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _send_raw(self, status: int, data: bytes,
                  headers: dict | None = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _send_failure(self, error: BaseException) -> None:
        headers = {}
        if isinstance(error, ServeError):
            status = error.status
            retry_after = getattr(error, "retry_after_s", None)
            if status == 503:
                headers["Retry-After"] = str(max(1, round(retry_after or 1)))
        else:
            status = 500
        observability.inc(f"router.http.{status}")
        self._send_json(status, protocol.error_body(
            type(error).__name__, str(error)), headers)

    def _read_raw_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise RequestError(f"body of {length} bytes exceeds the "
                               f"{MAX_BODY_BYTES} byte limit",
                               status=413, stage="serve")
        return self.rfile.read(length) if length else b""

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        try:
            if self.path == "/healthz":
                self._send_json(200, self.router.health_body())
            elif self.path == "/metricsz":
                self._send_json(200, self.router.merged_metrics())
            else:
                self._send_json(404, protocol.error_body(
                    "NotFound", f"no route {self.path}"))
        except Exception as error:  # noqa: BLE001 — must answer something
            self._send_failure(error)

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        try:
            if self.path == "/v1/infer":
                self._handle_infer()
            elif self.path.startswith("/v1/session/"):
                self._handle_session()
            elif self.path == "/v1/reload":
                self._handle_reload()
            else:
                self._send_json(404, protocol.error_body(
                    "NotFound", f"no route {self.path}"))
        except Exception as error:  # noqa: BLE001 — must answer something
            self._send_failure(error)

    def _handle_infer(self) -> None:
        router = self.router
        started = time.monotonic()
        raw = self._read_raw_body()
        router.admit()
        try:
            status, body, headers = router.dispatch_infer(raw)
        finally:
            router.release()
        observability.inc("router.requests")
        observability.observe("router.request.seconds",
                              time.monotonic() - started)
        self._send_raw(status, body, headers)

    def _handle_session(self) -> None:
        router = self.router
        started = time.monotonic()
        raw = self._read_raw_body()
        router.admit()
        try:
            status, body, headers = router.dispatch_session(self.path, raw)
        finally:
            router.release()
        observability.inc("router.requests")
        observability.observe("router.request.seconds",
                              time.monotonic() - started)
        self._send_raw(status, body, headers)

    def _handle_reload(self) -> None:
        raw = self._read_raw_body()
        try:
            request = json.loads(raw) if raw else {}
        except ValueError as error:
            raise RequestError(f"body is not valid JSON: {error}",
                               stage="serve") from error
        if not isinstance(request, dict):
            raise RequestError("body must be a JSON object", stage="serve")
        try:
            result = self.router.reload(request.get("model_dir"))
        except ArtifactError as error:
            observability.inc("router.http.409")
            self._send_json(409, protocol.error_body(
                type(error).__name__, str(error)))
            return
        status = 200 if result.get("reloaded") else 502
        self._send_json(status, result)


class RouterDaemon:
    """The front process of ``--workers N`` serving (see module doc)."""

    def __init__(
        self,
        model_dir: str | Path,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 2,
        config: CatiConfig | None = None,
        queue_limit: int = 64,
        default_deadline_s: float | None = None,
        default_on_error: str = "skip",
        watch: bool = False,
        watch_interval_s: float = 2.0,
        verbose: bool = False,
        mmap: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        check_on_error(default_on_error)
        self.started_at = time.time()
        self.verbose = verbose
        self.queue_limit = queue_limit
        self.draining = False
        self._mmap = mmap
        self._model_dir = Path(model_dir)
        # Verify once up front: checksums + (structural) config check —
        # the same gate every worker would hit, but hit here a single
        # time with a clear error instead of N spawn failures.
        bundle = ModelBundle.open(self._model_dir)
        bundle.verify()
        self._config = bundle.resolve_config(config)
        if mmap:
            bundle.ensure_shared_arrays()
        self._generation = 1
        self._worker_options = {
            "queue_limit": queue_limit,
            "default_deadline_s": default_deadline_s,
            "default_on_error": default_on_error,
            "verbose": verbose,
            "mmap": mmap,
            # Sticky sessions: each worker mints session ids hashing to
            # its own slot, so dispatch_session routes without state.
            "slot_count": workers,
        }
        self._dispatch_lock = threading.Lock()
        self._pending = 0
        #: Serializes reloads with respawns so a worker spawned mid-roll
        #: cannot come up on a bundle the fence is about to supersede.
        self._reload_lock = threading.Lock()
        self._slots = [_WorkerSlot(index, None) for index in range(workers)]
        try:
            for slot in self._slots:
                slot.handle = self._spawn_worker(slot.index)
            for slot in self._slots:
                slot.handle.wait_ready()
        except BaseException:
            for slot in self._slots:
                if slot.handle is not None:
                    slot.handle.terminate(join_timeout_s=5.0)
            raise
        self.httpd = _RouterServer((host, port), _RouterHandler)
        self.httpd.router_ref = self
        self._monitor_stop = threading.Event()
        self._monitor: threading.Thread | None = None
        self._watch = watch
        self._watch_interval_s = watch_interval_s
        self._watch_stop = threading.Event()
        self._watcher: threading.Thread | None = None
        self._watch_mtime = self._bundle_mtime()
        observability.set_gauge("router.workers", workers)
        observability.set_gauge("router.model_generation", self._generation)

    # -- worker management --------------------------------------------------------

    def _spawn_worker(self, index: int) -> WorkerHandle:
        options = dict(self._worker_options, generation=self._generation)
        return WorkerHandle(index, self._model_dir,
                            self._config.to_dict(), options)

    @property
    def workers(self) -> int:
        return len(self._slots)

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def generation(self) -> int:
        return self._generation

    def _live_handles(self) -> list[WorkerHandle]:
        return [slot.handle for slot in self._slots
                if slot.handle is not None and slot.handle.ready
                and slot.handle.is_alive()]

    # -- admission ----------------------------------------------------------------

    def admit(self) -> None:
        """The front-of-house queue gate (mirrors MicroBatchScheduler's)."""
        with self._dispatch_lock:
            if self.draining:
                raise ServerClosedError("server is draining", stage="serve")
            if self._pending >= self.queue_limit:
                hist = observability.get_registry().histogram(
                    "router.request.seconds")
                p50 = hist.quantile(0.5) or 0.05
                observability.inc("router.rejected.queue_full")
                raise QueueFullError(
                    f"router backlog at capacity ({self.queue_limit} "
                    "requests in flight)",
                    retry_after_s=max(p50 * self._pending, 0.05),
                    stage="serve")
            self._pending += 1
        observability.observe("router.queue.depth", self._pending,
                              boundaries=observability.SIZE_BUCKETS)

    def release(self) -> None:
        with self._dispatch_lock:
            self._pending = max(0, self._pending - 1)

    # -- dispatch -----------------------------------------------------------------

    def _pick_worker(self) -> WorkerHandle | None:
        """Least-loaded live worker (in-flight count, then slot order)."""
        with self._dispatch_lock:
            candidates = self._live_handles()
            if not candidates:
                return None
            best = min(candidates, key=lambda handle: handle.in_flight)
            best.in_flight += 1
            return best

    def _finish(self, handle: WorkerHandle) -> None:
        with self._dispatch_lock:
            handle.in_flight = max(0, handle.in_flight - 1)

    def _forward(self, handle: WorkerHandle, method: str, path: str,
                 body: bytes, timeout_s: float = FORWARD_TIMEOUT_S):
        """One loopback HTTP exchange with a worker; raises OSError family."""
        connection = http.client.HTTPConnection(
            "127.0.0.1", handle.port, timeout=timeout_s)
        try:
            connection.request(method, path, body=body,
                               headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            data = response.read()
            headers = {}
            retry_after = response.getheader("Retry-After")
            if retry_after:
                headers["Retry-After"] = retry_after
            return response.status, data, headers
        finally:
            connection.close()

    def dispatch_infer(self, raw_body: bytes):
        """Forward one ``/v1/infer`` body to the best worker, with failover.

        A worker that drops the connection (crashed or killed mid
        request) is marked suspect for the monitor and the request is
        retried on the next-best sibling — each slot is tried at most
        once.  Only when no worker can answer does the client see a 503.
        """
        return self._dispatch_failover("/v1/infer", raw_body)

    def _dispatch_failover(self, path: str, raw_body: bytes):
        """Least-loaded forward with one attempt per slot."""
        last_error: Exception | None = None
        for _attempt in range(len(self._slots)):
            handle = self._pick_worker()
            if handle is None:
                break
            try:
                status, data, headers = self._forward(
                    handle, "POST", path, raw_body)
                return status, data, headers
            except (OSError, http.client.HTTPException) as error:
                last_error = error
                observability.inc("router.forward.errors")
            finally:
                self._finish(handle)
        observability.inc("router.rejected.no_workers")
        raise ServeError(
            "no live worker could answer the request"
            + (f" (last error: {last_error})" if last_error else ""),
            status=503, stage="serve")

    def dispatch_session(self, path: str, raw_body: bytes):
        """Route one ``/v1/session/*`` request — sticky by session id.

        ``/v1/session/open`` dispatches least-loaded with failover (any
        worker can open; it mints an id hashing back to itself, so the
        stickiness is self-consistent).  Everything else routes to the
        id's slot — and when that slot is down, respawning, or drops
        the connection mid-call, the router itself answers 410
        (:class:`SessionGoneError`): the state died with the worker and
        only the client can rebuild it by re-opening.  A freshly
        respawned worker answers its own 410s (empty store) without
        router involvement.
        """
        if path == "/v1/session/open":
            return self._dispatch_failover(path, raw_body)
        parts = path.rstrip("/").split("/")
        session_id = parts[3] if len(parts) > 3 else ""
        slot = self._slots[session_slot(session_id, len(self._slots))]
        handle = slot.handle
        if handle is None or not handle.ready or not handle.is_alive():
            observability.inc("router.sessions.gone")
            raise SessionGoneError(
                f"worker {slot.index} holding session {session_id!r} is "
                "down (crash or respawn in progress); re-open the session",
                stage="serve")
        with self._dispatch_lock:
            handle.in_flight += 1
        try:
            return self._forward(handle, "POST", path, raw_body)
        except (OSError, http.client.HTTPException) as error:
            observability.inc("router.forward.errors")
            observability.inc("router.sessions.gone")
            raise SessionGoneError(
                f"worker {slot.index} dropped session {session_id!r} "
                f"mid-call ({error}); re-open the session",
                stage="serve") from error
        finally:
            self._finish(handle)

    # -- reload (generation fence) -------------------------------------------------

    def reload(self, model_dir: str | Path | None = None) -> dict:
        """Verify once, roll every worker, then commit the generation.

        Raises :class:`ArtifactError` (→ 409) before any worker is
        touched when the new bundle is corrupt, schema-drifted, or
        structurally incompatible — the old generation keeps serving.
        A worker that rejects the roll midway (disk race) aborts the
        fence: the router's generation does not advance and the
        per-worker outcomes are reported for the operator.
        """
        with self._reload_lock:
            target = Path(model_dir) if model_dir is not None else self._model_dir
            with observability.span("router.reload"):
                # The fence's verification step: checksums + structural
                # config check, exactly once, in the router.
                bundle = ModelBundle.open(target)
                bundle.verify()
                try:
                    self._config = bundle.resolve_config(self._config)
                except ArtifactError:
                    observability.inc("router.reload.rejected")
                    raise
                if self._mmap:
                    bundle.ensure_shared_arrays()
                outcomes = []
                rolled = 0
                for slot in self._slots:
                    handle = slot.handle
                    if handle is None or not handle.ready or not handle.is_alive():
                        outcomes.append({"worker": slot.index,
                                         "status": "dead",
                                         "note": "will respawn on the new "
                                                 "bundle"})
                        continue
                    body = json.dumps({"model_dir": str(target)}).encode()
                    try:
                        status, data, _headers = self._forward(
                            handle, "POST", "/v1/reload", body)
                    except (OSError, http.client.HTTPException) as error:
                        outcomes.append({"worker": slot.index,
                                         "status": "unreachable",
                                         "error": str(error)})
                        observability.inc("router.reload.rejected")
                        return {"reloaded": False, "outcomes": outcomes,
                                "generation": self._generation}
                    if status != 200:
                        try:
                            detail = json.loads(data)
                        except ValueError:
                            detail = {"raw": data[:200].decode("utf-8",
                                                               "replace")}
                        outcomes.append({"worker": slot.index,
                                         "status": f"rejected ({status})",
                                         "error": detail})
                        observability.inc("router.reload.rejected")
                        return {"reloaded": False, "outcomes": outcomes,
                                "generation": self._generation}
                    outcomes.append({"worker": slot.index, "status": "rolled"})
                    rolled += 1
                # Fence commit: every live worker now runs the new
                # bundle, so the router's generation — the one clients
                # see — advances exactly once.
                self._model_dir = target
                self._generation += 1
                self._watch_mtime = self._bundle_mtime()
            observability.inc("router.reload.ok")
            observability.set_gauge("router.model_generation", self._generation)
            return {"reloaded": True, "outcomes": outcomes,
                    "rolled_workers": rolled,
                    "generation": self._generation,
                    "model": self._model_block()}

    # -- liveness monitor ----------------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._monitor_stop.wait(MONITOR_INTERVAL_S):
            for slot in self._slots:
                handle = slot.handle
                if handle is not None and handle.is_alive():
                    continue
                if self.draining:
                    continue
                exitcode = handle.process.exitcode if handle else None
                slot.handle = None  # dispatch skips the slot immediately
                print(f"[router] worker {slot.index} died "
                      f"(exit code {exitcode}); respawning", flush=True)
                observability.inc("router.worker.deaths")
                try:
                    with self._reload_lock:
                        replacement = self._spawn_worker(slot.index)
                    replacement.wait_ready()
                except ServeError as error:
                    # Leave the slot empty; the next sweep tries again.
                    print(f"[router] worker {slot.index} respawn failed: "
                          f"{error}", flush=True)
                    observability.inc("router.worker.respawn_failures")
                    continue
                slot.handle = replacement
                slot.restarts += 1
                slot.last_restart_at = time.time()
                observability.inc("router.worker.respawns")
                print(f"[router] worker {slot.index} respawned "
                      f"(pid {replacement.pid}, restart #{slot.restarts})",
                      flush=True)

    # -- aggregated observability ---------------------------------------------------

    def _worker_health(self, handle: WorkerHandle) -> dict | None:
        try:
            _status, data, _headers = self._forward(
                handle, "GET", "/healthz", b"", timeout_s=5.0)
            return json.loads(data)
        except (OSError, ValueError, http.client.HTTPException):
            return None

    def _model_block(self) -> dict:
        return {
            "bundle": str(self._model_dir),
            "generation": self._generation,
            "mmap": self._mmap,
            "workers": len(self._slots),
        }

    def health_body(self) -> dict:
        registry = observability.get_registry()
        latency = registry.histogram("router.request.seconds")
        workers = []
        live = 0
        total_restarts = 0
        sessions_total = {"sessions": 0, "bytes": 0, "opened": 0,
                          "closed": 0, "evicted_ttl": 0, "evicted_lru": 0}
        for slot in self._slots:
            handle = slot.handle
            total_restarts += slot.restarts
            entry = {
                "id": slot.index,
                "restarts": slot.restarts,
                "alive": False,
            }
            if slot.last_restart_at is not None:
                entry["last_restart_at"] = time.strftime(
                    "%Y-%m-%dT%H:%M:%SZ", time.gmtime(slot.last_restart_at))
            if handle is not None and handle.ready and handle.is_alive():
                live += 1
                entry.update({
                    "alive": True,
                    "pid": handle.pid,
                    "port": handle.port,
                    "in_flight": handle.in_flight,
                    "uptime_s": round(time.time() - handle.started_at, 3),
                })
                health = self._worker_health(handle)
                if health:
                    entry["generation"] = health["model"]["generation"]
                    entry["mmap"] = health["model"].get("mmap")
                    entry["queue"] = health.get("queue")
                    block = health.get("sessions")
                    if block:
                        entry["sessions"] = block
                        for key in sessions_total:
                            sessions_total[key] += int(block.get(key, 0))
            workers.append(entry)
        if self.draining:
            status = "draining"
        elif live == len(self._slots):
            status = "ok"
        elif live:
            status = "degraded"
        else:
            status = "down"
        return {
            "status": status,
            "version": repro.__version__,
            "uptime_s": round(time.time() - self.started_at, 3),
            "role": "router",
            "model": self._model_block(),
            "queue": {"depth": self._pending, "limit": self.queue_limit},
            "sessions": sessions_total,
            "latency": {
                "p50_s": latency.quantile(0.5),
                "p99_s": latency.quantile(0.99),
            },
            "workers": workers,
            "workers_live": live,
            "restarts": total_restarts,
        }

    def merged_metrics(self) -> dict:
        """Router registry + every live worker's snapshot, merged."""
        snapshots = [observability.snapshot()]
        for handle in self._live_handles():
            try:
                _status, data, _headers = self._forward(
                    handle, "GET", "/metricsz", b"", timeout_s=10.0)
                snapshots.append(json.loads(data))
            except (OSError, ValueError, http.client.HTTPException):
                observability.inc("router.metrics.unreachable_workers")
        return observability.merge_snapshots(snapshots)

    # -- --watch poller -----------------------------------------------------------

    def _bundle_mtime(self) -> float:
        try:
            paths = [self._model_dir]
            paths += [p for p in self._model_dir.rglob("*")
                      if not any(part.startswith(".") for part in
                                 p.relative_to(self._model_dir).parts)]
            return max(p.stat().st_mtime for p in paths)
        except OSError:
            return 0.0

    def _watch_loop(self) -> None:
        while not self._watch_stop.wait(self._watch_interval_s):
            current = self._bundle_mtime()
            if current <= self._watch_mtime:
                continue
            try:
                result = self.reload()
                if result.get("reloaded"):
                    print(f"[router] watch: rolled workers to generation "
                          f"{result['generation']}", flush=True)
                else:
                    self._watch_mtime = current
                    print(f"[router] watch: roll aborted: "
                          f"{result.get('outcomes')}", flush=True)
            except ArtifactError as error:
                self._watch_mtime = current
                print(f"[router] watch: reload rejected: {error}", flush=True)

    # -- lifecycle ----------------------------------------------------------------

    def install_signal_handlers(self) -> None:
        signal.signal(signal.SIGTERM, self._on_signal)
        signal.signal(signal.SIGINT, self._on_signal)

    def _on_signal(self, signum, _frame) -> None:
        print(f"[router] {signal.Signals(signum).name}: draining", flush=True)
        self.request_shutdown()

    def request_shutdown(self) -> None:
        self.draining = True
        threading.Thread(target=self.httpd.shutdown,
                         name="router-shutdown", daemon=True).start()

    def run(self) -> int:
        """Serve until shutdown; drain the front, then the workers."""
        self._monitor = threading.Thread(target=self._monitor_loop,
                                         name="router-monitor", daemon=True)
        self._monitor.start()
        if self._watch:
            self._watcher = threading.Thread(target=self._watch_loop,
                                             name="router-watch", daemon=True)
            self._watcher.start()
        print(f"[router] model generation {self._generation} from "
              f"{self._model_dir} across {len(self._slots)} workers "
              f"(mmap={'on' if self._mmap else 'off'})", flush=True)
        for slot in self._slots:
            handle = slot.handle
            print(f"[router] worker {slot.index}: pid {handle.pid} "
                  f"port {handle.port}", flush=True)
        print(f"serving on http://{self.host}:{self.port}", flush=True)
        try:
            self.httpd.serve_forever(poll_interval=0.1)
        finally:
            self.draining = True
            # Join in-flight handler threads first: their forwards need
            # the workers still up to finish with real responses.
            self.httpd.server_close()
            self._monitor_stop.set()
            self._watch_stop.set()
            if self._monitor is not None:
                self._monitor.join(timeout=5.0)
            if self._watcher is not None:
                self._watcher.join(timeout=5.0)
            for slot in self._slots:
                if slot.handle is not None and slot.handle.is_alive():
                    slot.handle.process.terminate()  # parallel SIGTERMs
            for slot in self._slots:
                if slot.handle is not None:
                    slot.handle.terminate()
        print("[router] drained, exiting", flush=True)
        return 0


__all__ = ["FORWARD_TIMEOUT_S", "MONITOR_INTERVAL_S", "RouterDaemon"]
