"""repro.serve — the long-lived inference service over a trained CATI.

``python -m repro serve --model DIR --port N`` starts a JSON-over-HTTP
daemon (stdlib only: ``http.server`` + threads) that keeps one verified
:class:`~repro.core.artifacts.ModelBundle` resident and answers typing
queries at interactive latency — the workload shape decompiler plugins
and decompiled-code pipelines assume.

The moving parts:

* :mod:`repro.serve.protocol` — the wire format: request/response JSON
  schemas and the :class:`~repro.codegen.binary.Binary` ↔ JSON codec
  (shared with ``python -m repro infer --json`` so offline and served
  outputs are diffable);
* :mod:`repro.serve.scheduler` — the dynamic micro-batching scheduler:
  concurrent requests' VUC windows coalesce into single
  :class:`~repro.core.engine.InferenceEngine` calls
  (``CatiConfig.serve_max_batch`` / ``serve_max_delay_ms``), behind a
  bounded admission queue with per-request deadlines;
* :mod:`repro.serve.host` — the resident model: thread-safe engine
  swap, ``POST /v1/reload`` verification off the serving threads, and
  the ``--watch`` mtime poller;
* :mod:`repro.serve.server` — the HTTP daemon: ``POST /v1/infer``,
  ``POST /v1/reload``, ``GET /healthz``, ``GET /metricsz``, 503 +
  ``Retry-After`` on overload, SIGTERM drain;
* :mod:`repro.serve.router` / :mod:`repro.serve.worker` — the pre-fork
  scale-out path (``--workers N``): N worker processes, each a full
  daemon with memory-mapped model payloads shared through the bundle's
  ``.npy`` mirror, behind a router doing least-loaded dispatch,
  admission control, generation-fenced rolling reloads, crash respawn,
  and merged ``/healthz``//``/metricsz``;
* :mod:`repro.serve.client` — the small blocking client behind
  ``python -m repro client``, with bounded retries on connection drops
  and :class:`SessionHandle` bindings for the session API;
* :mod:`repro.analysis` (sibling package) — stateful interactive
  sessions: ``POST /v1/session/open`` parses + encodes a binary once,
  then ``POST /v1/session/<id>/call`` answers ``cati-tool-call/1``
  tools (list_functions, disassemble, type_variable, explain,
  annotate_disassembly, struct_layouts) against the held state.
  ``python -m repro repl`` is the interactive client.

See docs/OPERATIONS.md §7 "Serving" and docs/DEPLOYMENT.md for the
operator story.
"""

from repro.serve.client import ServeClient, SessionHandle
from repro.serve.host import ModelHost
from repro.serve.router import RouterDaemon
from repro.serve.scheduler import MicroBatchScheduler
from repro.serve.server import ServeDaemon
from repro.serve.worker import WorkerHandle

__all__ = ["MicroBatchScheduler", "ModelHost", "RouterDaemon",
           "ServeClient", "ServeDaemon", "SessionHandle", "WorkerHandle"]
