"""Dynamic micro-batching: coalesce concurrent requests into engine calls.

The engine's batched path amortizes encode/dedup/GEMM cost over many
windows, but one HTTP request usually carries one binary's worth. The
scheduler closes that gap: handler threads :meth:`submit` their
(windows, variable_ids) work and block; a single worker thread collects
everything that arrives within ``CatiConfig.serve_max_delay_ms`` (up to
``serve_max_batch`` windows), encodes each request with the engine that
will run the batch, concatenates the id tensors, runs **one**
:meth:`~repro.core.engine.InferenceEngine.leaf_proba_ids` call, and
votes each request's slice separately — so grouping and summation order
per request are exactly the offline ``Cati.infer_binary`` path's.

Admission control lives at :meth:`submit`: a bounded queue (by pending
*requests*) raises :class:`~repro.core.errors.QueueFullError` carrying a
``Retry-After`` hint derived from observed batch latency, and requests
whose deadline lapses while queued fail with
:class:`~repro.core.errors.DeadlineExceededError` instead of wasting a
batch slot. :meth:`close` drains: intake stops, queued work finishes,
the worker exits — the daemon's SIGTERM path.

Single-worker on purpose: the engine's dedup cache and stats are only
coordinated per call, numpy releases the GIL inside the GEMMs anyway,
and one worker keeps served numbers reproducible (batch order is
deterministic given arrival order).

Under ``--workers N`` (the pre-fork router,
:mod:`repro.serve.router`), one scheduler instance runs *per worker
process* — each worker coalesces the subset of requests the router
dispatched to it, so scale-out multiplies the batching loops instead
of contending on one.  The router performs its own admission control
up front; these per-worker queue limits remain as a second line of
defence should dispatch ever outrun a worker.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.core import observability
from repro.core.errors import (
    DeadlineExceededError,
    QueueFullError,
    ServerClosedError,
)
from repro.core.observability import SIZE_BUCKETS

#: Fallback Retry-After hint before any batch latency was observed.
_DEFAULT_RETRY_AFTER_S = 1.0


def encode_request_ids(encoder, windows, length: int):
    """Encode a request's windows, whichever wire form they arrived in.

    Packed windows (``list[str]``, the client's hot-path format) go
    through the string-memoized :meth:`~repro.embedding.encoder
    .VucEncoder.encode_packed_ids`; token-triple windows through
    :meth:`~repro.embedding.encoder.VucEncoder.encode_ids`.
    """
    if windows and isinstance(windows[0], str):
        return encoder.encode_packed_ids(windows, length=length)
    return encoder.encode_ids(windows, length=length)


class PendingRequest:
    """One submitted inference job: inputs, completion event, outcome.

    The worker hands back the request's leaf-probability slice plus the
    vote parameters it ran under (``vote_args``); the *waiting* thread
    then computes the per-variable vote, so the single batch worker
    never serializes per-request voting between engine calls.
    """

    __slots__ = ("windows", "variable_ids", "ids", "generation", "deadline",
                 "event", "probs", "vote_args", "predictions", "error",
                 "submitted_at")

    def __init__(self, windows, variable_ids, deadline: float | None,
                 ids=None, generation: int | None = None) -> None:
        self.windows = windows
        self.variable_ids = variable_ids
        #: Pre-encoded id tensor from the submitting thread (optional);
        #: only trusted while ``generation`` still matches the engine.
        self.ids = ids
        self.generation = generation
        #: Absolute ``time.monotonic()`` deadline, or None.
        self.deadline = deadline
        self.event = threading.Event()
        self.probs = None
        self.vote_args: tuple | None = None
        self.predictions: list | None = None
        self.error: BaseException | None = None
        self.submitted_at = time.monotonic()

    def finish(self, probs, vote_args: tuple) -> None:
        self.probs = probs
        self.vote_args = vote_args
        self.event.set()

    def finish_empty(self) -> None:
        self.predictions = []
        self.event.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.event.set()

    def resolve(self) -> list:
        """The vote, computed lazily on the waiting thread."""
        if self.predictions is None:
            from repro.core.pipeline import predictions_from_probs

            threshold, metrics, vote_detail = self.vote_args
            self.predictions = predictions_from_probs(
                self.probs, self.variable_ids, threshold,
                metrics=metrics, vote_detail=vote_detail)
        return self.predictions


class MicroBatchScheduler:
    """The bounded-queue micro-batching worker over a :class:`ModelHost`."""

    def __init__(self, host, queue_limit: int = 64) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.host = host
        self.queue_limit = queue_limit
        self._queue: deque[PendingRequest] = deque()
        self._lock = threading.Lock()
        self._have_work = threading.Condition(self._lock)
        self._closed = False
        self._in_flight = 0
        self._worker = threading.Thread(
            target=self._loop, name="serve-batcher", daemon=True)

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        self._worker.start()

    def close(self, timeout: float | None = None) -> None:
        """Stop intake, finish everything queued, join the worker."""
        with self._lock:
            self._closed = True
            self._have_work.notify_all()
        if self._worker.is_alive():
            self._worker.join(timeout)

    # -- admission ---------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Requests waiting plus requests inside the running batch."""
        with self._lock:
            return len(self._queue) + self._in_flight

    def retry_after_s(self) -> float:
        """Backoff hint: observed p50 batch latency times queued batches."""
        histogram = observability.get_registry().histogram("serve.batch.seconds")
        p50 = histogram.quantile(0.5)
        if p50 is None:
            return _DEFAULT_RETRY_AFTER_S
        batches_ahead = max(1, self.queue_depth)
        return max(0.1, min(p50 * batches_ahead, 60.0))

    def submit(self, windows, variable_ids, deadline_s: float | None = None,
               ids=None, generation: int | None = None) -> PendingRequest:
        """Enqueue one request; raises instead of queueing on overload.

        ``deadline_s`` is a relative budget; it bounds queue wait (the
        HTTP layer separately bounds the wait on the result event).
        Callers may pass a pre-encoded ``ids`` tensor together with the
        engine ``generation`` it was encoded under — the worker uses it
        only if no reload happened in between.
        """
        if len(windows) != len(variable_ids):
            raise ValueError("windows and variable_ids must align")
        deadline = (time.monotonic() + deadline_s
                    if deadline_s is not None else None)
        pending = PendingRequest(windows, variable_ids, deadline,
                                 ids=ids, generation=generation)
        if not windows:
            pending.finish_empty()
            return pending
        with self._lock:
            if self._closed:
                raise ServerClosedError("server is draining", stage="serve")
            if len(self._queue) >= self.queue_limit:
                observability.inc("serve.rejected.queue_full")
                raise QueueFullError(
                    f"admission queue full ({self.queue_limit} pending requests)",
                    retry_after_s=self.retry_after_s_locked(), stage="serve")
            self._queue.append(pending)
            depth = len(self._queue) + self._in_flight
            observability.set_gauge("serve.queue_depth", depth)
            observability.observe("serve.queue.depth", depth, SIZE_BUCKETS)
            self._have_work.notify()
        return pending

    def retry_after_s_locked(self) -> float:
        """:meth:`retry_after_s` for callers already holding the lock."""
        histogram = observability.get_registry().histogram("serve.batch.seconds")
        p50 = histogram.quantile(0.5)
        if p50 is None:
            return _DEFAULT_RETRY_AFTER_S
        batches_ahead = max(1, len(self._queue) + self._in_flight)
        return max(0.1, min(p50 * batches_ahead, 60.0))

    @staticmethod
    def wait(pending: PendingRequest, timeout: float | None = None) -> list:
        """Block for a submitted request's outcome; raise its failure.

        The per-variable vote runs here, on the waiting thread, so it
        overlaps the worker's next engine batch instead of serializing
        behind it.
        """
        if not pending.event.wait(timeout):
            raise DeadlineExceededError(
                f"no result within {timeout}s", stage="serve")
        if pending.error is not None:
            raise pending.error
        return pending.resolve()

    # -- the worker ---------------------------------------------------------------

    def _loop(self) -> None:
        while True:
            batch = self._collect()
            if not batch:
                return  # closed and drained
            try:
                self._run_batch(batch)
            finally:
                with self._lock:
                    self._in_flight = 0
                    observability.set_gauge("serve.queue_depth", len(self._queue))

    def _collect(self) -> list[PendingRequest]:
        """One batch: first waiter, then whatever the delay window adds."""
        config = self.host.config
        max_windows = config.serve_max_batch
        with self._have_work:
            while not self._queue and not self._closed:
                self._have_work.wait()
            if not self._queue:
                return []
            batch = [self._queue.popleft()]
            total = len(batch[0].windows)
            # Coalesce: keep gathering until the window budget is spent,
            # the delay elapses, or (draining) the queue is empty.
            until = time.monotonic() + config.serve_max_delay_ms / 1000.0
            while total < max_windows:
                if self._queue:
                    if total + len(self._queue[0].windows) > max_windows:
                        break
                    request = self._queue.popleft()
                    batch.append(request)
                    total += len(request.windows)
                    continue
                remaining = until - time.monotonic()
                if remaining <= 0 or self._closed:
                    break
                self._have_work.wait(remaining)
                if not self._queue:
                    break
            self._in_flight = len(batch)
            observability.set_gauge("serve.queue_depth",
                                    len(self._queue) + self._in_flight)
        return batch

    def _run_batch(self, batch: list[PendingRequest]) -> None:
        import numpy as np

        now = time.monotonic()
        live: list[PendingRequest] = []
        for request in batch:
            if request.deadline is not None and now > request.deadline:
                observability.inc("serve.deadline_exceeded")
                request.fail(DeadlineExceededError(
                    "deadline elapsed while queued", stage="serve"))
            else:
                live.append(request)
        if not live:
            return
        try:
            cati, engine, generation = self.host.acquire()
            config = cati.config
            metrics = config.metrics_enabled and observability.is_enabled()
            vote_args = (config.confidence_threshold, metrics,
                         config.metrics_vote_detail)
            total = sum(len(r.windows) for r in live)
            started = time.monotonic()
            with observability.span("serve.batch"):
                # Submitter-encoded ids are reused only when no reload
                # happened since; otherwise re-encode with the engine
                # that actually runs the batch.
                ids = np.concatenate([
                    r.ids if r.ids is not None and r.generation == generation
                    else encode_request_ids(engine.encoder, r.windows,
                                            config.vuc_length)
                    for r in live])
                probs = engine.leaf_proba_ids(ids)
                offset = 0
                for request in live:
                    span = probs[offset:offset + len(request.windows)]
                    offset += len(request.windows)
                    request.finish(span, vote_args)
            if metrics:
                registry = observability.get_registry()
                registry.inc("serve.batches")
                registry.inc("serve.coalesced_requests", len(live))
                registry.observe("serve.batch.windows", total, SIZE_BUCKETS)
                registry.observe("serve.batch.requests", len(live), SIZE_BUCKETS)
                registry.observe("serve.batch.seconds",
                                 time.monotonic() - started)
        except Exception as error:  # noqa: BLE001 — every waiter must wake
            for request in live:
                if not request.event.is_set():
                    request.fail(error)
