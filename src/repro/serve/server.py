"""The HTTP daemon: routing, error mapping, overload headers, drain.

Stdlib only (``http.server``'s :class:`ThreadingHTTPServer`): each
connection gets a handler thread that parses the request and — for
binary jobs — runs VUC extraction (pure Python, so it overlaps other
threads' engine GEMMs), then blocks on the
:class:`~repro.serve.scheduler.MicroBatchScheduler` for the coalesced
engine call.

Endpoints:

* ``POST /v1/infer``  — one job (``binary``/``windows``/
  ``windows_packed``/``path``/``demo``, see
  :mod:`repro.serve.protocol`); 200 with the shared
  response schema, 400 on malformed requests, 503 + ``Retry-After`` on
  overload or drain, 504 past the deadline, 422 when the pipeline
  itself rejects the job under ``on_error="raise"``.
* ``POST /v1/session/open`` — parse a binary/path/demo job once into a
  stateful analysis session (:mod:`repro.analysis`); the response
  carries the session id, the extracted variable ids and the TTL.
* ``POST /v1/session/<id>/call`` — one ``cati-tool-call/1`` tool
  dispatch against an open session; 410 (:class:`~repro.core.errors
  .SessionGoneError`) when the id no longer resolves — expired,
  evicted, or lost to a restart — which clients fix by re-opening.
* ``POST /v1/session/<id>/close`` — drop the session explicitly.
* ``POST /v1/reload`` — verify + swap a model bundle; 409 when the
  bundle is rejected (corrupt, schema drift, structural config
  mismatch) — the old model keeps serving.  Open sessions survive: the
  scheduler re-encodes their windows under the new engine generation.
* ``GET /healthz``    — status, ``repro.__version__``, uptime, model
  generation/provenance, queue depth, request-latency quantiles, and
  the session store's occupancy/eviction block.
* ``GET /metricsz``   — the full observability snapshot.

Shutdown: SIGTERM/SIGINT set the draining flag and call
``shutdown()`` from a helper thread (calling it on the signal-handling
main thread — the one inside ``serve_forever`` — would deadlock). The
listener stops; ``server_close`` then *joins* the handler threads
(``daemon_threads = False`` below — socketserver silently skips daemon
threads when joining), so every in-flight request finishes with a real
response before the scheduler drains its queue and the process exits.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

import repro
from repro.analysis import SessionStore, build_session, call_tool, mint_session_id
from repro.core import observability
from repro.core.config import CatiConfig
from repro.core.errors import (
    ArtifactError,
    CatiError,
    FailureReport,
    QueueFullError,
    RequestError,
    ServeError,
    check_on_error,
    handle_failure,
)
from repro.serve import protocol
from repro.serve.host import ModelHost
from repro.serve.scheduler import MicroBatchScheduler, encode_request_ids

#: Request bodies past this size are refused with 413 before parsing.
MAX_BODY_BYTES = 64 * 1024 * 1024


class _Server(ThreadingHTTPServer):
    # socketserver only tracks (and server_close only joins) NON-daemon
    # handler threads; the SIGTERM drain contract depends on that join.
    daemon_threads = False
    allow_reuse_address = True
    #: Set by ServeDaemon right after construction.
    daemon_ref: "ServeDaemon"


class _Handler(BaseHTTPRequestHandler):
    # Connection-per-request keeps drain simple: no idle keep-alive
    # sockets pinning handler threads past their one response.
    protocol_version = "HTTP/1.0"
    timeout = 120  # a stalled client must not block server_close's join

    @property
    def daemon(self) -> "ServeDaemon":
        return self.server.daemon_ref  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.daemon.verbose:
            super().log_message(format, *args)

    # -- plumbing ---------------------------------------------------------------

    def _send_json(self, status: int, body: dict,
                   headers: dict | None = None) -> None:
        data = json.dumps(body).encode("utf-8") + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _send_failure(self, error: BaseException) -> None:
        headers = {}
        if isinstance(error, ServeError):
            status = error.status
            retry_after = getattr(error, "retry_after_s", None)
            if status == 503:
                headers["Retry-After"] = str(max(1, round(retry_after or 1)))
        elif isinstance(error, CatiError):
            status = 422  # well-formed request, pipeline rejected the job
        else:
            status = 500
        observability.inc(f"serve.http.{status}")
        self._send_json(status, protocol.error_body(
            type(error).__name__, str(error)), headers)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise RequestError(f"body of {length} bytes exceeds the "
                               f"{MAX_BODY_BYTES} byte limit",
                               status=413, stage="serve")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            body = json.loads(raw)
        except ValueError as error:
            raise RequestError(f"body is not valid JSON: {error}",
                               stage="serve") from error
        if not isinstance(body, dict):
            raise RequestError("body must be a JSON object", stage="serve")
        return body

    # -- routing ----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        try:
            if self.path == "/healthz":
                self._send_json(200, self.daemon.health_body())
            elif self.path == "/metricsz":
                self._send_json(200, observability.snapshot())
            else:
                self._send_json(404, protocol.error_body(
                    "NotFound", f"no route {self.path}"))
        except Exception as error:  # noqa: BLE001 — must answer something
            self._send_failure(error)

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        try:
            if self.path == "/v1/infer":
                self._handle_infer()
            elif self.path == "/v1/session/open":
                self._handle_session_open()
            elif self.path.startswith("/v1/session/"):
                self._handle_session_action()
            elif self.path == "/v1/reload":
                self._handle_reload()
            else:
                self._send_json(404, protocol.error_body(
                    "NotFound", f"no route {self.path}"))
        except Exception as error:  # noqa: BLE001 — must answer something
            self._send_failure(error)

    # -- endpoints ---------------------------------------------------------------

    def _handle_infer(self) -> None:
        daemon = self.daemon
        started = time.monotonic()
        request = self._read_body()
        on_error = str(request.get("on_error", daemon.default_on_error))
        check_on_error(on_error)
        deadline_s = daemon.default_deadline_s
        if request.get("deadline_ms") is not None:
            deadline_s = float(request["deadline_ms"]) / 1000.0
        failures = FailureReport()
        windows, variable_ids, binary_name = daemon.prepare_job(
            request, on_error=on_error, failures=failures)
        # Pre-encode on this handler thread (overlapping other requests'
        # engine time); the scheduler re-encodes only if a reload swaps
        # the engine before the batch runs.
        cati, engine, generation = daemon.model_host.acquire()
        try:
            ids = (encode_request_ids(engine.encoder, windows,
                                      cati.config.vuc_length)
                   if windows else None)
        except ValueError as error:  # ragged lengths, malformed packing
            raise RequestError(str(error), stage="serve") from error
        pending = daemon.scheduler.submit(windows, variable_ids,
                                          deadline_s=deadline_s,
                                          ids=ids, generation=generation)
        try:
            predictions = daemon.scheduler.wait(pending, timeout=deadline_s)
        except ServeError:
            raise
        except Exception as error:  # engine failure inside the batch
            handle_failure(error, on_error=on_error, failures=failures,
                           stage="classify", binary=binary_name)
            predictions = []  # on_error="skip": degrade, report, answer
        body = protocol.build_infer_response(
            predictions, failures, model=daemon.model_host.model_info(),
            binary=binary_name)
        observability.inc("serve.requests")
        observability.observe("serve.request.seconds",
                              time.monotonic() - started)
        self._send_json(200, body)

    def _handle_session_open(self) -> None:
        daemon = self.daemon
        started = time.monotonic()
        request = self._read_body()
        on_error = str(request.get("on_error", daemon.default_on_error))
        check_on_error(on_error)
        failures = FailureReport()
        session = daemon.open_session(request, on_error=on_error,
                                      failures=failures)
        observability.observe("sessions.open.seconds",
                              time.monotonic() - started)
        self._send_json(200, protocol.session_open_response(
            session, ttl_s=daemon.sessions.ttl_s,
            model=daemon.model_host.model_info(), failures=failures))

    def _handle_session_action(self) -> None:
        daemon = self.daemon
        started = time.monotonic()
        parts = self.path.rstrip("/").split("/")
        # /v1/session/<id>/<action> → ["", "v1", "session", id, action]
        if len(parts) != 5 or parts[4] not in ("call", "close"):
            self._send_json(404, protocol.error_body(
                "NotFound", f"no route {self.path}"))
            return
        session_id, action = parts[3], parts[4]
        request = self._read_body()
        if action == "close":
            removed = daemon.sessions.remove(session_id)
            self._send_json(200, {"schema": protocol.TOOL_SCHEMA,
                                  "session": session_id, "closed": removed})
            return
        tool = request.get("tool")
        if not isinstance(tool, str):
            raise RequestError("'tool' must name the tool to call",
                               stage="serve")
        session = daemon.sessions.get(session_id)  # SessionGoneError → 410
        with observability.span("sessions.call"):
            result = call_tool(daemon, session, tool,
                               request.get("args") or {})
        observability.inc("sessions.calls")
        observability.inc(f"sessions.tool.{tool}")
        observability.observe("sessions.call.seconds",
                              time.monotonic() - started)
        self._send_json(200, protocol.tool_response(session_id, tool, result))

    def _handle_reload(self) -> None:
        request = self._read_body()
        model_dir = request.get("model_dir")
        try:
            info = self.daemon.model_host.reload(model_dir)
        except ArtifactError as error:
            observability.inc("serve.http.409")
            self._send_json(409, protocol.error_body(
                type(error).__name__, str(error)))
            return
        self._send_json(200, {"reloaded": True, "model": info})


class ServeDaemon:
    """One serving process: model host + scheduler + HTTP front end."""

    def __init__(
        self,
        model_dir: str | Path,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        config: CatiConfig | None = None,
        queue_limit: int = 64,
        default_deadline_s: float | None = None,
        default_on_error: str = "skip",
        watch: bool = False,
        watch_interval_s: float = 2.0,
        verbose: bool = False,
        mmap: bool = False,
        log_label: str = "serve",
        initial_generation: int = 1,
        slot_index: int = 0,
        slot_count: int = 1,
    ) -> None:
        check_on_error(default_on_error)
        self.started_at = time.time()
        self.verbose = verbose
        self.default_deadline_s = default_deadline_s
        self.default_on_error = default_on_error
        #: Log-line prefix; the pre-fork workers set "worker N" so their
        #: inherited stdout interleaves readably with the router's.
        self.log_label = log_label
        self.model_host = ModelHost(model_dir, config=config, mmap=mmap,
                                    initial_generation=initial_generation)
        self.scheduler = MicroBatchScheduler(self.model_host,
                                             queue_limit=queue_limit)
        #: Session stickiness under the pre-fork router: this daemon
        #: mints only session ids that hash back to its own slot
        #: (single daemon = slot 0 of 1, where every id matches).
        self._slot_index = slot_index
        self._slot_count = max(1, slot_count)
        session_config = self.model_host.config
        self.sessions = SessionStore(
            ttl_s=session_config.session_ttl_s,
            max_bytes=session_config.session_max_bytes)
        self.httpd = _Server((host, port), _Handler)
        self.httpd.daemon_ref = self
        self.draining = False
        self._watch = watch
        self._watch_interval_s = watch_interval_s

    @property
    def port(self) -> int:
        """The bound port (useful with ``--port 0``)."""
        return self.httpd.server_address[1]

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    # -- request helpers (thread-safe; called from handler threads) --------------

    def prepare_job(self, request: dict, *, on_error: str,
                    failures: FailureReport):
        """Turn a request body into ``(windows, variable_ids, binary_name)``.

        Extraction runs here — on the handler thread — so concurrent
        uploads extract in parallel while the scheduler's engine call
        for earlier batches is in flight.
        """
        kind = protocol.job_kind(request)
        if kind == "path":
            request = self._load_job_file(request["path"])
            kind = protocol.job_kind(request)
            if kind == "path":
                raise RequestError("job files must not nest 'path' jobs",
                                   stage="serve")
        if kind in ("windows", "windows_packed"):
            if kind == "windows":
                windows = protocol.windows_from_wire(request["windows"])
            else:
                windows = protocol.windows_from_packed(
                    request["windows_packed"])
            variable_ids = request.get("variable_ids")
            if (not isinstance(variable_ids, list)
                    or len(variable_ids) != len(windows)):
                raise RequestError(
                    f"'variable_ids' must be a list aligned with {kind!r}",
                    stage="serve")
            return windows, [str(v) for v in variable_ids], None
        stripped, extents = self._binary_job(request, kind)
        from repro.vuc.dataset import extract_unlabeled_vucs

        config = self.model_host.config
        with observability.span("serve.extract"):
            pairs = extract_unlabeled_vucs(
                stripped, extents, config.window,
                on_error=on_error, failures=failures,
                metrics=config.metrics_enabled)
        return ([tokens for _variable_id, tokens in pairs],
                [variable_id for variable_id, _tokens in pairs],
                stripped.name)

    def _binary_job(self, request: dict, kind: str):
        """The whole-binary job forms → ``(stripped, extents)``."""
        if kind == "demo":
            return self._compile_demo(request["demo"])
        stripped = protocol.binary_from_wire(request["binary"])
        extents = protocol.extents_from_wire(request.get("extents") or [])
        if len(extents) != len(stripped.functions):
            raise RequestError(
                f"'extents' has {len(extents)} function entries, "
                f"binary has {len(stripped.functions)} functions",
                stage="serve")
        return stripped, extents

    def open_session(self, request: dict, *, on_error: str,
                     failures: FailureReport):
        """Build + register one analysis session from an open request.

        Sessions need a whole binary — the listing backs ``disassemble``
        and ``annotate_disassembly`` — so the pre-extracted window job
        kinds are rejected up front.
        """
        kind = protocol.job_kind(request)
        if kind == "path":
            request = self._load_job_file(request["path"])
            kind = protocol.job_kind(request)
            if kind == "path":
                raise RequestError("job files must not nest 'path' jobs",
                                   stage="serve")
        if kind not in protocol.SESSION_JOB_KINDS:
            raise RequestError(
                f"sessions need one of {protocol.SESSION_JOB_KINDS} "
                f"(a whole binary), got a {kind!r} job", stage="serve")
        stripped, extents = self._binary_job(request, kind)
        cati, engine, generation = self.model_host.acquire()
        with observability.span("sessions.open"):
            session = build_session(
                mint_session_id(self._slot_index, self._slot_count),
                stripped, extents, encoder=engine.encoder,
                config=cati.config, generation=generation,
                on_error=on_error, failures=failures)
        self.sessions.put(session)
        return session

    @staticmethod
    def _load_job_file(path: object) -> dict:
        job_path = Path(str(path))
        try:
            body = json.loads(job_path.read_text(encoding="utf-8"))
        except OSError as error:
            raise RequestError(f"cannot read job file {job_path}: {error}",
                               stage="serve") from error
        except ValueError as error:
            raise RequestError(f"job file {job_path} is not valid JSON: "
                               f"{error}", stage="serve") from error
        if not isinstance(body, dict):
            raise RequestError(f"job file {job_path} must hold a JSON object",
                               stage="serve")
        return body

    @staticmethod
    def _compile_demo(spec: object):
        from repro.codegen.binary import debug_variables  # noqa: F401 — keeps demo import surface one place
        from repro.codegen.compilers import compiler_by_name
        from repro.codegen.strip import strip
        from repro.experiments.speed import extents_from_debug

        spec = spec if isinstance(spec, dict) else {}
        try:
            compiler = compiler_by_name(str(spec.get("compiler", "gcc")))
            binary = compiler.compile_fresh(
                seed=int(spec.get("seed", 1234)),
                name=str(spec.get("name", "serve-demo")),
                opt_level=int(spec.get("opt_level", 1)))
        except (KeyError, TypeError, ValueError) as error:
            raise RequestError(f"bad demo spec {spec!r}: {error}",
                               stage="serve") from error
        return strip(binary), extents_from_debug(binary)

    def health_body(self) -> dict:
        registry = observability.get_registry()
        latency = registry.histogram("serve.request.seconds")
        return {
            "status": "draining" if self.draining else "ok",
            "version": repro.__version__,
            "uptime_s": round(time.time() - self.started_at, 3),
            "model": self.model_host.model_info(),
            "queue": {
                "depth": self.scheduler.queue_depth,
                "limit": self.scheduler.queue_limit,
            },
            "sessions": self.sessions.stats(),
            "latency": {
                "p50_s": latency.quantile(0.5),
                "p99_s": latency.quantile(0.99),
            },
        }

    # -- lifecycle ---------------------------------------------------------------

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT start a drain (main thread only)."""
        signal.signal(signal.SIGTERM, self._on_signal)
        signal.signal(signal.SIGINT, self._on_signal)

    def _on_signal(self, signum, _frame) -> None:
        print(f"[{self.log_label}] {signal.Signals(signum).name}: draining",
              flush=True)
        self.request_shutdown()

    def request_shutdown(self) -> None:
        """Begin draining; safe from any thread, returns immediately.

        ``shutdown()`` must not run on the thread inside
        ``serve_forever`` (it would deadlock), so it gets its own.
        """
        self.draining = True
        threading.Thread(target=self.httpd.shutdown,
                         name="serve-shutdown", daemon=True).start()

    def run(self) -> int:
        """Serve until shutdown; drain handler threads and the queue."""
        self.scheduler.start()
        if self._watch:
            self.model_host.start_watching(self._watch_interval_s)
        print(f"[{self.log_label}] model generation "
              f"{self.model_host.generation} "
              f"from {self.model_host.model_dir}", flush=True)
        if self.log_label == "serve":
            # The bare banner is the operator/smoke contract for "this
            # is the port clients talk to" — only the front process may
            # print it.  Pre-fork workers (labelled "worker N") announce
            # their loopback port with the label instead; the router
            # prints the client-facing banner.
            print(f"serving on http://{self.host}:{self.port}", flush=True)
        else:
            print(f"[{self.log_label}] listening on "
                  f"http://{self.host}:{self.port}", flush=True)
        try:
            self.httpd.serve_forever(poll_interval=0.1)
        finally:
            self.draining = True
            # Joins in-flight handler threads (daemon_threads=False), so
            # every accepted request gets its response...
            self.httpd.server_close()
            # ...then the scheduler finishes whatever they had queued.
            self.scheduler.close(timeout=60.0)
            self.model_host.stop_watching()
        print(f"[{self.log_label}] drained, exiting", flush=True)
        return 0
