"""A small blocking client for the serve daemon (stdlib ``http.client``).

Backs ``python -m repro client`` and the serve tests/benchmarks. One
:class:`ServeClient` is cheap — it opens a fresh connection per call
(the daemon speaks HTTP/1.0, connection-per-request), so instances are
safe to share across threads.

Server-side errors surface as :class:`ServeClientError` carrying the
HTTP status and the decoded ``{"error": {...}}`` body, so callers can
distinguish 503-overload (``retry_after``) from 400-malformed from
409-reload-rejected without string matching.

Connection-level drops — reset/refused/closed-without-response — are
retried with bounded exponential backoff
(:func:`repro.core.toolchain.retry_delays`): during a hot reload or a
worker respawn the daemon can drop a connection it has not answered
yet, and surfacing that as a raw ``ConnectionError`` made every caller
carry its own retry loop.  Timeouts are *not* retried — they count
against the caller's deadline.
"""

from __future__ import annotations

import http.client
import json
import time

from repro.codegen.binary import Binary
from repro.core.toolchain import retry_delays
from repro.serve import protocol
from repro.vuc.dataflow import VariableExtent

#: Connection-level failures worth a bounded retry: the server went
#: away between connect and response (reload, respawn, drain race) —
#: not protocol errors and not timeouts.
RETRYABLE_EXCEPTIONS = (
    ConnectionResetError,
    ConnectionRefusedError,
    ConnectionAbortedError,
    BrokenPipeError,
    http.client.RemoteDisconnected,
)


class ServeClientError(RuntimeError):
    """A non-2xx response from the daemon."""

    def __init__(self, status: int, payload: dict,
                 retry_after: float | None = None) -> None:
        error = payload.get("error") or {}
        message = error.get("message") or f"HTTP {status}"
        kind = error.get("kind") or "Error"
        super().__init__(f"{kind} (HTTP {status}): {message}")
        self.status = status
        self.kind = kind
        self.payload = payload
        #: Parsed ``Retry-After`` seconds on 503s, else None.
        self.retry_after = retry_after


class ServeClient:
    """Blocking JSON client for one daemon address."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8080,
                 timeout: float = 300.0, *, retries: int = 2,
                 retry_backoff_s: float = 0.1) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        #: Extra attempts after a connection-level drop (0 disables).
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s

    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        payload = None
        headers = {}
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        delays = retry_delays(self.retry_backoff_s, self.retries)
        attempts = 1 + max(0, self.retries)
        for attempt in range(attempts):
            try:
                return self._request_once(method, path, payload, headers)
            except RETRYABLE_EXCEPTIONS:
                if attempt + 1 >= attempts:
                    raise
                time.sleep(next(delays))
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_once(self, method: str, path: str, payload: bytes | None,
                      headers: dict) -> dict:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                decoded = json.loads(raw) if raw else {}
            except ValueError:
                decoded = {"error": {"kind": "BadResponse",
                                     "message": raw[:200].decode("utf-8", "replace")}}
            if not 200 <= response.status < 300:
                retry_after = response.getheader("Retry-After")
                raise ServeClientError(
                    response.status, decoded,
                    retry_after=float(retry_after) if retry_after else None)
            return decoded
        finally:
            connection.close()

    # -- endpoints ---------------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metricsz")

    def reload(self, model_dir: str | None = None) -> dict:
        body = {"model_dir": model_dir} if model_dir else {}
        return self._request("POST", "/v1/reload", body)

    def infer(self, request: dict) -> dict:
        """Raw ``/v1/infer`` call with an already-built job body."""
        return self._request("POST", "/v1/infer", request)

    def infer_binary(self, stripped: Binary,
                     extents_by_function: list[list[VariableExtent]],
                     **options) -> dict:
        """Upload a stripped binary + variable locations for typing."""
        request = {
            "binary": protocol.binary_to_wire(stripped),
            "extents": protocol.extents_to_wire(extents_by_function),
        }
        request.update(options)
        return self.infer(request)

    def infer_windows(self, windows, variable_ids, *, packed: bool = True,
                      **options) -> dict:
        """Type pre-extracted generalized VUC windows.

        Sends the packed wire form by default — parsing it costs the
        server an order of magnitude less than the nested-list form;
        ``packed=False`` keeps the verbose format (useful when tokens
        might contain tabs or newlines, which packing cannot carry).
        """
        if packed:
            request = {"windows_packed": protocol.pack_windows(windows)}
        else:
            request = {"windows": [[list(triple) for triple in window]
                                   for window in windows]}
        request["variable_ids"] = list(variable_ids)
        request.update(options)
        return self.infer(request)

    # -- interactive sessions ------------------------------------------------------

    def open_session(self, request: dict) -> "SessionHandle":
        """Raw ``/v1/session/open`` with an already-built job body."""
        response = self._request("POST", "/v1/session/open", request)
        return SessionHandle(self, response["session"])

    def session(self, *, binary: Binary | None = None,
                extents: list[list[VariableExtent]] | None = None,
                path: str | None = None, demo: dict | None = None,
                **options) -> "SessionHandle":
        """Open an analysis session from whichever job form the caller has.

        Exactly one of ``binary`` (+ ``extents``), ``path``, or ``demo``
        must be given — the same whole-binary job forms ``/v1/infer``
        accepts (pre-extracted windows cannot back a session).
        """
        request: dict = dict(options)
        if binary is not None:
            request["binary"] = protocol.binary_to_wire(binary)
            request["extents"] = protocol.extents_to_wire(extents or [])
        if path is not None:
            request["path"] = path
        if demo is not None:
            request["demo"] = demo
        return self.open_session(request)


class SessionHandle:
    """Client-side view of one open analysis session.

    Thin by design: every method is one ``/v1/session/<id>/call``
    round-trip returning the tool's ``result`` object.  A 410
    (:class:`~repro.core.errors.SessionGoneError` server-side) surfaces
    as a :class:`ServeClientError` with ``status == 410`` — the session
    expired, was evicted, or died with its worker; re-open and retry.
    """

    def __init__(self, client: ServeClient, info: dict) -> None:
        self.client = client
        self.info = info
        self.id = info["id"]

    @property
    def variables(self) -> list[str]:
        """Every extracted variable id, from the open response."""
        return list(self.info.get("variables") or [])

    def call(self, tool: str, **args) -> dict:
        """One ``cati-tool-call/1`` dispatch; returns the ``result``."""
        response = self.client._request(
            "POST", f"/v1/session/{self.id}/call",
            {"tool": tool, "args": args})
        return response["result"]

    def list_functions(self) -> dict:
        return self.call("list_functions")

    def disassemble(self, function=0) -> dict:
        return self.call("disassemble", function=function)

    def type_variable(self, variable_id: str) -> dict:
        return self.call("type_variable", variable_id=variable_id)

    def explain(self, variable_id: str, vuc: int = 0) -> dict:
        return self.call("explain", variable_id=variable_id, vuc=vuc)

    def annotate_disassembly(self, function=0) -> dict:
        return self.call("annotate_disassembly", function=function)

    def struct_layouts(self) -> dict:
        return self.call("struct_layouts")

    def close(self) -> dict:
        return self.client._request("POST", f"/v1/session/{self.id}/close", {})
