"""The serving wire format: JSON request/response schemas + codecs.

Everything that crosses the HTTP boundary is defined here so the
daemon, the client and the offline CLI (``python -m repro infer
--json``) agree on one schema.

An ``/v1/infer`` request body is a JSON object with exactly one *job*
key:

* ``{"binary": <wire binary>, "extents": <wire extents>}`` — an
  uploaded stripped binary: per-function instruction listings (rendered
  through the canonical AT&T text the asm parser round-trips) plus the
  given variable locations (§VII-B's assumption);
* ``{"windows": [[[m, op1, op2], ...], ...], "variable_ids": [...]}``
  — pre-extracted generalized VUC windows, for clients that run
  location/extraction themselves (decompiler plugins);
* ``{"windows_packed": ["m\\top1\\top2\\n...", ...], "variable_ids":
  [...]}`` — the same windows with each window packed into one string
  (instructions joined by newlines, tokens by tabs).  Parsing a flat
  string list is an order of magnitude cheaper than a deeply nested
  JSON array, so this is what :class:`~repro.serve.client.ServeClient`
  sends on the hot path;
* ``{"path": "/abs/job.json"}`` — a job file on the server's
  filesystem containing one of the above;
* ``{"demo": {"seed": N, "compiler": "gcc", "opt_level": 1}}`` — the
  server compiles, strips and types a seeded demo binary (smoke tests).

Optional request fields: ``on_error`` (``"skip"``/``"raise"``),
``deadline_ms`` (per-request deadline).

The response schema (:func:`build_infer_response`) is shared verbatim
with ``python -m repro infer --json``: ``schema``, ``model`` info,
``predictions`` (variable id, type, VUC count, confidence, per-type
scores) and a machine-readable ``failures`` report.

The interactive session endpoints (``/v1/session/open``,
``/v1/session/<id>/call``, ``/v1/session/<id>/close`` — see
:mod:`repro.analysis`) share the binary/path/demo job forms for opens
and speak the ``cati-tool-call/1`` envelope (:data:`TOOL_SCHEMA`,
:func:`session_open_response`, :func:`tool_response`) for everything
else.

The schema is deliberately *router-transparent*: the pre-fork router
(:mod:`repro.serve.router`) forwards ``/v1/infer`` bodies to worker
processes byte-for-byte and relays their responses unparsed, so the
multi-worker deployment speaks exactly this format with zero
re-encoding on the forwarding path — the packed form's ~10x parsing
advantage carries through unchanged.  Anything added to the schema is
automatically served by both deployment shapes.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.asm.instruction import FunctionListing
from repro.asm.parser import AsmParseError, parse_instruction
from repro.codegen.binary import Binary
from repro.core.errors import FailureReport, RequestError
from repro.vuc.dataflow import VariableExtent
from repro.vuc.intern import intern_line, intern_tokens

if TYPE_CHECKING:
    from repro.core.pipeline import VariablePrediction

#: Version tag stamped into every /v1/infer response (and the CLI's
#: ``--json`` output); bump on any response-shape change.
#: /2 added per-prediction vote detail (``margin``, ``runner_up``,
#: ``runner_up_confidence``) and the optional top-level ``layouts``
#: block emitted when the posterior struct-recovery stage ran.
RESPONSE_SCHEMA = "cati-infer-response/2"

#: Job kinds an /v1/infer request may carry (exactly one).
JOB_KINDS = ("binary", "windows", "windows_packed", "path", "demo")

#: Version tag stamped into every session-endpoint response
#: (``/v1/session/open`` and ``/v1/session/<id>/call``); bump on any
#: session-wire change.  A call request body is ``{"tool": <name>,
#: "args": {...}}``; the response wraps the tool's ``result`` object.
TOOL_SCHEMA = "cati-tool-call/1"

#: Job kinds a /v1/session/open request may carry — the ones that name
#: a whole binary.  Pre-extracted window jobs have no listing to
#: disassemble or annotate, so they cannot back a session.
SESSION_JOB_KINDS = ("binary", "path", "demo")


# -- Binary <-> wire ------------------------------------------------------------


def binary_to_wire(binary: Binary) -> dict:
    """A :class:`Binary`'s inference-relevant view as JSON-ready data.

    Instructions travel as ``[address, "mnemonic op1,op2"]`` pairs in
    the canonical AT&T text that :func:`repro.asm.parser
    .parse_instruction` round-trips exactly (asserted by
    ``tests/test_serve.py``), so the served pipeline sees the same
    instruction stream the offline pipeline would.
    """
    return {
        "name": binary.name,
        "compiler": binary.compiler,
        "opt_level": binary.opt_level,
        "functions": [
            {
                "name": func.name,
                "address": func.address,
                "instructions": [[ins.address, str(ins)] for ins in func.instructions],
            }
            for func in binary.functions
        ],
    }


def binary_from_wire(data: object) -> Binary:
    """Rebuild a stripped :class:`Binary` from :func:`binary_to_wire` data."""
    if not isinstance(data, dict):
        raise RequestError("'binary' must be an object", stage="serve")
    functions: list[FunctionListing] = []
    for func_data in _expect(data, "functions", list):
        if not isinstance(func_data, dict):
            raise RequestError("each function must be an object", stage="serve")
        listing = FunctionListing(
            name=str(func_data.get("name", "?")),
            address=int(func_data.get("address", 0)),
        )
        for entry in _expect(func_data, "instructions", list):
            try:
                address, text = entry
                listing.instructions.append(
                    parse_instruction(str(text), address=int(address)))
            except (AsmParseError, TypeError, ValueError) as error:
                raise RequestError(
                    f"bad instruction entry {entry!r}: {error}",
                    function=listing.name, stage="serve") from error
        functions.append(listing)
    return Binary(
        name=str(data.get("name", "uploaded")),
        compiler=str(data.get("compiler", "unknown")),
        opt_level=int(data.get("opt_level", 0)),
        functions=functions,
    )


def extents_to_wire(extents_by_function: list[list[VariableExtent]]) -> list:
    """Per-function variable locations as JSON-ready data."""
    return [
        [{"name": e.name, "base": e.base, "offset": e.offset, "size": e.size}
         for e in extents]
        for extents in extents_by_function
    ]


def extents_from_wire(data: object) -> list[list[VariableExtent]]:
    if not isinstance(data, list):
        raise RequestError("'extents' must be a list of per-function lists",
                           stage="serve")
    out: list[list[VariableExtent]] = []
    for extents in data:
        if not isinstance(extents, list):
            raise RequestError("each function's extents must be a list",
                               stage="serve")
        row = []
        for entry in extents:
            try:
                row.append(VariableExtent(
                    name=str(entry["name"]), base=str(entry["base"]),
                    offset=int(entry["offset"]), size=int(entry["size"])))
            except (KeyError, TypeError, ValueError) as error:
                raise RequestError(
                    f"bad extent entry {entry!r}: {error}",
                    stage="serve") from error
        out.append(row)
    return out


def windows_from_wire(data: object) -> list[tuple[tuple[str, str, str], ...]]:
    """Pre-extracted generalized windows → hashable token-triple tuples.

    Triples are interned at the wire boundary (:func:`repro.vuc.intern
    .intern_tokens`), so the encoder sees the same canonical objects the
    offline extraction path produces and skips string hashing entirely.
    """
    if not isinstance(data, list):
        raise RequestError("'windows' must be a list of windows", stage="serve")
    out = []
    for window in data:
        try:
            out.append(tuple(
                intern_tokens((str(triple[0]), str(triple[1]), str(triple[2])))
                for triple in window))
        except (IndexError, TypeError) as error:
            raise RequestError(
                f"bad window entry (expected [mnemonic, op1, op2] triples): "
                f"{error}", stage="serve") from error
    return out


def pack_windows(windows) -> list[str]:
    """Windows → the packed wire form (one string per window).

    Instructions are joined by ``"\\n"``, each instruction's three
    tokens by ``"\\t"``.  Generalized tokens never contain whitespace,
    so the packing round-trips; :func:`unpack_windows` is the inverse
    and :meth:`VucEncoder.encode_packed_ids
    <repro.embedding.encoder.VucEncoder.encode_packed_ids>` consumes
    the packed form directly without rebuilding tuples.
    """
    return ["\n".join("\t".join(triple) for triple in window)
            for window in windows]


def windows_from_packed(data: object) -> list[str]:
    """Validate a ``windows_packed`` payload; returns it as ``list[str]``.

    Structure (3 tokens per line, equal window lengths) is enforced by
    the encoder when the ids are built; here we only reject payloads
    the encoder could misread.
    """
    if not isinstance(data, list):
        raise RequestError("'windows_packed' must be a list of strings",
                           stage="serve")
    for window in data:
        if not isinstance(window, str) or not window:
            raise RequestError(
                "each packed window must be a non-empty string "
                "(instructions joined by newlines, tokens by tabs)",
                stage="serve")
    return data


def unpack_windows(packed: Sequence[str]) -> list[tuple]:
    """Packed windows → the hashable token-triple tuples form.

    Decodes through the process-wide line memo, so each distinct line
    costs one split ever and the triples come back interned (zero new
    tuple objects on the hot path).
    """
    return [tuple(intern_line(line) for line in window.split("\n"))
            for window in packed]


def job_kind(request: dict) -> str:
    """Which job key the request carries; exactly one must be present."""
    present = [kind for kind in JOB_KINDS if kind in request]
    if len(present) != 1:
        raise RequestError(
            f"request must carry exactly one of {JOB_KINDS}, got {present or 'none'}",
            stage="serve")
    return present[0]


# -- responses ------------------------------------------------------------------


def prediction_to_dict(prediction: "VariablePrediction") -> dict:
    """One VariablePrediction as the wire schema's prediction object.

    ``margin`` is the winner-minus-runner-up gap of the summed clipped
    vote scores (eq. 4's decision strength — what the posterior stage
    consumes); ``runner_up``/``runner_up_confidence`` name the losing
    finalist so clients can see *how* contested a prediction was.
    """
    from repro.core.types import ALL_TYPES

    scores = prediction.scores
    winner = int(scores.argmax())
    best = float(scores[winner])
    runner_up = None
    runner_up_score = 0.0
    if len(scores) > 1:
        order = scores.argsort()
        second = int(order[-1]) if int(order[-1]) != winner else int(order[-2])
        runner_up = str(ALL_TYPES[second])
        runner_up_score = float(scores[second])
    return {
        "variable_id": prediction.variable_id,
        "type": str(prediction.predicted),
        "n_vucs": prediction.n_vucs,
        "confidence": best,
        "margin": best - runner_up_score,
        "runner_up": runner_up,
        "runner_up_confidence": runner_up_score,
        "scores": [float(s) for s in scores],
    }


def layout_to_dict(layout) -> dict:
    """One recovered :class:`repro.posterior.StructLayout` as wire data."""
    return {
        "object_id": layout.object_id,
        "objects": list(layout.objects),
        "n_accesses": layout.n_accesses,
        "fields": [
            {
                "offset": f.offset,
                "type": str(f.label),
                "n_accesses": f.n_accesses,
                "width": f.width,
                "confidence": f.confidence,
                "margin": f.margin,
            }
            for f in layout.fields
        ],
    }


def build_infer_response(
    predictions: list,
    failures: FailureReport | None = None,
    *,
    model: dict | None = None,
    binary: str | None = None,
    layouts: list | None = None,
) -> dict:
    """The /v1/infer response body (also ``repro infer --json`` output).

    ``model`` is the server's model-info block (bundle path, generation,
    provenance); the offline CLI passes its own. ``predictions`` keep
    the extraction order, which both paths share.  ``layouts`` (only
    present when the posterior struct-recovery stage ran) carries the
    recovered struct layouts.
    """
    report = failures if failures is not None else FailureReport()
    body = {
        "schema": RESPONSE_SCHEMA,
        "binary": binary,
        "model": dict(model or {}),
        "n_predictions": len(predictions),
        "n_vucs": int(sum(p.n_vucs for p in predictions)),
        "predictions": [prediction_to_dict(p) for p in predictions],
        "failures": report.to_dict(),
    }
    if layouts is not None:
        body["layouts"] = [layout_to_dict(layout) for layout in layouts]
    return body


def session_open_response(session, *, ttl_s: float,
                          model: dict | None = None,
                          failures: FailureReport | None = None) -> dict:
    """The ``/v1/session/open`` response body.

    ``variables`` carries every extracted variable id up front so thin
    clients (the repl's tab completion, smoke scripts) need no extra
    round-trip before their first ``type_variable``.
    """
    report = failures if failures is not None else FailureReport()
    return {
        "schema": TOOL_SCHEMA,
        "session": {
            "id": session.session_id,
            "binary": session.binary.name,
            "n_functions": len(session.binary.functions),
            "n_variables": len(session.rows),
            "n_windows": len(session.windows),
            "nbytes": session.nbytes,
            "ttl_s": ttl_s,
            "generation": session.ids_generation,
            "variables": sorted(session.rows),
        },
        "model": dict(model or {}),
        "failures": report.to_dict(),
    }


def tool_response(session_id: str, tool: str, result: dict) -> dict:
    """The ``/v1/session/<id>/call`` response envelope."""
    return {
        "schema": TOOL_SCHEMA,
        "session": session_id,
        "tool": tool,
        "result": result,
    }


def error_body(kind: str, message: str, **extra) -> dict:
    """The uniform error response body: ``{"error": {...}}``."""
    body = {"error": {"kind": kind, "message": message}}
    body["error"].update(extra)
    return body


def _expect(data: dict, key: str, kind: type) -> object:
    value = data.get(key)
    if not isinstance(value, kind):
        raise RequestError(
            f"request field {key!r} must be a {kind.__name__}", stage="serve")
    return value
