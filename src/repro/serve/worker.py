"""Worker processes for the pre-fork serving architecture.

A *worker* is a full :class:`~repro.serve.server.ServeDaemon` — model
host, micro-batch scheduler, HTTP front — running in its own process
with its own GIL, bound to an ephemeral loopback port only the router
talks to.  The router forwards request bodies verbatim, so workers
speak exactly the single-daemon wire protocol and every endpoint
(``/v1/infer``, ``/v1/reload``, ``/healthz``, ``/metricsz``) keeps its
meaning; the router aggregates on top.

Workers load bundles with ``mmap=True``: payloads come from the
bundle's shared ``.npy`` mirror (:meth:`ModelBundle.load_shared`), so
N workers map the same physical pages of the embedding table instead
of holding N heap copies.

Processes are started with the ``spawn`` context, not ``fork``: the
router runs handler threads, and forking a multithreaded process can
leave a child deadlocked on a lock some other thread held at fork
time.  The spawn handshake travels over a :func:`multiprocessing.Pipe`
— the child reports ``("ready", {"port": ..., "pid": ...})`` once its
socket is bound, or ``("error", message)`` when the model fails to
load, so the router can fail fast instead of timing out.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from pathlib import Path

from repro.core.errors import ServeError

#: Seconds a freshly spawned worker gets to import numpy, load + warm
#: the model, and bind its socket before the router gives up on it.
WORKER_START_TIMEOUT_S = 300.0


def worker_main(worker_id: int, model_dir: str, config_dict: dict | None,
                options: dict, conn) -> None:
    """Entry point of one worker process (spawn target).

    Builds a :class:`ServeDaemon` on ``127.0.0.1:0`` with memory-mapped
    payloads, reports the bound port (or the load failure) over
    ``conn``, then serves until SIGTERM.  Runs in the child's main
    thread, so the daemon's signal-based drain works unchanged.
    """
    from repro.core.config import CatiConfig
    from repro.serve.server import ServeDaemon

    label = f"worker {worker_id}"
    try:
        config = (CatiConfig.from_dict(config_dict)
                  if config_dict is not None else None)
        daemon = ServeDaemon(
            model_dir,
            host="127.0.0.1",
            port=0,
            config=config,
            queue_limit=int(options.get("queue_limit", 64)),
            default_deadline_s=options.get("default_deadline_s"),
            default_on_error=str(options.get("default_on_error", "skip")),
            verbose=bool(options.get("verbose", False)),
            mmap=bool(options.get("mmap", True)),
            log_label=label,
            # Respawned workers join at the router's current fence
            # generation so /healthz stays coherent across restarts.
            initial_generation=int(options.get("generation", 1)),
            # Session stickiness: this worker mints only session ids
            # that slot-hash back to itself, so the router can route
            # /v1/session/<id>/* by pure arithmetic.
            slot_index=worker_id,
            slot_count=int(options.get("slot_count", 1)),
        )
    except BaseException as error:  # noqa: BLE001 — must report, then die
        try:
            conn.send(("error", f"{type(error).__name__}: {error}"))
        finally:
            conn.close()
        raise SystemExit(1) from error
    daemon.install_signal_handlers()
    conn.send(("ready", {"port": daemon.port, "pid": os.getpid()}))
    conn.close()
    raise SystemExit(daemon.run())


class WorkerHandle:
    """Router-side view of one worker process.

    Owns the process object, the bound port, and the router's in-flight
    counter for least-loaded dispatch.  A handle is immutable once
    ready; respawning a crashed worker creates a *new* handle (see
    :class:`repro.serve.router.RouterDaemon`).
    """

    def __init__(self, worker_id: int, model_dir: str | Path,
                 config_dict: dict | None, options: dict) -> None:
        self.worker_id = worker_id
        self.model_dir = str(model_dir)
        ctx = multiprocessing.get_context("spawn")
        self._conn, child_conn = ctx.Pipe(duplex=False)
        self.process = ctx.Process(
            target=worker_main,
            args=(worker_id, self.model_dir, config_dict, options, child_conn),
            name=f"serve-worker-{worker_id}", daemon=True)
        self.process.start()
        child_conn.close()
        self.port: int | None = None
        self.pid: int | None = None
        self.started_at = time.time()
        #: Requests currently forwarded to this worker; guarded by the
        #: router's dispatch lock (plain int is enough under it).
        self.in_flight = 0

    def wait_ready(self, timeout_s: float = WORKER_START_TIMEOUT_S) -> None:
        """Block until the worker reports its port; raise on failure."""
        deadline = time.monotonic() + timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.terminate()
                raise ServeError(
                    f"worker {self.worker_id} did not become ready within "
                    f"{timeout_s:.0f}s", stage="serve")
            if self._conn.poll(min(remaining, 0.5)):
                break
            if not self.process.is_alive():
                # One last poll: the handshake may already be buffered.
                if self._conn.poll(0):
                    break
                raise ServeError(
                    f"worker {self.worker_id} died during startup "
                    f"(exit code {self.process.exitcode})", stage="serve")
        try:
            kind, payload = self._conn.recv()
        except (EOFError, OSError) as error:
            raise ServeError(
                f"worker {self.worker_id} closed its handshake pipe "
                f"(exit code {self.process.exitcode})",
                stage="serve") from error
        finally:
            self._conn.close()
        if kind != "ready":
            self.terminate()
            raise ServeError(
                f"worker {self.worker_id} failed to start: {payload}",
                stage="serve")
        self.port = int(payload["port"])
        self.pid = int(payload["pid"])

    @property
    def ready(self) -> bool:
        return self.port is not None

    def is_alive(self) -> bool:
        return self.process.is_alive()

    def terminate(self, join_timeout_s: float = 30.0) -> None:
        """SIGTERM (graceful drain), then SIGKILL if the join times out."""
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=join_timeout_s)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=5.0)


__all__ = ["WORKER_START_TIMEOUT_S", "WorkerHandle", "worker_main"]
