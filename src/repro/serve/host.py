"""The resident model: verified load, hot swap, optional mtime watcher.

One :class:`ModelHost` owns the :class:`~repro.core.pipeline.Cati`
(and its :class:`~repro.core.engine.InferenceEngine`) the daemon serves
from. Reload — triggered by ``POST /v1/reload`` or the ``--watch``
poller — happens entirely off the request path:

1. ``ModelBundle.open`` + ``verify()`` checksum every payload first;
2. ``Cati.load(dir, config=<current>)`` rebuilds the model. Passing the
   *current* config keeps operator-set runtime knobs (batching, voting
   threshold) and makes structural drift — a bundle trained with a
   different ``window``/``fc_width``/... — fail with
   :class:`~repro.core.errors.ConfigMismatchError` instead of loading
   garbage weights;
3. ``warm_start()`` compiles the new engine's kernels;
4. only then is the engine swapped, under a lock, with a generation
   bump.

A rejected reload (corrupt payload, schema drift, config mismatch)
raises before step 4, so the previous model keeps serving untouched.
Batches already running against the old engine finish on it — the old
object stays alive as long as any batch holds a reference.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

from repro.core import observability
from repro.core.artifacts import ModelBundle
from repro.core.config import CatiConfig
from repro.core.errors import ArtifactError
from repro.core.pipeline import Cati


class ModelHost:
    """Thread-safe owner of the served model with hot-reload support."""

    def __init__(self, model_dir: str | Path,
                 config: CatiConfig | None = None, *,
                 mmap: bool = False, initial_generation: int = 1) -> None:
        self._model_dir = Path(model_dir)
        self._mmap = mmap
        self._lock = threading.Lock()
        self._watcher: threading.Thread | None = None
        self._watch_stop = threading.Event()
        with observability.span("serve.load"):
            cati = Cati.load(str(self._model_dir), config=config,
                             warm_start=True, mmap=mmap)
        # ``initial_generation`` lets a respawned pre-fork worker join
        # at the router's current fence generation instead of restarting
        # its process-local counter at 1.
        self._install(cati, generation=initial_generation)

    def _install(self, cati: Cati, generation: int) -> None:
        engine = cati.engine  # build outside any request's critical path
        with self._lock:
            self._cati = cati
            self._engine = engine
            self._generation = generation
            self._loaded_at = time.time()
            self._mtime = self._bundle_mtime()
        observability.set_gauge("serve.model_generation", generation)

    # -- accessors ---------------------------------------------------------------

    @property
    def config(self) -> CatiConfig:
        with self._lock:
            return self._cati.config

    @property
    def generation(self) -> int:
        with self._lock:
            return self._generation

    @property
    def model_dir(self) -> Path:
        return self._model_dir

    def acquire(self):
        """A consistent ``(cati, engine, generation)`` snapshot.

        Callers keep the returned objects for the whole batch; a reload
        meanwhile swaps the host's references but never mutates these.
        """
        with self._lock:
            return self._cati, self._engine, self._generation

    def model_info(self) -> dict:
        """The model block surfaced in /healthz and infer responses."""
        with self._lock:
            cati, generation, loaded_at = self._cati, self._generation, self._loaded_at
        provenance = dict(cati.provenance or {})
        embedding = cati.embedding
        return {
            "bundle": str(self._model_dir),
            "generation": generation,
            "mmap": bool(getattr(cati, "mmap_active", False)),
            "loaded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                       time.gmtime(loaded_at)),
            "repro_version": provenance.get("repro_version"),
            "vocab_size": len(embedding.vocab) if embedding is not None else 0,
            "provenance": provenance,
        }

    # -- reload ------------------------------------------------------------------

    def reload(self, model_dir: str | Path | None = None) -> dict:
        """Verify + load + warm a bundle, then atomically swap it in.

        Raises :class:`~repro.core.errors.ArtifactError` (integrity,
        schema, config-mismatch) without touching the serving model.
        Returns the new :meth:`model_info`.
        """
        target = Path(model_dir) if model_dir is not None else self._model_dir
        current_config = self.config
        try:
            with observability.span("serve.reload"):
                bundle = ModelBundle.open(target)
                bundle.verify()
                cati = Cati.load(str(target), config=current_config,
                                 warm_start=True, mmap=self._mmap)
        except ArtifactError:
            observability.inc("serve.reload.rejected")
            raise
        with self._lock:
            generation = self._generation + 1
        self._model_dir = target
        self._install(cati, generation=generation)
        observability.inc("serve.reload.ok")
        return self.model_info()

    # -- --watch poller ----------------------------------------------------------

    def _bundle_mtime(self) -> float:
        """Newest mtime under the bundle dir (manifest or any payload).

        Dot-prefixed entries — the ``.shared`` mmap mirror, staging temp
        dirs — are skipped: writing the shared cache must not look like
        a new bundle to the ``--watch`` poller.
        """
        try:
            paths = [self._model_dir]
            paths += [p for p in self._model_dir.rglob("*")
                      if not any(part.startswith(".") for part in
                                 p.relative_to(self._model_dir).parts)]
            return max(p.stat().st_mtime for p in paths)
        except OSError:
            return 0.0

    def start_watching(self, interval_s: float = 2.0) -> None:
        """Poll the bundle dir's mtimes; reload when they change."""
        if self._watcher is not None:
            return
        self._watch_stop.clear()
        self._watcher = threading.Thread(
            target=self._watch_loop, args=(interval_s,),
            name="serve-watch", daemon=True)
        self._watcher.start()

    def stop_watching(self) -> None:
        if self._watcher is None:
            return
        self._watch_stop.set()
        self._watcher.join(timeout=5.0)
        self._watcher = None

    def _watch_loop(self, interval_s: float) -> None:
        while not self._watch_stop.wait(interval_s):
            current = self._bundle_mtime()
            with self._lock:
                changed = current > self._mtime
            if not changed:
                continue
            try:
                info = self.reload()
                print(f"[serve] watch: reloaded generation "
                      f"{info['generation']} from {self._model_dir}")
            except ArtifactError as error:
                # A half-written or corrupt bundle: keep serving the old
                # model and keep polling — a later write may complete it.
                with self._lock:
                    self._mtime = current
                print(f"[serve] watch: reload rejected: {error}")
