"""DWARF-like debug information: DIE tree model, byte-level codec and
type resolution down to the 19 CATI labels.

The synthetic compiler (:mod:`repro.codegen`) emits a :class:`DebugBlob`
for every binary it builds; stripping a binary discards the blob.  The
labeled-dataset builder decodes the blob to recover each variable's
ground-truth type exactly as the paper does with real DWARF (§IV-A).
"""

from repro.dwarf.decode import DwarfDecodeError, decode
from repro.dwarf.dies import (
    Attr,
    Die,
    Encoding,
    Tag,
    array_of,
    base_type,
    compile_unit,
    const_of,
    enum_type,
    pointer_to,
    struct_type,
    subprogram,
    typedef,
    variable,
    volatile_of,
)
from repro.dwarf.encode import DebugBlob, encode
from repro.dwarf.leb128 import decode_sleb128, decode_uleb128, encode_sleb128, encode_uleb128
from repro.dwarf.resolver import UnresolvableType, resolve_type, variables_with_types

__all__ = [
    "Attr",
    "Die",
    "Encoding",
    "Tag",
    "DebugBlob",
    "DwarfDecodeError",
    "UnresolvableType",
    "array_of",
    "base_type",
    "compile_unit",
    "const_of",
    "decode",
    "decode_sleb128",
    "decode_uleb128",
    "encode",
    "encode_sleb128",
    "encode_uleb128",
    "enum_type",
    "pointer_to",
    "resolve_type",
    "struct_type",
    "subprogram",
    "typedef",
    "variable",
    "variables_with_types",
    "volatile_of",
]
