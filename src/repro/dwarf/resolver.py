"""Resolve a variable's DIE type reference to one of the 19 CATI labels.

This implements §IV-A of the paper: typedef chains are followed
recursively to the base type; cv-qualifiers are peeled; pointers are
bucketed by their (fully resolved) pointee into ``void*`` / ``struct*`` /
``arith*``; arrays are labeled by their element type (an array of char is
used exactly like a char buffer at the instruction level).
"""

from __future__ import annotations

from repro.core.types import TypeName
from repro.dwarf.dies import Attr, Die, Encoding, Tag


class UnresolvableType(ValueError):
    """Raised for DIE shapes outside the 19-type taxonomy (e.g. union)."""


#: Base-type name → leaf label.  Covers every spelling GCC/Clang emit.
_BASE_NAMES: dict[str, TypeName] = {
    "_Bool": TypeName.BOOL,
    "bool": TypeName.BOOL,
    "char": TypeName.CHAR,
    "signed char": TypeName.CHAR,
    "unsigned char": TypeName.UNSIGNED_CHAR,
    "float": TypeName.FLOAT,
    "double": TypeName.DOUBLE,
    "long double": TypeName.LONG_DOUBLE,
    "int": TypeName.INT,
    "signed int": TypeName.INT,
    "short": TypeName.SHORT_INT,
    "short int": TypeName.SHORT_INT,
    "long": TypeName.LONG_INT,
    "long int": TypeName.LONG_INT,
    "long long": TypeName.LONG_LONG_INT,
    "long long int": TypeName.LONG_LONG_INT,
    "unsigned int": TypeName.UNSIGNED_INT,
    "unsigned": TypeName.UNSIGNED_INT,
    "short unsigned int": TypeName.SHORT_UNSIGNED_INT,
    "unsigned short": TypeName.SHORT_UNSIGNED_INT,
    "long unsigned int": TypeName.LONG_UNSIGNED_INT,
    "unsigned long": TypeName.LONG_UNSIGNED_INT,
    "long long unsigned int": TypeName.LONG_LONG_UNSIGNED_INT,
    "unsigned long long": TypeName.LONG_LONG_UNSIGNED_INT,
}

#: Fallback resolution by (encoding, byte size) for unnamed base types.
_BY_ENCODING: dict[tuple[int, int], TypeName] = {
    (int(Encoding.BOOLEAN), 1): TypeName.BOOL,
    (int(Encoding.SIGNED_CHAR), 1): TypeName.CHAR,
    (int(Encoding.UNSIGNED_CHAR), 1): TypeName.UNSIGNED_CHAR,
    (int(Encoding.FLOAT), 4): TypeName.FLOAT,
    (int(Encoding.FLOAT), 8): TypeName.DOUBLE,
    (int(Encoding.FLOAT), 10): TypeName.LONG_DOUBLE,
    (int(Encoding.FLOAT), 16): TypeName.LONG_DOUBLE,
    (int(Encoding.SIGNED), 2): TypeName.SHORT_INT,
    (int(Encoding.SIGNED), 4): TypeName.INT,
    (int(Encoding.SIGNED), 8): TypeName.LONG_INT,
    (int(Encoding.UNSIGNED), 2): TypeName.SHORT_UNSIGNED_INT,
    (int(Encoding.UNSIGNED), 4): TypeName.UNSIGNED_INT,
    (int(Encoding.UNSIGNED), 8): TypeName.LONG_UNSIGNED_INT,
}

#: Tags that merely wrap another type and are peeled transparently.
_TRANSPARENT_TAGS = (Tag.TYPEDEF, Tag.CONST_TYPE, Tag.VOLATILE_TYPE)

_MAX_CHAIN = 64  # guards against cyclic typedef chains in corrupt input


def _peel(die: Die) -> Die:
    """Follow typedef/const/volatile chains to the underlying type DIE."""
    for _ in range(_MAX_CHAIN):
        if die.tag in _TRANSPARENT_TAGS:
            target = die.type_ref
            if target is None:
                raise UnresolvableType(f"{die.tag.name} without DW_AT_type")
            die = target
        else:
            return die
    raise UnresolvableType("typedef chain too deep (cycle?)")


def _resolve_base(die: Die) -> TypeName:
    name = die.name
    if name is not None and name in _BASE_NAMES:
        return _BASE_NAMES[name]
    encoding = die.attrs.get(Attr.ENCODING)
    size = die.byte_size
    if isinstance(encoding, int) and isinstance(size, int):
        label = _BY_ENCODING.get((encoding, size))
        if label is not None:
            return label
    raise UnresolvableType(f"unknown base type {name!r} (size={size})")


def _is_arithmetic(die: Die) -> bool:
    """True when the (peeled) pointee is an arithmetic base type or enum."""
    return die.tag in (Tag.BASE_TYPE, Tag.ENUMERATION_TYPE)


def resolve_type(die: Die | None) -> TypeName:
    """Resolve a type DIE (possibly None for ``void``) to a leaf label.

    A ``None`` input models a missing DW_AT_type, which in DWARF means
    ``void``; it only occurs under a pointer, so it is unresolvable on its
    own.
    """
    if die is None:
        raise UnresolvableType("bare void is not a variable type")
    die = _peel(die)
    if die.tag is Tag.BASE_TYPE:
        return _resolve_base(die)
    if die.tag is Tag.ENUMERATION_TYPE:
        return TypeName.ENUM
    if die.tag is Tag.STRUCTURE_TYPE:
        return TypeName.STRUCT
    if die.tag is Tag.ARRAY_TYPE:
        # Arrays are labeled by element type: the instruction stream
        # accesses elements, and the paper's Fig. 2 treats a struct array
        # as `struct`.
        return resolve_type(die.type_ref)
    if die.tag is Tag.POINTER_TYPE:
        pointee = die.type_ref
        if pointee is None:
            return TypeName.VOID_POINTER
        pointee = _peel(pointee)
        if pointee.tag is Tag.STRUCTURE_TYPE:
            return TypeName.STRUCT_POINTER
        if _is_arithmetic(pointee):
            return TypeName.ARITH_POINTER
        if pointee.tag is Tag.POINTER_TYPE:
            # Pointer-to-pointer: statically indistinguishable from void*
            # traffic; the paper folds it into the pointer taxonomy the
            # same way.
            return TypeName.VOID_POINTER
        if pointee.tag is Tag.ARRAY_TYPE:
            return resolve_pointer_to(pointee)
        if pointee.tag is Tag.UNION_TYPE:
            return TypeName.VOID_POINTER
        raise UnresolvableType(f"pointer to {pointee.tag.name}")
    if die.tag is Tag.UNION_TYPE:
        raise UnresolvableType("union is outside the 19-type taxonomy")
    raise UnresolvableType(f"cannot resolve tag {die.tag.name}")


def resolve_pointer_to(array_die: Die) -> TypeName:
    """Classify a pointer whose pointee is an array by element kind."""
    element = array_die.type_ref
    if element is None:
        return TypeName.VOID_POINTER
    element = _peel(element)
    if element.tag is Tag.STRUCTURE_TYPE:
        return TypeName.STRUCT_POINTER
    if _is_arithmetic(element):
        return TypeName.ARITH_POINTER
    return TypeName.VOID_POINTER


def variables_with_types(compile_unit: Die) -> list[tuple[Die, Die, TypeName]]:
    """Extract (subprogram, variable DIE, resolved type) triples from a CU.

    Variables whose types fall outside the taxonomy (unions, function
    pointers) are skipped, mirroring the paper's exclusion of union.
    """
    out: list[tuple[Die, Die, TypeName]] = []
    for func in compile_unit.find_all(Tag.SUBPROGRAM):
        for child in func.children:
            if child.tag not in (Tag.VARIABLE, Tag.FORMAL_PARAMETER):
                continue
            try:
                label = resolve_type(child.type_ref)
            except UnresolvableType:
                continue
            out.append((func, child, label))
    return out
