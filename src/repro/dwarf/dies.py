"""Debug Information Entry (DIE) tree — the DWARF subset CATI needs.

Real DWARF describes each variable with a ``DW_TAG_variable`` DIE holding
a name, a frame-base-relative location expression and a reference into a
graph of type DIEs (base types, pointers, structs, typedef chains, cv
qualifiers).  We model exactly that subset; the encoder in
:mod:`repro.dwarf.encode` serializes the tree into genuine
abbrev/info byte streams and :mod:`repro.dwarf.decode` parses them back.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Tag(enum.IntEnum):
    """DWARF tags we model (values match the DWARF v4 standard)."""

    COMPILE_UNIT = 0x11
    SUBPROGRAM = 0x2E
    VARIABLE = 0x34
    FORMAL_PARAMETER = 0x05
    BASE_TYPE = 0x24
    POINTER_TYPE = 0x0F
    STRUCTURE_TYPE = 0x13
    UNION_TYPE = 0x17
    ARRAY_TYPE = 0x01
    ENUMERATION_TYPE = 0x04
    TYPEDEF = 0x16
    CONST_TYPE = 0x26
    VOLATILE_TYPE = 0x35
    MEMBER = 0x0D


class Attr(enum.IntEnum):
    """DWARF attributes we model (values match the standard)."""

    NAME = 0x03
    BYTE_SIZE = 0x0B
    ENCODING = 0x3E
    TYPE = 0x49
    LOCATION = 0x02
    LOW_PC = 0x11
    DECL_LINE = 0x3B
    DATA_MEMBER_LOCATION = 0x38


class Encoding(enum.IntEnum):
    """DW_AT_encoding values for base types."""

    ADDRESS = 0x01
    BOOLEAN = 0x02
    FLOAT = 0x04
    SIGNED = 0x05
    SIGNED_CHAR = 0x06
    UNSIGNED = 0x07
    UNSIGNED_CHAR = 0x08


#: Attribute value kinds, used by the encoder to pick forms.
AttrValue = "int | str | Die"


@dataclass(eq=False)
class Die:
    """A single debug information entry.

    Attribute values are Python-native: strings, ints, or references to
    other :class:`Die` objects (for ``DW_AT_type``).  Children form the
    tree (a compile unit owns subprograms; a subprogram owns variables;
    a struct owns members).
    """

    tag: Tag
    attrs: dict[Attr, "AttrValue"] = field(default_factory=dict)
    children: list["Die"] = field(default_factory=list)

    # -- convenience accessors -------------------------------------------------

    @property
    def name(self) -> str | None:
        value = self.attrs.get(Attr.NAME)
        return value if isinstance(value, str) else None

    @property
    def type_ref(self) -> "Die | None":
        value = self.attrs.get(Attr.TYPE)
        return value if isinstance(value, Die) else None

    @property
    def byte_size(self) -> int | None:
        value = self.attrs.get(Attr.BYTE_SIZE)
        return value if isinstance(value, int) else None

    @property
    def location(self) -> int | None:
        """Frame-base-relative offset (DW_OP_fbreg operand) for variables."""
        value = self.attrs.get(Attr.LOCATION)
        return value if isinstance(value, int) else None

    @property
    def member_offset(self) -> int | None:
        """Byte offset of a MEMBER DIE within its structure."""
        value = self.attrs.get(Attr.DATA_MEMBER_LOCATION)
        return value if isinstance(value, int) else None

    def add(self, child: "Die") -> "Die":
        """Append a child and return it (builder style)."""
        self.children.append(child)
        return child

    def walk(self):
        """Depth-first iterator over this DIE and all descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find_all(self, tag: Tag) -> list["Die"]:
        """All descendant DIEs (including self) with the given tag."""
        return [die for die in self.walk() if die.tag is tag]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = self.name or ""
        return f"<Die {self.tag.name} {name!r} children={len(self.children)}>"


# -- builder helpers used by the synthetic compiler ---------------------------


def base_type(name: str, size: int, encoding: Encoding) -> Die:
    """Build a DW_TAG_base_type DIE."""
    return Die(Tag.BASE_TYPE, {Attr.NAME: name, Attr.BYTE_SIZE: size, Attr.ENCODING: int(encoding)})


def pointer_to(target: Die | None) -> Die:
    """Build a pointer-type DIE; ``None`` target means ``void*``."""
    attrs: dict[Attr, AttrValue] = {Attr.BYTE_SIZE: 8}
    if target is not None:
        attrs[Attr.TYPE] = target
    return Die(Tag.POINTER_TYPE, attrs)


def typedef(name: str, target: Die) -> Die:
    """Build a DW_TAG_typedef DIE aliasing ``target``."""
    return Die(Tag.TYPEDEF, {Attr.NAME: name, Attr.TYPE: target})


def struct_type(
    name: str,
    size: int,
    members: "list[tuple[str, Die]] | list[tuple[str, Die, int]] | None" = None,
) -> Die:
    """Build a structure-type DIE with optional named members.

    Members are ``(name, type)`` or ``(name, type, byte_offset)`` tuples;
    when the offset is given it is recorded as
    ``DW_AT_data_member_location``, the ground truth the posterior
    struct-recovery stage evaluates against.
    """
    die = Die(Tag.STRUCTURE_TYPE, {Attr.NAME: name, Attr.BYTE_SIZE: size})
    for member in members or []:
        member_name, member_type = member[0], member[1]
        attrs: dict[Attr, AttrValue] = {Attr.NAME: member_name, Attr.TYPE: member_type}
        if len(member) > 2:
            attrs[Attr.DATA_MEMBER_LOCATION] = int(member[2])
        die.add(Die(Tag.MEMBER, attrs))
    return die


def enum_type(name: str, size: int = 4) -> Die:
    """Build an enumeration-type DIE."""
    return Die(Tag.ENUMERATION_TYPE, {Attr.NAME: name, Attr.BYTE_SIZE: size})


def array_of(element: Die, count: int) -> Die:
    """Build an array-type DIE of ``count`` elements."""
    size = (element.byte_size or 1) * count
    return Die(Tag.ARRAY_TYPE, {Attr.TYPE: element, Attr.BYTE_SIZE: size})


def const_of(target: Die) -> Die:
    """Build a const-qualified view of ``target``."""
    return Die(Tag.CONST_TYPE, {Attr.TYPE: target})


def volatile_of(target: Die) -> Die:
    """Build a volatile-qualified view of ``target``."""
    return Die(Tag.VOLATILE_TYPE, {Attr.TYPE: target})


def variable(name: str, var_type: Die, frame_offset: int) -> Die:
    """Build a DW_TAG_variable DIE with a DW_OP_fbreg location."""
    return Die(
        Tag.VARIABLE,
        {Attr.NAME: name, Attr.TYPE: var_type, Attr.LOCATION: frame_offset},
    )


def subprogram(name: str, low_pc: int) -> Die:
    """Build a DW_TAG_subprogram DIE."""
    return Die(Tag.SUBPROGRAM, {Attr.NAME: name, Attr.LOW_PC: low_pc})


def compile_unit(name: str) -> Die:
    """Build the root DW_TAG_compile_unit DIE."""
    return Die(Tag.COMPILE_UNIT, {Attr.NAME: name})
