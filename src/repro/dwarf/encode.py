"""Serialize a DIE tree into DWARF-style ``.debug_abbrev``/``.debug_info``
byte streams.

The layout follows the real format's structure: an abbreviation table
describing (tag, attribute-list, has-children) shapes, and an info stream
where every DIE is an abbrev code followed by attribute values, with a
zero code terminating each sibling list.  Attribute forms:

* ``DW_AT_name``            → inline NUL-terminated UTF-8 (DW_FORM_string)
* ``DW_AT_location``        → SLEB128 frame offset (DW_OP_fbreg operand)
* ``DW_AT_type``            → ULEB128 DIE ordinal (DW_FORM_ref_udata-like)
* all other int attributes  → ULEB128 (DW_FORM_udata)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dwarf.dies import Attr, Die
from repro.dwarf.leb128 import encode_sleb128, encode_uleb128


@dataclass(frozen=True, slots=True)
class DebugBlob:
    """The two encoded debug sections."""

    abbrev: bytes
    info: bytes


def _shape(die: Die) -> tuple[int, tuple[int, ...], bool]:
    """The abbreviation key of a DIE: tag, sorted attrs, has-children."""
    return int(die.tag), tuple(sorted(int(a) for a in die.attrs)), bool(die.children)


def _number_dies(root: Die) -> dict[int, int]:
    """Assign each DIE a 1-based DFS ordinal (0 is reserved = null ref)."""
    ordinals: dict[int, int] = {}
    for ordinal, die in enumerate(root.walk(), start=1):
        ordinals[id(die)] = ordinal
    return ordinals


def _encode_attr(attr: Attr, value, ordinals: dict[int, int]) -> bytes:
    if attr is Attr.NAME:
        if not isinstance(value, str):
            raise TypeError(f"DW_AT_name must be str, got {type(value)}")
        return value.encode("utf-8") + b"\x00"
    if attr is Attr.LOCATION:
        return encode_sleb128(int(value))
    if attr is Attr.TYPE:
        if isinstance(value, Die):
            ref = ordinals.get(id(value))
            if ref is None:
                raise ValueError("DW_AT_type references a DIE outside the tree")
            return encode_uleb128(ref)
        raise TypeError("DW_AT_type must reference a Die")
    return encode_uleb128(int(value))


def _attach_loose_references(root: Die) -> None:
    """Append attr-referenced DIEs that are not yet in the tree.

    Builders may reference type DIEs (``DW_AT_type``) that were created
    inline and never placed in the tree; real DWARF would give them a
    section offset somewhere, so we hang them off the root.  Iterates to
    closure because newly attached DIEs can reference further ones.
    """
    while True:
        in_tree = {id(die) for die in root.walk()}
        loose: list[Die] = []
        seen_loose: set[int] = set()
        for die in root.walk():
            for value in die.attrs.values():
                if isinstance(value, Die) and id(value) not in in_tree \
                        and id(value) not in seen_loose:
                    loose.append(value)
                    seen_loose.add(id(value))
        if not loose:
            return
        root.children.extend(loose)


def encode(root: Die) -> DebugBlob:
    """Encode a DIE tree rooted at a compile unit into a :class:`DebugBlob`.

    The encoding is self-contained: type references may point anywhere in
    the tree (forward references included), which matches real DWARF where
    ``DW_AT_type`` is an arbitrary section offset.  Referenced DIEs not
    yet placed in the tree are attached under the root automatically.
    """
    _attach_loose_references(root)
    ordinals = _number_dies(root)

    abbrevs: dict[tuple, int] = {}
    abbrev_stream = bytearray()

    def abbrev_code(die: Die) -> int:
        key = _shape(die)
        code = abbrevs.get(key)
        if code is None:
            code = len(abbrevs) + 1
            abbrevs[key] = code
            tag, attr_ids, has_children = key
            abbrev_stream.extend(encode_uleb128(code))
            abbrev_stream.extend(encode_uleb128(tag))
            abbrev_stream.append(1 if has_children else 0)
            for attr_id in attr_ids:
                abbrev_stream.extend(encode_uleb128(attr_id))
            abbrev_stream.extend(encode_uleb128(0))  # attr list terminator
        return code

    info = bytearray()

    def emit(die: Die) -> None:
        info.extend(encode_uleb128(abbrev_code(die)))
        for attr_id in sorted(int(a) for a in die.attrs):
            attr = Attr(attr_id)
            info.extend(_encode_attr(attr, die.attrs[attr], ordinals))
        if die.children:
            for child in die.children:
                emit(child)
            info.extend(encode_uleb128(0))  # sibling terminator

    emit(root)
    abbrev_stream.extend(encode_uleb128(0))  # abbrev table terminator
    return DebugBlob(abbrev=bytes(abbrev_stream), info=bytes(info))
