"""Native DWARF parser: reads real ``.debug_info``/``.debug_abbrev``/
``.debug_str`` bytes (DWARF v4/v5, as emitted by gcc/clang) into the
same :class:`~repro.dwarf.dies.Die` model the rest of the pipeline uses.

This is the from-scratch replacement for ``readelf --debug-dump=info``
text scraping: byte-level form decoding, CU-relative reference
resolution, exprloc location parsing (``DW_OP_fbreg``), and array-size
synthesis from subrange children.  The test suite cross-validates it
against the readelf text path on a freshly compiled binary.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.core.errors import DwarfError, FailureReport, handle_failure
from repro.core.types import TypeName
from repro.dwarf.dies import Attr, Die, Tag
from repro.dwarf.leb128 import decode_sleb128, decode_uleb128
from repro.elf.parser import ElfFile


class NativeDwarfError(DwarfError):
    """Raised on malformed or unsupported DWARF input."""


# -- DWARF constants (subset) ----------------------------------------------------

DW_FORM_ADDR = 0x01
DW_FORM_DATA2 = 0x05
DW_FORM_DATA4 = 0x06
DW_FORM_DATA8 = 0x07
DW_FORM_STRING = 0x08
DW_FORM_BLOCK1 = 0x0A
DW_FORM_DATA1 = 0x0B
DW_FORM_FLAG = 0x0C
DW_FORM_SDATA = 0x0D
DW_FORM_STRP = 0x0E
DW_FORM_UDATA = 0x0F
DW_FORM_REF_ADDR = 0x10
DW_FORM_REF1 = 0x11
DW_FORM_REF2 = 0x12
DW_FORM_REF4 = 0x13
DW_FORM_REF8 = 0x14
DW_FORM_REF_UDATA = 0x15
DW_FORM_INDIRECT = 0x16
DW_FORM_SEC_OFFSET = 0x17
DW_FORM_EXPRLOC = 0x18
DW_FORM_FLAG_PRESENT = 0x19
DW_FORM_LINE_STRP = 0x1F
DW_FORM_IMPLICIT_CONST = 0x21

DW_AT_NAME = 0x03
DW_AT_BYTE_SIZE = 0x0B
DW_AT_ENCODING = 0x3E
DW_AT_TYPE = 0x49
DW_AT_LOCATION = 0x02
DW_AT_LOW_PC = 0x11
DW_AT_UPPER_BOUND = 0x2F
DW_AT_COUNT = 0x37
DW_AT_FRAME_BASE = 0x40

DW_TAG_SUBRANGE_TYPE = 0x21

DW_OP_FBREG = 0x91
DW_OP_CALL_FRAME_CFA = 0x9C

#: DWARF tags we materialize into the Die model (others become generic
#: containers so the tree structure is preserved).
_KNOWN_TAGS = {int(tag) for tag in Tag}

#: CFA = rbp + 16 in the standard gcc rbp-framed prologue.
CFA_TO_RBP = 16


@dataclass(frozen=True, slots=True)
class _AbbrevAttr:
    attr: int
    form: int
    implicit: int = 0


@dataclass(frozen=True, slots=True)
class _Abbrev:
    tag: int
    has_children: bool
    attrs: tuple[_AbbrevAttr, ...]


def parse_abbrev_table(data: bytes, offset: int) -> dict[int, _Abbrev]:
    """Parse one abbreviation table starting at ``offset``."""
    table: dict[int, _Abbrev] = {}
    while True:
        code, offset = decode_uleb128(data, offset)
        if code == 0:
            return table
        tag, offset = decode_uleb128(data, offset)
        if offset >= len(data):
            raise NativeDwarfError("truncated abbrev table")
        has_children = bool(data[offset])
        offset += 1
        attrs: list[_AbbrevAttr] = []
        while True:
            attr, offset = decode_uleb128(data, offset)
            form, offset = decode_uleb128(data, offset)
            if attr == 0 and form == 0:
                break
            implicit = 0
            if form == DW_FORM_IMPLICIT_CONST:
                implicit, offset = decode_sleb128(data, offset)
            attrs.append(_AbbrevAttr(attr=attr, form=form, implicit=implicit))
        table[code] = _Abbrev(tag=tag, has_children=has_children, attrs=tuple(attrs))


def _read_str(data: bytes, offset: int) -> str:
    end = data.find(b"\x00", offset)
    if end < 0:
        raise NativeDwarfError("unterminated string")
    return data[offset:end].decode("utf-8", "replace")


@dataclass
class _CuContext:
    info: bytes
    debug_str: bytes
    line_str: bytes
    cu_start: int          # offset of this CU within .debug_info
    address_size: int


class _FormReader:
    """Decodes one attribute value per its form."""

    def __init__(self, ctx: _CuContext) -> None:
        self.ctx = ctx

    def read(self, form: int, implicit: int, offset: int):
        """Return (kind, value, next_offset); kind in
        {'int','str','ref','exprloc','skip'}."""
        data = self.ctx.info
        if form == DW_FORM_ADDR:
            size = self.ctx.address_size
            value = int.from_bytes(data[offset:offset + size], "little")
            return "int", value, offset + size
        if form == DW_FORM_DATA1 or form == DW_FORM_FLAG:
            return "int", data[offset], offset + 1
        if form == DW_FORM_DATA2:
            return "int", struct.unpack_from("<H", data, offset)[0], offset + 2
        if form in (DW_FORM_DATA4, DW_FORM_SEC_OFFSET):
            return "int", struct.unpack_from("<I", data, offset)[0], offset + 4
        if form == DW_FORM_DATA8:
            return "int", struct.unpack_from("<Q", data, offset)[0], offset + 8
        if form == DW_FORM_SDATA:
            value, offset = decode_sleb128(data, offset)
            return "int", value, offset
        if form == DW_FORM_UDATA:
            value, offset = decode_uleb128(data, offset)
            return "int", value, offset
        if form == DW_FORM_STRING:
            value = _read_str(data, offset)
            return "str", value, offset + len(value.encode("utf-8")) + 1
        if form == DW_FORM_STRP:
            pointer = struct.unpack_from("<I", data, offset)[0]
            return "str", _read_str(self.ctx.debug_str, pointer), offset + 4
        if form == DW_FORM_LINE_STRP:
            pointer = struct.unpack_from("<I", data, offset)[0]
            return "str", _read_str(self.ctx.line_str, pointer), offset + 4
        if form == DW_FORM_REF1:
            return "ref", self.ctx.cu_start + data[offset], offset + 1
        if form == DW_FORM_REF2:
            return "ref", self.ctx.cu_start + struct.unpack_from("<H", data, offset)[0], offset + 2
        if form == DW_FORM_REF4:
            return "ref", self.ctx.cu_start + struct.unpack_from("<I", data, offset)[0], offset + 4
        if form == DW_FORM_REF8:
            return "ref", self.ctx.cu_start + struct.unpack_from("<Q", data, offset)[0], offset + 8
        if form == DW_FORM_REF_UDATA:
            value, offset = decode_uleb128(data, offset)
            return "ref", self.ctx.cu_start + value, offset
        if form == DW_FORM_REF_ADDR:
            return "ref", struct.unpack_from("<I", data, offset)[0], offset + 4
        if form == DW_FORM_EXPRLOC or form == DW_FORM_BLOCK1:
            if form == DW_FORM_BLOCK1:
                length = data[offset]
                offset += 1
            else:
                length, offset = decode_uleb128(data, offset)
            return "exprloc", data[offset:offset + length], offset + length
        if form == DW_FORM_FLAG_PRESENT:
            return "int", 1, offset
        if form == DW_FORM_IMPLICIT_CONST:
            return "int", implicit, offset
        raise NativeDwarfError(f"unsupported DWARF form 0x{form:02x}")


@dataclass
class NativeDie:
    """A parsed DIE before projection onto the compact Die model."""

    offset: int
    tag: int
    depth: int
    attrs: dict[int, object] = field(default_factory=dict)
    refs: dict[int, int] = field(default_factory=dict)   # attr -> DIE offset
    children: list["NativeDie"] = field(default_factory=list)


def parse_compile_units(info: bytes, abbrev: bytes, debug_str: bytes,
                        line_str: bytes, on_error: str = "raise",
                        failures: FailureReport | None = None) -> list[NativeDie]:
    """Parse every CU in ``.debug_info`` into NativeDie trees.

    With ``on_error="skip"``, a CU whose body is truncated or malformed
    is recorded into ``failures`` and skipped (the unit length in its
    header tells us where the next CU starts); a CU whose *header* is
    corrupt ends the parse, since the stream can no longer be walked.
    Healthy CUs before and after a damaged one still come back.
    """
    units: list[NativeDie] = []
    offset = 0
    while offset + 11 < len(info):
        cu_start = offset
        unit_length = struct.unpack_from("<I", info, offset)[0]
        if unit_length == 0 or unit_length >= 0xFFFFFFF0:
            handle_failure(
                NativeDwarfError("64-bit DWARF or corrupt unit length"),
                on_error=on_error, failures=failures, stage="dwarf")
            break
        next_cu = offset + 4 + unit_length
        try:
            root = _parse_one_cu(info, abbrev, debug_str, line_str,
                                 cu_start, next_cu)
        except Exception as exc:
            handle_failure(exc, on_error=on_error, failures=failures,
                           stage="dwarf")
        else:
            if root is not None:
                units.append(root)
        offset = next_cu
    return units


def _parse_one_cu(info: bytes, abbrev: bytes, debug_str: bytes,
                  line_str: bytes, cu_start: int, next_cu: int) -> NativeDie | None:
    """Parse the single CU spanning [cu_start, next_cu) of ``.debug_info``."""
    if next_cu > len(info):
        raise NativeDwarfError(
            f"truncated compile unit at 0x{cu_start:x}: header claims "
            f"{next_cu - cu_start} bytes, {len(info) - cu_start} remain")
    offset = cu_start
    version = struct.unpack_from("<H", info, offset + 4)[0]
    if version == 5:
        _unit_type = info[offset + 6]
        address_size = info[offset + 7]
        abbrev_offset = struct.unpack_from("<I", info, offset + 8)[0]
        offset += 12
    elif version in (3, 4):
        abbrev_offset = struct.unpack_from("<I", info, offset + 6)[0]
        address_size = info[offset + 10]
        offset += 11
    else:
        raise NativeDwarfError(f"unsupported DWARF version {version}")

    abbrevs = parse_abbrev_table(abbrev, abbrev_offset)
    ctx = _CuContext(info=info, debug_str=debug_str, line_str=line_str,
                     cu_start=cu_start, address_size=address_size)
    reader = _FormReader(ctx)

    root: NativeDie | None = None
    stack: list[NativeDie] = []
    while offset < next_cu:
        die_offset = offset
        code, offset = decode_uleb128(info, offset)
        if code == 0:
            if stack:
                stack.pop()
            continue
        abbrev_entry = abbrevs.get(code)
        if abbrev_entry is None:
            raise NativeDwarfError(f"unknown abbrev code {code} at 0x{die_offset:x}")
        die = NativeDie(offset=die_offset, tag=abbrev_entry.tag, depth=len(stack))
        for spec in abbrev_entry.attrs:
            kind, value, offset = reader.read(spec.form, spec.implicit, offset)
            if kind == "ref":
                die.refs[spec.attr] = value
            else:
                die.attrs[spec.attr] = value
        if stack:
            stack[-1].children.append(die)
        elif root is None:
            root = die
        if abbrev_entry.has_children:
            stack.append(die)
    return root


# -- projection onto the compact Die model -----------------------------------------


def to_die_tree(root: NativeDie) -> Die:
    """Convert a NativeDie CU into the compact :class:`Die` model.

    Unknown tags become pass-through containers (children preserved) so
    typedef chains crossing exotic tags still resolve.  Array byte sizes
    are synthesized from subrange bounds.
    """
    by_offset: dict[int, NativeDie] = {}

    def index(native: NativeDie) -> None:
        by_offset[native.offset] = native
        for child in native.children:
            index(child)

    index(root)

    converted: dict[int, Die] = {}

    def convert(native: NativeDie) -> Die:
        cached = converted.get(native.offset)
        if cached is not None:
            return cached
        try:
            tag = Tag(native.tag)
        except ValueError:
            tag = Tag.TYPEDEF if DW_AT_TYPE in native.refs else Tag.COMPILE_UNIT
        die = Die(tag)
        converted[native.offset] = die
        name = native.attrs.get(DW_AT_NAME)
        if isinstance(name, str):
            die.attrs[Attr.NAME] = name
        size = native.attrs.get(DW_AT_BYTE_SIZE)
        if isinstance(size, int):
            die.attrs[Attr.BYTE_SIZE] = size
        encoding = native.attrs.get(DW_AT_ENCODING)
        if isinstance(encoding, int):
            die.attrs[Attr.ENCODING] = encoding
        low_pc = native.attrs.get(DW_AT_LOW_PC)
        if isinstance(low_pc, int):
            die.attrs[Attr.LOW_PC] = low_pc
        location = native.attrs.get(DW_AT_LOCATION)
        if isinstance(location, (bytes, bytearray)) and len(location) >= 2 \
                and location[0] == DW_OP_FBREG:
            fbreg, _end = decode_sleb128(bytes(location), 1)
            die.attrs[Attr.LOCATION] = fbreg
        type_ref = native.refs.get(DW_AT_TYPE)
        if type_ref is not None:
            target = by_offset.get(type_ref)
            if target is not None:
                die.attrs[Attr.TYPE] = convert(target)
        for child in native.children:
            die.children.append(convert(child))
        # Array size synthesis from subrange children.
        if tag is Tag.ARRAY_TYPE and Attr.BYTE_SIZE not in die.attrs:
            count = _array_count(native)
            element = die.type_ref
            if count is not None and element is not None:
                element_size = _element_size(element)
                die.attrs[Attr.BYTE_SIZE] = count * element_size
        return die

    return convert(root)


def _array_count(native: NativeDie) -> int | None:
    for child in native.children:
        if child.tag == DW_TAG_SUBRANGE_TYPE:
            upper = child.attrs.get(DW_AT_UPPER_BOUND)
            if isinstance(upper, int):
                return upper + 1
            count = child.attrs.get(DW_AT_COUNT)
            if isinstance(count, int):
                return count
    return None


def _element_size(die: Die) -> int:
    for _ in range(32):
        if die.byte_size is not None:
            return die.byte_size
        target = die.type_ref
        if target is None:
            return 1
        die = target
    return 1


# -- high-level API -----------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class NativeVariable:
    """One variable recovered from native DWARF parsing."""

    function: str
    name: str
    rbp_offset: int
    size: int
    label: TypeName


def load_compile_units(elf: ElfFile, on_error: str = "raise",
                       failures: FailureReport | None = None) -> list[Die]:
    """Parse all CUs of an ELF file into compact Die trees."""
    if not elf.has_debug_info:
        raise NativeDwarfError("binary has no debug information", stage="dwarf")
    natives = parse_compile_units(
        elf.section_data(".debug_info"),
        elf.section_data(".debug_abbrev"),
        elf.section_data(".debug_str"),
        elf.section_data(".debug_line_str"),
        on_error=on_error, failures=failures,
    )
    return [to_die_tree(root) for root in natives]


def native_variables(elf: ElfFile, on_error: str = "raise",
                     failures: FailureReport | None = None) -> list[NativeVariable]:
    """End-to-end: ELF bytes → located, typed local variables.

    Mirrors :func:`repro.frontend.readelf.extract_real_variables` but
    without any external tool; fbreg (CFA-relative) offsets are converted
    to rbp displacements for the rbp-framed gcc prologue.
    """
    from repro.dwarf.resolver import UnresolvableType, resolve_type

    out: list[NativeVariable] = []
    for cu in load_compile_units(elf, on_error=on_error, failures=failures):
        for sub in cu.find_all(Tag.SUBPROGRAM):
            function = sub.name or "?"
            for child in sub.walk():
                if child.tag not in (Tag.VARIABLE, Tag.FORMAL_PARAMETER):
                    continue
                location = child.location
                if location is None:
                    continue
                try:
                    label = resolve_type(child.type_ref)
                except UnresolvableType:
                    continue
                out.append(NativeVariable(
                    function=function,
                    name=child.name or "?",
                    rbp_offset=location + CFA_TO_RBP,
                    size=_element_size(child.type_ref) if child.type_ref else 8,
                    label=label,
                ))
    return out
