"""LEB128 variable-length integer codec, as used by DWARF.

Unsigned (ULEB128) and signed (SLEB128) forms, byte-exact with the DWARF
standard so the encoded debug sections we produce are genuine LEB128
streams.
"""

from __future__ import annotations


def encode_uleb128(value: int) -> bytes:
    """Encode a non-negative integer as ULEB128."""
    if value < 0:
        raise ValueError("ULEB128 cannot encode negative values")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uleb128(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a ULEB128 value; return (value, next_offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise ValueError("truncated ULEB128")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def encode_sleb128(value: int) -> bytes:
    """Encode a signed integer as SLEB128."""
    out = bytearray()
    more = True
    while more:
        byte = value & 0x7F
        value >>= 7
        sign_bit = byte & 0x40
        if (value == 0 and not sign_bit) or (value == -1 and sign_bit):
            more = False
        else:
            byte |= 0x80
        out.append(byte)
    return bytes(out)


def decode_sleb128(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode an SLEB128 value; return (value, next_offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise ValueError("truncated SLEB128")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        shift += 7
        if not byte & 0x80:
            if byte & 0x40:
                result -= 1 << shift
            return result, offset
