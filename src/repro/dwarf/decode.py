"""Parse the encoded ``.debug_abbrev``/``.debug_info`` streams back into a
DIE tree.  Inverse of :mod:`repro.dwarf.encode`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import DwarfError
from repro.dwarf.dies import Attr, Die, Tag
from repro.dwarf.encode import DebugBlob
from repro.dwarf.leb128 import decode_sleb128, decode_uleb128


class DwarfDecodeError(DwarfError):
    """Raised on malformed debug streams."""


@dataclass(frozen=True, slots=True)
class _Abbrev:
    tag: int
    attr_ids: tuple[int, ...]
    has_children: bool


def _parse_abbrevs(data: bytes) -> dict[int, _Abbrev]:
    abbrevs: dict[int, _Abbrev] = {}
    offset = 0
    while True:
        code, offset = decode_uleb128(data, offset)
        if code == 0:
            return abbrevs
        tag, offset = decode_uleb128(data, offset)
        if offset >= len(data):
            raise DwarfDecodeError("truncated abbrev table")
        has_children = bool(data[offset])
        offset += 1
        attr_ids: list[int] = []
        while True:
            attr_id, offset = decode_uleb128(data, offset)
            if attr_id == 0:
                break
            attr_ids.append(attr_id)
        abbrevs[code] = _Abbrev(tag=tag, attr_ids=tuple(attr_ids), has_children=has_children)


def _read_string(data: bytes, offset: int) -> tuple[str, int]:
    end = data.find(b"\x00", offset)
    if end < 0:
        raise DwarfDecodeError("unterminated string")
    return data[offset:end].decode("utf-8"), end + 1


def decode(blob: DebugBlob) -> Die:
    """Decode a :class:`DebugBlob` into its root :class:`Die`.

    Type references are resolved in a second pass once every DIE ordinal
    is known, so forward references work.
    """
    abbrevs = _parse_abbrevs(blob.abbrev)
    data = blob.info
    dies_in_order: list[Die] = []
    pending_refs: list[tuple[Die, int]] = []

    def parse_die(offset: int) -> tuple[Die, int]:
        code, offset = decode_uleb128(data, offset)
        if code == 0:
            raise DwarfDecodeError("unexpected null DIE")
        abbrev = abbrevs.get(code)
        if abbrev is None:
            raise DwarfDecodeError(f"unknown abbrev code {code}")
        die = Die(Tag(abbrev.tag))
        dies_in_order.append(die)
        for attr_id in abbrev.attr_ids:
            attr = Attr(attr_id)
            if attr is Attr.NAME:
                value, offset = _read_string(data, offset)
                die.attrs[attr] = value
            elif attr is Attr.LOCATION:
                value, offset = decode_sleb128(data, offset)
                die.attrs[attr] = value
            elif attr is Attr.TYPE:
                ref, offset = decode_uleb128(data, offset)
                pending_refs.append((die, ref))
            else:
                value, offset = decode_uleb128(data, offset)
                die.attrs[attr] = value
        if abbrev.has_children:
            while True:
                peek, next_offset = decode_uleb128(data, offset)
                if peek == 0:
                    offset = next_offset
                    break
                child, offset = parse_die(offset)
                die.children.append(child)
        return die, offset

    root, offset = parse_die(0)
    if offset != len(data):
        raise DwarfDecodeError(f"{len(data) - offset} trailing bytes in info stream")
    for die, ref in pending_refs:
        if not 1 <= ref <= len(dies_in_order):
            raise DwarfDecodeError(f"dangling type reference {ref}")
        die.attrs[Attr.TYPE] = dies_in_order[ref - 1]
    return root
