"""Variable location, data-flow grouping, VUC extraction and operand
generalization — the feature-extraction half of CATI (§II, §IV).
"""

from repro.vuc.context import DEFAULT_WINDOW, Vuc, extract_vuc, extract_vucs_for_targets
from repro.vuc.dataflow import VariableExtent, VariableGroup, group_targets
from repro.vuc.dataset import (
    LabeledVuc,
    VucDataset,
    extract_labeled_vucs,
    extract_unlabeled_vucs,
    target_signature,
)
from repro.vuc.generalize import (
    ADDR,
    BLANK,
    BLANK_TOKENS,
    FUNC,
    IMM,
    Tokens,
    generalize_instruction,
    generalize_operand,
    generalize_window,
    tokens_to_text,
)
from repro.vuc.locate import Target, TargetKind, locate_targets

__all__ = [
    "DEFAULT_WINDOW",
    "Vuc",
    "extract_vuc",
    "extract_vucs_for_targets",
    "VariableExtent",
    "VariableGroup",
    "group_targets",
    "LabeledVuc",
    "VucDataset",
    "extract_labeled_vucs",
    "extract_unlabeled_vucs",
    "target_signature",
    "ADDR",
    "BLANK",
    "BLANK_TOKENS",
    "FUNC",
    "IMM",
    "Tokens",
    "generalize_instruction",
    "generalize_operand",
    "generalize_window",
    "tokens_to_text",
    "Target",
    "TargetKind",
    "locate_targets",
]
