"""Labeled VUC corpus assembly.

Reproduces the paper's data pipeline (§IV-A): disassemble, locate
variables, extract per-target VUCs from the *stripped* view, and pair
each VUC with the ground-truth type recovered from the unstripped twin's
DWARF blob.  VUCs of the same variable share a ``variable_id`` so the
voting stage (§V-B) can aggregate them.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.codegen.binary import Binary, debug_variables
from repro.codegen.strip import strip
from repro.core import observability
from repro.core.errors import FailureReport, handle_failure
from repro.core.types import TypeName
from repro.vuc.context import DEFAULT_WINDOW, extract_vuc
from repro.vuc.dataflow import AccessSite, VariableExtent, access_site, group_targets
from repro.vuc.generalize import Tokens, generalize_instruction, generalize_window
from repro.vuc.locate import locate_targets


@dataclass(frozen=True)
class LabeledVuc:
    """One training/evaluation sample: a generalized VUC and its label."""

    tokens: tuple[Tokens, ...]      # 2w+1 token triples
    label: TypeName
    variable_id: str
    binary: str
    app: str
    compiler: str

    @property
    def target_tokens(self) -> Tokens:
        return self.tokens[len(self.tokens) // 2]


@dataclass
class VucDataset:
    """A corpus of labeled VUCs with per-variable grouping."""

    samples: list[LabeledVuc] = field(default_factory=list)
    window: int = DEFAULT_WINDOW

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    def extend(self, other: "VucDataset") -> None:
        if other.window != self.window:
            raise ValueError("cannot merge datasets with different window sizes")
        self.samples.extend(other.samples)

    def by_variable(self) -> dict[str, list[LabeledVuc]]:
        """Group samples by variable id (insertion order preserved)."""
        groups: dict[str, list[LabeledVuc]] = defaultdict(list)
        for sample in self.samples:
            groups[sample.variable_id].append(sample)
        return dict(groups)

    def n_variables(self) -> int:
        return len({s.variable_id for s in self.samples})

    def label_counts(self) -> Counter:
        """VUC-granularity label histogram."""
        return Counter(s.label for s in self.samples)

    def variable_label_counts(self) -> Counter:
        """Variable-granularity label histogram."""
        return Counter(vucs[0].label for vucs in self.by_variable().values())

    def apps(self) -> list[str]:
        seen: dict[str, None] = {}
        for sample in self.samples:
            seen.setdefault(sample.app, None)
        return list(seen)

    def filter_app(self, app: str) -> "VucDataset":
        return VucDataset(
            samples=[s for s in self.samples if s.app == app],
            window=self.window,
        )

    def subsample(self, limit: int, seed: int = 0) -> "VucDataset":
        """Deterministically subsample whole variables down to ~limit VUCs."""
        import random

        if len(self.samples) <= limit:
            return self
        rng = random.Random(seed)
        groups = list(self.by_variable().items())
        rng.shuffle(groups)
        kept: list[LabeledVuc] = []
        for _, vucs in groups:
            if len(kept) + len(vucs) > limit and kept:
                break
            kept.extend(vucs)
        return VucDataset(samples=kept, window=self.window)


def extract_labeled_vucs(
    binary: Binary,
    app: str | None = None,
    window: int = DEFAULT_WINDOW,
    member_labels: bool = False,
) -> VucDataset:
    """Build the labeled corpus for one (unstripped) binary.

    Features come from the stripped twin — local symbols gone, PLT import
    names kept — while labels come from the debug blob, exactly as the
    paper labels VUCs from DWARF while training on stripped-equivalent
    disassembly.

    ``member_labels=True`` refines struct-member accesses down to the
    accessed *field's* leaf label using the generator-side
    :class:`~repro.codegen.lowering.MemberTruth` records (freshly built
    binaries only): an instruction that stores into ``s.count`` is
    labeled ``int`` rather than ``struct``.  The default keeps the
    paper's variable-level labels, which is what the stock corpora and
    models are built from; the struct-recovery corpus turns it on so the
    classifier can emit per-field posteriors for the posterior stage.
    """
    if binary.is_stripped:
        raise ValueError("need an unstripped binary to label VUCs")
    app = app or binary.name
    records = debug_variables(binary)
    records_by_function: dict[str, list] = defaultdict(list)
    for record in records:
        records_by_function[record.function].append(record)

    stripped = strip(binary)
    samples: list[LabeledVuc] = []
    for func_index, (orig_func, stripped_func) in enumerate(
            zip(binary.functions, stripped.functions)):
        func_records = records_by_function.get(orig_func.name, [])
        if not func_records:
            continue
        extents = []
        labels_by_extent: dict[tuple[str, int], TypeName] = {}
        for record in func_records:
            base = "rbp" if record.frame_offset < 0 else "rsp"
            extents.append(VariableExtent(
                name=record.name, base=base,
                offset=record.frame_offset, size=max(record.size, 1),
            ))
            labels_by_extent[(base, record.frame_offset)] = record.type_label  # type: ignore[assignment]

        targets = locate_targets(stripped_func)
        scope = f"{binary.name}/{binary.compiler}-O{binary.opt_level}/{func_index}"
        truth_by_index = {}
        if member_labels and func_index < len(binary.lowered):
            truth_by_index = binary.lowered[func_index].member_truth_by_instruction()
        for group in group_targets(targets, extents, scope):
            label = labels_by_extent[(group.extent.base, group.extent.offset)]
            for target in group.targets:
                member = truth_by_index.get(target.index)
                vuc = extract_vuc(stripped_func, target.index, window)
                samples.append(LabeledVuc(
                    tokens=generalize_window(vuc.window),
                    label=member.label if member is not None else label,
                    variable_id=group.variable_id,
                    binary=f"{binary.name}/{binary.compiler}-O{binary.opt_level}",
                    app=app,
                    compiler=binary.compiler,
                ))
    return VucDataset(samples=samples, window=window)


def extract_unlabeled_vucs(
    stripped: Binary,
    extents_by_function: list[list[VariableExtent]],
    window: int = DEFAULT_WINDOW,
    on_error: str = "raise",
    failures: FailureReport | None = None,
    metrics: bool = True,
    sites: list[AccessSite] | None = None,
) -> list[tuple[str, tuple[Tokens, ...]]]:
    """Inference-side extraction: (variable_id, tokens) pairs.

    ``extents_by_function`` supplies the given variable locations
    (§VII-B's assumption); inference has no labels.

    Extraction is fault-isolated per function: with ``on_error="skip"``
    a function whose listing cannot be located/windowed (undecodable
    bytes, hostile instructions) is recorded into ``failures`` and
    dropped, and every healthy function still contributes its VUCs.

    With ``metrics`` (callers pass ``CatiConfig.metrics_enabled``),
    per-function ``locate``/``window`` spans are recorded into the
    global registry, nested under whatever span the caller holds.

    When ``sites`` is given, one :class:`AccessSite` per returned pair is
    appended to it, index-aligned with the result (the posterior
    struct-recovery stage joins them against per-VUC leaf posteriors).
    Skipped functions contribute neither pairs nor sites, so alignment
    survives ``on_error="skip"``.
    """
    out: list[tuple[str, tuple[Tokens, ...]]] = []
    registry = observability.get_registry() if metrics else observability.MetricsRegistry(
        enabled=False)
    for func_index, func in enumerate(stripped.functions):
        extents = extents_by_function[func_index] if func_index < len(extents_by_function) else []
        if not extents:
            continue
        scope = f"{stripped.name}/{func_index}"
        func_out: list[tuple[str, tuple[Tokens, ...]]] = []
        func_sites: list[AccessSite] = []
        try:
            with registry.span("locate"):
                targets = locate_targets(func)
                groups = group_targets(targets, extents, scope)
            with registry.span("window"):
                for group in groups:
                    for target in group.targets:
                        vuc = extract_vuc(func, target.index, window)
                        func_out.append((group.variable_id, generalize_window(vuc.window)))
                        if sites is not None:
                            func_sites.append(access_site(target, group.extent, group.variable_id))
        except Exception as exc:
            handle_failure(exc, on_error=on_error, failures=failures,
                           stage="extract", binary=stripped.name,
                           function=getattr(func, "name", scope))
            continue
        out.extend(func_out)
        if sites is not None:
            sites.extend(func_sites)
    return out


def target_signature(sample: LabeledVuc) -> str:
    """The generalized target-instruction text (uncertain-sample key)."""
    return " ".join(sample.target_tokens)
