"""Group target instructions into variables.

The paper assumes variable *locations* are given (§VII-B: either from
IDA/DEBIN-style variable recovery or, during evaluation, from ground
truth) and concentrates on typing them.  Accordingly, this module takes
a list of frame extents — one per variable — and assigns every located
:class:`~repro.vuc.locate.Target` to the variable whose extent contains
its displacement.  Targets falling outside every extent (spill slots,
compiler temporaries) are dropped, as they are in the paper's corpus
construction.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.vuc.locate import Target, TargetKind


@dataclass(frozen=True, slots=True)
class VariableExtent:
    """One variable's frame location: [offset, offset+size) on a base."""

    name: str
    base: str       # "rbp" or "rsp"
    offset: int
    size: int

    def contains(self, base: str, disp: int) -> bool:
        return base == self.base and self.offset <= disp < self.offset + self.size


@dataclass
class VariableGroup:
    """All target instructions attributed to one variable."""

    variable_id: str
    extent: VariableExtent
    targets: list[Target] = field(default_factory=list)

    @property
    def n_targets(self) -> int:
        return len(self.targets)

    @property
    def is_orphan(self) -> bool:
        """Orphan variables have only 1-2 related instructions (§II-B)."""
        return self.n_targets <= 2


def group_targets(
    targets: list[Target],
    extents: list[VariableExtent],
    scope: str,
) -> list[VariableGroup]:
    """Assign targets to variables by frame extent.

    ``scope`` (binary/function identifier) is prefixed onto variable ids
    so ids stay globally unique across a corpus.  Extents are looked up
    per frame base in offset-sorted order: a ``bisect`` bounds the
    candidates to those starting at or below the displacement, and the
    scan over them runs in ascending offset order.  When extents overlap
    (a malformed or deliberately adversarial frame map), the containing
    extent with the **lowest start offset** wins — ascending order makes
    that tie-break deterministic regardless of caller order.  Variables
    with no targets at all are omitted (they produce no VUCs, hence no
    prediction — the paper's corpora count only variables with ≥1 VUC).
    """
    # base register -> (sorted start offsets, extents in that order).
    by_base: dict[str, tuple[list[int], list[VariableExtent]]] = {}
    for extent in sorted(extents, key=lambda e: (e.base, e.offset)):
        offsets, ordered = by_base.setdefault(extent.base, ([], []))
        offsets.append(extent.offset)
        ordered.append(extent)

    groups: dict[str, VariableGroup] = {}
    for target in targets:
        entry = by_base.get(target.base)
        if entry is None:
            continue
        offsets, ordered = entry
        hi = bisect_right(offsets, target.offset)
        for extent in ordered[:hi]:
            if extent.contains(target.base, target.offset):
                variable_id = f"{scope}::{extent.base}{extent.offset:+d}"
                group = groups.get(variable_id)
                if group is None:
                    group = VariableGroup(variable_id=variable_id, extent=extent)
                    groups[variable_id] = group
                group.targets.append(target)
                break
    return list(groups.values())


@dataclass(frozen=True, slots=True)
class AccessSite:
    """One memory access attributed to a variable, as a base+offset record.

    The posterior struct-recovery stage (:mod:`repro.posterior`) consumes
    these alongside per-VUC leaf posteriors.  ``offset`` is the access's
    byte offset *inside the base object*: for SLOT targets the interior
    offset within the variable's frame extent
    (``target.offset - extent.offset``), for DEREF targets the
    ``[reg+disp]`` displacement into the pointee.  ``width`` is the access
    width in bytes (0 = unknown / address-only).
    """

    variable_id: str
    kind: TargetKind
    offset: int
    width: int


def access_site(target: Target, extent: VariableExtent, variable_id: str) -> AccessSite:
    """Build the :class:`AccessSite` record for one grouped target."""
    if target.kind is TargetKind.DEREF:
        offset = target.deref_disp
    else:
        offset = target.offset - extent.offset
    return AccessSite(variable_id=variable_id, kind=target.kind,
                      offset=offset, width=target.width)
