"""Group target instructions into variables.

The paper assumes variable *locations* are given (§VII-B: either from
IDA/DEBIN-style variable recovery or, during evaluation, from ground
truth) and concentrates on typing them.  Accordingly, this module takes
a list of frame extents — one per variable — and assigns every located
:class:`~repro.vuc.locate.Target` to the variable whose extent contains
its displacement.  Targets falling outside every extent (spill slots,
compiler temporaries) are dropped, as they are in the paper's corpus
construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.vuc.locate import Target


@dataclass(frozen=True, slots=True)
class VariableExtent:
    """One variable's frame location: [offset, offset+size) on a base."""

    name: str
    base: str       # "rbp" or "rsp"
    offset: int
    size: int

    def contains(self, base: str, disp: int) -> bool:
        return base == self.base and self.offset <= disp < self.offset + self.size


@dataclass
class VariableGroup:
    """All target instructions attributed to one variable."""

    variable_id: str
    extent: VariableExtent
    targets: list[Target] = field(default_factory=list)

    @property
    def n_targets(self) -> int:
        return len(self.targets)

    @property
    def is_orphan(self) -> bool:
        """Orphan variables have only 1-2 related instructions (§II-B)."""
        return self.n_targets <= 2


def group_targets(
    targets: list[Target],
    extents: list[VariableExtent],
    scope: str,
) -> list[VariableGroup]:
    """Assign targets to variables by frame extent.

    ``scope`` (binary/function identifier) is prefixed onto variable ids
    so ids stay globally unique across a corpus.  Extents are assumed
    non-overlapping; the first containing extent wins.  Variables with no
    targets at all are omitted (they produce no VUCs, hence no
    prediction — the paper's corpora count only variables with ≥1 VUC).
    """
    groups: dict[str, VariableGroup] = {}
    # Sort extents so interval lookup is a bisect; linear scan is fine for
    # per-function variable counts (≤ dozens).
    for target in targets:
        for extent in extents:
            if extent.contains(target.base, target.offset):
                variable_id = f"{scope}::{extent.base}{extent.offset:+d}"
                group = groups.get(variable_id)
                if group is None:
                    group = VariableGroup(variable_id=variable_id, extent=extent)
                    groups[variable_id] = group
                group.targets.append(target)
                break
    return list(groups.values())
