"""Process-wide interning of generalized instruction triples.

The generalization step (§IV-B) collapses binary-specific values into a
small closed vocabulary of token triples — the *same-type clustering
phenomenon* (§VI) means real corpora produce the same few thousand
distinct triples over and over.  Interning gives every distinct triple
one canonical :class:`InternedTokens` object carrying a dense integer
``intern_id``, assigned at parse/disassembly time:

* encoders map ``intern_id → vocabulary id-triple`` through a flat
  array instead of hashing token strings per instruction, so hot
  corpora skip the string memo entirely;
* the serving path's packed decoder (``"mn\\top1\\top2"`` lines) memoizes
  raw lines straight to interned triples, producing id tensors without
  building throwaway tuples;
* equality and dict/set membership degrade gracefully: an
  ``InternedTokens`` *is* a tuple, so uninterned triples from tests or
  external callers still compare equal and hash identically.

Ids are **per-process**: a forked worker inherits the parent's table
copy-on-write and both sides keep their ids consistent for everything
interned before the fork; triples interned after the fork get
process-local ids, which is safe because ids never cross process
boundaries (pickling an :class:`InternedTokens` re-interns on load —
see :meth:`InternedTokens.__reduce__`).

Thread-safety: lookups are GIL-atomic dict reads; inserts take the
module lock so an id is assigned exactly once per process.
"""

from __future__ import annotations

import threading

#: Token triple type: (mnemonic, operand1, operand2).
Triple = tuple[str, str, str]


class InternedTokens(tuple):
    """A canonical token triple with a dense per-process ``intern_id``.

    A plain ``tuple`` subclass (tuple subclasses cannot carry nonempty
    ``__slots__``, so the id lives in the instance dict), equal and
    hash-compatible with the uninterned triple.
    """

    intern_id: int

    def __reduce__(self):
        # Re-intern on unpickle so ids stay per-process-consistent when
        # windows cross the worker-pool or serve boundary.
        return (intern_tokens, (tuple(self),))


_lock = threading.Lock()
_by_triple: dict[Triple, InternedTokens] = {}
_by_id: list[InternedTokens] = []
#: Packed-line memo ("mn\top1\top2" → interned triple) for the serving
#: wire format; shares the id space with the triple table.
_by_line: dict[str, InternedTokens] = {}


def intern_tokens(triple: tuple) -> InternedTokens:
    """The canonical interned object for a (mnemonic, op1, op2) triple."""
    found = _by_triple.get(triple)
    if found is not None:
        return found
    with _lock:
        found = _by_triple.get(triple)
        if found is None:
            found = InternedTokens(triple)
            found.intern_id = len(_by_id)
            _by_id.append(found)
            _by_triple[tuple(triple)] = found
        return found


def intern_line(line: str) -> InternedTokens:
    """Intern one packed wire line (three tab-separated tokens).

    The line memo makes the serving hot path a single dict hit per
    instruction; only *distinct* lines are ever split into tokens.
    """
    found = _by_line.get(line)
    if found is not None:
        return found
    parts = line.split("\t")
    if len(parts) != 3:
        raise ValueError(
            f"packed instruction must be 3 tab-separated tokens, got {line!r}")
    found = intern_tokens((parts[0], parts[1], parts[2]))
    with _lock:
        _by_line.setdefault(line, found)
    return found


def intern_count() -> int:
    """Distinct triples interned so far in this process."""
    return len(_by_id)


def interned_by_id(intern_id: int) -> InternedTokens:
    """The triple behind a dense id (ids are never recycled)."""
    return _by_id[intern_id]
