"""VUC extraction: the 21-instruction window around a target instruction.

A Variable Usage Context is the target instruction with ``w`` (=10)
instructions before and after it (§II-A).  Windows are clipped at
function boundaries and padded with BLANK pseudo-instructions so every
VUC has the same length — the same BLANK token the paper uses for
operand padding and for occlusion (Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.instruction import FunctionListing, Instruction
from repro.vuc.locate import Target

#: The paper's window size (10 before + 10 after + target = 21).
DEFAULT_WINDOW = 10

#: Sentinel used for padding positions; consumers render it as BLANK.
PAD: Instruction | None = None


@dataclass(frozen=True)
class Vuc:
    """One Variable Usage Context.

    ``window`` always has ``2*w + 1`` entries; ``None`` entries are
    function-boundary padding.  The target instruction sits at index
    ``w``.
    """

    window: tuple[Instruction | None, ...]
    target_index: int           # index of the target within the function
    window_size: int            # w

    @property
    def target(self) -> Instruction:
        ins = self.window[self.window_size]
        assert ins is not None, "target position can never be padding"
        return ins

    def __len__(self) -> int:
        return len(self.window)


def extract_vuc(listing: FunctionListing, index: int, window: int = DEFAULT_WINDOW) -> Vuc:
    """Extract the VUC centered on instruction ``index`` of ``listing``."""
    instructions = listing.instructions
    if not 0 <= index < len(instructions):
        raise IndexError(f"instruction index {index} out of range")
    slots: list[Instruction | None] = []
    for position in range(index - window, index + window + 1):
        if 0 <= position < len(instructions):
            slots.append(instructions[position])
        else:
            slots.append(PAD)
    return Vuc(window=tuple(slots), target_index=index, window_size=window)


def extract_vucs_for_targets(
    listing: FunctionListing,
    targets: list[Target],
    window: int = DEFAULT_WINDOW,
) -> list[Vuc]:
    """Extract one VUC per located target, in order."""
    return [extract_vuc(listing, target.index, window) for target in targets]
