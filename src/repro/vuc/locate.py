"""Locate variables' *target instructions* in a disassembled function.

The paper's target instructions are memory-access instructions and
dereference instructions (§I) — the instructions that operate exactly one
variable.  Two locator rules reproduce what IDA's stack-frame analysis
plus light def-use tracking give the authors:

1. **Slot access** — any operand of the form ``disp(%rbp)`` /
   ``disp(%rsp)`` (optionally indexed) touches the local whose frame
   extent contains ``disp``.
2. **Dereference** — a memory operand based on a register that was
   recently loaded (``mov``/``lea``) from a stack slot is a dereference
   *of the pointer variable in that slot*.  The tracking is invalidated
   when the register family is overwritten, and ages out after a small
   window, which is exactly the locality real pointer uses exhibit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.asm.instruction import FunctionListing, Instruction
from repro.asm.operands import Mem, Reg
from repro.asm.registers import register_family

#: How many instructions a slot-loaded register stays a valid pointer base.
DEREF_WINDOW = 12

#: Frame-base register families the locator recognises.
FRAME_BASES = ("rbp", "rsp")


class TargetKind(enum.Enum):
    """How the target instruction touches its variable."""

    SLOT = "slot"        # direct frame-slot access
    DEREF = "deref"      # memory access through a slot-loaded pointer


@dataclass(frozen=True, slots=True)
class Target:
    """One target instruction inside a function listing.

    ``deref_disp`` and ``width`` make the target a full base+offset
    access record for the posterior struct-recovery stage
    (:mod:`repro.posterior`): for DEREF targets ``deref_disp`` is the
    ``disp`` of the ``[reg+disp]`` operand through the pointer base
    (the field offset inside the pointee), for SLOT targets it is 0
    (interior offsets are recovered against the extent instead).
    ``width`` is the access width in bytes, 0 when unknown or when the
    instruction takes an address rather than data (``lea``).
    """

    index: int                  # instruction index within the function
    kind: TargetKind
    base: str                   # frame base register ("rbp"/"rsp")
    offset: int                 # frame displacement identifying the slot
    instruction: Instruction
    deref_disp: int = 0         # [reg+disp] displacement for DEREF targets
    width: int = 0              # access width in bytes (0 = unknown/address)


#: Access width by mnemonic suffix for the GNU-style suffixed forms.
_SUFFIX_WIDTHS = {"b": 1, "w": 2, "l": 4, "q": 8}

#: Widths for mnemonics the suffix rule gets wrong or misses.
_MNEMONIC_WIDTHS = {
    "movss": 4, "movsd": 8, "addss": 4, "addsd": 8,
    "subss": 4, "subsd": 8, "mulss": 4, "mulsd": 8,
    "divss": 4, "divsd": 8, "comiss": 4, "comisd": 8,
    "ucomiss": 4, "ucomisd": 8,
    "movsbl": 1, "movzbl": 1, "movswl": 2, "movzwl": 2,
    "movsbq": 1, "movzbq": 1, "movswq": 2, "movzwq": 2,
    "movslq": 4,
    "lea": 0, "leaq": 0,
}


#: Base mnemonics whose trailing b/w/l/q is a width suffix (``imul`` is not).
_SUFFIXABLE = frozenset(("mov", "add", "sub", "cmp", "and", "or", "xor", "test", "inc", "dec"))


def _access_width(ins: Instruction) -> int:
    """Best-effort memory-access width of an instruction, in bytes."""
    width = _MNEMONIC_WIDTHS.get(ins.mnemonic)
    if width is not None:
        return width
    suffix_width = _SUFFIX_WIDTHS.get(ins.mnemonic[-1])
    if suffix_width is not None and ins.mnemonic[:-1] in _SUFFIXABLE:
        return suffix_width
    # Fall back to the width of a register partner operand.
    for op in ins.operands:
        if isinstance(op, Reg):
            return op.width
    return 0


def _slot_operand(ins: Instruction) -> Mem | None:
    """The frame-slot memory operand of an instruction, if it has one."""
    for op in ins.operands:
        if isinstance(op, Mem) and op.base in FRAME_BASES:
            return op
    return None


def _written_families(ins: Instruction) -> frozenset[str]:
    """Register families an instruction (potentially) overwrites."""
    dest = ins.operands[-1] if ins.operands else None
    if isinstance(dest, Reg) and dest.name != "rip":
        try:
            return frozenset((register_family(dest.name),))
        except KeyError:
            return frozenset()
    if ins.is_call:
        # Calls clobber all caller-saved registers.
        return frozenset(("rax", "rcx", "rdx", "rsi", "rdi", "r8", "r9", "r10", "r11"))
    return frozenset()


def locate_targets(listing: FunctionListing) -> list[Target]:
    """Find every target instruction in a function, in listing order.

    Prologue/epilogue stack adjustments (``push``, ``pop``, ``sub
    $N,%rsp``) never carry slot operands in our IR, so no special-casing
    is needed; ``(%rsp)`` bare pushes do not match because they have no
    Mem operand.
    """
    targets: list[Target] = []
    # family -> (base, offset, index where it was loaded)
    pointer_regs: dict[str, tuple[str, int, int]] = {}

    for index, ins in enumerate(listing.instructions):
        slot = _slot_operand(ins)
        if slot is not None:
            assert slot.base is not None
            targets.append(Target(
                index=index, kind=TargetKind.SLOT,
                base=slot.base, offset=slot.disp, instruction=ins,
                width=_access_width(ins),
            ))
            # A register loaded from the slot (pointer value via mov, or
            # the slot's own address via lea) becomes a tracked pointer.
            dest = ins.operands[-1] if ins.operands else None
            if (ins.mnemonic in ("mov", "movq", "lea") and isinstance(dest, Reg)
                    and dest.width == 8):
                pointer_regs[dest.family] = (slot.base, slot.disp, index)
        else:
            # Dereference through a tracked pointer register?
            for op in ins.operands:
                if not isinstance(op, Mem) or op.base is None:
                    continue
                if op.base in FRAME_BASES or op.base == "rip":
                    continue
                family = register_family(op.base)
                tracked = pointer_regs.get(family)
                if tracked is not None and index - tracked[2] <= DEREF_WINDOW:
                    targets.append(Target(
                        index=index, kind=TargetKind.DEREF,
                        base=tracked[0], offset=tracked[1], instruction=ins,
                        deref_disp=op.disp, width=_access_width(ins),
                    ))
                    break

        # Invalidate pointer tracking on overwrites (after use above, so a
        # self-reload `mov slot,%rax` both targets the slot and re-tracks).
        written = _written_families(ins)
        if written:
            dest = ins.operands[-1] if ins.operands else None
            reloaded = (slot is not None and isinstance(dest, Reg)
                        and dest.width == 8 and ins.mnemonic in ("mov", "movq", "lea"))
            for family in written:
                if reloaded and isinstance(dest, Reg) and family == dest.family:
                    continue
                pointer_regs.pop(family, None)
    return targets


def count_targets(listing: FunctionListing) -> int:
    """Number of target instructions in a function (cheap summary)."""
    return len(locate_targets(listing))
