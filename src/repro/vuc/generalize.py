"""Operand generalization (§IV-B, Table II).

Binary-specific values are replaced with unified elements so the
embedding vocabulary stays small and transfers across binaries:

* immediate values → ``$IMM`` (displacements keep their sign:
  ``-0x300(%rbp,%r9,4)`` → ``-IMM(%rbp,%r9,4)``; the scale factor is
  *kept* because it correlates with element width),
* jump/call target addresses → ``ADDR``,
* resolvable callee names → ``FUNC`` (unresolved ones → ``BLANK``),
* missing operands → ``BLANK`` padding so every instruction has exactly
  one mnemonic and two operand tokens.

The output of :func:`generalize_instruction` is the 3-token tuple the
Word2Vec embedding consumes — *interned* through
:mod:`repro.vuc.intern` at creation time, so every distinct triple
exists once per process and carries a dense ``intern_id`` the encoders
gather through instead of hashing strings (see
:class:`~repro.embedding.encoder.VucEncoder`).
"""

from __future__ import annotations

from repro.asm.instruction import Instruction
from repro.asm.operands import Imm, Label, Mem, Operand, Reg
from repro.vuc.intern import intern_tokens

#: Padding token (missing operands, window padding, occlusion).
BLANK = "BLANK"
IMM = "$IMM"
ADDR = "ADDR"
FUNC = "FUNC"

#: Token triple type: (mnemonic, operand1, operand2).
Tokens = tuple[str, str, str]

#: The tokens of a fully padded (occluded / out-of-function) instruction.
BLANK_TOKENS: Tokens = intern_tokens((BLANK, BLANK, BLANK))


def generalize_operand(op: Operand) -> str:
    """Generalize one operand to its unified token."""
    if isinstance(op, Imm):
        return IMM
    if isinstance(op, Reg):
        return f"%{op.name}"
    if isinstance(op, Mem):
        return _generalize_mem(op)
    if isinstance(op, Label):
        return ADDR
    raise TypeError(f"unknown operand {op!r}")


def _generalize_mem(op: Mem) -> str:
    sign = "-" if op.disp < 0 else ""
    disp = f"{sign}IMM" if (op.disp != 0 or (op.base is None and op.index is None)) else ""
    if op.base is None and op.index is None:
        return disp
    inner = f"%{op.base}" if op.base is not None else ""
    if op.index is not None:
        inner += f",%{op.index},{op.scale}"
    return f"{disp}({inner})"


def generalize_instruction(ins: Instruction | None) -> Tokens:
    """Generalize an instruction to (mnemonic, op1, op2); None → BLANK."""
    if ins is None:
        return BLANK_TOKENS
    if ins.is_control_flow:
        # Table II rows 3-4: `jmp ADDR BLANK`, `callq ADDR <FUNC>`.
        target = ins.operands[0] if ins.operands else None
        second = BLANK
        if ins.is_call and isinstance(target, Label) and target.symbol is not None:
            second = FUNC
        return intern_tokens(
            (ins.mnemonic, ADDR if target is not None else BLANK, second))
    tokens = [generalize_operand(op) for op in ins.operands[:2]]
    while len(tokens) < 2:
        tokens.append(BLANK)
    return intern_tokens((ins.mnemonic, tokens[0], tokens[1]))


def generalize_window(window: tuple[Instruction | None, ...]) -> tuple[Tokens, ...]:
    """Generalize a whole VUC window to its token-triple sequence."""
    return tuple(generalize_instruction(ins) for ins in window)


def tokens_to_text(tokens: Tokens) -> str:
    """Render a token triple as one space-joined 'word sequence' line."""
    return " ".join(tokens)
