"""Weight initializers for the numpy NN library."""

from __future__ import annotations

import numpy as np


def he_uniform(shape: tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform init — the right scale for ReLU stacks."""
    limit = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-limit, limit, shape).astype(np.float32)


def glorot_uniform(shape: tuple[int, ...], fan_in: int, fan_out: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform init for linear output layers."""
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, shape).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)
