"""Layers of the from-scratch numpy neural-network library.

Implements exactly what CATI's classifier needs (§V-A): 1-D convolutions
over the 21-instruction axis, ReLU, max-pooling, dense layers and
dropout.  Every layer exposes ``forward(x, training)`` and
``backward(grad)`` with internal caches, plus ``params()`` returning
(name, value, gradient) triples for the optimizer.
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import glorot_uniform, he_uniform, zeros


class Layer:
    """Base layer: stateless by default."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def params(self) -> list[tuple[str, np.ndarray, np.ndarray]]:
        return []

    def state(self) -> dict[str, np.ndarray]:
        """Serializable parameter dict (empty for stateless layers)."""
        return {name: value for name, value, _grad in self.params()}

    def load_state(self, state: dict[str, np.ndarray]) -> None:
        for name, value, _grad in self.params():
            value[...] = state[name]


class Conv1d(Layer):
    """1-D convolution over [B, L, C_in] with 'same' zero padding."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int = 3,
                 rng: np.random.Generator | None = None) -> None:
        if kernel_size % 2 != 1:
            raise ValueError("kernel_size must be odd for 'same' padding")
        rng = rng or np.random.default_rng(0)
        self.kernel_size = kernel_size
        self.in_channels = in_channels
        self.out_channels = out_channels
        fan_in = kernel_size * in_channels
        self.weight = he_uniform((fan_in, out_channels), fan_in, rng)
        self.bias = zeros((out_channels,))
        self.d_weight = np.zeros_like(self.weight)
        self.d_bias = np.zeros_like(self.bias)
        self._cache: tuple | None = None

    def _im2col(self, x: np.ndarray) -> np.ndarray:
        pad = self.kernel_size // 2
        padded = np.pad(x, ((0, 0), (pad, pad), (0, 0)))
        windows = np.lib.stride_tricks.sliding_window_view(
            padded, (self.kernel_size, x.shape[2]), axis=(1, 2)
        )  # [B, L, 1, K, C]
        batch, length = x.shape[0], x.shape[1]
        return windows.reshape(batch, length, self.kernel_size * x.shape[2])

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        cols = self._im2col(x)                       # [B, L, K*C]
        out = cols @ self.weight + self.bias         # [B, L, C_out]
        self._cache = (x.shape, cols)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        x_shape, cols = self._cache
        batch, length, channels = x_shape
        self.d_weight[...] = np.einsum("blk,blo->ko", cols, grad)
        self.d_bias[...] = grad.sum(axis=(0, 1))
        d_cols = grad @ self.weight.T                # [B, L, K*C]
        d_cols = d_cols.reshape(batch, length, self.kernel_size, channels)
        pad = self.kernel_size // 2
        d_padded = np.zeros((batch, length + 2 * pad, channels), dtype=grad.dtype)
        for k in range(self.kernel_size):
            d_padded[:, k:k + length, :] += d_cols[:, :, k, :]
        return d_padded[:, pad:pad + length, :]

    def params(self) -> list[tuple[str, np.ndarray, np.ndarray]]:
        return [("weight", self.weight, self.d_weight), ("bias", self.bias, self.d_bias)]


class ReLU(Layer):
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._mask


class MaxPool1d(Layer):
    """Max pooling over the length axis of [B, L, C] (stride = pool size)."""

    def __init__(self, pool: int = 2) -> None:
        self.pool = pool

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        batch, length, channels = x.shape
        out_len = length // self.pool
        trimmed = x[:, :out_len * self.pool, :]
        reshaped = trimmed.reshape(batch, out_len, self.pool, channels)
        out = reshaped.max(axis=2)
        self._cache = (x.shape, reshaped, out)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x_shape, reshaped, out = self._cache
        mask = reshaped == out[:, :, None, :]
        # Break ties by normalizing so gradient mass is conserved.
        mask = mask / np.maximum(mask.sum(axis=2, keepdims=True), 1)
        d_reshaped = mask * grad[:, :, None, :]
        batch, length, channels = x_shape
        out_len = d_reshaped.shape[1]
        dx = np.zeros(x_shape, dtype=grad.dtype)
        dx[:, :out_len * self.pool, :] = d_reshaped.reshape(batch, out_len * self.pool, channels)
        return dx


class Flatten(Layer):
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad.reshape(self._shape)


class Dense(Layer):
    """Fully connected layer on [B, F_in] → [B, F_out]."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator | None = None) -> None:
        rng = rng or np.random.default_rng(0)
        self.weight = glorot_uniform((in_features, out_features), in_features, out_features, rng)
        self.bias = zeros((out_features,))
        self.d_weight = np.zeros_like(self.weight)
        self.d_bias = np.zeros_like(self.bias)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x = x
        return x @ self.weight + self.bias

    def backward(self, grad: np.ndarray) -> np.ndarray:
        self.d_weight[...] = self._x.T @ grad
        self.d_bias[...] = grad.sum(axis=0)
        return grad @ self.weight.T

    def params(self) -> list[tuple[str, np.ndarray, np.ndarray]]:
        return [("weight", self.weight, self.d_weight), ("bias", self.bias, self.d_bias)]


def quantize_rows_int8(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-row symmetric int8 quantization: ``(values, scales)``.

    ``values[i] = round(matrix[i] / scales[i])`` clipped to [-127, 127],
    with ``scales[i] = max|matrix[i]| / 127``; an all-zero row keeps a
    scale of 1 so dequantization (``values * scales[:, None]``) is
    well-defined everywhere.  Used by the inference engine's opt-in
    int8 embedding-table path (``CatiConfig.quantize_embeddings``): the
    gather out of the embedding table is memory-bound, and int8 rows
    move 4x fewer bytes than float32.
    """
    m = np.ascontiguousarray(matrix, dtype=np.float32)
    scales = np.abs(m).max(axis=1) / np.float32(127.0)
    scales = np.where(scales > 0, scales, np.float32(1.0)).astype(np.float32)
    values = np.clip(np.rint(m / scales[:, None]), -127, 127).astype(np.int8)
    return values, scales


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    def __init__(self, rate: float = 0.5, rng: np.random.Generator | None = None) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self.rng = rng or np.random.default_rng(0)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask
