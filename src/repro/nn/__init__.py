"""From-scratch numpy neural-network library (the paper's Keras stand-in):
Conv1d/ReLU/MaxPool/Dense/Dropout layers, softmax cross-entropy, SGD and
Adam, and the :func:`build_cati_cnn` stage architecture.
"""

from repro.nn.layers import Conv1d, Dense, Dropout, Flatten, Layer, MaxPool1d, ReLU
from repro.nn.losses import cross_entropy, softmax
from repro.nn.model import FitResult, Sequential, build_cati_cnn
from repro.nn.optimizers import Adam, Optimizer, SGD

__all__ = [
    "Conv1d",
    "Dense",
    "Dropout",
    "Flatten",
    "Layer",
    "MaxPool1d",
    "ReLU",
    "cross_entropy",
    "softmax",
    "FitResult",
    "Sequential",
    "build_cati_cnn",
    "Adam",
    "Optimizer",
    "SGD",
]
