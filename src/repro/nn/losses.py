"""Loss functions (softmax cross-entropy) for the numpy NN library."""

from __future__ import annotations

import numpy as np


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def cross_entropy(logits: np.ndarray, labels: np.ndarray,
                  class_weights: np.ndarray | None = None) -> tuple[float, np.ndarray]:
    """Softmax cross-entropy loss and its gradient w.r.t. logits.

    ``labels`` are integer class ids.  ``class_weights`` (optional,
    per-class) reweight the loss — used to soften the heavy class skew in
    the type distribution (int and struct* dominate, Table V).
    """
    probs = softmax(logits)
    batch = len(labels)
    picked = probs[np.arange(batch), labels]
    weights = np.ones(batch, dtype=np.float64) if class_weights is None else class_weights[labels]
    loss = float(-(weights * np.log(np.clip(picked, 1e-12, None))).mean())
    grad = probs.copy()
    grad[np.arange(batch), labels] -= 1.0
    grad *= (weights / weights.sum() )[:, None] if class_weights is not None else 1.0 / batch
    return loss, grad.astype(np.float32)
