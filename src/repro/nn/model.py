"""Sequential model container: training loop, prediction, persistence.

Also provides :func:`build_cati_cnn` — the 2-layer CNN (32-64) with a
fully-connected head the paper uses for every stage (§V-A), shrunk to
corpus scale via the ``fc_width`` knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.layers import Conv1d, Dense, Dropout, Flatten, Layer, MaxPool1d, ReLU
from repro.nn.losses import cross_entropy, softmax
from repro.nn.optimizers import Adam, Optimizer


@dataclass
class FitResult:
    """Training-loop telemetry."""

    losses: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


class Sequential:
    """A plain layer stack with softmax-cross-entropy training."""

    def __init__(self, layers: list[Layer]) -> None:
        self.layers = layers

    # -- forward / backward ------------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def params(self) -> list[tuple[str, np.ndarray, np.ndarray]]:
        out = []
        for index, layer in enumerate(self.layers):
            for name, value, grad in layer.params():
                out.append((f"{index}.{name}", value, grad))
        return out

    # -- training ----------------------------------------------------------------

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 10,
        batch_size: int = 64,
        optimizer: Optimizer | None = None,
        class_weights: np.ndarray | None = None,
        seed: int = 0,
        verbose: bool = False,
    ) -> FitResult:
        """Minibatch training with shuffling; returns loss/accuracy curves."""
        optimizer = optimizer or Adam()
        rng = np.random.default_rng(seed)
        result = FitResult()
        n = len(x)
        for epoch in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            correct = 0
            batches = 0
            for start in range(0, n, batch_size):
                idx = order[start:start + batch_size]
                logits = self.forward(x[idx], training=True)
                loss, grad = cross_entropy(logits, y[idx], class_weights)
                self.backward(grad)
                optimizer.step(self.params())
                epoch_loss += loss
                correct += int((logits.argmax(axis=1) == y[idx]).sum())
                batches += 1
            result.losses.append(epoch_loss / max(batches, 1))
            result.train_accuracy.append(correct / max(n, 1))
            if verbose:
                print(f"epoch {epoch + 1}/{epochs} loss={result.losses[-1]:.4f} "
                      f"acc={result.train_accuracy[-1]:.3f}")
        return result

    # -- inference ------------------------------------------------------------------

    def predict_proba(self, x: np.ndarray, batch_size: int = 512) -> np.ndarray:
        """Class probabilities, batched to bound memory."""
        chunks = []
        for start in range(0, len(x), batch_size):
            logits = self.forward(x[start:start + batch_size], training=False)
            chunks.append(softmax(logits))
        if not chunks:
            n_out = 1
            return np.zeros((0, n_out))
        return np.concatenate(chunks)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.predict_proba(x).argmax(axis=1)

    # -- persistence ------------------------------------------------------------------

    def get_state(self) -> dict[str, np.ndarray]:
        """Flat ``{"<layer>.<param>": array}`` snapshot of every weight."""
        return {key: value for key, value, _grad in self.params()}

    def load_state(self, state: dict[str, np.ndarray]) -> None:
        """Restore weights from a :meth:`get_state` dict, validating shapes.

        Missing keys and shape mismatches raise ``ValueError`` naming the
        offending parameter — a mis-sized load must never half-apply.
        """
        for key, value, _grad in self.params():
            if key not in state:
                raise ValueError(f"model state lacks parameter {key!r}")
            source = np.asarray(state[key])
            if source.shape != value.shape:
                raise ValueError(
                    f"parameter {key!r} has shape {source.shape}, "
                    f"model expects {value.shape}")
        for key, value, _grad in self.params():
            value[...] = state[key]

    def save(self, path: str) -> None:
        np.savez_compressed(path, **self.get_state())

    def load(self, path: str) -> None:
        with np.load(path) as data:
            self.load_state(dict(data))


#: Layer class → the op kind the inference engine compiles it to; a
#: layer type missing here has no float32 mirror (the engine then falls
#: back to the naive float64 forward for that stage).
_LAYER_KINDS: dict[type, str] = {
    Conv1d: "conv", ReLU: "relu", MaxPool1d: "pool",
    Flatten: "flatten", Dense: "dense", Dropout: "noop",
}


def layer_kind(layer: Layer) -> str | None:
    """The compiled-op kind of a layer (None = unknown to the engine)."""
    return _LAYER_KINDS.get(type(layer))


def build_cati_cnn(
    input_length: int,
    input_channels: int,
    n_classes: int,
    conv_channels: tuple[int, int] = (32, 64),
    fc_width: int = 128,
    dropout: float = 0.3,
    seed: int = 0,
) -> Sequential:
    """The paper's per-stage model: 2 conv layers (32-64) + FC head.

    The paper uses FC width 1024 on a ~22M-VUC corpus; ``fc_width``
    defaults to 128 for laptop-scale corpora (see DESIGN.md §2).
    """
    rng = np.random.default_rng(seed)
    layers: list = [Conv1d(input_channels, conv_channels[0], kernel_size=3, rng=rng), ReLU()]
    length = input_length
    if length >= 2:
        layers.append(MaxPool1d(2))
        length //= 2
    layers.extend([Conv1d(conv_channels[0], conv_channels[1], kernel_size=3, rng=rng), ReLU()])
    if length >= 2:
        layers.append(MaxPool1d(2))
        length //= 2
    layers.extend([
        Flatten(),
        Dense(length * conv_channels[1], fc_width, rng=rng),
        ReLU(),
        Dropout(dropout, rng=rng),
        Dense(fc_width, n_classes, rng=rng),
    ])
    return Sequential(layers)
