"""Optimizers (SGD with momentum, Adam) for the numpy NN library."""

from __future__ import annotations

import numpy as np


class Optimizer:
    """Base optimizer over (key, param, grad) triples."""

    def step(self, params: list[tuple[str, np.ndarray, np.ndarray]]) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with classical momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.9) -> None:
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: dict[str, np.ndarray] = {}

    def step(self, params: list[tuple[str, np.ndarray, np.ndarray]]) -> None:
        for key, value, grad in params:
            velocity = self._velocity.setdefault(key, np.zeros_like(value))
            velocity *= self.momentum
            velocity -= self.learning_rate * grad
            value += velocity


class Adam(Optimizer):
    """Adam with bias correction; the default trainer for CATI stages."""

    def __init__(self, learning_rate: float = 1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8) -> None:
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._t = 0

    def step(self, params: list[tuple[str, np.ndarray, np.ndarray]]) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for key, value, grad in params:
            m = self._m.setdefault(key, np.zeros_like(value))
            v = self._v.setdefault(key, np.zeros_like(value))
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            update = (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            value -= self.learning_rate * update
