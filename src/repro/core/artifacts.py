"""Versioned, integrity-checked model bundles — the on-disk format.

A *bundle* is a directory owned by :class:`ModelBundle`:

::

    <bundle>/
    ├── manifest.json        schema version, CatiConfig snapshot, vocab
    │                        size, per-file SHA-256 + tensor shapes,
    │                        train provenance
    ├── word2vec.npz         embedding state (Word2Vec.get_state)
    └── stages/
        ├── Stage1.npz       one Sequential.get_state per stage CNN
        ├── Stage2-1.npz
        └── ...

Design contract:

* **Atomic writes** — :meth:`ModelBundle.save` stages everything in a
  hidden temp directory next to the target and swaps it into place with
  ``os.rename``/``os.replace``; a crash mid-save leaves either the old
  bundle or nothing, never a half-written directory that
  :meth:`ModelBundle.open` accepts (the manifest is written last, so a
  torn temp dir is not even a bundle).
* **Checksum-verified loads** — every payload's SHA-256 is checked
  against the manifest before its arrays are deserialized; a flipped
  byte raises :class:`~repro.core.errors.BundleIntegrityError`.
* **The saved config wins** — ``manifest.json`` freezes the full
  :class:`~repro.core.config.CatiConfig` at save time and
  :meth:`resolve_config` restores it on load.  A caller-supplied config
  whose *structural* fields (the ones that determine tensor shapes:
  ``window``, ``token_dim``, ``conv_channels``, ``fc_width``) disagree
  raises :class:`~repro.core.errors.ConfigMismatchError` naming each
  mismatched field; non-structural knobs (runtime/training) stay the
  caller's.
* **Lazy payloads** — :meth:`open` reads only the manifest; arrays load
  on demand in :meth:`load_embedding` / :meth:`load_classifier_state`.
* **Legacy migration** — pre-bundle directories (bare ``word2vec.npz``
  + ``stages/``, no manifest) are recognized by :meth:`is_legacy` and
  upgraded by :meth:`migrate`, which infers the shape-determining
  config fields from the stored arrays.

The CLI front ends are ``python -m repro model inspect`` and
``model migrate``; see docs/OPERATIONS.md §6.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import shutil
import uuid
from datetime import datetime, timezone
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core import fsutil, observability
from repro.core.config import CatiConfig
from repro.core.errors import (
    ArtifactError,
    BundleIntegrityError,
    BundleSchemaError,
    ConfigMismatchError,
)

if TYPE_CHECKING:
    from repro.core.classifier import MultiStageClassifier
    from repro.embedding.word2vec import Word2Vec

#: Bumped on any manifest/layout change a reader cannot transparently handle.
SCHEMA_VERSION = 1

#: Manifest discriminator, so a random directory with a manifest.json is
#: not mistaken for a model bundle.
BUNDLE_FORMAT = "cati-model-bundle"

MANIFEST_NAME = "manifest.json"
EMBEDDING_FILE = "word2vec.npz"
STAGES_DIR = "stages"

#: Hidden cache of uncompressed ``.npy`` mirrors used by the mmap load
#: path (:meth:`ModelBundle.load_shared`); keyed by content key so a
#: re-saved bundle gets a fresh cache.  Dot-prefixed so bundle watchers
#: and integrity checks ignore it.
SHARED_DIR = ".shared"

#: CatiConfig fields that determine tensor shapes / inference semantics.
#: These must match the manifest on load; everything else is the
#: caller's business (timeouts, metrics, training knobs, ...).
STRUCTURAL_FIELDS = ("window", "token_dim", "conv_channels", "fc_width")


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _npz_shapes(arrays: dict[str, np.ndarray]) -> dict[str, list[int]]:
    return {key: list(np.asarray(value).shape) for key, value in arrays.items()}


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def _repro_version() -> str:
    import repro

    return repro.__version__


class ModelBundle:
    """One versioned model artifact directory (see module docstring)."""

    def __init__(self, directory: str | Path, manifest: dict) -> None:
        self.directory = Path(directory)
        self.manifest = manifest

    # -- probing -----------------------------------------------------------------

    @classmethod
    def is_bundle(cls, directory: str | Path) -> bool:
        """A manifest.json is present (validity is :meth:`open`'s job)."""
        return (Path(directory) / MANIFEST_NAME).is_file()

    @classmethod
    def is_legacy(cls, directory: str | Path) -> bool:
        """Pre-bundle layout: payload files present but no manifest."""
        directory = Path(directory)
        return (not cls.is_bundle(directory)
                and (directory / EMBEDDING_FILE).is_file()
                and (directory / STAGES_DIR).is_dir())

    # -- opening / verification ---------------------------------------------------

    @classmethod
    def open(cls, directory: str | Path) -> "ModelBundle":
        """Read and validate the manifest; payloads stay on disk (lazy).

        Raises :class:`BundleSchemaError` for a missing/unparseable
        manifest, a foreign format, or a schema version this code does
        not speak — the callers that treat a bundle as a cache
        (``experiments.common.get_context``) retrain on exactly these.
        """
        directory = Path(directory)
        path = directory / MANIFEST_NAME
        if not path.is_file():
            hint = ("; legacy model directory — migrate with "
                    "`python -m repro model migrate`"
                    if cls.is_legacy(directory) else "")
            raise BundleSchemaError(
                f"no {MANIFEST_NAME} in {directory}{hint}",
                path=str(directory), stage="artifacts")
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise BundleSchemaError(
                f"unreadable manifest: {error}",
                path=str(directory), stage="artifacts") from error
        if not isinstance(manifest, dict) or manifest.get("format") != BUNDLE_FORMAT:
            raise BundleSchemaError(
                f"manifest is not a {BUNDLE_FORMAT} manifest",
                path=str(directory), stage="artifacts")
        version = manifest.get("schema_version")
        if version != SCHEMA_VERSION:
            raise BundleSchemaError(
                f"bundle schema version {version!r} is not supported "
                f"(this code reads version {SCHEMA_VERSION})",
                path=str(directory), stage="artifacts")
        for key in ("config", "files", "vocab_size"):
            if key not in manifest:
                raise BundleSchemaError(
                    f"manifest lacks required field {key!r}",
                    path=str(directory), stage="artifacts")
        return cls(directory, manifest)

    def problems(self) -> list[str]:
        """Every integrity discrepancy, human-readable (empty = intact)."""
        out: list[str] = []
        with observability.span("bundle.verify"):
            for name, entry in sorted(self.manifest["files"].items()):
                path = self.directory / name
                if not path.is_file():
                    out.append(f"{name}: payload file is missing")
                    continue
                size = path.stat().st_size
                if size != entry["bytes"]:
                    out.append(f"{name}: {size} bytes on disk, "
                               f"manifest says {entry['bytes']}")
                digest = _sha256(path)
                if digest != entry["sha256"]:
                    out.append(f"{name}: SHA-256 {digest[:12]}... does not match "
                               f"manifest {entry['sha256'][:12]}...")
        return out

    def verify(self) -> None:
        """Raise :class:`BundleIntegrityError` unless every checksum holds."""
        problems = self.problems()
        if problems:
            raise BundleIntegrityError(
                "bundle failed verification: " + "; ".join(problems),
                path=str(self.directory), stage="artifacts")

    def content_key(self) -> str:
        """SHA-256 fingerprint of the bundle's payload contents.

        Derived from the manifest's per-file checksums (not mtimes or
        paths), so it is stable across re-opens and directory copies and
        changes exactly when the model's weights/vocab change.  This is
        what keys the durable window cache (:mod:`repro.batch.cache`)
        and the batch job's model-drift check: a retrained or
        hot-reloaded bundle gets a new key, invalidating stale cached
        rows and checkpoints cleanly.
        """
        digest = hashlib.sha256()
        for name, entry in sorted(self.manifest["files"].items()):
            digest.update(name.encode("utf-8"))
            digest.update(b"\0")
            digest.update(str(entry["sha256"]).encode("utf-8"))
            digest.update(b"\0")
        return digest.hexdigest()

    def _verified_payload(self, name: str) -> Path:
        entry = self.manifest["files"].get(name)
        if entry is None:
            raise BundleIntegrityError(
                f"manifest does not list payload {name!r}",
                path=str(self.directory), stage="artifacts")
        path = self.directory / name
        if not path.is_file():
            raise BundleIntegrityError(
                f"payload {name!r} is missing",
                path=str(self.directory), stage="artifacts")
        digest = _sha256(path)
        if digest != entry["sha256"]:
            raise BundleIntegrityError(
                f"payload {name!r} failed its checksum "
                f"({digest[:12]}... != {entry['sha256'][:12]}...); "
                "the file was modified after the bundle was written",
                path=str(self.directory), stage="artifacts")
        return path

    def _load_arrays(self, name: str) -> dict[str, np.ndarray]:
        path = self._verified_payload(name)
        try:
            with np.load(path, allow_pickle=True) as data:
                arrays = dict(data)
        except Exception as error:
            raise BundleIntegrityError(
                f"payload {name!r} is not a readable .npz: {error}",
                path=str(self.directory), stage="artifacts") from error
        expected = self.manifest["files"][name].get("tensors", {})
        for key, shape in expected.items():
            if key not in arrays:
                raise BundleIntegrityError(
                    f"payload {name!r} lacks tensor {key!r}",
                    path=str(self.directory), stage="artifacts")
            actual = list(np.asarray(arrays[key]).shape)
            if actual != list(shape):
                raise BundleIntegrityError(
                    f"payload {name!r} tensor {key!r} has shape {actual}, "
                    f"manifest says {list(shape)}",
                    path=str(self.directory), stage="artifacts")
        return arrays

    # -- shared (memory-mapped) payloads -----------------------------------------

    def shared_dir(self) -> Path:
        """Where this bundle's uncompressed ``.npy`` mirrors live.

        ``<bundle>/.shared/<content_key[:16]>/`` — the key in the path
        means a retrained bundle saved over the same directory gets a
        fresh cache and stale mirrors are never mmapped by mistake.
        """
        return self.directory / SHARED_DIR / self.content_key()[:16]

    def ensure_shared_arrays(self) -> Path:
        """Materialize every payload as uncompressed ``.npy`` files, once.

        ``np.load(..., mmap_mode="r")`` silently ignores ``mmap_mode``
        for compressed ``.npz`` members, so sharing weights across
        worker processes needs a flat ``.npy`` mirror the OS page cache
        can back.  The mirror is built from checksum-verified payloads
        (:meth:`_load_arrays`), staged in a temp directory and promoted
        with a single rename — concurrent materializers race benignly
        (first rename wins, losers discard their staging).  Idempotent:
        a completed mirror returns immediately.
        """
        target = self.shared_dir()
        marker = target / "complete.json"
        if marker.is_file():
            return target
        parent = target.parent
        parent.mkdir(parents=True, exist_ok=True)
        staging = parent / f".tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        with observability.span("bundle.materialize_shared"):
            try:
                for name in sorted(self.manifest["files"]):
                    arrays = self._load_arrays(name)
                    subdir = staging / name
                    subdir.mkdir(parents=True)
                    for key, value in arrays.items():
                        np.save(subdir / f"{key}.npy", np.asarray(value))
                (staging / "complete.json").write_text(
                    json.dumps({"content_key": self.content_key(),
                                "created_at": _utc_now()}) + "\n",
                    encoding="utf-8")
                try:
                    os.rename(staging, target)
                except OSError:
                    if not marker.is_file():  # not a lost race: real failure
                        raise
            except ArtifactError:
                shutil.rmtree(staging, ignore_errors=True)
                raise
            except Exception as error:
                shutil.rmtree(staging, ignore_errors=True)
                raise ArtifactError(
                    f"shared-array materialization failed: {error}",
                    path=str(self.directory), stage="artifacts") from error
            finally:
                shutil.rmtree(staging, ignore_errors=True)
        observability.inc("bundle.shared_materializations")
        return target

    def load_shared(self, name: str) -> dict[str, np.ndarray]:
        """Load payload ``name`` with numeric arrays memory-mapped.

        The returned dict mirrors :meth:`_load_arrays` but numeric
        tensors are read-only ``np.memmap`` views over the shared
        ``.npy`` mirror — N processes loading the same bundle share one
        set of physical pages.  Object-dtype arrays (the vocab token
        list) cannot be memory-mapped and fall back to a regular load.
        Shapes are still validated against the manifest.
        """
        if name not in self.manifest["files"]:
            raise BundleIntegrityError(
                f"manifest does not list payload {name!r}",
                path=str(self.directory), stage="artifacts")
        root = self.ensure_shared_arrays() / name
        expected = self.manifest["files"][name].get("tensors", {})
        arrays: dict[str, np.ndarray] = {}
        for key, shape in expected.items():
            path = root / f"{key}.npy"
            try:
                try:
                    arrays[key] = np.load(path, mmap_mode="r")
                except ValueError:  # object dtype: not mappable
                    arrays[key] = np.load(path, allow_pickle=True)
            except Exception as error:
                raise BundleIntegrityError(
                    f"shared payload {name}/{key} is unreadable: {error}; "
                    f"delete {self.directory / SHARED_DIR} to rebuild",
                    path=str(self.directory), stage="artifacts") from error
            actual = list(arrays[key].shape)
            if actual != list(shape):
                raise BundleIntegrityError(
                    f"shared payload {name}/{key} has shape {actual}, "
                    f"manifest says {list(shape)}; "
                    f"delete {self.directory / SHARED_DIR} to rebuild",
                    path=str(self.directory), stage="artifacts")
        return arrays

    # -- config ------------------------------------------------------------------

    def saved_config(self) -> CatiConfig:
        """The full CatiConfig frozen into the manifest at save time."""
        try:
            return CatiConfig.from_dict(self.manifest["config"])
        except (TypeError, ValueError) as error:
            raise BundleSchemaError(
                f"manifest config does not deserialize: {error}",
                path=str(self.directory), stage="artifacts") from error

    def resolve_config(self, config: CatiConfig | None) -> CatiConfig:
        """The config a load must run with.

        ``None`` restores the saved config verbatim.  An explicit config
        is checked field-by-field over :data:`STRUCTURAL_FIELDS`; any
        disagreement raises :class:`ConfigMismatchError` naming the
        fields, because loading saved weights into differently-shaped
        models produces garbage, not an error, downstream.
        """
        saved = self.saved_config()
        if config is None:
            return saved
        mismatches = {}
        for name in STRUCTURAL_FIELDS:
            ours, theirs = getattr(saved, name), getattr(config, name)
            if tuple(np.atleast_1d(ours)) != tuple(np.atleast_1d(theirs)):
                mismatches[name] = (ours, theirs)
        if mismatches:
            detail = ", ".join(f"{name} (saved {saved_value!r}, given {given!r})"
                               for name, (saved_value, given) in mismatches.items())
            raise ConfigMismatchError(
                f"config conflicts with the saved bundle: {detail}",
                mismatches=mismatches, path=str(self.directory),
                stage="artifacts")
        return config

    # -- payload loading -----------------------------------------------------------

    def load_embedding(self, *, mmap: bool = False) -> "Word2Vec":
        """Checksum-verify and deserialize the Word2Vec state.

        ``mmap=True`` loads the numeric tables through
        :meth:`load_shared` so the embedding matrix — the bulk of a
        bundle's bytes — stays memory-mapped and shared across worker
        processes instead of copied into each heap.
        """
        from repro.embedding.word2vec import Word2Vec

        with observability.span("bundle.load"):
            state = (self.load_shared(EMBEDDING_FILE) if mmap
                     else self._load_arrays(EMBEDDING_FILE))
            try:
                embedding = Word2Vec.from_state(state)
            except ValueError as error:
                raise BundleIntegrityError(
                    f"embedding state rejected: {error}",
                    path=str(self.directory), stage="artifacts") from error
        if len(embedding.vocab) != self.manifest["vocab_size"]:
            raise BundleIntegrityError(
                f"embedding has {len(embedding.vocab)} tokens, "
                f"manifest says {self.manifest['vocab_size']}",
                path=str(self.directory), stage="artifacts")
        return embedding

    def load_classifier_state(self, *, mmap: bool = False) -> dict[str, dict[str, np.ndarray]]:
        """Checksum-verify and deserialize every stage's weight dict.

        ``mmap=True`` reads stage tensors from the shared mirror; the
        NN layers copy weights into their own arrays on ``load_state``,
        so for stages mmap mostly avoids decompression work — the
        durable sharing win is the embedding table.
        """
        from repro.core.types import STAGE_SPECS

        loader = self.load_shared if mmap else self._load_arrays
        with observability.span("bundle.load"):
            return {stage.value: loader(f"{STAGES_DIR}/{stage.value}.npz")
                    for stage in STAGE_SPECS}

    # -- saving ------------------------------------------------------------------

    @classmethod
    def save(cls, directory: str | Path, *, config: CatiConfig,
             embedding: "Word2Vec", classifier: "MultiStageClassifier",
             provenance: dict | None = None) -> "ModelBundle":
        """Write a complete bundle atomically (temp dir + rename swap).

        Overwrites an existing bundle (or legacy directory) at
        ``directory`` only once the replacement is fully on disk.
        """
        directory = Path(directory)
        parent = directory.resolve().parent
        parent.mkdir(parents=True, exist_ok=True)
        staging = parent / f".{directory.name}.tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        with observability.span("bundle.save"):
            try:
                (staging / STAGES_DIR).mkdir(parents=True)
                payloads: dict[str, dict[str, np.ndarray]] = {
                    EMBEDDING_FILE: embedding.get_state(),
                }
                for stage_name, state in classifier.get_state().items():
                    payloads[f"{STAGES_DIR}/{stage_name}.npz"] = state
                files: dict[str, dict] = {}
                for name, arrays in payloads.items():
                    path = staging / name
                    np.savez_compressed(path, **arrays)
                    files[name] = {
                        "sha256": _sha256(path),
                        "bytes": path.stat().st_size,
                        "tensors": _npz_shapes(arrays),
                    }
                stamped = dict(provenance or {})
                # Which code version wrote the bundle; surfaced by
                # `model inspect` and the serving daemon's /healthz.
                stamped.setdefault("repro_version", _repro_version())
                manifest = {
                    "format": BUNDLE_FORMAT,
                    "schema_version": SCHEMA_VERSION,
                    "created_at": _utc_now(),
                    "config": config.to_dict(),
                    "vocab_size": len(embedding.vocab),
                    "files": files,
                    "provenance": stamped,
                }
                # The manifest lands last: an interrupted save leaves a
                # temp dir that is not even recognizable as a bundle.
                (staging / MANIFEST_NAME).write_text(
                    json.dumps(manifest, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
                cls._swap_into_place(staging, directory)
            except ArtifactError:
                shutil.rmtree(staging, ignore_errors=True)
                raise
            except Exception as error:
                shutil.rmtree(staging, ignore_errors=True)
                raise ArtifactError(
                    f"bundle save failed: {error}",
                    path=str(directory), stage="artifacts") from error
        observability.inc("bundle.saves")
        return cls(directory, manifest)

    @staticmethod
    def _swap_into_place(staging: Path, directory: Path) -> None:
        """Atomically promote ``staging`` to ``directory``.

        Delegates to :func:`repro.core.fsutil.atomic_replace_dir`, the
        shared rename-aside swap (with directory-entry fsync) every
        persistence path uses.
        """
        fsutil.atomic_replace_dir(staging, directory)

    # -- migration -----------------------------------------------------------------

    @classmethod
    def migrate(cls, source: str | Path, dest: str | Path | None = None,
                config: CatiConfig | None = None) -> "ModelBundle":
        """Upgrade a legacy ``word2vec.npz`` + ``stages/`` directory.

        The shape-determining config fields are recovered from the
        stored arrays themselves (``token_dim`` from the embedding,
        ``conv_channels``/``fc_width`` from the Stage1 weights); the
        window — which the arrays cannot disambiguate — comes from
        ``config`` (default 10, the paper's value).  Loading the legacy
        weights into the rebuilt architecture cross-validates every
        shape before anything is written.  ``dest=None`` upgrades in
        place.
        """
        from repro.core.classifier import MultiStageClassifier
        from repro.embedding.word2vec import Word2Vec

        source = Path(source)
        if cls.is_bundle(source):
            raise ArtifactError(
                f"{source} is already a model bundle",
                path=str(source), stage="artifacts")
        if not cls.is_legacy(source):
            raise ArtifactError(
                f"{source} is not a legacy model directory "
                f"(expected {EMBEDDING_FILE} and {STAGES_DIR}/)",
                path=str(source), stage="artifacts")
        try:
            embedding = Word2Vec.load(str(source / EMBEDDING_FILE))
        except Exception as error:
            raise ArtifactError(
                f"legacy embedding unreadable: {error}",
                path=str(source), stage="artifacts") from error
        inferred = cls._infer_legacy_config(source, embedding, config)
        classifier = MultiStageClassifier(inferred)
        try:
            classifier.load(str(source / STAGES_DIR),
                            input_length=inferred.vuc_length,
                            input_channels=inferred.instruction_dim)
        except Exception as error:
            raise ArtifactError(
                f"legacy stage models unreadable: {error}",
                path=str(source), stage="artifacts") from error
        provenance = {
            "migrated_from": str(source),
            "migrated_at": _utc_now(),
            "note": "config partially inferred from legacy arrays",
        }
        return cls.save(dest if dest is not None else source,
                        config=inferred, embedding=embedding,
                        classifier=classifier, provenance=provenance)

    @staticmethod
    def _infer_legacy_config(source: Path, embedding: "Word2Vec",
                             config: CatiConfig | None) -> CatiConfig:
        """Best-effort config for a manifest-less directory.

        Starts from ``config`` (or defaults) and overrides every field
        the arrays pin down.  Legacy stage files store the flat
        ``"<layer>.<param>"`` dicts of ``build_cati_cnn``: conv weights
        are ``[3*C_in, C_out]`` and the first dense is
        ``[pooled*conv2, fc_width]``.
        """
        base = (config.to_dict() if config is not None
                else CatiConfig().to_dict())
        base["token_dim"] = int(embedding.config.dim)
        stage1 = source / STAGES_DIR / "Stage1.npz"
        try:
            with np.load(stage1) as data:
                conv1_out = int(data["0.weight"].shape[1])
                conv2_out = int(data["3.weight"].shape[1])
                fc_width = int(data["7.weight"].shape[1])
        except Exception as error:
            raise ArtifactError(
                f"cannot infer architecture from {stage1}: {error}",
                path=str(source), stage="artifacts") from error
        base["conv_channels"] = [conv1_out, conv2_out]
        base["fc_width"] = fc_width
        return CatiConfig.from_dict(base)

    # -- reporting -----------------------------------------------------------------

    def describe(self) -> str:
        """Human-readable manifest summary for ``model inspect``."""
        manifest = self.manifest
        provenance = manifest.get("provenance") or {}
        lines = [
            f"bundle:         {self.directory}",
            f"format:         {manifest['format']} "
            f"(schema v{manifest['schema_version']})",
            f"created:        {manifest.get('created_at', '?')} "
            f"by repro {provenance.get('repro_version', '?')}",
            f"vocab size:     {manifest['vocab_size']}",
        ]
        config = manifest["config"]
        structural = ", ".join(f"{name}={config.get(name)!r}"
                               for name in STRUCTURAL_FIELDS)
        lines.append(f"config:         {structural}")
        if provenance:
            detail = ", ".join(f"{key}={value}"
                               for key, value in sorted(provenance.items()))
            lines.append(f"provenance:     {detail}")
        lines.append("files:")
        for name, entry in sorted(manifest["files"].items()):
            shapes = ", ".join(
                f"{key}{tuple(shape)}"
                for key, shape in sorted(entry.get("tensors", {}).items()))
            lines.append(f"  {name:24s} {entry['bytes']:>9d} B  "
                         f"sha256 {entry['sha256'][:12]}...  [{shapes}]")
        return "\n".join(lines)


def provenance_from_training(n_vucs: int, vocab_size: int) -> dict:
    """The standard provenance dict ``Cati.train`` stamps onto bundles."""
    return {
        "trained_at": _utc_now(),
        "n_train_vucs": int(n_vucs),
        "vocab_size": int(vocab_size),
        "repro_version": _repro_version(),
    }


__all__ = [
    "BUNDLE_FORMAT",
    "EMBEDDING_FILE",
    "MANIFEST_NAME",
    "SCHEMA_VERSION",
    "SHARED_DIR",
    "STAGES_DIR",
    "STRUCTURAL_FIELDS",
    "ModelBundle",
    "provenance_from_training",
]
