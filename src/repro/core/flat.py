"""Flat 19-way classifier — the ablation counterpart of the stage tree.

§V-A argues the multi-stage tree is chosen for interpretability and
training speed, noting a single deep model could also "distinguish 19
classes within one model".  This module provides that single model so
the design choice can be measured (see ``benchmarks/bench_ablation_flat.py``).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import CatiConfig
from repro.core.types import ALL_TYPES, TypeName
from repro.nn.model import Sequential, build_cati_cnn
from repro.nn.optimizers import Adam


class FlatClassifier:
    """One CNN over all 19 leaf types (no stage routing)."""

    def __init__(self, config: CatiConfig) -> None:
        self.config = config
        self.model: Sequential | None = None

    def train(self, x: np.ndarray, labels: list[TypeName], verbose: bool = False) -> "FlatClassifier":
        index = {t: i for i, t in enumerate(ALL_TYPES)}
        y = np.asarray([index[label] for label in labels], dtype=np.int64)
        self.model = build_cati_cnn(
            input_length=x.shape[1],
            input_channels=x.shape[2],
            n_classes=len(ALL_TYPES),
            conv_channels=self.config.conv_channels,
            fc_width=self.config.fc_width,
            dropout=self.config.dropout,
            seed=self.config.seed,
        )
        class_weights = None
        if self.config.class_weighting:
            counts = np.bincount(y, minlength=len(ALL_TYPES)).astype(np.float64)
            weights = 1.0 / np.sqrt(np.maximum(counts, 1.0))
            class_weights = weights / weights.mean()
        self.model.fit(
            x, y,
            epochs=self.config.epochs,
            batch_size=self.config.batch_size,
            optimizer=Adam(self.config.learning_rate),
            class_weights=class_weights,
            seed=self.config.seed,
            verbose=verbose,
        )
        return self

    def leaf_proba(self, x: np.ndarray) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("train() first")
        return self.model.predict_proba(x)

    def predict_leaf(self, x: np.ndarray) -> list[TypeName]:
        probs = self.leaf_proba(x)
        return [ALL_TYPES[i] for i in probs.argmax(axis=1)]
