"""Structured error taxonomy + machine-readable failure reporting.

Everything the pipeline can throw at a caller derives from
:class:`CatiError`, which carries *where* the failure happened
(binary / function / stage) alongside the message:

::

    CatiError
    ├── ToolchainError   external tool missing, crashed, or timed out
    ├── DecodeError      malformed ELF bytes / undecodable instructions
    │   └── repro.elf.parser.ElfParseError
    │   └── repro.disasm.decoder.DecodeError
    ├── DwarfError       malformed or truncated debug information
    │   └── repro.dwarf.native.NativeDwarfError
    │   └── repro.dwarf.decode.DwarfDecodeError
    ├── InferenceError   extraction / voting / worker-pool failures
    ├── ArtifactError    model-bundle persistence failures
    │   ├── BundleSchemaError     missing/malformed manifest, unknown schema
    │   ├── BundleIntegrityError  checksum/shape mismatch, missing payload
    │   └── ConfigMismatchError   caller config conflicts with the saved one
    ├── BatchError       batch-job failures (repro.batch): bad spec or
    │                    manifest, unresumable job dir, exhausted shard
    └── ServeError       inference-service failures (repro.serve)
        ├── RequestError          malformed/undecodable request payload
        ├── QueueFullError        admission control rejected the request
        ├── DeadlineExceededError request deadline elapsed before completion
        ├── ServerClosedError     the daemon is draining or stopped
        └── SessionGoneError      unknown/expired/evicted analysis session

The concrete subclasses double-inherit ``ValueError`` so existing
``except ValueError`` call sites (and tests) keep working.

The skip-and-record side of the house lives here too:
:func:`check_on_error` validates the ``on_error="raise"|"skip"`` policy
knob, :class:`FailureReport` accumulates :class:`FailureRecord` entries
(counts + exemplar tracebacks, serializable via ``to_dict``), and
:func:`handle_failure` implements the policy at every degradation point.

Contract: every degradation point in the pipeline funnels through
:func:`handle_failure` with an explicit ``stage`` name; with
``on_error="raise"`` the exception always leaves as a :class:`CatiError`
subclass with its failure site attached, and with ``"skip"`` a
:class:`FailureRecord` is always produced (and counted into the global
metrics registry as ``failures.total`` / ``failures.stage.<stage>`` /
``failures.kind.<kind>``) so no skip is ever silent.  See
``docs/OPERATIONS.md`` for how to read a report.
"""

from __future__ import annotations

import traceback as _traceback
from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.core import observability

ON_ERROR_VALUES = ("raise", "skip")


def check_on_error(on_error: str) -> str:
    """Validate the skip-policy knob; returns it for chaining."""
    if on_error not in ON_ERROR_VALUES:
        raise ValueError(
            f"on_error must be one of {ON_ERROR_VALUES}, got {on_error!r}")
    return on_error


class CatiError(Exception):
    """Root of the pipeline error taxonomy.

    Carries the failure site: which binary, which function, and which
    pipeline stage (``"toolchain"``, ``"elf"``, ``"decode"``,
    ``"dwarf"``, ``"extract"``, ``"classify"``, ``"pool"``, ...).
    """

    def __init__(self, message: str, *, binary: str | None = None,
                 function: str | None = None, stage: str | None = None) -> None:
        super().__init__(message)
        self.message = message
        self.binary = binary
        self.function = function
        self.stage = stage

    def context(self) -> dict[str, str]:
        """The non-empty failure-site fields as a dict."""
        pairs = (("binary", self.binary), ("function", self.function),
                 ("stage", self.stage))
        return {key: value for key, value in pairs if value is not None}

    def with_context(self, *, binary: str | None = None,
                     function: str | None = None,
                     stage: str | None = None) -> "CatiError":
        """Fill in missing failure-site fields (never overwrites)."""
        self.binary = self.binary if self.binary is not None else binary
        self.function = self.function if self.function is not None else function
        self.stage = self.stage if self.stage is not None else stage
        return self

    def __str__(self) -> str:
        context = self.context()
        if not context:
            return self.message
        where = ", ".join(f"{key}={value}" for key, value in context.items())
        return f"{self.message} [{where}]"


class ToolchainError(CatiError):
    """An external tool is missing, crashed, or timed out.

    ``missing`` is the skip-friendly flag: tests can catch a
    ToolchainError and ``pytest.skip`` when the tool simply is not
    installed, while treating crashes/timeouts as real failures.
    """

    def __init__(self, message: str, *, tool: str | None = None,
                 returncode: int | None = None, stderr: str = "",
                 missing: bool = False, missing_tools: tuple[str, ...] = (),
                 **kwargs) -> None:
        super().__init__(message, **kwargs)
        self.tool = tool
        self.returncode = returncode
        self.stderr = stderr
        self.missing = missing
        self.missing_tools = tuple(missing_tools)


class DecodeError(CatiError, ValueError):
    """Malformed ELF bytes or undecodable machine code."""


class DwarfError(CatiError, ValueError):
    """Malformed, truncated, or unsupported debug information."""


class InferenceError(CatiError, ValueError):
    """Extraction, voting, or worker-pool failure during inference."""


class ArtifactError(CatiError):
    """A model bundle is missing, malformed, or failed verification.

    ``path`` is the bundle directory (or file) the failure is about;
    it also rides along in :meth:`CatiError.context` output.
    """

    def __init__(self, message: str, *, path: str | None = None, **kwargs) -> None:
        super().__init__(message, **kwargs)
        self.path = path

    def context(self) -> dict[str, str]:
        out = super().context()
        if self.path is not None:
            out["path"] = self.path
        return out


class BundleSchemaError(ArtifactError):
    """The manifest is missing, unparseable, or a foreign/stale schema."""


class BundleIntegrityError(ArtifactError):
    """A payload file is missing, tampered with, or mis-shaped."""


class ConfigMismatchError(ArtifactError):
    """The caller's config conflicts with the bundle's saved config.

    ``mismatches`` maps each conflicting field name to its
    ``(saved, given)`` value pair.
    """

    def __init__(self, message: str, *, mismatches: dict[str, tuple] | None = None,
                 **kwargs) -> None:
        super().__init__(message, **kwargs)
        self.mismatches = dict(mismatches or {})


class BatchError(CatiError, ValueError):
    """A batch job is malformed, unresumable, or exhausted its retries.

    ``job_dir`` is the job directory the failure is about and ``shard``
    the shard index (when shard-scoped); both ride along in
    :meth:`CatiError.context` output.
    """

    def __init__(self, message: str, *, job_dir: str | None = None,
                 shard: int | None = None, **kwargs) -> None:
        super().__init__(message, **kwargs)
        self.job_dir = job_dir
        self.shard = shard

    def context(self) -> dict[str, str]:
        out = super().context()
        if self.job_dir is not None:
            out["job_dir"] = self.job_dir
        if self.shard is not None:
            out["shard"] = str(self.shard)
        return out


class ServeError(CatiError):
    """The inference service could not complete a request.

    ``status`` is the HTTP status code the daemon maps the failure to,
    so the error → response translation lives with the taxonomy instead
    of being scattered over handler code.
    """

    status: int = 500

    def __init__(self, message: str, *, status: int | None = None, **kwargs) -> None:
        super().__init__(message, **kwargs)
        if status is not None:
            self.status = status


class RequestError(ServeError, ValueError):
    """The request payload is malformed or names an unknown job kind."""

    status = 400


class QueueFullError(ServeError):
    """Admission control rejected the request (queue at capacity).

    ``retry_after_s`` is the server's backoff hint, surfaced to clients
    as the ``Retry-After`` response header.
    """

    status = 503

    def __init__(self, message: str, *, retry_after_s: float = 1.0, **kwargs) -> None:
        super().__init__(message, **kwargs)
        self.retry_after_s = max(float(retry_after_s), 0.0)


class DeadlineExceededError(ServeError):
    """The per-request deadline elapsed before the work completed."""

    status = 504


class ServerClosedError(ServeError):
    """The daemon is draining (SIGTERM) or already stopped."""

    status = 503


class SessionGoneError(ServeError):
    """The referenced analysis session does not exist on this server.

    Covers every way a session id can stop resolving — TTL expiry, LRU
    eviction, an explicit close, a worker crash/respawn that emptied the
    store, or an id that never existed.  410 (Gone) by design: the
    condition is *retriable by re-opening*, and clients
    (:class:`repro.serve.client.SessionHandle`, ``repro repl``) treat it
    exactly that way.
    """

    status = 410


#: Which taxonomy class wraps a foreign exception raised at each stage.
_STAGE_WRAPPERS: dict[str, type[CatiError]] = {
    "toolchain": ToolchainError,
    "lower": ToolchainError,
    "elf": DecodeError,
    "decode": DecodeError,
    "dwarf": DwarfError,
    "artifacts": ArtifactError,
    "serve": ServeError,
    "batch": BatchError,
}


def as_cati_error(exc: BaseException, *, stage: str,
                  binary: str | None = None,
                  function: str | None = None) -> CatiError:
    """Coerce any exception into the taxonomy with failure-site context.

    A CatiError passes through (missing context filled in); anything
    else is wrapped by the stage's taxonomy class with ``__cause__``
    preserved.
    """
    if isinstance(exc, CatiError):
        return exc.with_context(binary=binary, function=function, stage=stage)
    wrapper = _STAGE_WRAPPERS.get(stage, InferenceError)
    wrapped = wrapper(f"{type(exc).__name__}: {exc}", binary=binary,
                      function=function, stage=stage)
    wrapped.__cause__ = exc
    return wrapped


# -- failure reporting --------------------------------------------------------


@dataclass(frozen=True)
class FailureRecord:
    """One recorded (skipped) failure."""

    stage: str
    kind: str            # exception class name
    message: str
    binary: str | None = None
    function: str | None = None
    traceback: str = ""

    def to_dict(self) -> dict:
        """Full JSON-ready form (traceback included) — the checkpoint
        serialization; :meth:`from_dict` is the exact inverse."""
        return {
            "stage": self.stage,
            "kind": self.kind,
            "message": self.message,
            "binary": self.binary,
            "function": self.function,
            "traceback": self.traceback,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FailureRecord":
        """Rebuild a record from :meth:`to_dict` output.

        Does *not* re-count the failure into the metrics registry — the
        record was counted when it was first created; deserializing a
        checkpoint must not inflate failure totals.
        """
        return cls(
            stage=str(data.get("stage", "?")),
            kind=str(data.get("kind", "?")),
            message=str(data.get("message", "")),
            binary=data.get("binary"),
            function=data.get("function"),
            traceback=str(data.get("traceback", "")),
        )

    @classmethod
    def from_exception(cls, exc: BaseException, *, stage: str,
                       binary: str | None = None,
                       function: str | None = None) -> "FailureRecord":
        if isinstance(exc, CatiError):
            binary = binary if binary is not None else exc.binary
            function = function if function is not None else exc.function
        registry = observability.get_registry()
        if registry.enabled:
            registry.inc("failures.total")
            registry.inc(f"failures.stage.{stage}")
            registry.inc(f"failures.kind.{type(exc).__name__}")
        return cls(
            stage=stage,
            kind=type(exc).__name__,
            message=str(exc),
            binary=binary,
            function=function,
            traceback="".join(_traceback.format_exception(exc)),
        )


@dataclass
class FailureReport:
    """Machine-readable account of everything a run skipped.

    Accumulates :class:`FailureRecord` entries and summarizes them as
    per-stage / per-kind counts plus one exemplar traceback per kind.
    """

    records: list[FailureRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __bool__(self) -> bool:
        return bool(self.records)

    def __iter__(self):
        return iter(self.records)

    def record(self, exc: BaseException, *, stage: str,
               binary: str | None = None,
               function: str | None = None) -> FailureRecord:
        entry = FailureRecord.from_exception(
            exc, stage=stage, binary=binary, function=function)
        self.records.append(entry)
        return entry

    def extend(self, other: "FailureReport") -> None:
        self.records.extend(other.records)

    @classmethod
    def merge(cls, reports: "Iterable[FailureReport]") -> "FailureReport":
        """One report aggregating many (multi-shard / multi-binary runs).

        Record order follows the input order, so a merged report's
        per-stage/per-kind counts and exemplars read exactly as if one
        report had accumulated everything; ``None`` entries are ignored
        for convenience at call sites that may hold absent reports.
        """
        merged = cls()
        for report in reports:
            if report is not None:
                merged.records.extend(report.records)
        return merged

    @classmethod
    def from_records(cls, records: "Iterable[dict]") -> "FailureReport":
        """Rebuild a report from a list of :meth:`FailureRecord.to_dict`
        dicts (the checkpoint serialization)."""
        return cls(records=[FailureRecord.from_dict(r) for r in records])

    def records_to_dicts(self) -> list[dict]:
        """Every record in full (:meth:`FailureRecord.to_dict`) form."""
        return [record.to_dict() for record in self.records]

    def by_stage(self) -> dict[str, int]:
        return dict(Counter(r.stage for r in self.records))

    def by_kind(self) -> dict[str, int]:
        return dict(Counter(r.kind for r in self.records))

    def exemplars(self) -> dict[str, str]:
        """One exemplar traceback per failure kind (first occurrence)."""
        out: dict[str, str] = {}
        for record in self.records:
            out.setdefault(record.kind, record.traceback)
        return out

    def to_dict(self) -> dict:
        """JSON-ready summary: totals, per-stage/kind counts, records."""
        return {
            "total": len(self.records),
            "by_stage": self.by_stage(),
            "by_kind": self.by_kind(),
            "records": [
                {"stage": r.stage, "kind": r.kind, "message": r.message,
                 "binary": r.binary, "function": r.function}
                for r in self.records
            ],
            "exemplars": self.exemplars(),
        }

    def summary(self) -> str:
        if not self.records:
            return "no failures"
        stages = ", ".join(f"{stage}:{count}"
                           for stage, count in sorted(self.by_stage().items()))
        return f"{len(self.records)} failure(s) ({stages})"


def handle_failure(exc: BaseException, *, on_error: str,
                   failures: FailureReport | None, stage: str,
                   binary: str | None = None,
                   function: str | None = None) -> FailureRecord | None:
    """Apply the skip policy at one degradation point.

    ``on_error="raise"`` re-raises the exception coerced into the
    taxonomy (with failure-site context attached); ``"skip"`` records it
    into ``failures`` (when given) and returns the record so the caller
    can continue with partial results.
    """
    check_on_error(on_error)
    if on_error == "raise":
        observability.inc("failures.raised")
        error = as_cati_error(exc, stage=stage, binary=binary, function=function)
        if error is exc:
            raise error
        raise error from exc
    if failures is not None:
        return failures.record(exc, stage=stage, binary=binary, function=function)
    return FailureRecord.from_exception(
        exc, stage=stage, binary=binary, function=function)
