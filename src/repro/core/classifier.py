"""The multi-stage classifier (Fig. 5): six CNNs arranged in a tree.

Each stage is an independently trained CNN over the encoded VUC matrix.
A VUC's *leaf distribution* over the 19 types is the product of stage
confidences along each root-to-leaf path — the tree factorization of the
joint classifier.  Per-stage evaluation (Tables III/IV) routes samples by
their *ground-truth* parent decisions, exactly as the paper scores each
stage on the samples that truly belong to it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.core.config import CatiConfig
from repro.core.types import ALL_TYPES, STAGE_SPECS, Stage, StageSpec, TypeName, stage_label, stage_path
from repro.core.voting import clip_confidences
from repro.nn.model import Sequential, build_cati_cnn
from repro.nn.optimizers import Adam


def compose_leaves(stage_probs: dict[Stage, np.ndarray]) -> np.ndarray:
    """[N, 19] leaf distribution from per-stage confidence matrices.

    Column order follows :data:`repro.core.types.ALL_TYPES`; raw path
    products are renormalized (paths have different lengths, so they are
    sub-stochastic) to keep eq. (3)'s threshold semantics meaningful at
    the leaf level.
    """
    n = len(next(iter(stage_probs.values())))
    out = np.zeros((n, len(ALL_TYPES)))
    for column, leaf in enumerate(ALL_TYPES):
        path = stage_path(leaf)
        factor = np.ones(n)
        for stage, label in path:
            spec = STAGE_SPECS[stage]
            factor = factor * stage_probs[stage][:, spec.label_index(label)]
        out[:, column] = factor
    totals = out.sum(axis=1, keepdims=True)
    return out / np.maximum(totals, 1e-12)


@dataclass
class StageModel:
    """One trained stage: its spec and CNN."""

    spec: StageSpec
    model: Sequential

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return self.model.predict_proba(x)


class MultiStageClassifier:
    """Six stage CNNs + tree composition over the 19 leaf types."""

    def __init__(self, config: CatiConfig) -> None:
        self.config = config
        self.stages: dict[Stage, StageModel] = {}

    # -- training -------------------------------------------------------------

    def train(self, x: np.ndarray, labels: list[TypeName], verbose: bool = False) -> None:
        """Train every stage on the samples routed to it by ground truth.

        ``x`` is the encoded [N, L, C] VUC tensor; ``labels`` the leaf
        types.  A stage with fewer than 2 distinct labels present falls
        back to a trivial constant model (can happen on tiny corpora).
        """
        for stage, spec in STAGE_SPECS.items():
            stage_y: list[int] = []
            stage_idx: list[int] = []
            for index, leaf in enumerate(labels):
                label = stage_label(leaf, stage)
                if label is not None:
                    stage_idx.append(index)
                    stage_y.append(spec.label_index(label))
            model = build_cati_cnn(
                input_length=x.shape[1],
                input_channels=x.shape[2],
                n_classes=len(spec.labels),
                conv_channels=self.config.conv_channels,
                fc_width=self.config.fc_width,
                dropout=self.config.dropout,
                seed=self.config.seed + sum(ord(c) for c in stage.value),
            )
            if stage_idx:
                sx = x[np.asarray(stage_idx)]
                sy = np.asarray(stage_y, dtype=np.int64)
                class_weights = None
                if self.config.class_weighting:
                    counts = np.bincount(sy, minlength=len(spec.labels)).astype(np.float64)
                    weights = 1.0 / np.sqrt(np.maximum(counts, 1.0))
                    class_weights = weights / weights.mean()
                if verbose:
                    print(f"[train] {stage.value}: {len(sy)} VUCs, {len(spec.labels)} classes")
                model.fit(
                    sx, sy,
                    epochs=self.config.epochs,
                    batch_size=self.config.batch_size,
                    optimizer=Adam(self.config.learning_rate),
                    class_weights=class_weights,
                    seed=self.config.seed,
                    verbose=verbose,
                )
            self.stages[stage] = StageModel(spec=spec, model=model)

    # -- prediction --------------------------------------------------------------

    def stage_proba(self, stage: Stage, x: np.ndarray) -> np.ndarray:
        """Stage-local confidence matrix [N, C_stage]."""
        return self.stages[stage].predict_proba(x)

    def leaf_proba(self, x: np.ndarray) -> np.ndarray:
        """[N, 19] leaf distribution: product of stage confidences."""
        return compose_leaves({stage: self.stage_proba(stage, x) for stage in self.stages})

    def predict_leaf(self, x: np.ndarray) -> list[TypeName]:
        """Hard 19-type prediction per VUC."""
        probs = self.leaf_proba(x)
        return [ALL_TYPES[i] for i in probs.argmax(axis=1)]

    def padded_output_heads(self) -> tuple[np.ndarray, np.ndarray, tuple[int, ...]]:
        """Final-layer weights stacked across stages, zero-padded on classes.

        The stage heads share their input width (``fc_width``) but output
        different class counts, so stacking them into one ``[S, F,
        C_max]`` batched-GEMM operand zero-pads the missing columns; a
        padded column contributes a constant 0 logit that callers slice
        off (``counts[s]``) before softmax.  Stage order matches
        iteration over ``self.stages`` — the same order the inference
        engine compiles its kernels in.
        """
        heads = [stage_model.model.layers[-1] for stage_model in self.stages.values()]
        widths = {head.weight.shape[0] for head in heads}
        if len(widths) != 1:
            raise ValueError(f"stage heads disagree on input width: {sorted(widths)}")
        counts = tuple(head.weight.shape[1] for head in heads)
        weight = np.zeros((len(heads), widths.pop(), max(counts)))
        bias = np.zeros((len(heads), 1, max(counts)))
        for index, head in enumerate(heads):
            weight[index, :, :counts[index]] = head.weight
            bias[index, 0, :counts[index]] = head.bias
        return weight, bias, counts

    def vote_variable(self, stage_probs: dict[Stage, np.ndarray],
                      indices: list[int], threshold: float = 0.9) -> TypeName:
        """Hierarchical per-variable decision (the paper's §V-B flow).

        At each stage, the variable's VUC confidences are clipped
        (eq. 3) and summed (eq. 4); the winning label routes to the next
        stage until a leaf is reached.  ``stage_probs`` maps each stage
        to its full [N, C] confidence matrix; ``indices`` selects the
        variable's VUC rows.

        Degenerate input is defined, never an IndexError: a variable
        with zero VUCs (``indices == []``) sums an empty matrix to the
        zero vector at every stage and deterministically routes down
        each stage's first label.
        """
        stage = Stage.STAGE1
        while True:
            spec = STAGE_SPECS[stage]
            matrix = stage_probs[stage][indices]
            totals = clip_confidences(matrix, threshold).sum(axis=0)
            label = spec.labels[int(totals.argmax())]
            next_stage = spec.routes[label]
            if next_stage is None:
                return next(t for t in ALL_TYPES if t.value == label)
            stage = next_stage

    # -- persistence ---------------------------------------------------------------

    def get_state(self) -> dict[str, dict[str, np.ndarray]]:
        """Per-stage weight dicts keyed by stage name (``"Stage1"``...).

        This is the classifier's contribution to a
        :class:`repro.core.artifacts.ModelBundle`; ``save``/``load``
        below remain as the legacy one-file-per-stage directory format.
        """
        return {stage.value: stage_model.model.get_state()
                for stage, stage_model in self.stages.items()}

    def load_state(self, states: dict[str, dict[str, np.ndarray]],
                   input_length: int, input_channels: int) -> None:
        """Restore all six stages from a :meth:`get_state` dict.

        Rebuilds each stage's architecture from the config and validates
        every array shape (``ValueError`` on any mismatch, nothing
        half-applied).
        """
        for stage, spec in STAGE_SPECS.items():
            if stage.value not in states:
                raise ValueError(f"classifier state lacks stage {stage.value!r}")
        fresh: dict[Stage, StageModel] = {}
        for stage, spec in STAGE_SPECS.items():
            model = build_cati_cnn(
                input_length=input_length,
                input_channels=input_channels,
                n_classes=len(spec.labels),
                conv_channels=self.config.conv_channels,
                fc_width=self.config.fc_width,
                dropout=self.config.dropout,
                seed=self.config.seed,
            )
            try:
                model.load_state(states[stage.value])
            except ValueError as error:
                raise ValueError(f"stage {stage.value}: {error}") from error
            fresh[stage] = StageModel(spec=spec, model=model)
        self.stages = fresh

    def save(self, directory: str) -> None:
        os.makedirs(directory, exist_ok=True)
        for stage, stage_model in self.stages.items():
            stage_model.model.save(os.path.join(directory, f"{stage.value}.npz"))

    def load(self, directory: str, input_length: int, input_channels: int) -> None:
        states: dict[str, dict[str, np.ndarray]] = {}
        for stage in STAGE_SPECS:
            path = os.path.join(directory, f"{stage.value}.npz")
            with np.load(path) as data:
                states[stage.value] = dict(data)
        self.load_state(states, input_length, input_channels)
