"""Hardened external-tool runner.

One malformed input can make ``objdump`` hang and one loaded CI box can
make ``gcc`` time out transiently; :func:`run_tool` turns both into
either a bounded retry or a typed :class:`~repro.core.errors.ToolchainError`
that captures the tool name, exit code and stderr instead of an opaque
``CalledProcessError``.

Policy:

* a **missing tool** (``FileNotFoundError``) fails immediately with
  ``missing=True`` — retrying cannot install gcc;
* a **timeout or OS-level hiccup** is transient: retried up to
  ``retries`` times with exponential backoff (``backoff * 2**attempt``);
* a **non-zero exit** is deterministic tool behaviour: no retry, the
  captured stderr rides along in the error.

``runner``/``sleep`` are injection points used by the fault harness
(``tests/faultinject.py``) to simulate hangs and flaky tools without
real subprocesses.

Contract: callers get either a :class:`ToolResult` (success, with
stdout/stderr decoded and the attempt count) or a
:class:`~repro.core.errors.ToolchainError` — never a raw
``CalledProcessError`` / ``TimeoutExpired`` / ``FileNotFoundError``.
Every invocation is also accounted into the global metrics registry:
``toolchain.runs`` / ``toolchain.runs.<tool>``, ``toolchain.retries``,
``toolchain.backoff_s`` (total seconds slept), ``toolchain.failures``
(+ ``toolchain.missing`` for absent tools), and a per-tool wall-clock
span ``toolchain.<tool>``.
"""

from __future__ import annotations

import os.path
import random as _random
import shutil
import subprocess
import time
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass

from repro.core import observability
from repro.core.errors import ToolchainError

#: Default wall-clock budget per tool invocation (seconds).
DEFAULT_TOOL_TIMEOUT = 60.0

#: Default number of *re*-tries after a transient failure.
DEFAULT_TOOL_RETRIES = 2


@dataclass(frozen=True)
class ToolResult:
    """One successful tool run."""

    tool: str
    argv: tuple[str, ...]
    returncode: int
    stdout: str
    stderr: str
    attempts: int


def retry_delays(backoff: float, retries: int, *, jitter: float = 0.0,
                 rng: _random.Random | None = None) -> Iterator[float]:
    """The exponential backoff schedule, with optional seedable jitter.

    Yields ``retries`` delays of ``backoff * 2**attempt``, each scaled
    by a uniform factor in ``[1, 1 + jitter]``.  The jitter source is
    *injectable*: pass a seeded ``random.Random`` to make the schedule
    deterministic — the batch runner's fault-injection tests rely on
    reproducing the exact sleep sequence.  ``rng=None`` draws from the
    module-global PRNG, and ``jitter=0`` (the default) reproduces the
    historical un-jittered schedule exactly.

    Shared by :func:`run_tool` and ``repro.batch``'s shard retry so
    every retry loop in the system backs off the same way.
    """
    if jitter < 0:
        raise ValueError("jitter must be >= 0")
    for attempt in range(retries):
        delay = backoff * (2 ** attempt)
        if jitter > 0:
            source = rng if rng is not None else _random
            delay *= 1.0 + jitter * source.random()
        yield delay


def which_missing(tools: Sequence[str]) -> tuple[str, ...]:
    """The subset of ``tools`` not found on PATH."""
    return tuple(tool for tool in tools if shutil.which(tool) is None)


def require_tools(tools: Sequence[str], *, stage: str = "toolchain") -> None:
    """Raise a skip-friendly :class:`ToolchainError` naming every missing tool."""
    missing = which_missing(tools)
    if missing:
        raise ToolchainError(
            f"required tool(s) not on PATH: {', '.join(missing)}",
            tool=missing[0], missing=True, missing_tools=missing, stage=stage,
        )


def run_tool(
    argv: Sequence[str],
    *,
    timeout: float | None = DEFAULT_TOOL_TIMEOUT,
    retries: int = DEFAULT_TOOL_RETRIES,
    backoff: float = 0.1,
    jitter: float = 0.0,
    rng: _random.Random | None = None,
    check: bool = True,
    binary: str | None = None,
    stage: str = "toolchain",
    runner: Callable | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> ToolResult:
    """Run one external tool with timeout, bounded retry, and typed errors.

    ``jitter``/``rng`` shape the backoff schedule via
    :func:`retry_delays`; a seeded ``rng`` makes the retry timing
    deterministic for fault-injection tests.
    """
    argv = [str(arg) for arg in argv]
    tool = argv[0]
    delays = list(retry_delays(backoff, retries, jitter=jitter, rng=rng))
    run = runner if runner is not None else subprocess.run
    registry = observability.get_registry()
    tool_label = os.path.basename(tool)
    registry.inc("toolchain.runs")
    registry.inc(f"toolchain.runs.{tool_label}")
    last_transient: Exception | None = None
    attempts = 0
    with registry.span(f"toolchain.{tool_label}"):
        for attempt in range(retries + 1):
            attempts = attempt + 1
            try:
                completed = run(argv, capture_output=True, text=True, timeout=timeout)
            except FileNotFoundError as exc:
                registry.inc("toolchain.failures")
                registry.inc("toolchain.missing")
                raise ToolchainError(
                    f"tool {tool!r} not found on PATH",
                    tool=tool, missing=True, missing_tools=(tool,),
                    binary=binary, stage=stage,
                ) from exc
            except subprocess.TimeoutExpired as exc:
                last_transient = exc
            except OSError as exc:
                last_transient = exc
            else:
                if completed.returncode != 0 and check:
                    registry.inc("toolchain.failures")
                    raise ToolchainError(
                        f"{tool} exited with status {completed.returncode}",
                        tool=tool, returncode=completed.returncode,
                        stderr=_decode(completed.stderr), binary=binary, stage=stage,
                    )
                return ToolResult(
                    tool=tool, argv=tuple(argv), returncode=completed.returncode,
                    stdout=_decode(completed.stdout), stderr=_decode(completed.stderr),
                    attempts=attempts,
                )
            if attempt < retries:
                delay = delays[attempt]
                registry.inc("toolchain.retries")
                registry.inc("toolchain.backoff_s", delay)
                sleep(delay)
    registry.inc("toolchain.failures")
    assert last_transient is not None
    stderr = ""
    if isinstance(last_transient, subprocess.TimeoutExpired):
        stderr = _decode(last_transient.stderr)
        message = (f"{tool} timed out after {timeout}s "
                   f"({attempts} attempt(s))")
    else:
        message = (f"{tool} failed transiently after {attempts} attempt(s): "
                   f"{last_transient}")
    error = ToolchainError(message, tool=tool, stderr=stderr,
                           binary=binary, stage=stage)
    raise error from last_transient


def _decode(stream) -> str:
    if stream is None:
        return ""
    if isinstance(stream, bytes):
        return stream.decode("utf-8", "replace")
    return str(stream)
