"""Batched, dedup-aware inference engine for the deployment hot paths.

The naive pipeline pays for every VUC window in full: per-window Python
encoding, six float64 CNN forwards over every row, and one forward per
occluded variant.  The paper's *same-type clustering phenomenon* (§VI,
Table V) means real corpora are heavily redundant — the same generalized
instructions and short instruction contexts recur across windows,
variables and binaries — so most of that work recomputes identical
numbers.  The engine exploits that redundancy at every level:

* **window dedup + content cache** — byte-identical generalized VUCs
  (hashed at token-id level) are classified once per call, and an LRU
  cache of leaf rows carries hits across calls and across binaries;
* **context dedup through the convolutional trunk** — a conv output
  position depends only on its receptive field, so conv1 runs once per
  *unique 3-instruction context* (typically 7-15x fewer rows than
  positions), max-pooling once per unique position pair, and conv2 once
  per unique pooled context, before the dense head runs per window;
* **stacked float32 kernels** — all six stage CNNs read the same input,
  so conv1 is one fused kernel across stages and the sibling stage
  heads (conv2, dense1, the class-padded dense2) run as single batched
  GEMMs (``np.matmul`` over ``[S, N, K] @ [S, K, M]``) instead of six
  sequential matmuls (float64 storage is kept for training; inference
  agrees with the naive path to ~1e-7);
* **arena-fused execution** — every cascade intermediate lives in a
  per-engine :class:`_KernelArena` of named, grow-on-demand float32
  buffers (thread-local, sized by the ``CatiConfig.max_batch`` chunk
  and reused across ``_stage_probs_chunk`` calls), with
  ``np.matmul(..., out=)`` / ``np.take(..., out=)`` / in-place
  activations eliminating per-call allocation churn;
* **opt-in int8 embeddings** — ``CatiConfig.quantize_embeddings``
  swaps the float32 embedding gather for an int8 table with per-row
  scales (4x less memory traffic, dequantized per unique instruction);
  this trades ≤1e-6 equivalence for a measured, bounded accuracy delta
  (reported by ``benchmarks/bench_speed.py``);
* **chunking** — dense passes proceed in ``CatiConfig.max_batch`` window
  chunks so arbitrarily large corpora run in bounded memory;
* **occlusion at the id level** — all L+1 occluded variants of a window
  batch are materialized as one small int tensor (BLANK row ids
  overwrite one position each) and pushed through the same deduplicated
  path, which automatically reuses every context the BLANK did not touch.

Models whose layer stack deviates from the canonical CATI CNN (e.g. the
window-0 ablation, which has no pooling) fall back to a generic batched
float32 forward; unknown layer types fall back to the naive float64
model.  Equivalence of every fast path with the naive one is enforced by
``tests/test_engine.py``.

Contract: the engine is a pure accelerator — for any trained model it
returns bitwise-deterministic results that agree with the naive
reference to ≤1e-6, never mutates the model, degrades per function /
per job under ``on_error="skip"`` (everything dropped is enumerated in
the result's :attr:`InferenceResult.failures`), and reports what it did
into the global metrics registry when ``CatiConfig.metrics_enabled``:
``engine.windows`` / ``engine.unique_windows`` / ``engine.cache_hits`` /
``engine.cache_misses`` counters (plus ``engine.store_hits`` when a
durable window store is attached — see :meth:`InferenceEngine.attach_window_store`),
``engine.batch_size`` and
``engine.chunk_seconds`` histograms (the latter gives per-chunk p50/p99
latency), per-stage cascade spans (``cascade.embed`` /
``cascade.conv1`` / ``cascade.conv2`` / ``cascade.heads``),
per-phase spans under ``infer_binary``
(extract → encode → classify → vote), and worker-pool accounting
(``engine.pool.*``).  A cumulative metrics snapshot rides along on
:attr:`InferenceResult.metrics`.  See ``docs/OPERATIONS.md``.
"""

from __future__ import annotations

import logging
import multiprocessing
import threading
import time
from collections import OrderedDict
from collections.abc import Sequence
from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from repro.codegen.binary import Binary
from repro.core import observability
from repro.core.classifier import MultiStageClassifier, compose_leaves
from repro.core.config import CatiConfig
from repro.core.errors import (
    FailureReport,
    InferenceError,
    check_on_error,
    handle_failure,
)
from repro.core.observability import SIZE_BUCKETS, TIME_BUCKETS
from repro.core.types import ALL_TYPES, Stage
from repro.embedding.encoder import VucEncoder
from repro.nn.layers import quantize_rows_int8
from repro.nn.losses import softmax
from repro.nn.model import layer_kind
from repro.vuc.dataflow import VariableExtent
from repro.vuc.dataset import extract_unlabeled_vucs
from repro.vuc.generalize import BLANK_TOKENS, Tokens


@dataclass
class EngineStats:
    """Dedup observability counters (cumulative until ``reset``)."""

    windows: int = 0          # windows submitted to leaf_proba
    unique_windows: int = 0   # distinct windows per call, summed
    cache_hits: int = 0       # distinct windows answered from the LRU cache
    store_hits: int = 0       # distinct windows answered from the durable store
    ctx_positions: int = 0    # conv1 positions submitted to the cascade
    ctx_unique: int = 0       # unique 3-instruction contexts actually convolved

    def reset(self) -> None:
        self.windows = self.unique_windows = self.cache_hits = 0
        self.store_hits = 0
        self.ctx_positions = self.ctx_unique = 0


@dataclass
class BatchedOcclusion:
    """Eq. (5) for a whole batch of VUCs."""

    epsilons: np.ndarray           # [N, L]
    predicted_indices: np.ndarray  # [N] leaf class probed per window
    base_confidences: np.ndarray   # [N]


logger = logging.getLogger(__name__)


class InferenceResult(list):
    """Predictions for one binary plus the run's failure report.

    A plain ``list`` subclass so every existing call site (iteration,
    indexing, ``==`` against a list of predictions) keeps working; the
    skip-and-record policy attaches what was dropped as
    :attr:`failures`.
    """

    __slots__ = ("failures", "metrics", "layouts")

    def __init__(self, predictions=(), failures: FailureReport | None = None,
                 metrics: dict | None = None, layouts: list | None = None) -> None:
        super().__init__(predictions)
        self.failures = failures if failures is not None else FailureReport()
        #: Cumulative process-metrics snapshot taken when the run ended
        #: (None when metrics are disabled); see repro.core.observability.
        self.metrics = metrics
        #: Recovered struct layouts (repro.posterior.StructLayout); None
        #: when the posterior stage did not run, [] when it ran and found
        #: no recoverable objects.
        self.layouts = layouts

    def __reduce__(self):
        # __slots__ on a list subclass needs explicit pickling support
        # (results cross the worker-pool boundary).
        return (_rebuild_result, (list(self), self.failures, self.metrics,
                                  self.layouts))


def _rebuild_result(predictions: list, failures: FailureReport,
                    metrics: dict | None = None,
                    layouts: list | None = None) -> "InferenceResult":
    return InferenceResult(predictions, failures, metrics, layouts)


# -- compiled stage programs ----------------------------------------------------

#: The canonical CATI stage CNN (§V-A) as an op-kind sequence; when every
#: stage matches it, the cascade (context-dedup) path applies.
_CANONICAL_KINDS = (
    "conv", "relu", "pool", "conv", "relu", "pool",
    "flatten", "dense", "relu", "noop", "dense",
)
_CONV2_INDEX = 3
_DENSE1_INDEX = 7
_DENSE2_INDEX = 10


def _compile_ops(model) -> list[tuple] | None:
    """float32 mirror program of a Sequential; None if a layer is unknown."""
    ops: list[tuple] = []
    for layer in model.layers:
        kind = layer_kind(layer)
        if kind == "conv":
            ops.append(("conv", layer.weight.astype(np.float32),
                        layer.bias.astype(np.float32), layer.kernel_size))
        elif kind == "dense":
            ops.append(("dense", layer.weight.astype(np.float32),
                        layer.bias.astype(np.float32)))
        elif kind == "pool":
            ops.append(("pool", layer.pool))
        elif kind in ("relu", "flatten", "noop"):
            ops.append((kind,))
        else:
            return None
    return ops


def _im2col(x: np.ndarray, kernel: int) -> np.ndarray:
    pad = kernel // 2
    padded = np.pad(x, ((0, 0), (pad, pad), (0, 0)))
    windows = np.lib.stride_tricks.sliding_window_view(
        padded, (kernel, x.shape[2]), axis=(1, 2)
    )
    return windows.reshape(x.shape[0], x.shape[1], kernel * x.shape[2])


def _run_ops(ops: list[tuple], x: np.ndarray) -> np.ndarray:
    """Generic batched float32 inference over a compiled program."""
    for op in ops:
        kind = op[0]
        if kind == "conv":
            _, weight, bias, kernel = op
            cols = _im2col(x, kernel)
            batch, length, flat = cols.shape
            x = (cols.reshape(batch * length, flat) @ weight).reshape(batch, length, -1) + bias
        elif kind == "relu":
            x = np.maximum(x, 0.0)
        elif kind == "pool":
            pool = op[1]
            batch, length, channels = x.shape
            out_len = length // pool
            x = x[:, :out_len * pool].reshape(batch, out_len, pool, channels).max(axis=2)
        elif kind == "flatten":
            x = x.reshape(len(x), -1)
        elif kind == "dense":
            _, weight, bias = op
            x = x @ weight + bias
    return x


# -- dedup primitives ------------------------------------------------------------


def _unique_rows(rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(unique [U, K], inverse [N]) for an int [N, K] array.

    When the value range allows, rows are packed bijectively into int64
    scalars (sorting scalars is several times faster than the void-view
    lexicographic sort); otherwise falls back to byte-view hashing.
    """
    rows = np.ascontiguousarray(rows)
    n, k = rows.shape
    if n:
        lo = int(rows.min())
        span = int(rows.max()) - lo + 1
        if k * np.log2(max(span, 2)) < 62:
            keys = rows[:, 0].astype(np.int64) - lo
            for j in range(1, k):
                keys = keys * span + (rows[:, j] - lo)
            # Hand-rolled unique: plain (unstable) quicksort beats
            # np.unique's stable mergesort, and equal keys mean equal
            # rows, so any duplicate may represent its group.
            order = np.argsort(keys)
            sorted_keys = keys[order]
            is_first = np.empty(n, dtype=bool)
            is_first[0] = True
            np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=is_first[1:])
            group_of_sorted = np.cumsum(is_first) - 1
            inverse = np.empty(n, dtype=np.int64)
            inverse[order] = group_of_sorted
            return rows[order[is_first]], inverse
    view = rows.view(np.dtype((np.void, rows.dtype.itemsize * rows.shape[1]))).ravel()
    _, first, inverse = np.unique(view, return_index=True, return_inverse=True)
    return rows[first], inverse


def _neighbor_rows(positions: np.ndarray) -> np.ndarray:
    """[B, L] position ids → [B, L, 3] (prev, self, next), -1 at the edges.

    -1 marks the conv's zero 'same'-padding, which contributes a zero row.
    """
    padded = np.pad(positions, ((0, 0), (1, 1)), constant_values=-1)
    return np.stack([padded[:, :-2], padded[:, 1:-1], padded[:, 2:]], axis=2)


def _gather_contexts(table: np.ndarray, contexts: np.ndarray) -> np.ndarray:
    """Assemble [U, K*D] conv inputs from a [R, D] row table; -1 → zeros.

    The table is padded with one zero row so the whole gather is a single
    fancy index (position -1 redirects to the pad row) instead of a
    zero-fill plus per-kernel-tap masked writes.
    """
    count, kernel = contexts.shape
    dim = table.shape[1]
    padded = np.concatenate([table, np.zeros((1, dim), dtype=table.dtype)])
    safe = np.where(contexts < 0, len(table), contexts)
    return padded[safe.ravel()].reshape(count, kernel * dim)


# -- arena + compiled cascade kernels --------------------------------------------


class _KernelArena:
    """Named, grow-on-demand scratch buffers for the fused cascade.

    Every cascade intermediate (conv activations, pooled rows, the flat
    head input, logits) is a prefix view of a named 1-D buffer, so a
    steady stream of same-shaped chunks allocates nothing after the
    first: ``np.matmul(..., out=)`` and in-place activations write into
    the same memory every call.  Buffers grow geometrically when a
    larger chunk arrives and are never shrunk (peak size is bounded by
    ``CatiConfig.max_batch``).  One arena per thread (see
    ``InferenceEngine._arena``) — views handed out are only valid until
    the same thread's next chunk.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}

    def take(self, name: str, shape: tuple[int, ...],
             dtype=np.float32) -> np.ndarray:
        """A C-contiguous [shape] view of the named buffer (uninitialized)."""
        size = 1
        for extent in shape:
            size *= int(extent)
        buffer = self._buffers.get(name)
        if buffer is None or buffer.size < size or buffer.dtype != dtype:
            capacity = size if buffer is None else max(size, (buffer.size * 3) // 2)
            buffer = np.empty(capacity, dtype=dtype)
            self._buffers[name] = buffer
        return buffer[:size].reshape(shape)

    @property
    def nbytes(self) -> int:
        return sum(buffer.nbytes for buffer in self._buffers.values())


@dataclass
class _CascadeKernels:
    """Float32 weight tensors of the fused cascade, laid out for speed.

    ``w1`` stacks every stage's conv1 kernel side by side so one GEMM
    over the unique contexts computes all stages' conv1 at once (in the
    same tap-sequential accumulation order as the float64 reference —
    reordering the summation costs ~2e-6 of leaf drift, past the 1e-6
    equivalence gate); the conv2 / dense operands are stacked
    stage-major for batched ``np.matmul``; the output heads are
    zero-padded to the widest stage (``class_counts`` slices the
    padding back off).
    """

    w1: np.ndarray            # [3*dim, S*C1]
    bias1: np.ndarray         # [S*C1]
    w2: np.ndarray            # [S, 3*C1, C2]
    b2: np.ndarray            # [S, 1, C2]
    wfc: np.ndarray           # [S, out2*C2, F]
    bfc: np.ndarray           # [S, 1, F]
    wout: np.ndarray          # [S, F, C_max] (class-padded)
    bout: np.ndarray          # [S, 1, C_max]
    class_counts: tuple[int, ...]
    c1: int
    c2: int
    fc: int


# -- the engine ------------------------------------------------------------------


class InferenceEngine:
    """Deduplicated, chunked, float32 inference over a trained CATI."""

    def __init__(self, classifier: MultiStageClassifier, encoder: VucEncoder,
                 config: CatiConfig) -> None:
        self.classifier = classifier
        self.encoder = encoder
        self.config = config
        self.stats = EngineStats()
        #: Why the last infer_binary_many call ran serially although
        #: parallelism was requested (None = it did not fall back).
        self.last_parallel_fallback: str | None = None
        # The leaf-row cache is shared across threads when the engine
        # sits behind repro.serve: handler threads and the batching
        # scheduler may race clear_cache/refresh against lookups, so
        # every cache access holds this lock (one acquisition per
        # leaf_proba_ids call, not per window).
        self._cache_lock = threading.Lock()
        self._cache: OrderedDict[bytes, np.ndarray] = OrderedDict()
        #: Optional durable window cache (repro.batch.cache.WindowCacheStore):
        #: consulted between the in-memory LRU and the dense compute, and fed
        #: every freshly computed leaf row.  None = LRU only.
        self.window_store = None
        self._stage_order: list[Stage] = []
        self._ops: list[list[tuple] | None] | None = None
        self._cascade = False
        self._kernels: _CascadeKernels | None = None
        #: int8 embedding table + per-row scales when
        #: ``config.quantize_embeddings`` (None = exact float32 path).
        self._q_table: tuple[np.ndarray, np.ndarray] | None = None
        # Scratch arenas are thread-local: serve handler threads may run
        # chunks concurrently and must not share buffers.
        self._arena_store = threading.local()

    # -- observability -----------------------------------------------------------

    def _metrics_on(self) -> bool:
        """Instrumentation gate: the config knob AND the global switch."""
        return self.config.metrics_enabled and observability.is_enabled()

    def _span(self, name: str):
        """A registry span when metrics are on, else a free no-op."""
        if self.config.metrics_enabled:
            return observability.get_registry().span(name)
        return nullcontext()

    # -- kernel compilation ------------------------------------------------------

    def _require_ops(self) -> None:
        if self._ops is not None:
            return
        self._stage_order = list(self.classifier.stages)
        if not self._stage_order:
            raise RuntimeError("classifier has no trained stages")
        self._ops = [_compile_ops(self.classifier.stages[stage].model)
                     for stage in self._stage_order]
        if self.config.quantize_embeddings:
            self._q_table = quantize_rows_int8(self.encoder.embedding.vectors)
        self._cascade = self._cascade_applicable()
        if self._cascade:
            self._kernels = self._compile_cascade_kernels()

    def _compile_cascade_kernels(self) -> _CascadeKernels:
        assert self._ops is not None
        ops = self._ops
        w1 = np.ascontiguousarray(
            np.concatenate([o[0][1] for o in ops], axis=1))        # type: ignore[index]
        sc1 = w1.shape[1]
        bias1 = np.concatenate([o[0][2] for o in ops])             # type: ignore[index]
        w2 = np.ascontiguousarray(np.stack([o[_CONV2_INDEX][1] for o in ops]))  # type: ignore[index]
        b2 = np.ascontiguousarray(np.stack([o[_CONV2_INDEX][2] for o in ops])[:, None, :])  # type: ignore[index]
        wfc = np.ascontiguousarray(np.stack([o[_DENSE1_INDEX][1] for o in ops]))  # type: ignore[index]
        bfc = np.ascontiguousarray(np.stack([o[_DENSE1_INDEX][2] for o in ops])[:, None, :])  # type: ignore[index]
        wout64, bout64, counts = self.classifier.padded_output_heads()
        return _CascadeKernels(
            w1=w1, bias1=bias1, w2=w2, b2=b2, wfc=wfc, bfc=bfc,
            wout=np.ascontiguousarray(wout64.astype(np.float32)),
            bout=np.ascontiguousarray(bout64.astype(np.float32)),
            class_counts=counts,
            c1=sc1 // len(ops), c2=w2.shape[2], fc=wfc.shape[2],
        )

    def _cascade_applicable(self) -> bool:
        assert self._ops is not None
        for ops in self._ops:
            if ops is None or tuple(op[0] for op in ops) != _CANONICAL_KINDS:
                return False
            if ops[0][3] != 3 or ops[_CONV2_INDEX][3] != 3:
                return False
            if ops[2][1] != 2 or ops[5][1] != 2:
                return False
        first = self._ops[0][0][1].shape
        return all(ops[0][1].shape == first for ops in self._ops)  # type: ignore[union-attr]

    def warm_start(self) -> None:
        """Compile the float32 kernels now instead of on the first batch.

        ``Cati.load(..., warm_start=True)`` calls this right after a
        bundle load so a freshly deserialized model serves its first
        request at steady-state latency (the stacked conv mirrors and
        cascade applicability check are built from the just-restored
        weights).
        """
        with self._span("engine.warm_start"):
            self._require_ops()

    def refresh(self) -> None:
        """Drop compiled kernels and cached rows (call after retraining)."""
        self._ops = None
        self._kernels = None
        self._q_table = None
        self._cascade = False
        self._arena_store = threading.local()
        self.window_store = None
        self.clear_cache()

    def _arena(self) -> _KernelArena:
        arena = getattr(self._arena_store, "arena", None)
        if arena is None:
            arena = self._arena_store.arena = _KernelArena()
        return arena

    @property
    def arena_nbytes(self) -> int:
        """Bytes held by the calling thread's scratch arena."""
        return self._arena().nbytes

    # -- caching -----------------------------------------------------------------

    def clear_cache(self) -> None:
        with self._cache_lock:
            self._cache.clear()

    def attach_window_store(self, store) -> None:
        """Back the dedup cache with a durable ``WindowCacheStore``.

        The store is consulted for windows the in-memory LRU misses and
        receives every freshly computed leaf row; rows served from it
        are bit-identical to what the cascade once produced (the store
        verifies each record's checksum and treats damage as a miss).
        Pass ``None`` to detach.  The caller owns the store's lifecycle
        (``flush``/``close``) and must only attach a store namespaced to
        this engine's model (see ``ModelBundle.content_key``).
        """
        self.window_store = store

    def _cache_put_many(self, pairs: list[tuple[bytes, np.ndarray]]) -> None:
        limit = self.config.dedup_cache_size
        if limit <= 0 or not pairs:
            return
        with self._cache_lock:
            for key, row in pairs:
                self._cache[key] = row
            while len(self._cache) > limit:
                self._cache.popitem(last=False)

    # -- classify + vote ---------------------------------------------------------

    def leaf_proba(self, windows: Sequence[Sequence[Tokens]]) -> np.ndarray:
        """[N, 19] leaf confidences, deduplicated and chunked."""
        with self._span("encode"):
            ids = self.encoder.encode_ids(windows, length=self.config.vuc_length)
        with self._span("classify"):
            return self.leaf_proba_ids(ids)

    def leaf_proba_ids(self, ids: np.ndarray) -> np.ndarray:
        """Leaf confidences from a pre-tokenized [N, L, 3] id tensor."""
        n = len(ids)
        if n == 0:
            return np.zeros((0, len(ALL_TYPES)))
        self.stats.windows += n
        registry = observability.get_registry()
        record = self._metrics_on()
        if record:
            registry.inc("engine.windows", n)
            registry.observe("engine.batch_size", n, SIZE_BUCKETS)
        flat = ids.reshape(n, -1)
        index_of: dict[bytes, int] = {}
        owner_row: list[int] = []
        assign = np.empty(n, dtype=np.int64)
        for i in range(n):
            key = flat[i].tobytes()
            j = index_of.get(key)
            if j is None:
                j = len(owner_row)
                index_of[key] = j
                owner_row.append(i)
            assign[i] = j
        unique = len(owner_row)
        self.stats.unique_windows += unique
        probs = np.empty((unique, len(ALL_TYPES)))
        todo: list[int] = []
        keys = list(index_of)
        if self.config.dedup_cache_size > 0:
            with self._cache_lock:
                for j, key in enumerate(keys):
                    row = self._cache.get(key)
                    if row is None:
                        todo.append(j)
                    else:
                        self._cache.move_to_end(key)
                        probs[j] = row
                        self.stats.cache_hits += 1
        else:
            todo = list(range(unique))
        lru_hits = unique - len(todo)
        if todo and self.window_store is not None:
            # Consult the durable store for what the LRU missed; hits are
            # promoted into the LRU so repeat windows stay memory-fast.
            found = self.window_store.get_many([keys[j] for j in todo])
            if found:
                still: list[int] = []
                promote: list[tuple[bytes, np.ndarray]] = []
                for j in todo:
                    row = found.get(keys[j])
                    if row is None:
                        still.append(j)
                    else:
                        probs[j] = row
                        promote.append((keys[j], row))
                self.stats.store_hits += len(todo) - len(still)
                if record:
                    registry.inc("engine.store_hits", len(todo) - len(still))
                todo = still
                self._cache_put_many(promote)
        if record:
            registry.inc("engine.unique_windows", unique)
            registry.inc("engine.cache_hits", lru_hits)
            registry.inc("engine.cache_misses", len(todo))
        if todo:
            fresh = self._leaf_proba_dense(ids[np.asarray([owner_row[j] for j in todo])])
            for t, j in enumerate(todo):
                probs[j] = fresh[t]
            self._cache_put_many([(keys[j], fresh[t].copy())
                                  for t, j in enumerate(todo)])
            if self.window_store is not None:
                self.window_store.put_many([(keys[j], fresh[t])
                                            for t, j in enumerate(todo)])
        return probs[assign]

    def _leaf_proba_dense(self, ids: np.ndarray) -> np.ndarray:
        chunks = []
        record = self._metrics_on()
        registry = observability.get_registry() if record else None
        for start in range(0, len(ids), self.config.max_batch):
            began = time.perf_counter() if record else 0.0
            stage_probs = self._stage_probs_chunk(ids[start:start + self.config.max_batch])
            chunks.append(compose_leaves(stage_probs))
            if registry is not None:
                registry.observe("engine.chunk_seconds",
                                 time.perf_counter() - began, TIME_BUCKETS)
        return np.concatenate(chunks)

    def _stage_probs_chunk(self, ids: np.ndarray) -> dict[Stage, np.ndarray]:
        self._require_ops()
        logits = self._cascade_logits(ids) if self._cascade else self._generic_logits(ids)
        return {stage: softmax(out.astype(np.float64))
                for stage, out in zip(self._stage_order, logits)}

    def _embed_rows(self, instr_u: np.ndarray) -> np.ndarray:
        """[U, 3] id-triples → [U, instruction_dim] float32 embeddings.

        Honors the opt-in int8 table: the gather moves int8 rows (4x
        less traffic than float32) and dequantizes with the per-row
        scales afterwards.
        """
        flat = instr_u.reshape(-1)
        if self._q_table is not None:
            values, scales = self._q_table
            vectors = values[flat].astype(np.float32)
            vectors *= scales[flat][:, None]
        else:
            vectors = self.encoder.embedding.vectors[flat].astype(
                np.float32, copy=False)
        return vectors.reshape(len(instr_u), -1)

    def _embed_ids(self, ids: np.ndarray) -> np.ndarray:
        n, length, _ = ids.shape
        return self._embed_rows(ids.reshape(n * length, 3)).reshape(
            n, length, self.encoder.instruction_dim)

    def _generic_logits(self, ids: np.ndarray) -> list[np.ndarray]:
        assert self._ops is not None
        with self._span("generic_forward"):
            x = self._embed_ids(ids)
            out = []
            for stage, ops in zip(self._stage_order, self._ops):
                if ops is None:
                    out.append(self.classifier.stages[stage].model.forward(x, training=False))
                else:
                    out.append(_run_ops(ops, x))
            return out

    def _cascade_logits(self, ids: np.ndarray) -> list[np.ndarray]:
        """Context-deduplicated trunk + stacked batched heads (module doc).

        Every intermediate is an arena view; the returned per-stage
        logit slices are only valid until this thread's next chunk —
        ``_stage_probs_chunk`` copies them out via the float64 softmax.
        """
        kernels = self._kernels
        assert kernels is not None
        arena = self._arena()
        batch, length, _ = ids.shape
        n_stages = len(self._stage_order)
        c1, c2 = kernels.c1, kernels.c2
        sc1 = n_stages * c1

        with self._span("cascade.embed"):
            # Level 0: unique instructions → their embeddings, computed
            # once (through the opt-in int8 table when configured), into
            # a zero-padded arena row table for the conv1 gather.
            instr_u, pos = _unique_rows(ids.reshape(batch * length, 3))
            pos = pos.reshape(batch, length)
            dim = self.encoder.instruction_dim
            emb_ext = arena.take("emb", (len(instr_u) + 1, dim))
            emb_ext[:len(instr_u)] = self._embed_rows(instr_u)
            emb_ext[len(instr_u)] = 0.0

        with self._span("cascade.conv1"):
            # Level 1: conv1 over unique 3-instruction contexts, every
            # stage in ONE GEMM over the whole deduped batch (position
            # -1, the conv's 'same' padding, redirects to the zero row).
            # Gathers use plain fancy indexing: np.take(out=) goes
            # through a slower buffered path (measured ~2.7x).
            ctx1_u, pos_c1 = _unique_rows(_neighbor_rows(pos).reshape(batch * length, 3))
            pos_c1 = pos_c1.reshape(batch, length)
            self.stats.ctx_positions += batch * length
            self.stats.ctx_unique += len(ctx1_u)
            if self._metrics_on():
                registry = observability.get_registry()
                registry.inc("engine.ctx_positions", batch * length)
                registry.inc("engine.ctx_unique", len(ctx1_u))
            u1 = len(ctx1_u)
            safe1 = np.where(ctx1_u < 0, len(instr_u), ctx1_u).ravel()
            x1 = emb_ext[safe1]
            hidden1 = arena.take("hidden1", (u1, sc1))
            # Bias + ReLU are postponed past pool1: rounding is
            # monotone, so fl(a+c) <= fl(b+c) whenever a <= b, making
            # max-then-bias-then-relu bit-identical to the reference
            # order while touching u_p1 rows instead of u1.
            np.matmul(x1.reshape(u1, 3 * dim), kernels.w1, out=hidden1)

            # Pool 1 over unique position pairs, then one stage-major
            # transpose so conv2's context gathers are contiguous per
            # stage (the extra row u_p1 is conv2's zero 'same' padding,
            # which bias must not touch).
            out1 = length // 2
            pairs1 = np.stack([pos_c1[:, 0:out1 * 2:2], pos_c1[:, 1:out1 * 2:2]], axis=2)
            pairs1_u, pos_p1 = _unique_rows(pairs1.reshape(batch * out1, 2))
            pos_p1 = pos_p1.reshape(batch, out1)
            u_p1 = len(pairs1_u)
            pooled1 = np.maximum(hidden1[pairs1_u[:, 0]], hidden1[pairs1_u[:, 1]])
            pooled1_t = arena.take("pooled1_t", (n_stages, u_p1 + 1, c1))
            pooled1_t[:, :u_p1] = pooled1.reshape(u_p1, n_stages, c1).transpose(1, 0, 2)
            pooled1_t[:, u_p1] = 0.0
            body1 = pooled1_t[:, :u_p1]
            body1 += kernels.bias1.reshape(n_stages, 1, c1)
            np.maximum(body1, 0.0, out=body1)

        with self._span("cascade.conv2"):
            # Level 2: conv2 over unique pooled contexts.  The GEMM is
            # still one batched [S, U, K] @ [S, K, M] contraction, but
            # its operand is assembled stage by stage with small
            # ephemeral gathers — a single [S, U*3, C1] slab gather
            # blows the cache on this memory-bound path (measured).
            ctx2_u, pos_c2 = _unique_rows(_neighbor_rows(pos_p1).reshape(batch * out1, 3))
            pos_c2 = pos_c2.reshape(batch, out1)
            u2 = len(ctx2_u)
            safe2 = np.where(ctx2_u < 0, u_p1, ctx2_u).ravel()
            out2 = out1 // 2
            # Pool 2 over unique position pairs (it pays again at this
            # depth once the gathers are fancy-indexed), flattening
            # straight into the [S, B*out2, C2] head layout.
            pairs2 = np.stack([pos_c2[:, 0:out2 * 2:2], pos_c2[:, 1:out2 * 2:2]], axis=2)
            pairs2_u, pos_p2 = _unique_rows(pairs2.reshape(batch * out2, 2))
            flat_index = pos_p2
            hidden2 = arena.take("hidden2", (u2, c2))
            flat = arena.take("flat", (n_stages, batch * out2, c2))
            for s in range(n_stages):
                x2 = pooled1_t[s][safe2]
                np.matmul(x2.reshape(u2, 3 * c1), kernels.w2[s], out=hidden2)
                pooled2 = np.maximum(hidden2[pairs2_u[:, 0]],
                                     hidden2[pairs2_u[:, 1]])
                pooled2 += kernels.b2[s]
                np.maximum(pooled2, 0.0, out=pooled2)
                flat[s] = pooled2[flat_index]

        with self._span("cascade.heads"):
            # Sibling stage heads share input shapes: dense1 and the
            # class-padded dense2 run as stacked batched GEMMs.
            z = arena.take("z", (n_stages, batch, kernels.fc))
            np.matmul(flat.reshape(n_stages, batch, out2 * c2), kernels.wfc, out=z)
            z += kernels.bfc
            np.maximum(z, 0.0, out=z)
            raw = arena.take("logits", (n_stages, batch, kernels.wout.shape[2]))
            np.matmul(z, kernels.wout, out=raw)
            raw += kernels.bout
            return [raw[s, :, :count]
                    for s, count in enumerate(kernels.class_counts)]

    # -- variable-level prediction -----------------------------------------------

    def predict_variables(self, windows: Sequence[Sequence[Tokens]],
                          variable_ids: Sequence[str]) -> list:
        """Engine-path twin of :meth:`Cati.predict_variables`."""
        from repro.core.pipeline import predictions_from_probs

        if len(windows) != len(variable_ids):
            raise ValueError("windows and variable_ids must align")
        if not windows:
            return []
        probs = self.leaf_proba(windows)
        with self._span("vote"):
            return predictions_from_probs(
                probs, variable_ids, self.config.confidence_threshold,
                metrics=self._metrics_on(),
                vote_detail=self.config.metrics_vote_detail)

    def infer_binary(self, stripped: Binary,
                     extents_by_function: list[list[VariableExtent]],
                     on_error: str = "raise",
                     failures: FailureReport | None = None,
                     structs: bool | None = None) -> InferenceResult:
        """Engine-path whole-binary inference (Fig. 3e-f).

        With ``on_error="skip"``, extraction is fault-isolated per
        function: damaged functions are recorded into the result's
        :attr:`~InferenceResult.failures` report (and into ``failures``
        when given) while every healthy function's variables are still
        predicted.  With ``"raise"`` (default) the first failure raises
        a typed :class:`~repro.core.errors.CatiError` subclass.

        ``structs`` (default :attr:`CatiConfig.posterior_enabled`) turns
        on the posterior struct-recovery stage: per-variable predictions
        are computed identically, and recovered layouts are attached as
        :attr:`InferenceResult.layouts`.
        """
        check_on_error(on_error)
        if structs is None:
            structs = self.config.posterior_enabled
        if structs:
            return self._infer_binary_structs(stripped, extents_by_function,
                                              on_error, failures)
        report = FailureReport()
        with self._span("infer_binary"):
            with self._span("extract"):
                pairs = extract_unlabeled_vucs(
                    stripped, extents_by_function, self.config.window,
                    on_error=on_error, failures=report,
                    metrics=self.config.metrics_enabled,
                )
            predictions: list = []
            if pairs:
                try:
                    predictions = self.predict_variables(
                        [tokens for _variable_id, tokens in pairs],
                        [variable_id for variable_id, _tokens in pairs],
                    )
                except Exception as exc:
                    handle_failure(exc, on_error=on_error, failures=report,
                                   stage="classify", binary=stripped.name)
        if failures is not None:
            failures.extend(report)
        metrics = observability.snapshot() if self._metrics_on() else None
        return InferenceResult(predictions, failures=report, metrics=metrics)

    def _infer_binary_structs(self, stripped: Binary,
                              extents_by_function: list[list[VariableExtent]],
                              on_error: str,
                              failures: FailureReport | None) -> InferenceResult:
        """The structs-enabled twin of :meth:`infer_binary`.

        Kept separate so the default path stays untouched: here the leaf
        posteriors are computed once and reused for both the per-variable
        vote and the per-field posterior stage, and extraction also
        returns the row-aligned access sites the posterior groups by.
        """
        from repro.core.pipeline import predictions_from_probs
        from repro.posterior import recover_layouts
        from repro.vuc.dataflow import AccessSite

        report = FailureReport()
        sites: list[AccessSite] = []
        predictions: list = []
        layouts: list = []
        with self._span("infer_binary"):
            with self._span("extract"):
                pairs = extract_unlabeled_vucs(
                    stripped, extents_by_function, self.config.window,
                    on_error=on_error, failures=report,
                    metrics=self.config.metrics_enabled, sites=sites,
                )
            if pairs:
                try:
                    windows = [tokens for _variable_id, tokens in pairs]
                    variable_ids = [variable_id for variable_id, _tokens in pairs]
                    probs = self.leaf_proba(windows)
                    with self._span("vote"):
                        predictions = predictions_from_probs(
                            probs, variable_ids, self.config.confidence_threshold,
                            metrics=self._metrics_on(),
                            vote_detail=self.config.metrics_vote_detail)
                    with self._span("posterior"):
                        layouts = recover_layouts(
                            predictions, probs, variable_ids, sites,
                            threshold=self.config.confidence_threshold,
                            min_accesses=self.config.posterior_min_accesses)
                except Exception as exc:
                    handle_failure(exc, on_error=on_error, failures=report,
                                   stage="classify", binary=stripped.name)
        if failures is not None:
            failures.extend(report)
        metrics = observability.snapshot() if self._metrics_on() else None
        return InferenceResult(predictions, failures=report, metrics=metrics,
                               layouts=layouts)

    def infer_binary_many(
        self,
        jobs: Sequence[tuple[Binary, list[list[VariableExtent]]]],
        n_workers: int | None = None,
        on_error: str = "raise",
        job_timeout: float | None = None,
        failures: FailureReport | None = None,
        structs: bool | None = None,
    ) -> list[InferenceResult]:
        """Infer many binaries, optionally sharded across worker processes.

        Workers are forked, so the trained model is shared copy-on-write
        rather than re-pickled per task; results keep job order.  Falls
        back to the serial path (which still benefits from the cross-
        binary window cache) when forking is unavailable — the fallback
        is logged and exposed as :attr:`last_parallel_fallback`.

        Fault isolation: every job is bounded by ``job_timeout`` seconds
        (default :attr:`CatiConfig.job_timeout`; ``None`` waits forever).
        A job whose worker crashes, hangs past the timeout, or raises is
        automatically retried once *in-process*; only the retry's outcome
        is then subject to the ``on_error`` policy, so a transient worker
        death still yields complete results.  With ``on_error="skip"``
        the pool-level incident is recorded into ``failures`` / the
        job's result report and the remaining jobs keep their results.
        """
        check_on_error(on_error)
        jobs = list(jobs)
        workers = self.config.n_workers if n_workers is None else n_workers
        timeout = self.config.job_timeout if job_timeout is None else job_timeout
        self.last_parallel_fallback = None
        registry = observability.get_registry()
        record = self._metrics_on()
        if record:
            registry.inc("engine.pool.jobs", len(jobs))
        if workers <= 1 or len(jobs) <= 1:
            return self._infer_many_serial(jobs, on_error, failures, structs)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError as exc:
            self.last_parallel_fallback = f"fork unavailable: {exc}"
            if record:
                registry.inc("engine.pool.fallbacks")
            logger.warning(
                "infer_binary_many: fork start method unavailable (%s); "
                "falling back to serial inference for %d job(s)", exc, len(jobs))
            return self._infer_many_serial(jobs, on_error, failures, structs)
        if record:
            registry.set_gauge("engine.pool.workers", min(workers, len(jobs)))
        global _POOL_STATE
        _POOL_STATE = (self, jobs, on_error, structs)
        results: list[InferenceResult | None] = [None] * len(jobs)
        needs_retry: list[tuple[int, Exception]] = []
        pool = context.Pool(processes=min(workers, len(jobs)))
        try:
            handles = [pool.apply_async(_infer_pool_job, (index,))
                       for index in range(len(jobs))]
            for index, handle in enumerate(handles):
                try:
                    results[index] = handle.get(timeout)
                except multiprocessing.TimeoutError:
                    if record:
                        registry.inc("engine.pool.timeouts")
                    needs_retry.append((index, InferenceError(
                        f"worker did not return within {timeout}s "
                        f"(crashed or hung)",
                        binary=jobs[index][0].name, stage="pool")))
                except Exception as exc:
                    needs_retry.append((index, exc))
        finally:
            # terminate (not close): a hung or crashed worker must not
            # keep the join waiting; completed results are already in.
            pool.terminate()
            pool.join()
            _POOL_STATE = None
        if record and needs_retry:
            registry.inc("engine.pool.retries", len(needs_retry))
        for index, exc in needs_retry:
            stripped, extents = jobs[index]
            logger.warning(
                "infer_binary_many: job %d (%s) failed in the pool (%s); "
                "retrying in-process", index, stripped.name, exc)
            report = FailureReport()
            report.record(exc, stage="pool", binary=stripped.name)
            try:
                retried = self.infer_binary(stripped, extents,
                                            on_error=on_error, failures=report,
                                            structs=structs)
            except Exception as retry_exc:
                handle_failure(retry_exc, on_error=on_error, failures=report,
                               stage="pool", binary=stripped.name)
                retried = InferenceResult([])
            retried.failures = report
            results[index] = retried
        out = [result if result is not None else InferenceResult([])
               for result in results]
        if failures is not None:
            failures.extend(FailureReport.merge(result.failures for result in out))
        return out

    def _infer_many_serial(self, jobs, on_error: str,
                           failures: FailureReport | None,
                           structs: bool | None = None) -> list[InferenceResult]:
        out = [self.infer_binary(stripped, extents, on_error=on_error,
                                 structs=structs)
               for stripped, extents in jobs]
        if failures is not None:
            failures.extend(FailureReport.merge(result.failures for result in out))
        return out

    # -- occlusion -----------------------------------------------------------------

    def occlusion_epsilons_many(self, windows: Sequence[Sequence[Tokens]]) -> BatchedOcclusion:
        """Eq. (5) over a window batch via one deduplicated id tensor.

        Builds all L+1 variants per window at the token-id level (the
        BLANK triple overwrites one row each) so unmodified contexts are
        shared with the base window by the dedup cascade instead of
        being re-encoded and re-convolved L times.
        """
        ids = self.encoder.encode_ids(windows, length=self.config.vuc_length)
        n, length, _ = ids.shape
        epsilons = np.empty((n, length))
        predicted = np.empty(n, dtype=np.int64)
        base_conf = np.empty(n)
        if n == 0:
            return BatchedOcclusion(epsilons, predicted, base_conf)
        if self._metrics_on():
            observability.inc("engine.occlusion.windows", n)
        blank = self.encoder.embedding.vocab.encode(list(BLANK_TOKENS)).astype(ids.dtype)
        group = max(1, self.config.max_batch // (length + 1))
        rows = np.arange(length)
        with self._span("occlusion"):
            for start in range(0, n, group):
                sub = ids[start:start + group]
                g = len(sub)
                variants = np.repeat(sub[:, None], length + 1, axis=1)  # [G, 1+L, L, 3]
                variants[:, rows + 1, rows, :] = blank
                probs = self.leaf_proba_ids(
                    variants.reshape(g * (length + 1), length, 3)
                ).reshape(g, length + 1, -1)
                base = probs[:, 0]
                pred = base.argmax(axis=1)
                conf = base[np.arange(g), pred]
                occluded = np.take_along_axis(probs[:, 1:], pred[:, None, None], axis=2)[:, :, 0]
                epsilons[start:start + g] = occluded / np.maximum(conf, 1e-12)[:, None]
                predicted[start:start + g] = pred
                base_conf[start:start + g] = conf
        return BatchedOcclusion(epsilons, predicted, base_conf)


#: (engine, jobs, on_error, structs) shared with forked pool workers; see
#: infer_binary_many.
_POOL_STATE: tuple[InferenceEngine, list, str, bool | None] | None = None


def _infer_pool_job(index: int) -> InferenceResult:
    assert _POOL_STATE is not None
    engine, jobs, on_error, structs = _POOL_STATE
    stripped, extents = jobs[index]
    return engine.infer_binary(stripped, extents, on_error=on_error,
                               structs=structs)
