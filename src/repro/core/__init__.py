"""CATI core: the 19-type taxonomy, the six-stage CNN classifier tree,
confidence voting, the end-to-end pipeline facade and occlusion
explanations.

Heavy submodules (classifier/pipeline/occlusion) are loaded lazily via
PEP 562 so that low-level packages can import :mod:`repro.core.types`
without dragging the whole ML stack (and a circular import) in.
"""

from repro.core.types import (
    ALL_STAGES,
    ALL_TYPES,
    CHAR_FAMILY,
    DEBIN_TYPES,
    FLOAT_FAMILY,
    INT_FAMILY,
    POINTER_TYPES,
    STAGE_SPECS,
    Stage,
    StageSpec,
    TypeName,
    stage_label,
    stage_path,
    to_debin_label,
)
from repro.core.voting import DEFAULT_THRESHOLD, clip_confidences, vote, vote_many, vote_scores

_LAZY = {
    "ModelBundle": ("repro.core.artifacts", "ModelBundle"),
    "ArtifactError": ("repro.core.errors", "ArtifactError"),
    "BundleSchemaError": ("repro.core.errors", "BundleSchemaError"),
    "BundleIntegrityError": ("repro.core.errors", "BundleIntegrityError"),
    "ConfigMismatchError": ("repro.core.errors", "ConfigMismatchError"),
    "CatiError": ("repro.core.errors", "CatiError"),
    "ToolchainError": ("repro.core.errors", "ToolchainError"),
    "DecodeError": ("repro.core.errors", "DecodeError"),
    "DwarfError": ("repro.core.errors", "DwarfError"),
    "InferenceError": ("repro.core.errors", "InferenceError"),
    "FailureRecord": ("repro.core.errors", "FailureRecord"),
    "FailureReport": ("repro.core.errors", "FailureReport"),
    "run_tool": ("repro.core.toolchain", "run_tool"),
    "ToolResult": ("repro.core.toolchain", "ToolResult"),
    "MetricsRegistry": ("repro.core.observability", "MetricsRegistry"),
    "get_registry": ("repro.core.observability", "get_registry"),
    "metrics_snapshot": ("repro.core.observability", "snapshot"),
    "set_metrics_enabled": ("repro.core.observability", "set_enabled"),
    "MultiStageClassifier": ("repro.core.classifier", "MultiStageClassifier"),
    "StageModel": ("repro.core.classifier", "StageModel"),
    "CatiConfig": ("repro.core.config", "CatiConfig"),
    "BatchedOcclusion": ("repro.core.engine", "BatchedOcclusion"),
    "EngineStats": ("repro.core.engine", "EngineStats"),
    "InferenceEngine": ("repro.core.engine", "InferenceEngine"),
    "InferenceResult": ("repro.core.engine", "InferenceResult"),
    "OcclusionResult": ("repro.core.occlusion", "OcclusionResult"),
    "epsilon_distribution": ("repro.core.occlusion", "epsilon_distribution"),
    "occlusion_epsilons": ("repro.core.occlusion", "occlusion_epsilons"),
    "occlusion_epsilons_many": ("repro.core.occlusion", "occlusion_epsilons_many"),
    "Cati": ("repro.core.pipeline", "Cati"),
    "VariablePrediction": ("repro.core.pipeline", "VariablePrediction"),
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(target[0])
    value = getattr(module, target[1])
    globals()[name] = value
    return value


__all__ = [
    "ModelBundle",
    "ArtifactError",
    "BundleSchemaError",
    "BundleIntegrityError",
    "ConfigMismatchError",
    "CatiError",
    "ToolchainError",
    "DecodeError",
    "DwarfError",
    "InferenceError",
    "FailureRecord",
    "FailureReport",
    "run_tool",
    "ToolResult",
    "MetricsRegistry",
    "get_registry",
    "metrics_snapshot",
    "set_metrics_enabled",
    "MultiStageClassifier",
    "StageModel",
    "CatiConfig",
    "BatchedOcclusion",
    "EngineStats",
    "InferenceEngine",
    "InferenceResult",
    "OcclusionResult",
    "epsilon_distribution",
    "occlusion_epsilons",
    "occlusion_epsilons_many",
    "Cati",
    "VariablePrediction",
    "ALL_STAGES",
    "ALL_TYPES",
    "CHAR_FAMILY",
    "DEBIN_TYPES",
    "FLOAT_FAMILY",
    "INT_FAMILY",
    "POINTER_TYPES",
    "STAGE_SPECS",
    "Stage",
    "StageSpec",
    "TypeName",
    "stage_label",
    "stage_path",
    "to_debin_label",
    "DEFAULT_THRESHOLD",
    "clip_confidences",
    "vote",
    "vote_many",
    "vote_scores",
]
