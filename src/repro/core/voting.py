"""Confidence-based voting (§V-B, eqs. 3-4).

A variable's final type is decided from all of its VUCs' confidence
vectors: confidences at or above the threshold (0.9) are clipped up to
1.0 so confident votes dominate (eq. 3), then the per-class sums are
taken and the argmax wins (eq. 4).

Observability: :func:`observe_clipping` counts how many confidences
eq. (3) actually clipped and :func:`observe_votes` records each decided
vote's margin (winner minus runner-up of the summed clipped scores)
overall and per winning leaf type — the per-type margin distribution is
where low-confidence type families (e.g. Stage 2-1's pointer subkinds)
show up in a metrics dump.  Both no-op when the global registry is
disabled; callers on the hot path additionally gate them on
``CatiConfig.metrics_enabled``.  :func:`observe_votes` takes the whole
batch at once so per-variable cost is a list append, not a lock
round-trip.
"""

from __future__ import annotations

import numpy as np

from repro.core import observability
from repro.core.errors import InferenceError
from repro.core.observability import MARGIN_BUCKETS
from repro.core.types import ALL_TYPES

#: The paper's empirically chosen threshold.
DEFAULT_THRESHOLD = 0.9


def clip_confidences(probs: np.ndarray, threshold: float = DEFAULT_THRESHOLD) -> np.ndarray:
    """Eq. (3): Z'_ij = 1.0 where Z_ij >= threshold, else Z_ij."""
    clipped = probs.copy()
    clipped[clipped >= threshold] = 1.0
    return clipped


def vote(probs: np.ndarray, threshold: float = DEFAULT_THRESHOLD) -> int:
    """Eq. (4): final class for one variable from its [N, C] VUC matrix.

    An empty or mis-shaped matrix raises a typed
    :class:`~repro.core.errors.InferenceError` (a ``ValueError``
    subclass) — a variable with zero VUCs has no defined vote.
    """
    probs = np.asarray(probs)
    if probs.ndim != 2 or len(probs) == 0:
        raise InferenceError(
            "vote needs a non-empty [N, C] confidence matrix "
            f"(got shape {probs.shape})", stage="vote")
    totals = clip_confidences(probs, threshold).sum(axis=0)
    return int(totals.argmax())


def vote_scores(probs: np.ndarray, threshold: float = DEFAULT_THRESHOLD) -> np.ndarray:
    """The summed clipped confidences per class (for inspection)."""
    return clip_confidences(probs, threshold).sum(axis=0)


def observe_clipping(probs: np.ndarray, threshold: float = DEFAULT_THRESHOLD) -> None:
    """Count how many VUC confidences eq. (3) clips to 1.0.

    Emits ``vote.confidences`` (entries seen) and
    ``vote.clipped_confidences`` (entries at/above the threshold); their
    ratio is the clip rate an operator reads off a metrics dump.
    """
    registry = observability.get_registry()
    if not registry.enabled or probs.size == 0:
        return
    registry.inc("vote.confidences", int(probs.size))
    registry.inc("vote.clipped_confidences", int(np.count_nonzero(probs >= threshold)))


def vote_margins(score_rows: list[np.ndarray]) -> list[float]:
    """Winner-minus-runner-up gap per summed clipped score vector.

    One vectorized partition over the stacked ``[V, C]`` matrix: the
    top partition entry is each row's winning score, the next one the
    runner-up (equal on ties -> margin 0).
    """
    if not score_rows:
        return []
    matrix = np.stack(score_rows)
    if matrix.shape[1] < 2:
        return matrix[:, 0].tolist()
    top2 = np.partition(matrix, -2, axis=1)
    return (top2[:, -1] - top2[:, -2]).tolist()


def observe_votes(winners: list[int], margins: list[float],
                  vuc_counts: list[int], detail: bool = True) -> None:
    """Record a batch of decided votes: margin histograms + vote counters.

    ``winners``/``margins``/``vuc_counts`` align per decided variable
    (see :func:`vote_margin`).  Margins land in the ``vote.margin``
    histogram and, with ``detail``, in per-winning-type
    ``vote.margin.<leaf>`` histograms; ``vote.vucs_per_variable`` tracks
    how much evidence each variable had.
    """
    registry = observability.get_registry()
    if not registry.enabled or not winners:
        return
    registry.inc("vote.variables", len(winners))
    registry.observe_many("vote.vucs_per_variable", vuc_counts,
                          observability.SIZE_BUCKETS)
    registry.observe_many("vote.margin", margins, MARGIN_BUCKETS)
    if detail:
        by_leaf: dict[int, list[float]] = {}
        for winner, margin in zip(winners, margins):
            by_leaf.setdefault(winner, []).append(margin)
        for winner, leaf_margins in by_leaf.items():
            leaf = ALL_TYPES[winner].value.replace(" ", "_")
            registry.observe_many(f"vote.margin.{leaf}", leaf_margins, MARGIN_BUCKETS)


def vote_many(
    probs: np.ndarray,
    variable_ids: list[str],
    threshold: float = DEFAULT_THRESHOLD,
) -> dict[str, int]:
    """Vote per variable over a flat VUC confidence matrix.

    ``variable_ids[i]`` names the variable VUC ``i`` belongs to; returns
    the winning class index per variable id.
    """
    if len(probs) != len(variable_ids):
        raise InferenceError("probs and variable_ids must align", stage="vote")
    groups: dict[str, list[int]] = {}
    for index, variable_id in enumerate(variable_ids):
        groups.setdefault(variable_id, []).append(index)
    return {
        variable_id: vote(probs[indices], threshold)
        for variable_id, indices in groups.items()
    }
