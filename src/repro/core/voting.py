"""Confidence-based voting (§V-B, eqs. 3-4).

A variable's final type is decided from all of its VUCs' confidence
vectors: confidences at or above the threshold (0.9) are clipped up to
1.0 so confident votes dominate (eq. 3), then the per-class sums are
taken and the argmax wins (eq. 4).
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InferenceError

#: The paper's empirically chosen threshold.
DEFAULT_THRESHOLD = 0.9


def clip_confidences(probs: np.ndarray, threshold: float = DEFAULT_THRESHOLD) -> np.ndarray:
    """Eq. (3): Z'_ij = 1.0 where Z_ij >= threshold, else Z_ij."""
    clipped = probs.copy()
    clipped[clipped >= threshold] = 1.0
    return clipped


def vote(probs: np.ndarray, threshold: float = DEFAULT_THRESHOLD) -> int:
    """Eq. (4): final class for one variable from its [N, C] VUC matrix.

    An empty or mis-shaped matrix raises a typed
    :class:`~repro.core.errors.InferenceError` (a ``ValueError``
    subclass) — a variable with zero VUCs has no defined vote.
    """
    probs = np.asarray(probs)
    if probs.ndim != 2 or len(probs) == 0:
        raise InferenceError(
            "vote needs a non-empty [N, C] confidence matrix "
            f"(got shape {probs.shape})", stage="vote")
    totals = clip_confidences(probs, threshold).sum(axis=0)
    return int(totals.argmax())


def vote_scores(probs: np.ndarray, threshold: float = DEFAULT_THRESHOLD) -> np.ndarray:
    """The summed clipped confidences per class (for inspection)."""
    return clip_confidences(probs, threshold).sum(axis=0)


def vote_many(
    probs: np.ndarray,
    variable_ids: list[str],
    threshold: float = DEFAULT_THRESHOLD,
) -> dict[str, int]:
    """Vote per variable over a flat VUC confidence matrix.

    ``variable_ids[i]`` names the variable VUC ``i`` belongs to; returns
    the winning class index per variable id.
    """
    if len(probs) != len(variable_ids):
        raise InferenceError("probs and variable_ids must align", stage="vote")
    groups: dict[str, list[int]] = {}
    for index, variable_id in enumerate(variable_ids):
        groups.setdefault(variable_id, []).append(index)
    return {
        variable_id: vote(probs[indices], threshold)
        for variable_id, indices in groups.items()
    }
